//! Root package of the JAVMM reproduction workspace.
//!
//! This crate exists to host the repository-level examples
//! (`examples/`) and cross-crate integration tests (`tests/`); the library
//! surface lives in the workspace crates, re-exported here for convenience:
//!
//! * [`javmm`] — the assembled system (start here),
//! * [`migrate`], [`jheap`], [`guestos`], [`workloads`], [`netsim`],
//!   [`vmem`], [`simkit`] — the substrates.

pub use guestos;
pub use javmm;
pub use jheap;
pub use migrate;
pub use netsim;
pub use simkit;
pub use vmem;
pub use workloads;
