//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of `rand`'s API it actually consumes: the [`RngCore`]
//! trait that [`simkit`]'s deterministic generator implements so it can be
//! plugged into `rand`-based consumers. The trait contract matches
//! `rand_core` 0.9.

/// A random number generator core, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}
