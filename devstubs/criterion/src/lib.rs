//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of criterion's API its benches use. There is no statistical
//! machinery: each registered benchmark body is executed a handful of
//! times with a coarse wall-clock timing printed, which keeps
//! `cargo bench` working as a smoke test of the bench code paths.

use std::time::Instant;

/// How a batched benchmark's inputs are grouped. Only a marker here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Fresh setup for every single iteration.
    PerIteration,
}

/// Mirror of `criterion::Criterion`, the benchmark registry/driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs `f` once with a [`Bencher`] and prints a coarse timing.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed_ns: 0,
        };
        let wall = Instant::now();
        f(&mut b);
        let total = wall.elapsed();
        let per_iter = b.elapsed_ns.checked_div(b.iters).unwrap_or(0);
        println!(
            "bench {id}: {} iters, ~{per_iter} ns/iter ({:.1} ms total)",
            b.iters,
            total.as_secs_f64() * 1e3,
        );
        self
    }
}

/// Mirror of `criterion::Bencher`: runs the measured closure a few times.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u64,
}

/// Number of measured iterations per benchmark in the stub driver.
const STUB_ITERS: u64 = 3;

impl Bencher {
    /// Times `routine` over a fixed small number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..STUB_ITERS {
            let t = Instant::now();
            let out = routine();
            self.elapsed_ns += t.elapsed().as_nanos() as u64;
            self.iters += 1;
            black_box(out);
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..STUB_ITERS {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            self.elapsed_ns += t.elapsed().as_nanos() as u64;
            self.iters += 1;
            black_box(out);
        }
    }
}

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Mirror of `criterion_group!`: defines a function running each listed
/// benchmark with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: emits `main` calling each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
