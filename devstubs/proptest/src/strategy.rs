//! Strategies: deterministic value generators mirroring `proptest`'s.

use crate::test_runner::TestRng;
use core::marker::PhantomData;
use core::ops::Range;

/// A value generator. Mirrors `proptest::strategy::Strategy`, minus
/// shrinking: `generate` produces one value per call.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A strategy mapped through a function.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A uniform choice among several strategies of the same value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The whole-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only, spanning a wide magnitude range.
        let magnitude = (rng.next_f64() * 2.0 - 1.0) * 1e12;
        magnitude * rng.next_f64()
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let x = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&x));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = crate::prop_oneof![
            (0u64..10).prop_map(|x| x * 2),
            (100u64..110).prop_map(|x| x + 1),
        ];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 || (101..111).contains(&v), "v = {v}");
        }
    }
}
