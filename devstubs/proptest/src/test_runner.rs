//! Test-runner configuration and the deterministic case generator.

/// Mirror of `proptest::test_runner::Config` (aliased `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic RNG driving case generation (SplitMix64).
///
/// Seeded from the property's name so every test sees a reproducible,
/// order-independent stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a property name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then one avalanche step.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = Self { state: h };
        rng.next_u64();
        rng
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: bound must be positive");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = (self.next_u64() as u128).wrapping_mul(bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}
