//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! functional miniature of the `proptest` API surface its property tests
//! use: the [`proptest!`] macro, `prop_assert*`, [`strategy::Strategy`]
//! with `prop_map`, [`prop_oneof!`], `any::<T>()`, ranges and tuples as
//! strategies, and the `collection::{vec, btree_set, btree_map}` builders.
//!
//! Semantics: each test runs `ProptestConfig::cases` deterministic cases
//! (seeded from the test name, so runs are reproducible and independent of
//! test ordering). There is **no shrinking** — a failing case panics with
//! the ordinary assertion message. `proptest-regressions` files are
//! ignored.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The public prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`: module-style access to the
    /// strategy builders (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Mirrors `proptest!`'s common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident
        ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Mirrors `prop_assert!`: panics (no shrinking) when the condition fails.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirrors `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirrors `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Mirrors `prop_oneof!`: picks one of the argument strategies uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
