//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;
use std::collections::{BTreeMap, BTreeSet};

/// A strategy producing `Vec`s with lengths drawn from `size`.
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// Generates `Vec<S::Value>` with a length in `size`.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = pick_len(&self.size, rng);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// A strategy producing `BTreeSet`s with sizes drawn from `size`.
pub struct BTreeSetStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// Generates `BTreeSet<S::Value>` with a size in `size` (best effort: if
/// the element domain is too small to reach the requested size, the set is
/// returned smaller after a bounded number of attempts).
pub fn btree_set<S: Strategy>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { elem, size }
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = pick_len(&self.size, rng);
        let mut out = BTreeSet::new();
        let mut attempts = target * 10 + 16;
        while out.len() < target && attempts > 0 {
            out.insert(self.elem.generate(rng));
            attempts -= 1;
        }
        out
    }
}

/// A strategy producing `BTreeMap`s with sizes drawn from `size`.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

/// Generates `BTreeMap<K::Value, V::Value>` with a size in `size` (best
/// effort, like [`btree_set`]).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size }
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = pick_len(&self.size, rng);
        let mut out = BTreeMap::new();
        let mut attempts = target * 10 + 16;
        while out.len() < target && attempts > 0 {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            attempts -= 1;
        }
        out
    }
}

fn pick_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
    assert!(size.start < size.end, "empty collection size range");
    let width = (size.end - size.start) as u64;
    size.start + rng.below(width) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_len_in_range() {
        let mut rng = TestRng::from_name("vec_len");
        for _ in 0..200 {
            let v = vec(0u64..100, 3..9).generate(&mut rng);
            assert!((3..9).contains(&v.len()));
        }
    }

    #[test]
    fn set_and_map_reach_target_when_domain_allows() {
        let mut rng = TestRng::from_name("set_map");
        for _ in 0..100 {
            let s = btree_set(0u64..1000, 5..6).generate(&mut rng);
            assert_eq!(s.len(), 5);
            let m = btree_map(0u64..1000, 0u64..10, 4..5).generate(&mut rng);
            assert_eq!(m.len(), 4);
        }
    }
}
