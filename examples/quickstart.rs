//! Quickstart: migrate a Java VM with JAVMM in a dozen lines.
//!
//! Boots the paper's 2 GiB guest running the crypto workload, warms it up,
//! migrates it with application assistance, and prints the report.
//!
//! Run with: `cargo run --release --example quickstart`

use javmm::orchestrator::{run_scenario, Scenario};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use simkit::units::fmt_bytes;
use simkit::SimDuration;
use workloads::catalog;

fn main() {
    // A 2 GiB / 4 vCPU guest running crypto, with the JAVMM TI agent
    // loaded (assisted = true), seeded for reproducibility.
    let vm = JavaVmConfig::paper(catalog::crypto(), true, 42);

    // Warm up for 60 s, migrate over gigabit Ethernet, run 60 s more.
    let scenario = Scenario::quick(
        vm,
        MigrationConfig::javmm_default(),
        SimDuration::from_secs(60),
        SimDuration::from_secs(60),
    );
    let outcome = run_scenario(&scenario).expect("scenario failed");
    let report = &outcome.report;

    println!("migrated a crypto VM with JAVMM:");
    println!("  iterations      : {}", report.iteration_count());
    println!("  completion time : {}", report.total_duration);
    println!("  network traffic : {}", fmt_bytes(report.total_bytes));
    println!(
        "  downtime        : {} (enforced GC {}, stop-and-copy {}, resume {})",
        report.downtime.workload_downtime(),
        report.downtime.enforced_gc,
        report.downtime.last_iteration,
        report.downtime.resume,
    );
    println!(
        "  young gen skipped: {}",
        fmt_bytes(report.pages_skipped_transfer() * vmem::PAGE_SIZE)
    );
    println!(
        "  correctness     : {} mismatched pages",
        report.verification.mismatched
    );
    assert!(report.verification.is_correct());
}
