//! Inspect a migration's event timeline and stop reason.
//!
//! Shows the Figure 4 protocol causality as recorded by the engine: the
//! stop condition fires, the LKM is notified, the guest runs its enforced
//! GC and reports readiness, then the VM pauses and resumes — with the
//! per-class traffic breakdown explaining where the bytes went.
//!
//! Run with: `cargo run --release --example migration_timeline`

use javmm::orchestrator::{run_scenario, Scenario};
use javmm::vm::{Collector, JavaVmConfig};
use migrate::config::MigrationConfig;
use simkit::units::{fmt_bytes, MIB};
use simkit::SimDuration;
use workloads::catalog;

fn main() {
    // A derby VM on the G1-like collector, migrated with JAVMM.
    let mut vm = JavaVmConfig::paper(catalog::derby(), true, 21);
    vm.collector = Collector::G1 {
        region_bytes: 4 * MIB,
    };
    let outcome = run_scenario(&Scenario::quick(
        vm,
        MigrationConfig::javmm_default(),
        SimDuration::from_secs(60),
        SimDuration::from_secs(30),
    ))
    .expect("scenario failed");
    let report = &outcome.report;

    println!("timeline (seconds are absolute simulation time):");
    for (t, event) in report.timeline.iter() {
        println!("  {:>10.4}s  {event:?}", t.as_secs_f64());
    }
    println!("\nstop reason: {:?}", report.stop_reason);
    println!(
        "downtime: {} (enforced GC {}, final bitmap update {}, stop-and-copy {}, resume {})",
        report.downtime.workload_downtime(),
        report.downtime.enforced_gc,
        report.downtime.final_update,
        report.downtime.last_iteration,
        report.downtime.resume,
    );

    println!("\ntraffic by page class:");
    for (class, bytes) in report.traffic_by_class.sorted() {
        println!("  {:>10}  {}", class.label(), fmt_bytes(bytes));
    }
    println!(
        "\nskipped {} of Young-generation memory across {} iterations; \
         correctness: {} mismatches",
        fmt_bytes(report.pages_skipped_transfer() * vmem::PAGE_SIZE),
        report.iteration_count(),
        report.verification.mismatched,
    );
    assert!(report.verification.is_correct());
}
