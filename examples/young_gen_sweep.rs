//! Sweep the maximum Young generation size (the Figure 12 experiment,
//! generalized): the bigger the Young generation, the worse vanilla Xen
//! does and the better JAVMM does — they cross over for small heaps.
//!
//! Run with: `cargo run --release --example young_gen_sweep`

use javmm::orchestrator::{run_scenario, Scenario};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use simkit::units::MIB;
use simkit::SimDuration;
use workloads::catalog;

fn main() {
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "young(MB)", "Xen time", "JAVMM time", "Xen GB", "JAVMM GB", "Xen down", "JAVMM down"
    );
    for young_mb in [128u64, 256, 512, 1024, 1536] {
        let mut row = vec![format!("{young_mb}")];
        let mut results = Vec::new();
        for assisted in [false, true] {
            let mut vm = JavaVmConfig::paper(catalog::derby(), assisted, 5);
            vm.young_max = Some(young_mb * MIB);
            let migration = if assisted {
                MigrationConfig::javmm_default()
            } else {
                MigrationConfig::xen_default()
            };
            let out = run_scenario(&Scenario::quick(
                vm,
                migration,
                SimDuration::from_secs(45),
                SimDuration::from_secs(30),
            ))
            .expect("scenario failed");
            assert!(out.report.verification.is_correct());
            results.push(out);
        }
        let (xen, javmm) = (&results[0], &results[1]);
        row.push(format!("{:.1}s", xen.report.total_duration.as_secs_f64()));
        row.push(format!("{:.1}s", javmm.report.total_duration.as_secs_f64()));
        row.push(format!("{:.2}", xen.report.total_bytes as f64 / 1e9));
        row.push(format!("{:.2}", javmm.report.total_bytes as f64 / 1e9));
        row.push(format!(
            "{:.2}s",
            xen.report.downtime.workload_downtime().as_secs_f64()
        ));
        row.push(format!(
            "{:.2}s",
            javmm.report.downtime.workload_downtime().as_secs_f64()
        ));
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            row[0], row[1], row[2], row[3], row[4], row[5], row[6]
        );
    }
    println!(
        "\npaper (Figure 12): larger Young generations monotonically hurt Xen and help JAVMM."
    );
}
