//! Drain a 4-VM host under each fleet policy and compare the damage.
//!
//! Four tenants — an Old-generation-heavy VM, two light services and a
//! bursty batch job — share one gigabit migration uplink. The fleet
//! scheduler (crates/cluster) runs the drain under FIFO,
//! smallest-working-set-first and the Baruchi-style cycle-aware policy,
//! with admission control keeping every admitted pre-copy above its
//! convergence floor. Same seed + same policy is byte-deterministic, so
//! the numbers below reproduce exactly.
//!
//! Run with: `cargo run --release --example fleet_migration`

use cluster::{roster, run_fleet, FleetPolicy};

fn main() {
    // `--example fleet_migration -- drain12` runs the 12-VM evaluation
    // roster instead of the default 4-VM one.
    let which = std::env::args().nth(1).unwrap_or_else(|| "drain4".into());
    let host = match which.as_str() {
        "drain4" => roster::drain4(7),
        "drain12" => roster::drain12(7),
        other => panic!("unknown roster {other}; use drain4 or drain12"),
    };
    println!(
        "Draining host '{}' ({} tenants, {:.0} MB/s uplink, max {} concurrent):\n",
        host.name,
        host.tenants.len(),
        host.uplink.bytes_per_sec() / 1e6,
        host.max_concurrent
    );

    println!("policy  eviction_s  agg_downtime_ms  total_MB  sla_cost  degraded  nonconverged");
    for policy in FleetPolicy::ALL {
        let outcome = run_fleet(&host, policy).expect("drain failed");
        let d = &outcome.digest;
        println!(
            "{:<7} {:>9.2} {:>16.1} {:>9.1} {:>9.2} {:>9} {:>13}",
            policy.name(),
            d.eviction_ns as f64 / 1e9,
            d.aggregate_downtime_ns as f64 / 1e6,
            d.total_bytes as f64 / 1e6,
            d.sla_total.total(),
            d.degraded,
            d.nonconverged,
        );
    }

    let fifo = run_fleet(&host, FleetPolicy::Fifo).expect("drain failed");
    println!("\nPer-VM schedule under FIFO:");
    println!("vm        admitted_s  ended_s  migration_s  downtime_ms  iters  stop");
    for vm in &fifo.digest.vms {
        println!(
            "{:<9} {:>9.2} {:>8.2} {:>12.2} {:>12.1} {:>6} {:>12}",
            vm.digest.meta.name,
            vm.admitted_at_ns as f64 / 1e9,
            vm.ended_at_ns as f64 / 1e9,
            vm.digest.total_duration_ns as f64 / 1e9,
            vm.digest.downtime_workload_ns as f64 / 1e6,
            vm.digest.iterations,
            vm.digest.stop_reason,
        );
    }
}
