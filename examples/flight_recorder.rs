//! Flight-record a migration and read the cross-layer span table.
//!
//! Attaches a `simkit::Recorder` to a derby JAVMM migration, then prints
//! the post-hoc latency table (count / mean / p95 / max per phase across
//! every subsystem) and writes both export formats: a JSONL flight log and
//! a Chrome trace-event file openable in Perfetto (ui.perfetto.dev) or
//! `chrome://tracing`.
//!
//! Run with: `cargo run --release --example flight_recorder`

use javmm::orchestrator::{run_scenario_recorded, Scenario};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use simkit::telemetry::export;
use simkit::{Recorder, SimDuration};
use workloads::catalog;

fn main() {
    let outcome = run_scenario_recorded(
        &Scenario::quick(
            JavaVmConfig::paper(catalog::derby(), true, 21),
            MigrationConfig::javmm_default(),
            SimDuration::from_secs(60),
            SimDuration::from_secs(30),
        ),
        Recorder::new(),
    )
    .expect("scenario failed");
    let t = &outcome.report.telemetry;

    println!(
        "{} events, {} spans recorded\n",
        t.events.len(),
        t.spans.len()
    );
    println!(
        "{:<9} {:<20} {:>6} {:>12} {:>12} {:>12}",
        "subsystem", "phase", "count", "mean", "p95", "max"
    );
    for row in t.span_table() {
        println!(
            "{:<9} {:<20} {:>6} {:>12} {:>12} {:>12}",
            row.subsystem.as_str(),
            row.name,
            row.count,
            format!("{}", row.mean),
            format!("{}", row.p95),
            format!("{}", row.max),
        );
    }

    for c in &t.counters {
        println!("counter {}/{} = {}", c.subsystem, c.name, c.value);
    }
    for g in &t.gauges {
        println!(
            "gauge {}/{}: last {:.3} (min {:.3}, max {:.3}, {} samples)",
            g.subsystem, g.name, g.last, g.min, g.max, g.samples
        );
    }

    std::fs::write("derby.trace.jsonl", export::jsonl_to_string(t)).expect("write JSONL");
    std::fs::write("derby.trace.json", export::chrome_trace_to_string(t))
        .expect("write Chrome trace");
    println!("\nwrote derby.trace.jsonl and derby.trace.json (open in Perfetto)");
}
