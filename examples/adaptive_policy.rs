//! §6 extension: make the framework intelligent.
//!
//! Profiles every catalog workload, estimates the workload downtime under
//! vanilla pre-copy and under JAVMM from the observed heap behaviour, and
//! picks a migration strategy — turning JAVMM off for workloads where the
//! enforced GC would not pay for itself (scimark-like cases).
//!
//! Run with: `cargo run --release --example adaptive_policy`

use javmm::profiles::profile_heap;
use migrate::policy::{choose_strategy, Strategy, WorkloadProbe};
use simkit::units::Bandwidth;
use simkit::SimDuration;
use workloads::catalog;

fn main() {
    println!(
        "{:<10} {:>9} {:>9} {:>12} {:>12}  choice",
        "workload", "young(MB)", "gc(s)", "est.Xen(s)", "est.JAVMM(s)"
    );
    for spec in catalog::all() {
        // Observe the workload for two minutes (in simulation time).
        let profile = profile_heap(
            &spec,
            spec.default_young_max,
            SimDuration::from_secs(120),
            1,
        );
        let probe = WorkloadProbe {
            vm_bytes: 2 << 30,
            young_committed: profile.avg_young as u64,
            alloc_rate: spec.alloc_rate,
            other_dirty_rate: spec.old_write_rate + 2.5e6,
            other_ws_bytes: spec.old_ws_bytes + (8 << 20),
            expected_survivors: profile.gc_live as u64,
            minor_gc_duration: profile.gc_duration,
            bandwidth: Bandwidth::gigabit_ethernet(),
            resume_time: SimDuration::from_millis(170),
        };
        let decision = choose_strategy(&probe);
        println!(
            "{:<10} {:>9.0} {:>9.2} {:>12.2} {:>12.2}  {}",
            spec.name,
            profile.avg_young / (1024.0 * 1024.0),
            profile.gc_duration.as_secs_f64(),
            decision.precopy_downtime.as_secs_f64(),
            decision.javmm_downtime.as_secs_f64(),
            match decision.strategy {
                Strategy::Javmm => "JAVMM",
                Strategy::Precopy => "pre-copy (JAVMM would not pay off)",
            }
        );
    }
}
