//! RemusDB-style high availability with memory deprotection.
//!
//! Continuously replicates a derby VM's checkpoints to a backup host, with
//! and without application assistance. Skip-over memory "also needs no
//! replication in high-availability systems" (§3.1): deprotecting the Young
//! generation turns an overloaded replication stream into a comfortable one.
//!
//! Run with: `cargo run --release --example checkpoint_ha`

use javmm::vm::{JavaVm, JavaVmConfig};
use migrate::checkpoint::{CheckpointConfig, CheckpointEngine};
use simkit::{SimClock, SimDuration};
use workloads::catalog;

fn main() {
    for assisted in [false, true] {
        let mut vm = JavaVm::launch(JavaVmConfig::paper(catalog::derby(), assisted, 13));
        let mut clock = SimClock::new();
        vm.run_for(
            &mut clock,
            SimDuration::from_secs(30),
            SimDuration::from_millis(2),
        );

        let engine = CheckpointEngine::new(CheckpointConfig {
            epochs: 50,
            assisted,
            interval: SimDuration::from_millis(200),
            ..CheckpointConfig::default()
        });
        let report = engine.replicate(&mut vm, &mut clock);

        let throttle: SimDuration = report.epochs.iter().map(|e| e.backlog_wait).sum();
        let deprotected: u64 = report.epochs.iter().map(|e| e.pages_deprotected).sum();
        println!(
            "{}: 50 epochs x 200ms, mean checkpoint {:.1} MB, total {:.2} GB, \
             snapshot stalls {:.0} ms, guest throttled {:.1}s, \
             {} pages deprotected",
            if assisted {
                "deprotected (JAVMM-assisted)"
            } else {
                "plain Remus               "
            },
            report.mean_bytes() / 1e6,
            report.total_bytes as f64 / 1e9,
            report.total_stall.as_secs_f64() * 1e3,
            throttle.as_secs_f64(),
            deprotected,
        );
    }
    println!(
        "\nthe Young generation churns ~380 MB/s of garbage; without \
         deprotection every checkpoint carries it across the wire and the \
         1 Gb/s link cannot keep up."
    );
}
