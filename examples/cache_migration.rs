//! §6 extension: multiple assisting applications, including a cache server.
//!
//! The framework is not Java-specific: any application can register
//! skip-over areas. Here a guest runs a (quiet) Java service *and* a
//! memcached-like cache that offers the LRU tail of its cache as a
//! skip-over area. The migration daemon skips both the Young generation
//! and the purgeable cache tail; after resumption the cache serves with
//! reduced warmth until the purged region refills.
//!
//! Run with: `cargo run --release --example cache_migration`

use javmm::vm::{JavaVm, JavaVmConfig};
use migrate::config::MigrationConfig;
use migrate::precopy::PrecopyEngine;
use migrate::vmhost::MigratableVm;
use simkit::units::{fmt_bytes, MIB};
use simkit::{DetRng, SimClock, SimDuration};
use workloads::cacheapp::{CacheApp, CacheAppConfig};
use workloads::catalog;

fn main() {
    // A VM hosting a modest Java app plus a 512 MiB cache server.
    let mut config = JavaVmConfig::paper(catalog::mpeg(), true, 3);
    config.young_max = Some(256 * MIB);
    let mut vm = JavaVm::launch(config);
    let cache = CacheApp::launch(
        vm.kernel_handle(),
        CacheAppConfig {
            cache_bytes: 512 * MIB,
            skip_fraction: 0.5,
            write_rate: 30e6,
            ops_per_sec: 10_000.0,
            miss_penalty: 0.3,
            refill_secs: 30.0,
            cold_fraction: 0.0,
        },
        true, // assists in migration
        DetRng::new(11),
    );
    vm.add_app(Box::new(cache));

    let mut clock = SimClock::new();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(60),
        SimDuration::from_millis(2),
    );

    let engine = PrecopyEngine::new(MigrationConfig::javmm_default());
    let report = engine
        .migrate(&mut vm, &mut clock)
        .expect("migration failed");

    println!("migrated a JVM + cache-server guest with application assistance:");
    println!("  completion time  : {}", report.total_duration);
    println!("  network traffic  : {}", fmt_bytes(report.total_bytes));
    println!(
        "  pages skipped    : {} (Young generation + purgeable cache tail)",
        fmt_bytes(report.pages_skipped_transfer() * vmem::PAGE_SIZE)
    );
    println!(
        "  downtime         : {}",
        report.downtime.workload_downtime()
    );
    println!("  stragglers       : {}", report.stragglers);
    println!(
        "  correctness      : {} mismatched pages",
        report.verification.mismatched
    );
    assert!(report.verification.is_correct());

    // Run on at the destination: the cache refills and throughput recovers.
    let before = vm.ops_completed();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(10),
        SimDuration::from_millis(2),
    );
    let cold_ops = vm.ops_completed() - before;
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(30),
        SimDuration::from_millis(2),
    );
    let before = vm.ops_completed();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(10),
        SimDuration::from_millis(2),
    );
    let warm_ops = vm.ops_completed() - before;
    println!(
        "  cache warm-up    : {cold_ops} ops in the first 10s after resume \
         vs {warm_ops} ops once refilled"
    );
}
