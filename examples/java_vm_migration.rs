//! The paper's headline comparison: a derby VM migrated by vanilla Xen
//! pre-copy vs JAVMM (Figure 10's Category-1 case).
//!
//! derby allocates ~380 MB/s of short-lived objects into a 1 GiB Young
//! generation: vanilla pre-copy retransmits that garbage until it is forced
//! to stop; JAVMM skips the whole Young generation and transfers only the
//! data that survives one enforced minor GC.
//!
//! Run with: `cargo run --release --example java_vm_migration`

use javmm::orchestrator::{run_scenario, Scenario, ScenarioOutcome};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use simkit::units::fmt_bytes;
use simkit::SimDuration;
use workloads::catalog;

fn migrate(assisted: bool) -> ScenarioOutcome {
    let vm = JavaVmConfig::paper(catalog::derby(), assisted, 7);
    let migration = if assisted {
        MigrationConfig::javmm_default()
    } else {
        MigrationConfig::xen_default()
    };
    run_scenario(&Scenario::quick(
        vm,
        migration,
        SimDuration::from_secs(90),
        SimDuration::from_secs(120),
    ))
    .expect("scenario failed")
}

fn describe(label: &str, out: &ScenarioOutcome) {
    let r = &out.report;
    println!("{label}:");
    println!(
        "  young gen at migration: {} (old gen {})",
        fmt_bytes(out.observed.young),
        fmt_bytes(out.observed.old)
    );
    println!("  completion time       : {}", r.total_duration);
    println!("  network traffic       : {}", fmt_bytes(r.total_bytes));
    println!("  iterations            : {}", r.iteration_count());
    println!(
        "  workload downtime     : {}",
        r.downtime.workload_downtime()
    );
    println!(
        "  last iteration carried: {}",
        fmt_bytes(r.last_iteration().bytes_sent)
    );
    println!("  daemon CPU time       : {}", r.cpu_time);
    println!(
        "  ops/s before -> after : {:.2} -> {:.2}",
        out.mean_ops_before, out.mean_ops_after
    );
    println!();
}

fn main() {
    println!("== migrating a 2 GiB derby VM over gigabit Ethernet ==\n");
    let xen = migrate(false);
    let javmm = migrate(true);
    describe("vanilla Xen pre-copy", &xen);
    describe("JAVMM (application-assisted)", &javmm);

    let pct = |x: f64, j: f64| (1.0 - j / x) * 100.0;
    println!(
        "JAVMM reductions: time {:.0}%, traffic {:.0}%, downtime {:.0}% \
         (paper: 82%, 84%, 83%)",
        pct(
            xen.report.total_duration.as_secs_f64(),
            javmm.report.total_duration.as_secs_f64()
        ),
        pct(
            xen.report.total_bytes as f64,
            javmm.report.total_bytes as f64
        ),
        pct(
            xen.report.downtime.workload_downtime().as_secs_f64(),
            javmm.report.downtime.workload_downtime().as_secs_f64()
        ),
    );
    assert!(xen.report.verification.is_correct());
    assert!(javmm.report.verification.is_correct());
}
