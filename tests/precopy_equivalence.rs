//! Regression lock for the word-granular scan pipeline.
//!
//! The engine's scan loop was rewritten from per-bit queries to word
//! algebra (`to_send & transfer & !dirty`, 64 pages per step). The rewrite
//! claims *bit-for-bit* equivalence, so these tests pin entire
//! [`migrate::report::MigrationReport`]s — totals, downtime breakdown,
//! verification counts and every per-iteration stat — to values recorded
//! with the per-bit seed engine for three fixed-seed scenarios covering
//! vanilla Xen, assisted migration and the waiting-mode snapshot refresh.
//! Any semantic drift in the scan pipeline shows up here as a hard diff.

use javmm::orchestrator::{run_scenario, Scenario};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use migrate::report::MigrationReport;
use simkit::SimDuration;
use workloads::catalog;
use workloads::spec::WorkloadSpec;

/// (to_send, sent, bytes, skip_dirty, skip_transfer, duration_ns)
type IterRow = (u64, u64, u64, u64, u64, u64);

struct Expected {
    total_bytes: u64,
    total_duration_ns: u64,
    cpu_time_ns: u64,
    /// (safepoint, gc, final_update, last_iteration, resume) in ns.
    downtime_ns: (u64, u64, u64, u64, u64),
    /// (matching, excused_skipped, excused_free, mismatched).
    verification: (u64, u64, u64, u64),
    iterations: Vec<IterRow>,
}

fn run(workload: WorkloadSpec, assisted: bool, seed: u64) -> MigrationReport {
    let config = if assisted {
        MigrationConfig::javmm_default()
    } else {
        MigrationConfig::xen_default()
    };
    run_scenario(&Scenario::quick(
        JavaVmConfig::paper(workload, assisted, seed),
        config,
        SimDuration::from_secs(20),
        SimDuration::from_secs(5),
    ))
    .expect("scenario failed")
    .report
}

fn assert_report(name: &str, r: &MigrationReport, want: &Expected) {
    assert_eq!(r.total_bytes, want.total_bytes, "{name}: total_bytes");
    assert_eq!(
        r.total_duration.as_nanos(),
        want.total_duration_ns,
        "{name}: total_duration"
    );
    assert_eq!(r.cpu_time.as_nanos(), want.cpu_time_ns, "{name}: cpu_time");
    assert_eq!(
        (
            r.downtime.safepoint_wait.as_nanos(),
            r.downtime.enforced_gc.as_nanos(),
            r.downtime.final_update.as_nanos(),
            r.downtime.last_iteration.as_nanos(),
            r.downtime.resume.as_nanos(),
        ),
        want.downtime_ns,
        "{name}: downtime breakdown"
    );
    assert_eq!(
        (
            r.verification.matching,
            r.verification.excused_skipped,
            r.verification.excused_free,
            r.verification.mismatched,
        ),
        want.verification,
        "{name}: verification"
    );
    let got: Vec<IterRow> = r
        .iterations
        .iter()
        .map(|it| {
            (
                it.pages_to_send,
                it.pages_sent,
                it.bytes_sent,
                it.pages_skipped_dirty,
                it.pages_skipped_transfer,
                it.duration.as_nanos(),
            )
        })
        .collect();
    assert_eq!(got, want.iterations, "{name}: per-iteration stats");
}

/// Assisted migration with transfer-bitmap skips on every iteration plus
/// the ReadyToSuspend handshake.
#[test]
fn crypto_assisted_seed9_report_is_locked() {
    let r = run(catalog::crypto(), true, 9);
    assert_report(
        "crypto-assisted-seed9",
        &r,
        &Expected {
            total_bytes: 1_646_988_552,
            total_duration_ns: 14_518_722_791,
            cpu_time_ns: 2_008_193_382,
            downtime_ns: (76_363_048, 447_627_772, 9_180, 10_722_791, 170_000_000),
            verification: (417_956, 106_332, 0, 0),
            iterations: vec![
                (
                    524_288,
                    390_788,
                    1_603_793_952,
                    2_428,
                    131_072,
                    13_475_000_000,
                ),
                (116_274, 9_348, 38_364_192, 288, 106_638, 322_000_000),
                (13_593, 512, 2_101_248, 2, 13_079, 17_000_000),
                (718, 358, 1_469_232, 0, 1_080, 524_000_000),
                (131_073, 307, 1_259_928, 0, 130_766, 10_722_791),
            ],
        },
    );
}

/// Vanilla Xen: no transfer bitmap, re-dirty skips only, max iterations.
#[test]
fn derby_xen_seed1_report_is_locked() {
    let r = run(catalog::derby(), false, 1);
    assert_report(
        "derby-xen-seed1",
        &r,
        &Expected {
            total_bytes: 7_158_385_584,
            total_duration_ns: 60_384_685_991,
            cpu_time_ns: 8_675_893_194,
            downtime_ns: (0, 0, 0, 5_841_685_991, 170_000_000),
            verification: (524_288, 0, 0, 0),
            iterations: vec![
                (524_288, 313_351, 1_285_992_504, 210_937, 0, 10_805_000_000),
                (226_876, 103_312, 423_992_448, 123_564, 0, 3_562_000_000),
                (199_361, 100_983, 414_434_232, 98_378, 0, 3_482_000_000),
                (193_489, 99_748, 409_365_792, 93_741, 0, 3_439_000_000),
                (190_273, 97_217, 398_978_568, 93_056, 0, 3_352_000_000),
                (183_843, 87_793, 360_302_472, 96_050, 0, 3_027_000_000),
                (169_078, 81_978, 336_437_712, 87_100, 0, 2_826_000_000),
                (199_493, 101_539, 416_716_056, 97_954, 0, 3_501_000_000),
                (194_889, 102_259, 419_670_936, 92_630, 0, 3_526_000_000),
                (196_706, 101_762, 417_631_248, 94_944, 0, 3_509_000_000),
                (195_473, 101_049, 414_705_096, 94_424, 0, 3_484_000_000),
                (193_619, 99_844, 409_759_776, 93_775, 0, 3_442_000_000),
                (190_531, 97_399, 399_725_496, 93_132, 0, 3_358_000_000),
                (184_297, 88_761, 364_275_144, 95_536, 0, 3_060_000_000),
                (167_251, 167_251, 686_398_104, 0, 0, 5_841_685_991),
            ],
        },
    );
}

/// Assisted migration whose waiting iteration drains its snapshot and
/// refreshes it mid-iteration (`pages_sent` exceeds the initial
/// `pages_to_send` in iteration 4) — the trickiest scan-loop path.
#[test]
fn derby_assisted_seed3_report_is_locked() {
    let r = run(catalog::derby(), true, 3);
    assert_report(
        "derby-assisted-seed3",
        &r,
        &Expected {
            total_bytes: 1_108_190_808,
            total_duration_ns: 10_454_990_877,
            cpu_time_ns: 1_473_473_878,
            downtime_ns: (142_858_474, 868_139_846, 1_680, 1_990_877, 170_000_000),
            verification: (309_408, 214_880, 0, 0),
            iterations: vec![
                (
                    524_288,
                    257_861,
                    1_058_261_544,
                    4_283,
                    262_144,
                    8_891_000_000,
                ),
                (225_741, 10_792, 44_290_368, 13, 214_936, 372_000_000),
                (4_223, 281, 1_153_224, 0, 3_942, 9_000_000),
                (667, 1_036, 4_251_744, 0, 855, 1_011_000_000),
                (262_145, 57, 233_928, 0, 262_088, 1_990_877),
            ],
        },
    );
}
