//! The paper's headline claims, asserted end-to-end.
//!
//! Shortened runs (the dynamics settle within ~30 simulated seconds), full
//! stack: guest kernel + LKM + JVM + TI agent + pre-copy engine.

use javmm::orchestrator::{run_scenario, Scenario, ScenarioOutcome};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use simkit::SimDuration;
use workloads::catalog;
use workloads::spec::WorkloadSpec;

fn migrate(spec: &WorkloadSpec, assisted: bool, seed: u64) -> ScenarioOutcome {
    let vm = JavaVmConfig::paper(spec.clone(), assisted, seed);
    let migration = if assisted {
        MigrationConfig::javmm_default()
    } else {
        MigrationConfig::xen_default()
    };
    run_scenario(&Scenario::quick(
        vm,
        migration,
        SimDuration::from_secs(30),
        SimDuration::from_secs(20),
    ))
    .expect("scenario failed")
}

#[test]
fn derby_category1_javmm_wins_by_a_wide_margin() {
    let xen = migrate(&catalog::derby(), false, 1);
    let javmm = migrate(&catalog::derby(), true, 1);

    assert!(
        xen.report.verification.is_correct(),
        "{:?}",
        xen.report.verification
    );
    assert!(
        javmm.report.verification.is_correct(),
        "{:?}",
        javmm.report.verification
    );

    // Time, traffic and downtime all drop by well over half (paper: >80%).
    let t_xen = xen.report.total_duration.as_secs_f64();
    let t_javmm = javmm.report.total_duration.as_secs_f64();
    assert!(t_javmm < t_xen * 0.35, "time {t_javmm} vs {t_xen}");

    assert!(
        javmm.report.total_bytes < xen.report.total_bytes / 3,
        "traffic {} vs {}",
        javmm.report.total_bytes,
        xen.report.total_bytes
    );

    let d_xen = xen.report.downtime.workload_downtime().as_secs_f64();
    let d_javmm = javmm.report.downtime.workload_downtime().as_secs_f64();
    assert!(d_javmm < d_xen * 0.5, "downtime {d_javmm} vs {d_xen}");

    // The daemon also burns far less CPU (paper: up to 84% less).
    assert!(javmm.report.cpu_time < xen.report.cpu_time.mul_f64(0.5));

    // Xen is forced to stop: traffic well beyond the VM size.
    let vm_bytes = 2u64 << 30;
    assert!(xen.report.total_bytes > 2 * vm_bytes);
    assert_ne!(
        xen.report.stop_reason,
        migrate::report::StopReason::DirtyThreshold,
        "vanilla pre-copy must not converge on derby"
    );
    // JAVMM sends less than the VM size (paper §5.3) and converges.
    assert!(javmm.report.total_bytes < vm_bytes);
    assert_eq!(
        javmm.report.stop_reason,
        migrate::report::StopReason::DirtyThreshold
    );
}

#[test]
fn derby_downtime_breakdown_matches_paper_structure() {
    let javmm = migrate(&catalog::derby(), true, 2);
    let d = &javmm.report.downtime;

    // The enforced GC dominates JAVMM's downtime (paper: 0.9s of 1.2s).
    assert!(
        d.enforced_gc > SimDuration::from_millis(500),
        "gc {}",
        d.enforced_gc
    );
    assert!(d.enforced_gc < SimDuration::from_millis(1500));
    // The final bitmap update completes within 300us (paper §5.3).
    assert!(
        d.final_update < SimDuration::from_micros(300),
        "final update {}",
        d.final_update
    );
    // The last iteration carries only survivors + residue, far below the
    // Young generation size.
    assert!(
        javmm.report.last_iteration().bytes_sent < 100 << 20,
        "last iteration {}",
        javmm.report.last_iteration().bytes_sent
    );
    // LKM memory footprint stays around 1 MiB (paper §5.3).
    let lkm = javmm.report.lkm.as_ref().expect("assisted run");
    assert!(lkm.peak_cache_bytes <= 1_200_000);
}

#[test]
fn crypto_category2_javmm_still_wins() {
    let xen = migrate(&catalog::crypto(), false, 1);
    let javmm = migrate(&catalog::crypto(), true, 1);
    assert!(xen.report.verification.is_correct());
    assert!(javmm.report.verification.is_correct());
    assert!(
        javmm.report.total_duration.as_secs_f64() < xen.report.total_duration.as_secs_f64() * 0.5
    );
    assert!(javmm.report.total_bytes < xen.report.total_bytes / 2);
    assert!(javmm.report.downtime.workload_downtime() < xen.report.downtime.workload_downtime());
}

#[test]
fn scimark_category3_is_a_wash() {
    let xen = migrate(&catalog::scimark(), false, 1);
    let javmm = migrate(&catalog::scimark(), true, 1);
    assert!(xen.report.verification.is_correct());
    assert!(javmm.report.verification.is_correct());

    // Comparable completion time (within 25% either way).
    let ratio = javmm.report.total_duration.as_secs_f64() / xen.report.total_duration.as_secs_f64();
    assert!((0.75..1.25).contains(&ratio), "time ratio {ratio}");

    // Modest traffic reduction only (paper: 10%).
    let traffic_ratio = javmm.report.total_bytes as f64 / xen.report.total_bytes as f64;
    assert!(
        (0.75..1.05).contains(&traffic_ratio),
        "traffic ratio {traffic_ratio}"
    );

    // Downtime roughly at parity — JAVMM pays the enforced GC but sheds
    // little (paper: 1.3s vs 1.2s).
    let d_ratio = javmm.report.downtime.workload_downtime().as_secs_f64()
        / xen.report.downtime.workload_downtime().as_secs_f64();
    assert!((0.6..1.6).contains(&d_ratio), "downtime ratio {d_ratio}");
}

#[test]
fn first_iteration_is_equal_for_both() {
    // Figure 9: in the first iteration Xen and JAVMM process the same 2 GiB
    // and skip similar amounts; the divergence starts at iteration 2.
    let xen = migrate(&catalog::compiler(), false, 3);
    let javmm = migrate(&catalog::compiler(), true, 3);
    let x1 = &xen.report.iterations[0];
    let j1 = &javmm.report.iterations[0];
    let processed = |it: &migrate::report::IterationStats| {
        let (a, b, c) = it.processed_bytes();
        a + b + c
    };
    let px = processed(x1) as f64;
    let pj = processed(j1) as f64;
    assert!(
        (pj / px - 1.0).abs() < 0.05,
        "first-iteration processed {pj} vs {px}"
    );
    // But JAVMM sends less in iteration 2 (paper: 64MB vs >200MB).
    let x2 = &xen.report.iterations[1];
    let j2 = &javmm.report.iterations[1];
    assert!(
        j2.bytes_sent * 2 < x2.bytes_sent,
        "iteration 2: {} vs {}",
        j2.bytes_sent,
        x2.bytes_sent
    );
}

#[test]
fn throughput_is_unharmed_by_javmm_and_dented_by_xen() {
    // Crypto completes ~30 ops/s, enough signal for ratio assertions.
    let xen = migrate(&catalog::crypto(), false, 4);
    let javmm = migrate(&catalog::crypto(), true, 4);

    // JAVMM: throughput after migration within 10% of before.
    let r = javmm.mean_ops_after / javmm.mean_ops_before.max(1e-9);
    assert!((0.9..1.15).contains(&r), "JAVMM ops ratio {r}");

    // Xen: the migration window contains a multi-second gap.
    let gap = xen
        .throughput
        .iter()
        .filter(|(t, v)| {
            *t >= xen.migration_started_at && *t <= xen.migration_ended_at + 2.0 && *v == 0.0
        })
        .count();
    assert!(gap >= 2, "Xen gap was only {gap}s");

    let jgap = javmm
        .throughput
        .iter()
        .filter(|(t, v)| {
            *t >= javmm.migration_started_at && *t <= javmm.migration_ended_at + 2.0 && *v == 0.0
        })
        .count();
    assert!(jgap <= 3, "JAVMM gap was {jgap}s");
}
