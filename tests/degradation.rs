//! Acceptance tests of the degradation ladder: every injected coordination
//! fault must surface as a typed outcome — never a hang, never a corrupt
//! destination.
//!
//! The tentpole guarantees exercised here:
//!
//! * an agent stalled at **any** of the five LKM protocol states leaves the
//!   run terminating in [`MigrationOutcome::DegradedVanilla`] with the
//!   triggering fault named in the report timeline *and* telemetry, and the
//!   destination memory exactly correct;
//! * a dead coordination channel exhausts the begin-ack retry budget and
//!   degrades (or fails, under [`FallbackPolicy::Fail`]);
//! * a GC overrun past the LKM straggler deadline degrades like a stalled
//!   agent;
//! * mid-migration link degradation slows the run but completes it; a dead
//!   link surfaces as [`MigrateError::LinkDown`];
//! * the all-zero [`FaultPlan`] is inert: a config built with the fault
//!   harness produces a bit-for-bit identical report to the preset config
//!   locked by `tests/precopy_equivalence.rs`.

use javmm::orchestrator::{run_scenario, Scenario};
use javmm::vm::{JavaVm, JavaVmConfig};
use migrate::config::{CoordPolicy, FallbackPolicy, MigrationConfig};
use migrate::error::{MigrateError, MigrationOutcome};
use migrate::precopy::PrecopyEngine;
use migrate::report::{EngineEvent, MigrationReport};
use simkit::telemetry::{Recorder, Subsystem, Value};
use simkit::units::MIB;
use simkit::{
    FaultKind, FaultPlan, GcOverrun, LaneFaults, LinkDegrade, SimClock, SimDuration, StallPoint,
};
use workloads::catalog;

/// A small, fast guest: mpeg workload, 256 MiB Young generation, and a
/// short LKM straggler deadline so stalled agents are detected quickly.
fn small_vm(seed: u64) -> JavaVm {
    let mut config = JavaVmConfig::paper(catalog::mpeg(), true, seed);
    config.young_max = Some(256 * MIB);
    config.lkm.reply_timeout = SimDuration::from_millis(500);
    JavaVm::launch(config)
}

fn faulty_config(faults: FaultPlan) -> MigrationConfig {
    MigrationConfig::builder()
        .assisted(true)
        .coord(CoordPolicy {
            degrade_on_stragglers: true,
            ..CoordPolicy::default()
        })
        .faults(faults)
        .build()
        .expect("valid config")
}

/// Runs one assisted migration with `faults` installed and a recorder
/// attached; the wall clock of every run is bounded by construction (all
/// coordination waits are finite), so a hang fails the test harness
/// timeout rather than looping forever.
fn run_faulty(faults: FaultPlan, seed: u64) -> Result<MigrationReport, MigrateError> {
    let mut vm = small_vm(seed);
    let mut clock = SimClock::new();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(10),
        SimDuration::from_millis(2),
    );
    PrecopyEngine::new(faulty_config(faults)).migrate_recorded(&mut vm, &mut clock, Recorder::new())
}

fn degraded_fault(report: &MigrationReport) -> FaultKind {
    match report.outcome {
        MigrationOutcome::DegradedVanilla { fault } => fault,
        MigrationOutcome::Completed => panic!("expected a degraded outcome"),
    }
}

/// The fault must be named consistently in all three places: the typed
/// outcome, the engine timeline, and the telemetry flight recorder.
fn assert_fault_reported(report: &MigrationReport, fault: FaultKind) {
    assert!(
        report
            .timeline
            .iter()
            .any(|(_, e)| *e == EngineEvent::Degraded(fault)),
        "timeline lacks Degraded({fault:?})"
    );
    let degraded: Vec<_> = report
        .telemetry
        .events_named(Subsystem::Engine, "degraded")
        .into_iter()
        .collect();
    assert_eq!(degraded.len(), 1, "exactly one degraded telemetry instant");
    let named = degraded[0]
        .fields
        .iter()
        .any(|(k, v)| *k == "fault" && *v == Value::Str(fault.name().to_string()));
    assert!(named, "telemetry instant lacks fault={}", fault.name());
}

#[test]
fn agent_stall_at_every_state_degrades_to_vanilla() {
    for (i, stall) in StallPoint::ALL.into_iter().enumerate() {
        let faults = FaultPlan {
            agent_stall: Some(stall),
            ..FaultPlan::none()
        };
        let report = run_faulty(faults, 20 + i as u64).expect("degraded runs are not errors");
        let fault = degraded_fault(&report);
        assert_eq!(
            fault,
            FaultKind::AgentStraggler,
            "stall at {}: a silent agent surfaces via the straggler deadline",
            stall.name()
        );
        assert!(
            report.verification.is_correct(),
            "stall at {}: {:?}",
            stall.name(),
            report.verification
        );
        assert_fault_reported(&report, fault);
    }
}

#[test]
fn dead_coordination_channel_exhausts_begin_retries_and_degrades() {
    let faults = FaultPlan {
        seed: 7,
        evtchn: LaneFaults {
            drop: 1.0,
            ..LaneFaults::NONE
        },
        ..FaultPlan::none()
    };
    let report = run_faulty(faults, 31).expect("degradation is not an error");
    assert_eq!(degraded_fault(&report), FaultKind::BeginAckTimeout);
    assert!(report.verification.is_correct());
    assert_fault_reported(&report, FaultKind::BeginAckTimeout);
    // The full retry budget was spent before giving up.
    let retries = report
        .timeline
        .iter()
        .filter(|(_, e)| matches!(e, EngineEvent::CoordRetry { .. }))
        .count() as u32;
    assert_eq!(retries, CoordPolicy::default().retry_limit);
    // No assistance ever took effect.
    assert_eq!(report.pages_skipped_transfer(), 0);
}

#[test]
fn fail_policy_surfaces_a_typed_coordination_error() {
    let faults = FaultPlan {
        seed: 7,
        evtchn: LaneFaults {
            drop: 1.0,
            ..LaneFaults::NONE
        },
        ..FaultPlan::none()
    };
    let mut vm = small_vm(32);
    let mut clock = SimClock::new();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(10),
        SimDuration::from_millis(2),
    );
    let config = MigrationConfig::builder()
        .assisted(true)
        .fallback(FallbackPolicy::Fail)
        .faults(faults)
        .build()
        .expect("valid config");
    let err = PrecopyEngine::new(config)
        .migrate(&mut vm, &mut clock)
        .expect_err("a dead channel must fail under FallbackPolicy::Fail");
    match err {
        MigrateError::CoordTimeout { phase, waited } => {
            assert_eq!(phase.name(), "begin_ack");
            assert!(waited > SimDuration::ZERO);
        }
        other => panic!("expected CoordTimeout, got {other:?}"),
    }
}

#[test]
fn gc_overrun_past_straggler_deadline_degrades() {
    let faults = FaultPlan {
        gc_overrun: Some(GcOverrun {
            extra: SimDuration::from_secs(5),
        }),
        ..FaultPlan::none()
    };
    let report = run_faulty(faults, 33).expect("degradation is not an error");
    assert_eq!(degraded_fault(&report), FaultKind::AgentStraggler);
    assert!(report.verification.is_correct());
    assert_fault_reported(&report, FaultKind::AgentStraggler);
}

#[test]
fn link_degrade_slows_the_run_but_completes_it() {
    let strike = FaultPlan {
        link: Some(LinkDegrade {
            after: SimDuration::from_secs(1),
            factor: 0.25,
        }),
        ..FaultPlan::none()
    };
    let healthy = run_faulty(FaultPlan::none(), 34).expect("clean run");
    let slowed = run_faulty(strike, 34).expect("a slow link still completes");
    assert_eq!(slowed.outcome, MigrationOutcome::Completed);
    assert!(slowed.verification.is_correct());
    assert!(
        slowed.total_duration > healthy.total_duration,
        "quartered bandwidth must lengthen the migration ({} vs {})",
        slowed.total_duration,
        healthy.total_duration
    );
    assert_eq!(
        slowed
            .telemetry
            .events_named(Subsystem::Engine, "link_degraded")
            .len(),
        1
    );
}

#[test]
fn dead_link_surfaces_as_link_down() {
    let faults = FaultPlan {
        link: Some(LinkDegrade {
            after: SimDuration::from_secs(1),
            factor: 0.0,
        }),
        ..FaultPlan::none()
    };
    let err = run_faulty(faults, 35).expect_err("a dead link cannot complete");
    assert!(matches!(err, MigrateError::LinkDown), "got {err:?}");
}

/// The zero plan is inert: running the exact scenario locked by
/// `tests/precopy_equivalence.rs` through a builder-made config with the
/// fault harness explicitly attached must reproduce the identical report.
#[test]
fn zero_fault_plan_is_bit_identical_to_the_locked_golden() {
    let run = |config: MigrationConfig| {
        run_scenario(&Scenario::quick(
            JavaVmConfig::paper(catalog::crypto(), true, 9),
            config,
            SimDuration::from_secs(20),
            SimDuration::from_secs(5),
        ))
        .expect("scenario failed")
        .report
    };
    let preset = run(MigrationConfig::javmm_default());
    let harness = run(MigrationConfig::builder()
        .assisted(true)
        .coord(CoordPolicy::default())
        .fallback(FallbackPolicy::DegradeToVanilla)
        .faults(FaultPlan::none())
        .build()
        .expect("valid config"));

    assert_eq!(preset.outcome, MigrationOutcome::Completed);
    assert_eq!(harness.outcome, MigrationOutcome::Completed);
    assert_eq!(harness.total_bytes, preset.total_bytes);
    assert_eq!(harness.total_duration, preset.total_duration);
    assert_eq!(harness.cpu_time, preset.cpu_time);
    assert_eq!(
        harness.downtime.workload_downtime(),
        preset.downtime.workload_downtime()
    );
    assert_eq!(
        (
            harness.verification.matching,
            harness.verification.excused_skipped,
            harness.verification.excused_free,
            harness.verification.mismatched,
        ),
        (
            preset.verification.matching,
            preset.verification.excused_skipped,
            preset.verification.excused_free,
            preset.verification.mismatched,
        )
    );
    let rows = |r: &MigrationReport| {
        r.iterations
            .iter()
            .map(|it| {
                (
                    it.pages_to_send,
                    it.pages_sent,
                    it.bytes_sent,
                    it.pages_skipped_dirty,
                    it.pages_skipped_transfer,
                    it.duration,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(rows(&harness), rows(&preset));
}
