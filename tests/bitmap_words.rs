//! Property tests for the word-granular bitmap combinators.
//!
//! Every word-level operation the scan pipeline relies on is cross-checked
//! against a naive per-bit reference over randomly generated bitmaps with
//! deliberately awkward lengths (tail words, exact word multiples, tiny
//! maps). If the word algebra and the bit-at-a-time semantics ever
//! disagree — including on bits beyond the tail — these fail.

use migrate::scanpool::{classify_range, shard_range, WordClass};
use proptest::prelude::*;
use vmem::{Bitmap, Pfn};

/// Builds a bitmap of `len` bits whose set bits are chosen by `picks`
/// indices (modulo `len`), next to a plain `Vec<bool>` reference model.
fn build(len: u64, picks: &[u64]) -> (Bitmap, Vec<bool>) {
    let mut bm = Bitmap::new(len);
    let mut model = vec![false; len as usize];
    for &p in picks {
        let i = p % len;
        bm.set(Pfn(i));
        model[i as usize] = true;
    }
    (bm, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn count_and_matches_per_bit(
        len in 1u64..200,
        a in prop::collection::vec(any::<u64>(), 0..64),
        b in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let (x, xm) = build(len, &a);
        let (y, ym) = build(len, &b);
        let naive = xm.iter().zip(&ym).filter(|(p, q)| **p && **q).count() as u64;
        prop_assert_eq!(x.count_and(&y), naive);
    }

    fn count_and_not_matches_per_bit(
        len in 1u64..200,
        a in prop::collection::vec(any::<u64>(), 0..64),
        b in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let (x, xm) = build(len, &a);
        let (y, ym) = build(len, &b);
        let naive = xm.iter().zip(&ym).filter(|(p, q)| **p && !**q).count() as u64;
        prop_assert_eq!(x.count_and_not(&y), naive);
    }

    fn intersect_with_matches_per_bit(
        len in 1u64..200,
        a in prop::collection::vec(any::<u64>(), 0..64),
        b in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let (mut x, xm) = build(len, &a);
        let (y, ym) = build(len, &b);
        x.intersect_with(&y);
        for i in 0..len {
            prop_assert_eq!(x.get(Pfn(i)), xm[i as usize] && ym[i as usize]);
        }
    }

    fn invert_matches_per_bit_and_masks_tail(
        len in 1u64..200,
        a in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let (mut x, xm) = build(len, &a);
        x.invert();
        for i in 0..len {
            prop_assert_eq!(x.get(Pfn(i)), !xm[i as usize]);
        }
        // The complement never leaks set bits past the tail.
        prop_assert_eq!(x.count_set(), len - xm.iter().filter(|b| **b).count() as u64);
        let rem = (len % 64) as u32;
        if rem != 0 {
            let tail = x.words()[x.word_count() - 1];
            prop_assert_eq!(tail >> rem, 0);
        }
    }

    fn word_iteration_agrees_with_iter_set(
        len in 1u64..300,
        a in prop::collection::vec(any::<u64>(), 0..96),
    ) {
        let (x, _) = build(len, &a);
        // Reconstruct the PFN list from the word view.
        let mut from_words = Vec::new();
        x.for_each_set_word(|wi, mut w| {
            while w != 0 {
                let bit = w.trailing_zeros() as u64;
                from_words.push(Pfn(wi as u64 * 64 + bit));
                w &= w - 1;
            }
        });
        let from_bits: Vec<Pfn> = x.iter_set().collect();
        prop_assert_eq!(from_words, from_bits);
        // iter_words() visits exactly the non-zero words, ascending.
        let via_iter: Vec<(usize, u64)> = x.iter_words().collect();
        let expect: Vec<(usize, u64)> = x
            .words()
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, w)| *w != 0)
            .collect();
        prop_assert_eq!(via_iter, expect);
    }

    fn word_edits_match_per_bit_edits(
        len in 65u64..200,
        a in prop::collection::vec(any::<u64>(), 0..64),
        mask in any::<u64>(),
    ) {
        // Apply a mask edit to word 0 both ways: word-granular on the
        // bitmap, per-bit on the model.
        let (mut x, mut xm) = build(len, &a);
        x.set_bits_in_word(0, mask);
        x.clear_bits_in_word(1, mask);
        for bit in 0..64u64 {
            if mask & (1 << bit) != 0 {
                xm[bit as usize] = true;
                if bit + 64 < len {
                    xm[(bit + 64) as usize] = false;
                }
            }
        }
        for i in 0..len.min(128) {
            prop_assert_eq!(x.get(Pfn(i)), xm[i as usize], "bit {}", i);
        }
    }

    fn scan_classification_matches_per_bit(
        len in 1u64..260,
        s in prop::collection::vec(any::<u64>(), 0..96),
        d in prop::collection::vec(any::<u64>(), 0..96),
        t in prop::collection::vec(any::<u64>(), 0..96),
    ) {
        // The engine's word classification (send / skip-dirty /
        // skip-transfer) against the per-bit rule it replaced.
        let (snap, sm) = build(len, &s);
        let (dirty, dm) = build(len, &d);
        let (transfer, tm) = build(len, &t);
        let (mut sends, mut skips_d, mut skips_t) = (0u64, 0u64, 0u64);
        for wi in 0..snap.word_count() {
            let w = snap.words()[wi];
            let dw = dirty.words()[wi];
            let tw = transfer.words()[wi];
            skips_t += u64::from((w & !tw).count_ones());
            skips_d += u64::from((w & tw & dw).count_ones());
            sends += u64::from((w & tw & !dw).count_ones());
        }
        let (mut nsends, mut nskips_d, mut nskips_t) = (0u64, 0u64, 0u64);
        for i in 0..len as usize {
            if !sm[i] {
                continue;
            }
            if !tm[i] {
                nskips_t += 1;
            } else if dm[i] {
                nskips_d += 1;
            } else {
                nsends += 1;
            }
        }
        prop_assert_eq!((sends, skips_d, skips_t), (nsends, nskips_d, nskips_t));
    }

    fn shard_range_partitions_the_word_index_space(
        len in 0usize..500,
        shards in 1usize..12,
    ) {
        // The shards are contiguous, in order, disjoint, and cover
        // exactly 0..len — the precondition for every "sum over a
        // partition equals the whole" argument in the scan pipeline.
        let mut cursor = 0usize;
        for i in 0..shards {
            let r = shard_range(len, shards, i);
            prop_assert_eq!(r.start, cursor);
            prop_assert!(r.end >= r.start);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, len);
    }

    fn sharded_classify_concat_matches_serial(
        len in 1u64..900,
        shards in 1usize..12,
        s in prop::collection::vec(any::<u64>(), 0..128),
        d in prop::collection::vec(any::<u64>(), 0..128),
        t in prop::collection::vec(any::<u64>(), 0..128),
    ) {
        // The tentpole determinism claim at the kernel level: classifying
        // shard-local slices and concatenating in shard order is the
        // identical word sequence the serial classifier produces — for
        // any shard count, including counts that don't divide the length.
        let (snap, _) = build(len, &s);
        let (dirty, _) = build(len, &d);
        let (transfer, _) = build(len, &t);
        let words = snap.word_count();
        let mut serial = vec![WordClass::default(); words];
        classify_range(
            &mut serial,
            snap.words(),
            dirty.words(),
            Some(transfer.words()),
        );
        let mut sharded = vec![WordClass::default(); words];
        for i in 0..shards {
            let r = shard_range(words, shards, i);
            classify_range(
                &mut sharded[r.clone()],
                &snap.words()[r.clone()],
                &dirty.words()[r.clone()],
                Some(&transfer.words()[r]),
            );
        }
        prop_assert_eq!(&sharded, &serial);
        // The stop-and-copy shape (no transferability mask) must agree
        // with an explicit all-ones mask.
        let mut no_mask = vec![WordClass::default(); words];
        classify_range(&mut no_mask, snap.words(), dirty.words(), None);
        let all_ones = vec![u64::MAX; words];
        let mut ones_mask = vec![WordClass::default(); words];
        classify_range(&mut ones_mask, snap.words(), dirty.words(), Some(&all_ones));
        prop_assert_eq!(&no_mask, &ones_mask);
    }

    fn range_restricted_counts_sum_to_the_whole(
        len in 1u64..600,
        shards in 1usize..12,
        a in prop::collection::vec(any::<u64>(), 0..96),
        b in prop::collection::vec(any::<u64>(), 0..96),
    ) {
        // count_and_in / count_and_not_in over any partition sum to the
        // whole-map folds the serial engine uses, and each shard-local
        // value matches a per-bit count of the same index range.
        let (x, xm) = build(len, &a);
        let (y, ym) = build(len, &b);
        let words = x.word_count();
        let (mut and_sum, mut and_not_sum) = (0u64, 0u64);
        for i in 0..shards {
            let r = shard_range(words, shards, i);
            let and_part = x.count_and_in(&y, r.clone());
            let and_not_part = x.count_and_not_in(&y, r.clone());
            let bits = (r.start as u64 * 64)..((r.end as u64 * 64).min(len));
            let naive_and = bits
                .clone()
                .filter(|&i| xm[i as usize] && ym[i as usize])
                .count() as u64;
            let naive_and_not = bits
                .filter(|&i| xm[i as usize] && !ym[i as usize])
                .count() as u64;
            prop_assert_eq!(and_part, naive_and);
            prop_assert_eq!(and_not_part, naive_and_not);
            and_sum += and_part;
            and_not_sum += and_not_part;
        }
        prop_assert_eq!(and_sum, x.count_and(&y));
        prop_assert_eq!(and_not_sum, x.count_and_not(&y));
    }
}
