//! Cross-layer flight-recorder invariants on a real assisted migration.
//!
//! One derby run is recorded end to end; the tests then check the causal
//! ordering the paper's Figure 4 workflow implies, the presence of every
//! instrumented subsystem, the span-derived downtime breakdown, and that
//! the exporters are byte-deterministic for identical seeds.

use javmm::orchestrator::{run_scenario_recorded, Scenario, ScenarioOutcome};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use simkit::telemetry::{export, Event, RunTelemetry, Value};
use simkit::{Recorder, SimDuration, SimTime, Subsystem};
use workloads::catalog;

fn recorded_run(seed: u64) -> ScenarioOutcome {
    run_scenario_recorded(
        &Scenario::quick(
            JavaVmConfig::paper(catalog::derby(), true, seed),
            MigrationConfig::javmm_default(),
            SimDuration::from_secs(20),
            SimDuration::from_secs(5),
        ),
        Recorder::new(),
    )
    .expect("scenario failed")
}

fn str_field<'a>(e: &'a Event, key: &str) -> Option<&'a str> {
    e.fields
        .iter()
        .rev()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

/// The instant a uniquely-named engine event fired.
fn engine_at(t: &RunTelemetry, name: &str) -> SimTime {
    let evs = t.events_named(Subsystem::Engine, name);
    assert_eq!(evs.len(), 1, "exactly one engine `{name}` event");
    evs[0].at
}

#[test]
fn recorder_covers_every_layer_in_causal_order() {
    let outcome = recorded_run(5);
    let t = &outcome.report.telemetry;
    assert!(t.enabled, "run was recorded");

    // Every instrumented subsystem shows up in the event stream or spans.
    // Fleet is the exception: it only speaks during multi-VM drains, which
    // tests/fleet.rs and tests/evacuation.rs record separately.
    for sub in Subsystem::ALL {
        if sub == Subsystem::Fleet {
            continue;
        }
        let seen = t.events.iter().any(|e| e.subsystem == sub)
            || t.spans.iter().any(|s| s.subsystem == sub);
        assert!(seen, "subsystem {sub} produced no telemetry");
    }

    // Sequence numbers are globally strictly increasing in record order.
    for w in t.events.windows(2) {
        assert!(
            w[0].seq < w[1].seq,
            "seqs out of order: {:?}",
            (&w[0], &w[1])
        );
    }

    // Timestamps never go backwards within a subsystem's own stream.
    for sub in Subsystem::ALL {
        let mut last = SimTime::ZERO;
        for e in t.events.iter().filter(|e| e.subsystem == sub) {
            assert!(e.at >= last, "{sub} time went backwards at seq {}", e.seq);
            last = e.at;
        }
    }

    // The Figure 4 causal chain. Note the assisted engine pushes one more
    // iteration_start (the waiting iteration) after notifying the LKM, so
    // iteration starts are bounded by the pause, not by the notification.
    let begin = engine_at(t, "begin");
    let notified = engine_at(t, "notified_lkm");
    let ready = engine_at(t, "ready_received");
    let paused = engine_at(t, "paused");
    let resumed = engine_at(t, "resumed");
    let iter_starts = t.events_named(Subsystem::Engine, "iteration_start");
    assert!(!iter_starts.is_empty());
    assert!(begin <= iter_starts[0].at);
    for ev in &iter_starts {
        assert!(ev.at <= paused, "iteration started after the pause");
    }
    assert!(notified < ready, "LKM notified before it reported ready");
    assert!(ready <= paused, "pause follows readiness");
    assert!(paused < resumed, "resume follows pause");
}

#[test]
fn enforced_gc_lands_inside_the_lkm_preparation_window() {
    let outcome = recorded_run(5);
    let t = &outcome.report.telemetry;

    let state_at = |to: &str| {
        let evs: Vec<_> = t
            .events_named(Subsystem::Lkm, "state_transition")
            .into_iter()
            .filter(|e| str_field(e, "to") == Some(to))
            .collect();
        assert_eq!(evs.len(), 1, "exactly one transition to {to}");
        evs[0].at
    };
    let t_enter = state_at("ENTERING_LAST_ITER");
    let t_ready = state_at("SUSPENSION_READY");
    assert!(t_enter < t_ready);

    // Exactly one enforced GC, entirely inside the preparation window.
    let enforced = t.spans_named(Subsystem::Gc, "enforced_gc");
    assert_eq!(enforced.len(), 1, "exactly one enforced GC");
    assert!(enforced[0].start >= t_enter && enforced[0].end <= t_ready);

    // The report's downtime breakdown is derived from these spans.
    assert_eq!(outcome.report.downtime.enforced_gc, enforced[0].duration());
    let final_update = t.spans_named(Subsystem::Lkm, "final_bitmap_update");
    assert_eq!(final_update.len(), 1);
    assert_eq!(
        outcome.report.downtime.final_update,
        final_update[0].duration()
    );

    // The post-hoc span table has the §5.3 latency rows.
    let table = t.span_table();
    for (sub, name) in [
        (Subsystem::Lkm, "final_bitmap_update"),
        (Subsystem::Engine, "resume"),
        (Subsystem::Engine, "stop_and_copy"),
        (Subsystem::Gc, "enforced_gc"),
        (Subsystem::Jvm, "safepoint_hold"),
    ] {
        let row = table
            .iter()
            .find(|r| r.subsystem == sub && r.name == name)
            .unwrap_or_else(|| panic!("span table misses {sub}/{name}"));
        assert!(row.count >= 1);
        assert!(row.max >= row.mean && row.p95 <= row.max);
    }
}

#[test]
fn exports_are_byte_identical_for_identical_seeds() {
    let a = recorded_run(7);
    let b = recorded_run(7);
    let ja = export::jsonl_to_string(&a.report.telemetry);
    let jb = export::jsonl_to_string(&b.report.telemetry);
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "JSONL export must be byte-deterministic");
    let ca = export::chrome_trace_to_string(&a.report.telemetry);
    let cb = export::chrome_trace_to_string(&b.report.telemetry);
    assert_eq!(ca, cb, "Chrome trace export must be byte-deterministic");
    // Each JSONL line is tagged with one of the six subsystem lanes.
    for line in ja.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        assert!(line.contains("\"sub\":"), "untagged line: {line}");
    }
}
