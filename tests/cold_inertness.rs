//! Cold-assist inertness: with access tracking, defer, and delta all
//! disabled (the zero-config default), the subsystem must leave no trace.
//!
//! `tests/precopy_equivalence.rs` locks the engine's per-bit behaviour and
//! `results/DIGEST_*.json` pins the digest bytes; this file locks the
//! *absence* of the cold-page machinery on top: re-running the committed
//! digest roster with `ColdAssistConfig::off()` spelled out explicitly —
//! at both 1 and 8 scan workers — must reproduce every committed golden
//! byte for byte, still under the v2 schema (no `cold` section), and the
//! drain12 fleet golden likewise. If a disabled run ever grows a counter,
//! shifts a histogram bucket, or bumps the schema, these comparisons
//! break before any behavioural test does.

use cluster::{roster, run_fleet, FleetPolicy};
use javmm::orchestrator::{run_scenario_recorded, Scenario};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use migrate::digest::{DigestMeta, RunDigest, DIGEST_SCHEMA};
use migrate::ColdAssistConfig;
use simkit::telemetry::Recorder;
use simkit::SimDuration;
use workloads::catalog;

/// Reads one committed golden from `results/`.
fn committed(name: &str) -> String {
    let path = format!("{}/results/DIGEST_{name}.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Runs one of the standard digest-roster scenarios with the cold assist
/// explicitly disabled and the given scan pool size, returning the digest
/// JSON under the scenario's committed name.
fn digest_cold_off(
    name: &str,
    workload: &str,
    assisted: bool,
    seed: u64,
    scan_workers: usize,
) -> String {
    let spec = match workload {
        "derby" => catalog::derby(),
        "crypto" => catalog::crypto(),
        other => panic!("unknown workload {other}"),
    };
    let mut migration = if assisted {
        MigrationConfig::javmm_default()
    } else {
        MigrationConfig::xen_default()
    };
    migration.scan_workers = scan_workers;
    migration.cold = ColdAssistConfig::off();
    let outcome = run_scenario_recorded(
        &Scenario::quick(
            JavaVmConfig::paper(spec, assisted, seed),
            migration,
            SimDuration::from_secs(20),
            SimDuration::from_secs(5),
        ),
        Recorder::new(),
    )
    .expect("scenario failed");
    RunDigest::from_report(
        DigestMeta {
            name: name.to_string(),
            workload: workload.to_string(),
            assisted,
            seed,
        },
        &outcome.report,
    )
    .to_json()
}

/// The three standard committed run digests, reproduced byte for byte
/// with the subsystem off at serial and pooled scan widths.
#[test]
fn disabled_cold_assist_reproduces_committed_run_digests() {
    for (name, workload, assisted, seed) in [
        ("crypto-assisted-seed9", "crypto", true, 9u64),
        ("derby-xen-seed1", "derby", false, 1),
        ("derby-assisted-seed3", "derby", true, 3),
    ] {
        let golden = committed(name);
        assert!(
            golden.contains(&format!("\"schema\": \"{DIGEST_SCHEMA}\"")),
            "{name}: committed golden must still be the v2 (cold-free) schema"
        );
        for workers in [1usize, 8] {
            let digest = digest_cold_off(name, workload, assisted, seed, workers);
            assert!(
                !digest.contains("\"cold\""),
                "{name} at {workers} workers: disabled run must emit no cold section"
            );
            assert_eq!(
                digest, golden,
                "{name} at {workers} scan workers diverged from the committed golden"
            );
        }
    }
}

/// The drain12 fleet golden, reproduced byte for byte with the
/// subsystem off at serial and pooled scan widths.
#[test]
fn disabled_cold_assist_reproduces_committed_fleet_golden() {
    let golden = committed("fleet_drain12_cycle");
    for workers in [1usize, 8] {
        let out = run_fleet(
            &roster::drain12(7).scan_workers(workers),
            FleetPolicy::CycleAware,
        )
        .expect("drain12 failed");
        assert_eq!(
            out.digest.to_json(),
            golden,
            "drain12 digest at {workers} scan workers diverged from the committed golden"
        );
    }
}
