//! Workload observatory acceptance: detected estimates must track the
//! declared-hint oracle on the cyclic evaluation roster, stay honest
//! (low confidence, working-set fallback) on rosters engineered to fool
//! them, stream per-VM rows without changing the digest a byte, and go
//! blind — predictably — when the sample ring is starved.

use cluster::{roster, run_fleet, run_fleet_streamed, FleetPolicy, FleetRowSink};
use migrate::digest::FleetVmEntry;

/// Detected estimates replace declared hints: on the 12-VM evaluation
/// roster the cycle-aware drain scheduled from *detected* cycles must
/// land within 5% of the same drain scheduled from the tenants' declared
/// phase lists (the application-assisted oracle).
#[test]
fn detected_estimates_track_declared_oracle_on_drain12() {
    let host = roster::drain12(7);
    let detected = run_fleet(&host, FleetPolicy::CycleAware)
        .expect("drain failed")
        .digest;
    let declared = run_fleet(&host, FleetPolicy::CycleDeclared)
        .expect("drain failed")
        .digest;
    let ratio = detected.eviction_ns as f64 / declared.eviction_ns as f64;
    assert!(
        ratio <= 1.05,
        "detected-estimate drain ({} ns) must cost at most 5% over the \
         declared oracle ({} ns); ratio {ratio:.4}",
        detected.eviction_ns,
        declared.eviction_ns
    );
    // At least two of the three cyclics must certify (the longest-lead
    // cyclic's 22 s period can exceed what its admission window can
    // cover — the detector is honest about that, not wrong), and every
    // estimate that does clear the gate must nail its declared period.
    assert!(
        detected.detect.estimated >= 2,
        "at least two cyclic tenants should yield confident estimates, got {}",
        detected.detect.estimated
    );
    assert_eq!(detected.detect.cyclic_declared, 3);
    assert!(
        detected.detect.period_accuracy >= 0.95,
        "certified estimates must match their declared periods ({:.3})",
        detected.detect.period_accuracy
    );
    assert!(
        detected.detect.window_hit_rate >= 0.6,
        "most cyclic admissions should land in detected troughs ({:.3})",
        detected.detect.window_hit_rate
    );
}

/// The adversarial roster: a drifting period, no period at all, and a
/// mid-drain phase shift. The detector must refuse to certify the first
/// two (confidence below the gate), and — because an unconfident
/// cycle-aware policy degrades to smallest-working-set ordering — the
/// drain must never do worse than running swsf outright.
#[test]
fn adversarial_roster_lowers_confidence_and_falls_back() {
    let host = roster::adversarial(7);
    let cycle = run_fleet(&host, FleetPolicy::CycleAware)
        .expect("drain failed")
        .digest;
    let swsf = run_fleet(&host, FleetPolicy::SmallestWorkingSetFirst)
        .expect("drain failed")
        .digest;

    for name in ["drifting-0", "aperiodic-0"] {
        let vm = cycle
            .vms
            .iter()
            .find(|v| v.digest.meta.name == name)
            .expect("adversary missing from digest");
        assert!(
            !vm.detect_confident,
            "{name} has no stable cycle; a confident estimate (period {} ns, \
             confidence {:.3}) is a hallucination",
            vm.detected_period_ns, vm.detected_confidence
        );
    }
    // The phase-shifted tenant completed its drain (the fault perturbs the
    // workload, not the migration machinery).
    assert!(cycle.vms.iter().any(|v| v.digest.meta.name == "shifty-0"));
    assert_eq!(cycle.nonconverged, 0, "every adversary must still converge");
    // "Never underperforms" up to ranking noise: the fallback re-ranks
    // with live working sets at each admission while swsf sorts once at
    // drain start, so the orders (and eviction times) can differ by a
    // hair even when every score degrades to the working-set tie-break.
    assert!(
        cycle.eviction_ns as f64 <= swsf.eviction_ns as f64 * 1.01,
        "cycle-aware with honest fallback ({} ns) must never underperform \
         swsf ({} ns) on the adversarial roster",
        cycle.eviction_ns,
        swsf.eviction_ns
    );
}

/// Collects streamed per-VM rows as (name, completion time) pairs.
struct CollectRows(Vec<(String, u64)>);

impl FleetRowSink for CollectRows {
    fn row(&mut self, entry: &FleetVmEntry) {
        self.0
            .push((entry.digest.meta.name.clone(), entry.ended_at_ns));
    }
}

/// Streaming the drain must be an observer, not a participant: the final
/// digest is byte-identical to the batch path, rows arrive in completion
/// order, and every tenant appears exactly once.
#[test]
fn streamed_drain_matches_batch_digest_byte_for_byte() {
    let host = roster::drain4(7);
    let batch = run_fleet(&host, FleetPolicy::CycleAware)
        .expect("drain failed")
        .digest;
    let mut sink = CollectRows(Vec::new());
    let streamed =
        run_fleet_streamed(&host, FleetPolicy::CycleAware, &mut sink).expect("drain failed");
    assert_eq!(
        streamed.to_json(),
        batch.to_json(),
        "streamed and batch drains must produce byte-identical digests"
    );
    assert_eq!(sink.0.len(), host.tenants.len());
    assert!(
        sink.0.windows(2).all(|w| w[0].1 <= w[1].1),
        "rows must stream in completion order: {:?}",
        sink.0
    );
    let mut names: Vec<&str> = sink.0.iter().map(|(n, _)| n.as_str()).collect();
    names.sort_unstable();
    let mut roster_names: Vec<&str> = host.tenants.iter().map(|t| t.name.as_str()).collect();
    roster_names.sort_unstable();
    assert_eq!(names, roster_names);
}

/// Starving the sample ring below the detector's minimum window blinds
/// the observatory: no estimate clears the gate, every cyclic admission
/// is a window miss, and the drain still completes on the working-set
/// fallback. This is the failure shape CI's seeded regression drill
/// detects through `detect.window_hit_rate`.
#[test]
fn starved_sample_ring_blinds_the_detector() {
    let mut host = roster::drain12(7);
    host.sense_capacity = 8; // below detect::MIN_SAMPLES
    let digest = run_fleet(&host, FleetPolicy::CycleAware)
        .expect("drain failed")
        .digest;
    assert_eq!(
        digest.detect.estimated, 0,
        "8 samples cannot clear the gate"
    );
    assert_eq!(digest.detect.window_hit_rate, 0.0);
    for vm in &digest.vms {
        assert!(!vm.detect_confident);
    }
    assert_eq!(digest.nonconverged, 0, "the fallback still drains the host");
}
