//! RemusDB-style continuous replication with memory deprotection.

use javmm::vm::{JavaVm, JavaVmConfig};
use migrate::checkpoint::{CheckpointConfig, CheckpointEngine, CheckpointReport};
use migrate::vmhost::MigratableVm;
use simkit::{SimClock, SimDuration};
use workloads::catalog;

fn replicate(assisted: bool, epochs: u32) -> (CheckpointReport, JavaVm) {
    let mut vm = JavaVm::launch(JavaVmConfig::paper(catalog::derby(), assisted, 1));
    let mut clock = SimClock::new();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(15),
        SimDuration::from_millis(2),
    );
    let engine = CheckpointEngine::new(CheckpointConfig {
        epochs,
        assisted,
        ..CheckpointConfig::default()
    });
    let report = engine.replicate(&mut vm, &mut clock);
    (report, vm)
}

#[test]
fn deprotection_shrinks_checkpoints_dramatically() {
    let (plain, _) = replicate(false, 25);
    let (assisted, _) = replicate(true, 25);

    assert_eq!(plain.epochs.len(), 25);
    assert_eq!(assisted.epochs.len(), 25);

    // derby dirties ~380 MB/s of Young-generation garbage; without
    // deprotection every 200 ms checkpoint carries ~75 MB of it.
    assert!(
        assisted.mean_bytes() < plain.mean_bytes() / 4.0,
        "checkpoint sizes: assisted {:.1}MB vs plain {:.1}MB",
        assisted.mean_bytes() / 1e6,
        plain.mean_bytes() / 1e6
    );
    // The snapshot stall shrinks proportionally.
    assert!(assisted.total_stall < plain.total_stall / 2);
    // Deprotected pages were actually counted.
    assert!(assisted.epochs.iter().any(|e| e.pages_deprotected > 1000));
    assert!(plain.epochs.iter().all(|e| e.pages_deprotected == 0));
}

#[test]
fn plain_replication_falls_behind_the_link() {
    // 380 MB/s of dirtying vs a ~117 MB/s link: unassisted Remus must
    // throttle the guest (backlog waits), the assisted stream keeps up.
    let (plain, _) = replicate(false, 20);
    let (assisted, _) = replicate(true, 20);
    let plain_wait: SimDuration = plain.epochs.iter().map(|e| e.backlog_wait).sum();
    let assisted_wait: SimDuration = assisted.epochs.iter().map(|e| e.backlog_wait).sum();
    assert!(
        plain_wait > SimDuration::from_secs(1),
        "plain replication should be link-bound, waited only {plain_wait}"
    );
    assert!(
        assisted_wait < plain_wait / 4,
        "assisted {assisted_wait} vs plain {plain_wait}"
    );
}

#[test]
fn vm_keeps_running_after_replication() {
    let (_, mut vm) = replicate(true, 10);
    let mut clock = SimClock::new();
    let before = vm.ops_completed();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(10),
        SimDuration::from_millis(2),
    );
    assert!(
        vm.ops_completed() > before,
        "guest must still make progress"
    );
}
