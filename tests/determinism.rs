//! Determinism and seed-sensitivity of the whole stack.

use javmm::orchestrator::{run_scenario, Scenario, ScenarioOutcome};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use simkit::SimDuration;
use workloads::catalog;

fn run(seed: u64) -> ScenarioOutcome {
    run_scenario(&Scenario::quick(
        JavaVmConfig::paper(catalog::crypto(), true, seed),
        MigrationConfig::javmm_default(),
        SimDuration::from_secs(20),
        SimDuration::from_secs(5),
    ))
    .expect("scenario failed")
}

#[test]
fn same_seed_is_bit_identical() {
    let a = run(9);
    let b = run(9);
    assert_eq!(a.report.total_bytes, b.report.total_bytes);
    assert_eq!(a.report.total_duration, b.report.total_duration);
    assert_eq!(a.report.iteration_count(), b.report.iteration_count());
    assert_eq!(
        a.report.downtime.workload_downtime(),
        b.report.downtime.workload_downtime()
    );
    assert_eq!(a.report.cpu_time, b.report.cpu_time);
    assert_eq!(a.observed.young, b.observed.young);
    assert_eq!(a.observed.old, b.observed.old);
    for (x, y) in a.report.iterations.iter().zip(&b.report.iterations) {
        assert_eq!(x.pages_sent, y.pages_sent);
        assert_eq!(x.pages_skipped_dirty, y.pages_skipped_dirty);
        assert_eq!(x.pages_skipped_transfer, y.pages_skipped_transfer);
        assert_eq!(x.duration, y.duration);
    }
    assert_eq!(a.throughput, b.throughput);
}

#[test]
fn different_seeds_differ_but_agree_qualitatively() {
    let a = run(1);
    let b = run(2);
    // Different randomness: at least some observable difference.
    assert_ne!(
        (a.report.total_bytes, a.report.total_duration),
        (b.report.total_bytes, b.report.total_duration)
    );
    // But the same physics: within 15% on headline metrics.
    let ratio = a.report.total_duration.as_secs_f64() / b.report.total_duration.as_secs_f64();
    assert!((0.85..1.18).contains(&ratio), "time ratio {ratio}");
    let tratio = a.report.total_bytes as f64 / b.report.total_bytes as f64;
    assert!((0.85..1.18).contains(&tratio), "traffic ratio {tratio}");
}
