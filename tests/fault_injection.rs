//! Failure injection: migration must survive a lossy netlink.
//!
//! Real netlink drops messages under memory pressure (`ENOBUFS`). A lost
//! query or reply must degrade gracefully — at worst the LKM's straggler
//! deadline fires and the affected application's memory is transferred in
//! full — and must never produce an incorrect destination or a hang.

use javmm::vm::{JavaVm, JavaVmConfig};
use migrate::config::MigrationConfig;
use migrate::precopy::PrecopyEngine;
use migrate::report::MigrationReport;
use simkit::units::MIB;
use simkit::{DetRng, SimClock, SimDuration};
use workloads::catalog;

fn migrate_with_loss(loss: f64, seed: u64) -> MigrationReport {
    let mut config = JavaVmConfig::paper(catalog::crypto(), true, seed);
    config.young_max = Some(256 * MIB);
    // A short deadline keeps lossy runs quick.
    config.lkm.reply_timeout = SimDuration::from_millis(800);
    let mut vm = JavaVm::launch(config);
    vm.kernel_handle()
        .inject_netlink_loss(loss, DetRng::new(seed ^ 0xfa17));
    let mut clock = SimClock::new();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(15),
        SimDuration::from_millis(2),
    );
    PrecopyEngine::new(MigrationConfig::javmm_default())
        .migrate(&mut vm, &mut clock)
        .expect("migration failed")
}

#[test]
fn migration_is_correct_under_any_loss_rate() {
    for (loss, seed) in [(0.05, 1), (0.3, 2), (0.9, 3), (1.0, 4)] {
        let report = migrate_with_loss(loss, seed);
        assert!(
            report.verification.is_correct(),
            "loss={loss}: {:?}",
            report.verification
        );
    }
}

#[test]
fn total_loss_degrades_to_vanilla_behaviour() {
    // With every message dropped the LKM never hears from the agent: no
    // pages are skipped, and since no app registered intent, nothing is
    // waited for.
    let report = migrate_with_loss(1.0, 7);
    assert_eq!(report.pages_skipped_transfer(), 0);
    assert!(report.verification.is_correct());
}

#[test]
fn partial_loss_may_cost_a_straggler_but_never_correctness() {
    // Drop messages aggressively across several seeds: whichever leg of the
    // protocol breaks (query, reply, prepare, ready), the run must complete
    // correctly; a lost prepare/ready leg shows up as a straggler.
    let mut straggler_seen = false;
    let mut skipped_seen = false;
    for seed in 10..18 {
        let report = migrate_with_loss(0.5, seed);
        assert!(
            report.verification.is_correct(),
            "seed {seed}: {:?}",
            report.verification
        );
        straggler_seen |= report.stragglers > 0;
        skipped_seen |= report.pages_skipped_transfer() > 0;
    }
    assert!(
        skipped_seen,
        "at 50% loss some run should still register areas"
    );
    // Straggler handling is the expected degradation mode; with eight seeds
    // at 50% loss at least one prepare/ready leg should have failed.
    assert!(
        straggler_seen,
        "expected at least one straggler across seeds"
    );
}
