//! The Figure 12 property: Young generation size monotonically hurts
//! vanilla Xen and helps JAVMM for Category-1 workloads.

use javmm::orchestrator::{run_scenario, Scenario, ScenarioOutcome};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use simkit::units::MIB;
use simkit::SimDuration;
use workloads::catalog;

fn run(young_mb: u64, assisted: bool) -> ScenarioOutcome {
    let mut vm = JavaVmConfig::paper(catalog::derby(), assisted, 1);
    vm.young_max = Some(young_mb * MIB);
    let migration = if assisted {
        MigrationConfig::javmm_default()
    } else {
        MigrationConfig::xen_default()
    };
    run_scenario(&Scenario::quick(
        vm,
        migration,
        SimDuration::from_secs(25),
        SimDuration::from_secs(5),
    ))
    .expect("scenario failed")
}

#[test]
fn bigger_young_gen_hurts_xen() {
    let small = run(512, false);
    let big = run(1536, false);
    assert!(small.report.verification.is_correct());
    assert!(big.report.verification.is_correct());
    // Downtime grows with the Young generation (paper: up to 13 s at 1.5 GiB).
    assert!(
        big.report.downtime.workload_downtime()
            > small.report.downtime.workload_downtime().mul_f64(1.5),
        "downtime {} vs {}",
        big.report.downtime.workload_downtime(),
        small.report.downtime.workload_downtime()
    );
    // And the young generations really differ.
    assert!(big.observed.young >= 3 * small.observed.young / 2);
}

#[test]
fn bigger_young_gen_helps_javmm() {
    let small = run(512, true);
    let big = run(1536, true);
    assert!(small.report.verification.is_correct());
    assert!(big.report.verification.is_correct());
    // More memory skipped means less transferred and faster completion.
    assert!(
        big.report.total_bytes < small.report.total_bytes,
        "traffic {} vs {}",
        big.report.total_bytes,
        small.report.total_bytes
    );
    assert!(
        big.report.total_duration < small.report.total_duration,
        "time {} vs {}",
        big.report.total_duration,
        small.report.total_duration
    );
    // Downtime stays in the ~1 s band regardless of Young size (Fig 12c).
    for out in [&small, &big] {
        let d = out.report.downtime.workload_downtime();
        assert!(
            d < SimDuration::from_millis(2500),
            "JAVMM downtime {d} should stay small"
        );
    }
}

#[test]
fn reduction_grows_with_young_size() {
    // Paper: 91%/82%/69% time reduction for 1.5G/1G/0.5G Young (xml/derby/
    // compiler); with one workload the same trend must hold.
    let mut reductions = Vec::new();
    for young in [512u64, 1024, 1536] {
        let xen = run(young, false);
        let javmm = run(young, true);
        let r = 1.0
            - javmm.report.total_duration.as_secs_f64() / xen.report.total_duration.as_secs_f64();
        reductions.push(r);
    }
    assert!(
        reductions[0] < reductions[1] && reductions[1] < reductions[2],
        "reductions not monotone: {reductions:?}"
    );
    assert!(
        reductions[2] > 0.8,
        "large-Young reduction {:.2}",
        reductions[2]
    );
}
