//! Fleet scheduler acceptance: byte-determinism, single-VM golden
//! equivalence, the policy inequalities on the 12-VM evaluation roster,
//! and admission control's convergence guarantee.

use cluster::{roster, run_fleet, FleetPolicy};
use javmm::orchestrator::{run_scenario_recorded, Scenario};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use migrate::digest::{DigestMeta, RunDigest};
use simkit::telemetry::Recorder;
use simkit::SimDuration;
use workloads::catalog;

/// Same seed + same policy must produce a byte-identical fleet digest —
/// the whole drain, per-VM reports and merged histograms included.
#[test]
fn same_seed_same_policy_digest_is_byte_identical() {
    let host = roster::drain4(7);
    for policy in FleetPolicy::ALL {
        let a = run_fleet(&host, policy).expect("drain failed").digest;
        let b = run_fleet(&host, policy).expect("drain failed").digest;
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{} drain must be deterministic",
            policy.name()
        );
    }
}

/// A one-VM FIFO fleet is the degenerate case: the sole subscriber's
/// share is the engine's own configured bandwidth, the scheduler never
/// re-rates it, and the drain must reproduce the standalone
/// `derby-assisted-seed3` run — the same scenario
/// `tests/precopy_equivalence.rs` locks — bit for bit.
#[test]
fn solo_fifo_drain_reproduces_single_vm_golden() {
    let fleet = run_fleet(&roster::solo(3), FleetPolicy::Fifo).expect("drain failed");

    let outcome = run_scenario_recorded(
        &Scenario::quick(
            JavaVmConfig::paper(catalog::derby(), true, 3),
            MigrationConfig::javmm_default(),
            SimDuration::from_secs(20),
            SimDuration::from_secs(5),
        ),
        Recorder::new(),
    )
    .expect("scenario failed");
    let standalone = RunDigest::from_report(
        DigestMeta {
            name: "derby-assisted-seed3".to_string(),
            workload: "derby".to_string(),
            assisted: true,
            seed: 3,
        },
        &outcome.report,
    );

    assert_eq!(fleet.digest.vms.len(), 1);
    assert_eq!(
        fleet.digest.vms[0].digest.to_json(),
        standalone.to_json(),
        "1-VM FIFO fleet must match the standalone run bit for bit"
    );
    // Spot-check against the literal golden locked in
    // tests/precopy_equivalence.rs, so this test fails loudly on its own
    // if the shared scenario ever drifts.
    assert_eq!(fleet.reports[0].total_bytes, 1_108_190_808);
}

/// The 12-VM roster: both workload-aware policies must beat FIFO on total
/// eviction time, and with admission control on, every migration must
/// converge (reach the dirty threshold) despite the shared link.
#[test]
fn drain12_policy_inequalities_hold() {
    let host = roster::drain12(7);
    let fifo = run_fleet(&host, FleetPolicy::Fifo)
        .expect("drain failed")
        .digest;
    let swsf = run_fleet(&host, FleetPolicy::SmallestWorkingSetFirst)
        .expect("drain failed")
        .digest;
    let cycle = run_fleet(&host, FleetPolicy::CycleAware)
        .expect("drain failed")
        .digest;

    assert!(
        swsf.eviction_ns < fifo.eviction_ns,
        "smallest-working-set-first ({} ns) must beat FIFO ({} ns)",
        swsf.eviction_ns,
        fifo.eviction_ns
    );
    assert!(
        cycle.eviction_ns < fifo.eviction_ns,
        "cycle-aware ({} ns) must beat FIFO ({} ns)",
        cycle.eviction_ns,
        fifo.eviction_ns
    );
    for d in [&fifo, &swsf, &cycle] {
        assert_eq!(
            d.nonconverged, 0,
            "admission control must keep every pre-copy convergent ({})",
            d.meta.policy
        );
        assert_eq!(d.degraded, 0, "no drain should degrade ({})", d.meta.policy);
    }
}

/// Turning admission control off reproduces the failure it exists to
/// prevent: FIFO admits both Old-heavy tenants together, their weighted
/// shares fall below the rate their dirty working sets need, and both
/// exhaust the iteration cap instead of converging.
#[test]
fn disabling_admission_control_causes_nonconvergence() {
    let mut host = roster::drain12(7);
    host.enforce_min_rate = false;
    let digest = run_fleet(&host, FleetPolicy::Fifo)
        .expect("drain failed")
        .digest;
    assert!(
        digest.nonconverged > 0,
        "without min-rate admission the heavies must starve each other"
    );
}
