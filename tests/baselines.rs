//! The strategy trade-off triangle (§2): pre-copy vs JAVMM vs post-copy.

use javmm::vm::{JavaVm, JavaVmConfig};
use migrate::config::MigrationConfig;
use migrate::postcopy::{PostcopyConfig, PostcopyEngine, PostcopyReport};
use migrate::precopy::PrecopyEngine;
use migrate::report::MigrationReport;
use simkit::{SimClock, SimDuration};
use workloads::catalog;

fn warm_vm(assisted: bool) -> (JavaVm, SimClock) {
    let mut vm = JavaVm::launch(JavaVmConfig::paper(catalog::derby(), assisted, 1));
    let mut clock = SimClock::new();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(25),
        SimDuration::from_millis(2),
    );
    (vm, clock)
}

fn precopy(assisted: bool) -> MigrationReport {
    let (mut vm, mut clock) = warm_vm(assisted);
    let config = if assisted {
        MigrationConfig::javmm_default()
    } else {
        MigrationConfig::xen_default()
    };
    PrecopyEngine::new(config)
        .migrate(&mut vm, &mut clock)
        .expect("migration failed")
}

fn postcopy() -> PostcopyReport {
    let (mut vm, mut clock) = warm_vm(false);
    PostcopyEngine::new(PostcopyConfig::default()).migrate(&mut vm, &mut clock)
}

#[test]
fn downtime_ordering_matches_the_literature() {
    let xen = precopy(false);
    let javmm = precopy(true);
    let post = postcopy();

    // Post-copy has the smallest downtime (switchover only), JAVMM next,
    // vanilla pre-copy worst on this workload.
    assert!(post.downtime < javmm.report_downtime());
    assert!(javmm.report_downtime() < xen.report_downtime());

    // But post-copy pays after resumption: the guest stalls for demand
    // fetches over a long degradation window; JAVMM does not.
    assert!(
        post.stall_time > SimDuration::from_secs(5),
        "post-copy stall was only {}",
        post.stall_time
    );
    assert!(
        post.degradation_window > SimDuration::from_secs(10),
        "window {}",
        post.degradation_window
    );
}

#[test]
fn postcopy_moves_each_page_once() {
    let post = postcopy();
    // Every page travels exactly once: traffic stays close to the occupied
    // memory (far below vanilla pre-copy's 7+ GB for derby).
    assert!(
        post.total_bytes < 3u64 << 30,
        "post-copy traffic {}",
        post.total_bytes
    );
    assert!(post.demand_fetches > 0, "a hot guest must fault");
}

/// Small helper so the ordering test reads naturally.
trait Downtime {
    fn report_downtime(&self) -> SimDuration;
}

impl Downtime for MigrationReport {
    fn report_downtime(&self) -> SimDuration {
        self.downtime.workload_downtime()
    }
}
