//! Determinism and gate locks for the migration observatory.
//!
//! Same seed + same config (including the same [`FaultPlan`]) must fold
//! into a byte-identical [`RunDigest`] JSON document — the property that
//! makes committed digest baselines a meaningful CI gate. On top of the
//! byte lock, these tests pin the digest's headline numbers for the
//! `derby-assisted-seed3` scenario to the same goldens as
//! `tests/precopy_equivalence.rs`, and prove the compare gate end-to-end:
//! clean on an identical rerun, tripped (naming exactly the scan metric)
//! by a seeded 25% per-page scan-cost slowdown.

use javmm::orchestrator::{run_scenario_recorded, Scenario};
use javmm::vm::JavaVmConfig;
use migrate::config::{CoordPolicy, MigrationConfig};
use migrate::digest::{compare, DigestMeta, RunDigest};
use simkit::telemetry::Recorder;
use simkit::units::MIB;
use simkit::{FaultPlan, LaneFaults, SimDuration};
use workloads::catalog;

fn digest_json(scan_slowdown: f64) -> String {
    let mut config = MigrationConfig::javmm_default();
    config.cpu_cost_per_page_scan = config.cpu_cost_per_page_scan.mul_f64(scan_slowdown);
    let outcome = run_scenario_recorded(
        &Scenario::quick(
            JavaVmConfig::paper(catalog::derby(), true, 3),
            config,
            SimDuration::from_secs(20),
            SimDuration::from_secs(5),
        ),
        Recorder::new(),
    )
    .expect("scenario failed");
    RunDigest::from_report(
        DigestMeta {
            name: "derby-assisted-seed3".to_string(),
            workload: "derby".to_string(),
            assisted: true,
            seed: 3,
        },
        &outcome.report,
    )
    .to_json()
}

/// The degraded roster entry: every coordination message dropped, so the
/// begin-ack retry budget runs out mid-run.
fn degraded_digest_json() -> String {
    let mut vm = JavaVmConfig::paper(catalog::mpeg(), true, 31);
    vm.young_max = Some(256 * MIB);
    vm.lkm.reply_timeout = SimDuration::from_millis(500);
    let config = MigrationConfig::builder()
        .assisted(true)
        .coord(CoordPolicy {
            degrade_on_stragglers: true,
            ..CoordPolicy::default()
        })
        .faults(FaultPlan {
            seed: 7,
            evtchn: LaneFaults {
                drop: 1.0,
                ..LaneFaults::NONE
            },
            ..FaultPlan::none()
        })
        .build()
        .expect("valid config");
    let outcome = run_scenario_recorded(
        &Scenario::quick(
            vm,
            config,
            SimDuration::from_secs(10),
            SimDuration::from_secs(5),
        ),
        Recorder::new(),
    )
    .expect("scenario failed");
    RunDigest::from_report(
        DigestMeta {
            name: "mpeg-degraded-beginack".to_string(),
            workload: "mpeg".to_string(),
            assisted: true,
            seed: 31,
        },
        &outcome.report,
    )
    .to_json()
}

#[test]
fn digest_is_byte_identical_across_runs_and_locked_to_goldens() {
    let a = digest_json(1.0);
    let b = digest_json(1.0);
    assert_eq!(a, b, "same seed + same config must digest identically");

    // Headline numbers pinned to the precopy_equivalence goldens.
    assert!(a.contains("\"total_bytes\": 1108190808"));
    assert!(a.contains("\"total_duration_ns\": 10454990877"));
    assert!(a.contains("\"cpu_time_ns\": 1473473878"));
    assert!(a.contains("\"iterations\": 5"));
    // Scan accounting: every examined page carries the 250 ns default cost.
    assert!(a.contains("\"pages_scanned\": 1018288"));
    assert!(a.contains("\"scan_cpu_ns\": 254572000"));
    assert!(a.contains("\"pages_per_cpu_sec\": 4000000"));
    // A healthy assisted run produces no findings.
    assert!(a.contains("\"findings\": [\n  ]"));

    let report = compare(&a, &b).expect("compare parses its own output");
    assert!(
        !report.has_regression(),
        "identical digests must gate clean"
    );
}

#[test]
fn degraded_digest_is_deterministic_and_names_its_fault() {
    let a = degraded_digest_json();
    let b = degraded_digest_json();
    assert_eq!(a, b, "faulty runs must digest identically too");
    assert!(a.contains("\"kind\": \"degraded_vanilla\""));
    assert!(a.contains("\"fault\": \"begin_ack_timeout\""));
    assert!(a.contains("\"rule\": \"degraded_vanilla\""));
}

#[test]
fn seeded_scan_slowdown_trips_exactly_the_scan_gate() {
    let base = digest_json(1.0);
    let slow = digest_json(1.25);
    let report = compare(&base, &slow).expect("digests parse");
    assert!(report.has_regression());
    assert_eq!(
        report.regressions(),
        vec!["scan.pages_per_cpu_sec"],
        "only the scan-throughput gate may trip: {}",
        report.render()
    );
    // The slowdown is CPU-accounting only: simulated time is untouched.
    let duration = |r: &str| {
        r.lines()
            .find(|l| l.contains("total_duration_ns"))
            .map(str::to_string)
    };
    assert_eq!(duration(&base), duration(&slow));
}
