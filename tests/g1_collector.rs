//! JAVMM with the G1-like region-based collector (§6: porting to
//! collectors with non-contiguous Young generation VA ranges).

use javmm::orchestrator::{run_scenario, Scenario, ScenarioOutcome};
use javmm::vm::{Collector, JavaVmConfig};
use migrate::config::MigrationConfig;
use simkit::units::MIB;
use simkit::SimDuration;
use workloads::catalog;

fn migrate(collector: Collector, assisted: bool, seed: u64) -> ScenarioOutcome {
    let mut vm = JavaVmConfig::paper(catalog::derby(), assisted, seed);
    vm.collector = collector;
    vm.young_max = Some(512 * MIB);
    let migration = if assisted {
        MigrationConfig::javmm_default()
    } else {
        MigrationConfig::xen_default()
    };
    run_scenario(&Scenario::quick(
        vm,
        migration,
        SimDuration::from_secs(25),
        SimDuration::from_secs(10),
    ))
    .expect("scenario failed")
}

const G1: Collector = Collector::G1 {
    region_bytes: 4 * MIB,
};

#[test]
fn g1_vm_migrates_correctly_both_ways() {
    for assisted in [false, true] {
        let out = migrate(G1, assisted, 1);
        assert!(
            out.report.verification.is_correct(),
            "assisted={assisted}: {:?}",
            out.report.verification
        );
        if assisted {
            assert!(out.report.pages_skipped_transfer() > 0);
            assert_eq!(out.report.stragglers, 0);
        }
    }
}

#[test]
fn javmm_benefit_matches_parallel_gc() {
    // The framework speaks in sets of VA ranges, so the region-based Young
    // generation skips just as well as the contiguous one.
    let g1_xen = migrate(G1, false, 1);
    let g1_javmm = migrate(G1, true, 1);
    let par_javmm = migrate(Collector::Parallel, true, 1);

    assert!(
        g1_javmm.report.total_bytes < g1_xen.report.total_bytes / 2,
        "G1 JAVMM {} vs G1 Xen {}",
        g1_javmm.report.total_bytes,
        g1_xen.report.total_bytes
    );
    // Within 2x of the ParallelGC result on traffic (the heap dynamics
    // differ slightly, the benefit magnitude must not).
    let ratio = g1_javmm.report.total_bytes as f64 / par_javmm.report.total_bytes as f64;
    assert!((0.5..2.0).contains(&ratio), "traffic ratio {ratio}");
}

#[test]
fn g1_reports_many_skip_over_ranges() {
    // The first bitmap update must have covered a region-granular set of
    // ranges: with 512 MiB of 4 MiB regions, far more than the three ranges
    // ParallelGC reports.
    let out = migrate(G1, true, 2);
    let lkm = out.report.lkm.as_ref().expect("assisted run");
    // ~128 regions × 1024 pages each were cleared in the first update.
    assert!(
        lkm.first_update_pages > 50_000,
        "first update cleared only {} pages",
        lkm.first_update_pages
    );
    assert!(out.report.verification.is_correct());
    // Survivor regions (must-send) were re-marked for transfer.
    assert!(lkm.final_set_pages > 0);
}

#[test]
fn g1_migration_is_deterministic() {
    let a = migrate(G1, true, 5);
    let b = migrate(G1, true, 5);
    assert_eq!(a.report.total_bytes, b.report.total_bytes);
    assert_eq!(a.report.total_duration, b.report.total_duration);
}
