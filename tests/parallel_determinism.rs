//! The multi-core scan pipeline's determinism contract, end to end.
//!
//! `tests/precopy_equivalence.rs` locks the engine to its per-bit goldens;
//! this file locks the *worker-count independence* on top: the digest a
//! migration produces — totals, downtime decomposition, histograms and
//! every telemetry counter, including the per-worker scan-ledger merges —
//! must be byte-for-byte identical whether the dirty-bitmap scan runs
//! inline or sharded across any pool size. Same for a pooled fleet drain.
//!
//! Why this holds (the short form of DESIGN.md §13): classification is a
//! pure function of bitmaps frozen within each scan quantum, shards
//! partition the word index space, the merge reads shard results back in
//! word order on the engine thread, and all state mutation stays serial.
//! Workers only ever change *who* computes a word class, never what it is
//! or the order it is consumed in.

use cluster::{roster, run_fleet, FleetPolicy};
use javmm::orchestrator::{run_scenario_recorded, Scenario};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use migrate::digest::{DigestMeta, RunDigest};
use simkit::telemetry::Recorder;
use simkit::SimDuration;
use workloads::catalog;

/// Runs one recorded quick scenario and renders its digest JSON.
fn digest_with_workers(workload: &str, assisted: bool, seed: u64, scan_workers: usize) -> String {
    let spec = match workload {
        "derby" => catalog::derby(),
        "crypto" => catalog::crypto(),
        other => panic!("unknown workload {other}"),
    };
    let mut migration = if assisted {
        MigrationConfig::javmm_default()
    } else {
        MigrationConfig::xen_default()
    };
    migration.scan_workers = scan_workers;
    let outcome = run_scenario_recorded(
        &Scenario::quick(
            JavaVmConfig::paper(spec, assisted, seed),
            migration,
            SimDuration::from_secs(20),
            SimDuration::from_secs(5),
        ),
        Recorder::new(),
    )
    .expect("scenario failed");
    RunDigest::from_report(
        DigestMeta {
            name: format!("{workload}-w{scan_workers}"),
            workload: workload.to_string(),
            assisted,
            seed,
        },
        &outcome.report,
    )
    .to_json()
}

/// The tentpole acceptance: the full digest — bytes, iterations, downtime
/// split, histograms, and the scan-ledger counters that are literally
/// merged from per-worker cells — is identical at every pool size.
#[test]
fn run_digest_is_byte_identical_at_any_worker_count() {
    for (workload, assisted, seed) in [("derby", true, 3u64), ("crypto", false, 9u64)] {
        let serial = digest_with_workers(workload, assisted, seed, 1);
        for workers in [2usize, 3, 8] {
            let pooled = digest_with_workers(workload, assisted, seed, workers);
            // The digest name embeds the worker count; strip it so the
            // comparison covers everything that must not depend on it.
            let serial_body = serial.replace(&format!("{workload}-w1"), "X");
            let pooled_body = pooled.replace(&format!("{workload}-w{workers}"), "X");
            assert_eq!(
                pooled_body, serial_body,
                "{workload} digest diverged at {workers} scan workers"
            );
        }
    }
}

/// The pooled digest still carries the scan-ledger counters (they are
/// merged across workers, not dropped), and they are non-zero: the
/// equality above is not vacuous.
#[test]
fn pooled_digest_reports_merged_scan_counters() {
    let pooled = digest_with_workers("derby", true, 3, 4);
    for counter in ["engine/scan_chunks", "engine/scan_words_classified"] {
        let needle = format!("\"{counter}\"");
        assert!(
            pooled.contains(&needle),
            "digest must carry the merged counter {counter}"
        );
        let value = pooled
            .split(&needle)
            .nth(1)
            .map(|rest| rest.trim_start_matches([':', ' ']))
            .and_then(|v| {
                let digits: String = v.chars().take_while(char::is_ascii_digit).collect();
                digits.parse::<u64>().ok()
            })
            .unwrap_or_else(|| panic!("counter {counter} must be numeric"));
        assert!(value > 0, "merged counter {counter} must be non-zero");
    }
}

/// A whole fleet drain with per-VM pooled scanning matches the serial
/// drain byte for byte — the host-level `scan_workers` override changes
/// wall-clock only, never the document.
#[test]
fn pooled_fleet_drain_matches_serial_digest() {
    for policy in [FleetPolicy::Fifo, FleetPolicy::CycleAware] {
        let serial = run_fleet(&roster::drain4(7), policy)
            .expect("drain failed")
            .digest
            .to_json();
        let pooled = run_fleet(&roster::drain4(7).scan_workers(4), policy)
            .expect("drain failed")
            .digest
            .to_json();
        assert_eq!(
            pooled,
            serial,
            "{} drain digest diverged under pooled scanning",
            policy.name()
        );
    }
}
