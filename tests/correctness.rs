//! Migration correctness across the whole workload catalog.
//!
//! Every page the protocol promises to transfer must hold the source's
//! final content version at the destination; the only excusable staleness
//! is declared garbage (skip-over areas) and free frames. This must hold
//! for every workload, assisted or not.

use javmm::orchestrator::{run_scenario, Scenario};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use simkit::SimDuration;
use workloads::catalog;

fn check(name: &str, assisted: bool, seed: u64) {
    let spec = catalog::by_name(name).expect("workload exists");
    let vm = JavaVmConfig::paper(spec, assisted, seed);
    let migration = if assisted {
        MigrationConfig::javmm_default()
    } else {
        MigrationConfig::xen_default()
    };
    let out = run_scenario(&Scenario::quick(
        vm,
        migration,
        SimDuration::from_secs(15),
        SimDuration::from_secs(5),
    ))
    .expect("scenario failed");
    let v = &out.report.verification;
    assert_eq!(v.mismatched, 0, "{name} assisted={assisted}: {v:?}");
    if assisted {
        assert!(
            v.excused_skipped > 0,
            "{name}: assisted migration should actually skip pages"
        );
        assert_eq!(out.report.stragglers, 0, "{name}: TI agent must not lag");
    } else {
        assert_eq!(
            out.report.pages_skipped_transfer(),
            0,
            "{name}: vanilla migration must not consult a transfer bitmap"
        );
    }
}

#[test]
fn all_workloads_migrate_correctly_with_javmm() {
    for w in catalog::all() {
        check(w.name, true, 1);
    }
}

#[test]
fn all_workloads_migrate_correctly_with_xen() {
    for w in catalog::all() {
        check(w.name, false, 1);
    }
}

#[test]
fn correctness_holds_across_seeds() {
    for seed in [2, 3, 4] {
        check("derby", true, seed);
        check("scimark", true, seed);
    }
}

#[test]
fn traffic_breakdown_reflects_skipping() {
    use javmm::orchestrator::{run_scenario, Scenario};
    use javmm::vm::JavaVmConfig;
    use vmem::PageClass;

    let run = |assisted: bool| {
        let vm = JavaVmConfig::paper(catalog::by_name("derby").unwrap(), assisted, 1);
        let migration = if assisted {
            MigrationConfig::javmm_default()
        } else {
            MigrationConfig::xen_default()
        };
        run_scenario(&Scenario::quick(
            vm,
            migration,
            SimDuration::from_secs(20),
            SimDuration::from_secs(5),
        ))
        .expect("scenario failed")
    };
    let xen = run(false);
    let javmm = run(true);

    // The breakdown accounts for every byte.
    assert_eq!(xen.report.traffic_by_class.total(), xen.report.total_bytes);
    assert_eq!(
        javmm.report.traffic_by_class.total(),
        javmm.report.total_bytes
    );

    // Vanilla migration's traffic is dominated by Young-generation garbage;
    // JAVMM's Young traffic collapses to (at most) the first-sweep residue
    // while Old-generation traffic stays comparable.
    let xen_young = xen.report.traffic_by_class.get(PageClass::HeapYoung);
    let javmm_young = javmm.report.traffic_by_class.get(PageClass::HeapYoung);
    assert!(
        javmm_young < xen_young / 10,
        "young traffic: JAVMM {javmm_young} vs Xen {xen_young}"
    );
    let xen_old = xen.report.traffic_by_class.get(PageClass::HeapOld);
    let javmm_old = javmm.report.traffic_by_class.get(PageClass::HeapOld);
    assert!(
        javmm_old > xen_old / 4,
        "old traffic should not collapse: {javmm_old} vs {xen_old}"
    );
    // Largest class for Xen is the Young generation.
    let (top_class, _) = xen.report.traffic_by_class.sorted()[0];
    assert_eq!(top_class, PageClass::HeapYoung);
}

#[test]
fn jvm_language_runtimes_leverage_javmm_as_is() {
    // §6: Jython and JRuby run on the JVM and use its collectors, so the
    // unmodified TI agent covers them.
    for name in ["jython", "jruby"] {
        let spec = catalog::by_name(name).expect("JVM-language workload");
        let xen_vm = JavaVmConfig::paper(spec.clone(), false, 1);
        let javmm_vm = JavaVmConfig::paper(spec, true, 1);
        let xen = run_scenario(&Scenario::quick(
            xen_vm,
            MigrationConfig::xen_default(),
            SimDuration::from_secs(20),
            SimDuration::from_secs(5),
        ))
        .expect("scenario failed");
        let javmm = run_scenario(&Scenario::quick(
            javmm_vm,
            MigrationConfig::javmm_default(),
            SimDuration::from_secs(20),
            SimDuration::from_secs(5),
        ))
        .expect("scenario failed");
        assert!(xen.report.verification.is_correct());
        assert!(javmm.report.verification.is_correct());
        assert!(
            javmm.report.total_bytes < xen.report.total_bytes / 3,
            "{name}: {} vs {}",
            javmm.report.total_bytes,
            xen.report.total_bytes
        );
    }
}
