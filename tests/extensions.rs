//! The §6 extensions, end-to-end: selective compression, the alternative
//! final-update strategy, and the adaptive policy.

use javmm::orchestrator::{run_scenario, Scenario, ScenarioOutcome};
use javmm::vm::JavaVmConfig;
use migrate::config::{CompressionPolicy, MigrationConfig};
use migrate::policy::{choose_strategy, Strategy, WorkloadProbe};
use netsim::CompressionMethod;
use simkit::units::Bandwidth;
use simkit::SimDuration;
use workloads::catalog;

fn run(config: MigrationConfig, vm: JavaVmConfig) -> ScenarioOutcome {
    run_scenario(&Scenario::quick(
        vm,
        config,
        SimDuration::from_secs(20),
        SimDuration::from_secs(5),
    ))
    .expect("scenario failed")
}

#[test]
fn compression_orders_traffic_and_stays_correct() {
    let traffic = |policy: CompressionPolicy| {
        let mut config = MigrationConfig::javmm_default();
        config.compression = policy;
        let out = run(config, JavaVmConfig::paper(catalog::derby(), true, 1));
        assert!(out.report.verification.is_correct(), "{policy:?}");
        (out.report.total_bytes, out.report.cpu_time)
    };
    let (raw, cpu_raw) = traffic(CompressionPolicy::Off);
    let (fast, _) = traffic(CompressionPolicy::Uniform(CompressionMethod::Fast));
    let (strong, cpu_strong) = traffic(CompressionPolicy::Uniform(CompressionMethod::Strong));
    let (per_class, _) = traffic(CompressionPolicy::PerClass);

    assert!(fast < raw, "fast {fast} vs raw {raw}");
    assert!(strong < fast, "strong {strong} vs fast {fast}");
    assert!(per_class < raw);
    assert!(per_class >= strong, "per-class mixes fast and strong");
    assert!(cpu_strong > cpu_raw, "compression must cost CPU");
}

#[test]
fn rewalk_final_update_is_correct_but_slower() {
    let run_strategy = |rewalk: bool| {
        let mut vm = JavaVmConfig::paper(catalog::derby(), true, 1);
        vm.lkm.rewalk_final_update = rewalk;
        let mut config = MigrationConfig::javmm_default();
        config.last_iter_considers_all_dirtied = rewalk;
        run(config, vm)
    };
    let incremental = run_strategy(false);
    let rewalk = run_strategy(true);

    assert!(incremental.report.verification.is_correct());
    assert!(rewalk.report.verification.is_correct());

    // The incremental strategy finishes the final update within the
    // paper's 300us; the rewalk walks every skip-over page again, which is
    // orders of magnitude slower (the reason the paper deferred it).
    let inc_us = incremental.report.downtime.final_update.as_micros();
    let re_us = rewalk.report.downtime.final_update.as_micros();
    assert!(inc_us < 300, "incremental final update {inc_us}us");
    assert!(
        re_us > inc_us * 20,
        "rewalk should dwarf incremental: {re_us}us vs {inc_us}us"
    );
    // Both still skip the Young generation.
    assert!(rewalk.report.pages_skipped_transfer() > 0);
}

#[test]
fn adaptive_policy_separates_categories() {
    let probe =
        |w: &workloads::spec::WorkloadSpec, young: u64, survivors: u64, gc_ms: u64| WorkloadProbe {
            vm_bytes: 2 << 30,
            young_committed: young,
            alloc_rate: w.alloc_rate,
            other_dirty_rate: w.old_write_rate + 2.5e6,
            other_ws_bytes: w.old_ws_bytes + (8 << 20),
            expected_survivors: survivors,
            minor_gc_duration: SimDuration::from_millis(gc_ms),
            bandwidth: Bandwidth::gigabit_ethernet(),
            resume_time: SimDuration::from_millis(170),
        };
    let derby = choose_strategy(&probe(&catalog::derby(), 1 << 30, 10 << 20, 900));
    assert_eq!(derby.strategy, Strategy::Javmm);
    let scimark = choose_strategy(&probe(&catalog::scimark(), 128 << 20, 20 << 20, 600));
    assert_eq!(scimark.strategy, Strategy::Precopy);
    // The decision's estimates should roughly bracket reality: derby's
    // pre-copy downtime estimate must exceed its JAVMM estimate by a lot.
    assert!(derby.precopy_downtime > derby.javmm_downtime * 3);
}

#[test]
fn compression_composes_with_skipping() {
    // Skipping removes the Young generation; compression shrinks the rest.
    let mut config = MigrationConfig::javmm_default();
    config.compression = CompressionPolicy::PerClass;
    let compressed = run(config, JavaVmConfig::paper(catalog::xml(), true, 2));
    let plain = run(
        MigrationConfig::javmm_default(),
        JavaVmConfig::paper(catalog::xml(), true, 2),
    );
    assert!(compressed.report.verification.is_correct());
    assert!(
        compressed.report.total_bytes < plain.report.total_bytes * 3 / 4,
        "{} vs {}",
        compressed.report.total_bytes,
        plain.report.total_bytes
    );
    // Both still skipped the 1.5 GiB Young generation.
    assert!(compressed.report.pages_skipped_transfer() > 200_000);
}
