//! The event-driven evacuation core: adapter byte-identity against the
//! committed stepped-scheduler digests, whole-evacuation determinism,
//! placement behaviour over the topology, and the event queue's tie
//! order.

use cluster::{
    evacuate, roster, run_fleet, CoreFault, EvacuationPlan, EventQueue, FleetPolicy, PipeFault,
    PipeSel, PlacementPolicy, VmId,
};
use proptest::prelude::*;
use simkit::{SimDuration, SimTime};

/// A two-rack plan small enough for debug-mode CI: two `drain4` hosts
/// (tenants renamed fleet-unique) onto the standard destination pool.
fn small_plan(placement: PlacementPolicy) -> EvacuationPlan {
    let mut h0 = roster::drain4(7);
    h0.name = "rack-a".to_string();
    let mut h1 = roster::drain4(11);
    h1.name = "rack-b".to_string();
    for t in h1.tenants.iter_mut() {
        t.name = format!("{}-b", t.name);
    }
    EvacuationPlan::new("small", vec![h0, h1])
        .destinations(roster::evacuate_destinations())
        .core(roster::evacuate_core())
        .placement(placement)
}

/// The tentpole contract: `run_fleet` is now a thin adapter over the
/// event-driven evacuation core, and under the degenerate one-host,
/// no-destination plan it must reproduce the committed stepped-scheduler
/// digest *byte for byte* — same admissions, same interleaving, same
/// telemetry fold, same JSON.
#[test]
fn event_driven_drain_matches_committed_stepped_digest() {
    let committed = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/DIGEST_fleet_drain12_cycle.json"
    ))
    .expect("committed drain12 digest");
    let out = run_fleet(&roster::drain12(7), FleetPolicy::CycleAware).expect("drain12 failed");
    assert_eq!(
        out.digest.to_json(),
        committed,
        "event-driven drain diverged from the committed stepped baseline"
    );
}

#[test]
fn evacuation_is_deterministic() {
    let plan = small_plan(PlacementPolicy::SlaAware);
    let a = evacuate(&plan, FleetPolicy::CycleAware).expect("evacuation failed");
    let b = evacuate(&plan, FleetPolicy::CycleAware).expect("evacuation failed");
    assert_eq!(a.eviction_ns, b.eviction_ns);
    assert_eq!(a.hosts.len(), b.hosts.len());
    for (x, y) in a.hosts.iter().zip(&b.hosts) {
        assert_eq!(x.to_json(), y.to_json(), "host digest bytes diverged");
    }
    assert_eq!(a.placements.len(), b.placements.len());
    for (x, y) in a.placements.iter().zip(&b.placements) {
        assert_eq!((x.source, x.slot, x.dest), (y.source, y.slot, y.dest));
        assert_eq!(x.dest_name, y.dest_name);
    }
}

#[test]
fn every_vm_is_placed_within_slot_capacity() {
    let plan = small_plan(PlacementPolicy::Random(7));
    let out = evacuate(&plan, FleetPolicy::Fifo).expect("evacuation failed");
    assert_eq!(out.placements.len(), plan.population());
    let mut counts = vec![0u32; plan.destinations.len()];
    for p in &out.placements {
        let d = p.dest.expect("a plan with destinations places every VM");
        assert_eq!(
            plan.destinations[d].name,
            *p.dest_name
                .as_ref()
                .expect("placed VM has a destination name")
        );
        counts[d] += 1;
    }
    for (d, spec) in plan.destinations.iter().enumerate() {
        assert!(
            counts[d] <= spec.slots,
            "{} placed {} VMs into {} slots",
            spec.name,
            counts[d],
            spec.slots
        );
    }
    // Per-host digests still fold every tenant.
    let folded: usize = out.hosts.iter().map(|h| h.vms.len()).sum();
    assert_eq!(folded, plan.population());
}

/// Funnelling the whole fleet through the 40 MB/s WAN ingress (the
/// placement-disabled drill) must cost strictly more eviction time than
/// letting the SLA-aware policy spread over the LAN racks.
#[test]
fn pinning_the_fleet_through_one_ingress_is_strictly_worse() {
    let sla = evacuate(&small_plan(PlacementPolicy::SlaAware), FleetPolicy::Fifo)
        .expect("evacuation failed");
    let pinned = evacuate(&small_plan(PlacementPolicy::Pinned(0)), FleetPolicy::Fifo)
        .expect("evacuation failed");
    assert!(
        pinned.eviction_ns > sla.eviction_ns,
        "pinned {} ns should exceed sla {} ns",
        pinned.eviction_ns,
        sla.eviction_ns
    );
    assert!(pinned.sla_total.total() > sla.sla_total.total());
}

#[test]
fn invalid_plans_are_rejected_up_front() {
    use migrate::error::{ConfigError, MigrateError};
    // No sources at all.
    let empty = EvacuationPlan::new("empty", vec![]);
    assert_eq!(
        evacuate(&empty, FleetPolicy::Fifo).unwrap_err(),
        MigrateError::Config(ConfigError::EmptyRoster)
    );
    // Destination pool smaller than the evacuating population.
    let starved =
        small_plan(PlacementPolicy::Greedy).destinations(vec![cluster::DestSpec::new("tiny", 3)]);
    assert_eq!(
        evacuate(&starved, FleetPolicy::Fifo).unwrap_err(),
        MigrateError::Config(ConfigError::InsufficientDestinationCapacity)
    );
}

/// Mission control is observability, not control: a fault-free drain
/// yields zero watchdog findings and re-running it leaves the host
/// digests byte-identical, while a mid-drain core degrade surfaces as a
/// `pipe_saturation` finding that names the core pipe and links back to
/// a causal wakeup event.
#[test]
fn watchdog_flags_a_mid_drain_core_degrade() {
    let clean = evacuate(
        &small_plan(PlacementPolicy::SlaAware),
        FleetPolicy::CycleAware,
    )
    .expect("fault-free evacuation");
    assert!(
        clean.mission.findings.is_empty(),
        "fault-free drain must yield zero findings, got {:?}",
        clean.mission.findings
    );

    let faulted_plan = small_plan(PlacementPolicy::SlaAware).core_fault(CoreFault {
        after: SimDuration::from_secs(4),
        factor: 0.1,
    });
    let faulted = evacuate(&faulted_plan, FleetPolicy::CycleAware).expect("faulted evacuation");
    let finding = faulted
        .mission
        .findings
        .iter()
        .find(|f| f.rule == "pipe_saturation")
        .unwrap_or_else(|| {
            panic!(
                "core degrade must trip pipe_saturation, got {:?}",
                faulted.mission.findings
            )
        });
    assert_eq!(
        finding.subject, "core",
        "the finding names the degraded pipe"
    );
    let causal = faulted
        .mission
        .causal
        .events()
        .iter()
        .find(|e| e.id == finding.causal)
        .expect("the finding's causal id resolves in the flow trace");
    assert!(matches!(causal.kind, simkit::telemetry::CausalKind::Wakeup));

    // The faulted drain's digests stay deterministic too.
    let again = evacuate(&faulted_plan, FleetPolicy::CycleAware).expect("faulted evacuation");
    for (x, y) in faulted.hosts.iter().zip(&again.hosts) {
        assert_eq!(x.to_json(), y.to_json(), "faulted digest bytes diverged");
    }
}

/// The generalised fault schedule reaches every pipe of the fabric, not
/// just the core: a seeded degrade of a source NIC surfaces as a
/// `pipe_saturation` finding naming that host's egress pipe, the causal
/// fault event carries the generic `pipe_degrade` tag with the pipe
/// selector label, and a fault naming a pipe the fabric does not have is
/// consumed without a trace.
#[test]
fn pipe_fault_schedule_degrades_a_source_nic() {
    let faulted_plan = small_plan(PlacementPolicy::SlaAware).pipe_fault(PipeFault {
        pipe: PipeSel::Egress(0),
        after: SimDuration::from_secs(4),
        factor: 0.1,
    });
    let faulted = evacuate(&faulted_plan, FleetPolicy::CycleAware).expect("faulted evacuation");
    let finding = faulted
        .mission
        .findings
        .iter()
        .find(|f| f.rule == "pipe_saturation")
        .unwrap_or_else(|| {
            panic!(
                "NIC degrade must trip pipe_saturation, got {:?}",
                faulted.mission.findings
            )
        });
    assert_eq!(
        finding.subject, "rack-a",
        "the finding names the degraded egress pipe"
    );
    let fault_event = faulted
        .mission
        .causal
        .events()
        .iter()
        .find(|e| matches!(e.kind, simkit::telemetry::CausalKind::Fault))
        .expect("the seeded degrade leaves a causal fault event");
    assert_eq!(fault_event.subject, "rack-a");
    assert!(
        fault_event
            .detail
            .iter()
            .any(|(k, v)| *k == "fault" && v == "pipe_degrade"),
        "non-core degrades carry the generic tag, got {:?}",
        fault_event.detail
    );
    assert!(
        fault_event
            .detail
            .iter()
            .any(|(k, v)| *k == "pipe" && v == "egress0"),
        "the fault event records the pipe selector, got {:?}",
        fault_event.detail
    );

    // A fault against a pipe this fabric does not have is inert: the run
    // matches the fault-free drain byte for byte.
    let clean = evacuate(
        &small_plan(PlacementPolicy::SlaAware),
        FleetPolicy::CycleAware,
    )
    .expect("fault-free evacuation");
    let inert_plan = small_plan(PlacementPolicy::SlaAware).pipe_fault(PipeFault {
        pipe: PipeSel::Ingress(99),
        after: SimDuration::from_secs(4),
        factor: 0.1,
    });
    let inert = evacuate(&inert_plan, FleetPolicy::CycleAware).expect("inert-faulted evacuation");
    assert_eq!(inert.mission.findings.len(), clean.mission.findings.len());
    for (x, y) in inert.hosts.iter().zip(&clean.hosts) {
        assert_eq!(x.to_json(), y.to_json(), "inert fault perturbed the drain");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The scheduler's heap never reorders ties: popping yields entries
    /// sorted by `(SimTime, VmId)` with equal times resolved in host-major,
    /// then slot order — exactly the laggard scan's tie-break. Times are
    /// drawn from a tiny range so collisions are the norm, not the edge
    /// case.
    fn event_queue_pops_in_time_then_vmid_order(
        entries in prop::collection::vec((0u64..8, 0u32..4, 0u32..4), 1..64),
    ) {
        let mut queue = EventQueue::new();
        let mut expect: Vec<(SimTime, VmId)> = entries
            .iter()
            .map(|&(t, host, slot)| {
                (SimTime::ZERO + SimDuration::from_nanos(t), VmId { host, slot })
            })
            .collect();
        for &(at, vm) in &expect {
            queue.push(at, vm);
        }
        expect.sort();
        prop_assert_eq!(queue.len(), expect.len());
        let mut popped = Vec::with_capacity(expect.len());
        while let Some(e) = queue.pop() {
            popped.push(e);
        }
        prop_assert!(queue.is_empty());
        prop_assert_eq!(popped, expect);
    }

    /// Interleaving pushes and pops preserves the invariant the drain
    /// relies on: every pop returns the minimum of everything currently
    /// queued.
    fn event_queue_pop_is_always_the_current_minimum(
        ops in prop::collection::vec((any::<bool>(), 0u64..8, 0u32..4, 0u32..4), 1..64),
    ) {
        let mut queue = EventQueue::new();
        let mut model: Vec<(SimTime, VmId)> = Vec::new();
        for (push, t, host, slot) in ops {
            if push {
                let e = (SimTime::ZERO + SimDuration::from_nanos(t), VmId { host, slot });
                queue.push(e.0, e.1);
                model.push(e);
            } else {
                model.sort();
                let want = if model.is_empty() { None } else { Some(model.remove(0)) };
                prop_assert_eq!(queue.pop(), want);
            }
        }
    }
}
