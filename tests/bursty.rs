//! Time-varying (phased) workloads: migration outcomes depend on which
//! phase pre-copy races, while JAVMM stays insensitive — it skips the Young
//! generation whether or not a storm is in progress.

use javmm::vm::{JavaVm, JavaVmConfig};
use jheap::mutator::{MutatorProfile, Phase, PhasedMutator};
use migrate::config::MigrationConfig;
use migrate::precopy::PrecopyEngine;
use migrate::report::MigrationReport;
use simkit::units::MIB;
use simkit::{SimClock, SimDuration};
use workloads::catalog;

fn quiet_profile() -> MutatorProfile {
    MutatorProfile {
        alloc_rate: 5e6,
        old_write_rate: 1e6,
        old_ws_bytes: 16 * MIB,
        ops_per_sec: 10.0,
        eden_survival: 0.02,
        from_survival: 0.05,
        safepoint_max: SimDuration::from_millis(50),
    }
}

fn storm_profile() -> MutatorProfile {
    MutatorProfile {
        alloc_rate: 300e6,
        ..quiet_profile()
    }
}

/// Launches a derby-configured VM whose mutator alternates two phases of
/// `phase_secs` each, starting with the storm when `storm_first`.
fn bursty_vm(assisted: bool, phase_secs: u64, storm_first: bool) -> JavaVm {
    let mut config = JavaVmConfig::paper(catalog::derby(), assisted, 1);
    config.young_max = Some(512 * MIB);
    let (a, b) = if storm_first {
        (storm_profile(), quiet_profile())
    } else {
        (quiet_profile(), storm_profile())
    };
    let mutator = PhasedMutator::new(
        "bursty",
        vec![
            Phase {
                duration: SimDuration::from_secs(phase_secs),
                profile: a,
            },
            Phase {
                duration: SimDuration::from_secs(phase_secs),
                profile: b,
            },
        ],
    );
    JavaVm::launch_with_mutator(config, Box::new(mutator))
}

fn migrate(vm: &mut JavaVm, assisted: bool) -> MigrationReport {
    let mut clock = SimClock::new();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(25),
        SimDuration::from_millis(2),
    );
    let config = if assisted {
        MigrationConfig::javmm_default()
    } else {
        MigrationConfig::xen_default()
    };
    PrecopyEngine::new(config)
        .migrate(vm, &mut clock)
        .expect("migration failed")
}

#[test]
fn phased_guest_migrates_correctly() {
    for assisted in [false, true] {
        let mut vm = bursty_vm(assisted, 10, false);
        let report = migrate(&mut vm, assisted);
        assert!(
            report.verification.is_correct(),
            "assisted={assisted}: {:?}",
            report.verification
        );
    }
}

#[test]
fn storm_phase_hurts_precopy_much_more_than_javmm() {
    // A long storm phase means vanilla pre-copy races 300 MB/s of garbage.
    let mut storm_xen = bursty_vm(false, 120, true);
    let xen = migrate(&mut storm_xen, false);
    let mut storm_javmm = bursty_vm(true, 120, true);
    let javmm = migrate(&mut storm_javmm, true);
    assert!(
        javmm.total_duration.as_secs_f64() < xen.total_duration.as_secs_f64() * 0.5,
        "JAVMM {} vs Xen {}",
        javmm.total_duration,
        xen.total_duration
    );
    assert!(javmm.total_bytes < xen.total_bytes / 2);
}

#[test]
fn quiet_phase_lets_precopy_converge() {
    // Migrating entirely within a long quiet phase: pre-copy converges and
    // the storm never materializes during migration.
    let mut vm = bursty_vm(false, 600, false);
    let report = migrate(&mut vm, false);
    assert!(report.verification.is_correct());
    assert!(
        report.downtime.vm_downtime() < SimDuration::from_millis(600),
        "quiet-phase migration should converge, downtime {}",
        report.downtime.vm_downtime()
    );
    assert!(
        report.total_bytes < 3 * (2u64 << 30) / 2,
        "little retransmission"
    );
}
