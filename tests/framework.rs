//! Framework-level behaviour: multiple assisting applications, cache
//! skip-over, stragglers, and repeated migrations of the same VM.

use guestos::app::GuestApp;
use guestos::kernel::GuestKernel;
use guestos::netlink::NetlinkSocket;
use guestos::process::Pid;
use javmm::vm::{JavaVm, JavaVmConfig};
use migrate::config::MigrationConfig;
use migrate::precopy::PrecopyEngine;
use migrate::vmhost::MigratableVm;
use simkit::units::MIB;
use simkit::{DetRng, SimClock, SimDuration, SimTime};
use vmem::{PageClass, VaRange, Vaddr, PAGE_SIZE};
use workloads::cacheapp::{CacheApp, CacheAppConfig};
use workloads::catalog;

fn small_vm(assisted: bool, seed: u64) -> JavaVm {
    let mut config = JavaVmConfig::paper(catalog::mpeg(), assisted, seed);
    config.young_max = Some(256 * MIB);
    JavaVm::launch(config)
}

#[test]
fn jvm_plus_cache_app_both_skip() {
    let mut vm = small_vm(true, 1);
    let cache = CacheApp::launch(
        vm.kernel_handle(),
        CacheAppConfig {
            cache_bytes: 256 * MIB,
            skip_fraction: 0.5,
            write_rate: 10e6,
            ..CacheAppConfig::default()
        },
        true,
        DetRng::new(2),
    );
    vm.add_app(Box::new(cache));

    let mut clock = SimClock::new();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(20),
        SimDuration::from_millis(2),
    );
    let report = PrecopyEngine::new(MigrationConfig::javmm_default())
        .migrate(&mut vm, &mut clock)
        .expect("migration failed");

    assert!(
        report.verification.is_correct(),
        "{:?}",
        report.verification
    );
    assert_eq!(report.stragglers, 0);
    // At least the Young generation (~256 MiB committed) AND the cache tail
    // (128 MiB) were skipped.
    let skipped_bytes = report.verification.excused_skipped * PAGE_SIZE;
    assert!(
        skipped_bytes > 200 * MIB,
        "skipped only {skipped_bytes} bytes"
    );
}

/// An application that subscribes to assist but never answers — the §6
/// non-cooperative case the straggler timeout exists for.
struct DeadbeatApp {
    pid: Pid,
    sock: NetlinkSocket,
    region: VaRange,
    replied_once: bool,
}

impl DeadbeatApp {
    fn launch(kernel: &mut GuestKernel) -> Self {
        let pid = kernel.spawn("deadbeat");
        let region = kernel
            .alloc_map(pid, Vaddr(0x7d00_0000_0000), 4096, PageClass::Anon)
            .expect("fits");
        kernel.write_range(pid, region, PageClass::Anon);
        let sock = kernel.subscribe_netlink(pid);
        Self {
            pid,
            sock,
            region,
            replied_once: false,
        }
    }
}

impl GuestApp for DeadbeatApp {
    fn pid(&self) -> Pid {
        self.pid
    }

    fn advance(&mut self, now: SimTime, _dt: SimDuration, _kernel: &mut GuestKernel) {
        for msg in self.sock.recv(now) {
            // Reports a skip-over area once, then goes silent: never
            // answers PrepareSuspension.
            if let guestos::coord::CoordPayload::QuerySkipOver = msg.payload {
                if !self.replied_once {
                    self.replied_once = true;
                    self.sock.send(
                        now,
                        guestos::coord::CoordPayload::SkipOverAreas(vec![self.region]),
                    );
                }
            }
        }
    }

    fn ops_completed(&self) -> u64 {
        0
    }
}

#[test]
fn straggler_app_is_unskipped_and_migration_stays_correct() {
    // Shorten the LKM deadline so the test stays fast.
    let mut config = JavaVmConfig::paper(catalog::mpeg(), true, 3);
    config.young_max = Some(256 * MIB);
    config.lkm.reply_timeout = SimDuration::from_millis(500);
    let mut vm = JavaVm::launch(config);
    let deadbeat = DeadbeatApp::launch(vm.kernel_handle());
    let dead_region = deadbeat.region;
    let dead_pid = deadbeat.pid;
    vm.add_app(Box::new(deadbeat));

    let mut clock = SimClock::new();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(15),
        SimDuration::from_millis(2),
    );
    let report = PrecopyEngine::new(MigrationConfig::javmm_default())
        .migrate(&mut vm, &mut clock)
        .expect("migration failed");

    assert_eq!(report.stragglers, 1, "the deadbeat must be timed out");
    assert!(
        report.verification.is_correct(),
        "{:?}",
        report.verification
    );
    // The deadbeat's memory was forcibly un-skipped: its pages must be
    // transferable at pause time.
    let pfn = vm
        .kernel()
        .translate(dead_pid, dead_region.start())
        .unwrap();
    assert!(vm.kernel().lkm().unwrap().should_transfer(pfn));
}

#[test]
fn same_vm_can_be_migrated_twice() {
    // After VmResumed the LKM re-initializes; a second migration of the
    // same guest must work and stay correct.
    let mut vm = small_vm(true, 5);
    let mut clock = SimClock::new();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(15),
        SimDuration::from_millis(2),
    );

    let engine = PrecopyEngine::new(MigrationConfig::javmm_default());
    let first = engine
        .migrate(&mut vm, &mut clock)
        .expect("migration failed");
    assert!(first.verification.is_correct());

    // Keep running (the resume notification must drain and release the
    // safepoint hold), then migrate again.
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(15),
        SimDuration::from_millis(2),
    );
    assert!(!vm.jvm().is_held(), "threads released after resume");
    let second = engine
        .migrate(&mut vm, &mut clock)
        .expect("migration failed");
    assert!(
        second.verification.is_correct(),
        "{:?}",
        second.verification
    );
    assert!(
        second.pages_skipped_transfer() > 0,
        "assistance worked again"
    );
}

#[test]
fn unassisted_jvm_in_assisted_engine_times_out_gracefully() {
    // The LKM is loaded but the JVM has no TI agent: nobody ever replies.
    // With no registered skip-over areas the LKM proceeds immediately.
    let mut vm = small_vm(false, 7);
    let mut clock = SimClock::new();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(10),
        SimDuration::from_millis(2),
    );
    let report = PrecopyEngine::new(MigrationConfig::javmm_default())
        .migrate(&mut vm, &mut clock)
        .expect("migration failed");
    assert!(report.verification.is_correct());
    assert_eq!(report.pages_skipped_transfer(), 0);
    assert_eq!(report.stragglers, 0);
}

#[test]
fn two_jvms_in_one_guest_both_assist() {
    use guestos::kernel::GuestOsConfig;
    use jheap::jvm::JvmProcess;
    use simkit::units::GIB;
    use simkit::DetRng;
    use workloads::spec::WorkloadSpec;

    // A 3 GiB guest hosting two JVMs (§6 "support large and multiple
    // applications"): a derby-like service and a crypto-like one, each with
    // its own TI agent and Young generation.
    let mut config = JavaVmConfig::paper(catalog::derby(), true, 11);
    config.os = GuestOsConfig::sized(3 * GIB);
    config.young_max = Some(512 * MIB);
    let mut vm = JavaVm::launch(config);

    let second_spec: WorkloadSpec = catalog::crypto();
    let second = JvmProcess::launch(
        vm.kernel_handle(),
        second_spec.jvm_config(512 * MIB),
        second_spec.mutator(),
        true,
        DetRng::new(12),
    );
    vm.add_app(Box::new(second));

    let mut clock = SimClock::new();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(25),
        SimDuration::from_millis(2),
    );
    let report = PrecopyEngine::new(MigrationConfig::javmm_default())
        .migrate(&mut vm, &mut clock)
        .expect("migration failed");

    assert!(
        report.verification.is_correct(),
        "{:?}",
        report.verification
    );
    assert_eq!(report.stragglers, 0, "both agents must cooperate");
    // Both Young generations (2 x 512 MiB committed) were skipped: far more
    // than one JVM could account for.
    let skipped = report.verification.excused_skipped * PAGE_SIZE;
    assert!(
        skipped > 700 * MIB,
        "only {skipped} bytes skipped — did both JVMs assist?"
    );
    // Both JVMs registered their (512 MiB) Young generations.
    let lkm = report.lkm.as_ref().expect("assisted");
    assert_eq!(
        lkm.first_update_pages,
        2 * 512 * MIB / PAGE_SIZE,
        "both Young generations must be skip-marked"
    );
}
