//! The external throughput analyzer.
//!
//! The paper runs, alongside each workload, "a custom analyzer that sends
//! out the number of operations completed by the workload once every
//! second", observed from *outside* the VM with a time source unaffected by
//! VM suspension (§5.1). [`Analyzer`] reproduces that probe: it samples a
//! monotone operation counter on a fixed grid of simulation time; while the
//! VM is suspended the counter cannot advance, so the suspension shows up
//! as empty buckets — exactly the throughput gap of Figure 11.

use simkit::stats::TimeSeries;
use simkit::{SimDuration, SimTime};

/// Samples a monotone ops counter into per-interval throughput buckets.
#[derive(Debug, Clone)]
pub struct Analyzer {
    series: TimeSeries,
    last_ops: u64,
}

impl Analyzer {
    /// Creates an analyzer with a 1-second sampling grid.
    pub fn new() -> Self {
        Self::with_interval(SimDuration::from_secs(1))
    }

    /// Creates an analyzer with a custom grid.
    pub fn with_interval(interval: SimDuration) -> Self {
        Self {
            series: TimeSeries::new(interval),
            last_ops: 0,
        }
    }

    /// Records progress: `total_ops` is the workload's cumulative counter.
    ///
    /// Call as often as convenient (every simulation quantum); deltas are
    /// attributed to the bucket containing `now`.
    pub fn observe(&mut self, now: SimTime, total_ops: u64) {
        let delta = total_ops.saturating_sub(self.last_ops);
        self.last_ops = total_ops;
        if delta > 0 {
            self.series.record(now, delta as f64);
        } else {
            self.series.extend_to(now);
        }
    }

    /// Ensures trailing zero buckets exist up to `now`.
    pub fn finish(&mut self, now: SimTime) {
        self.series.extend_to(now);
    }

    /// Returns `(second, ops_in_that_second)` points.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.series.points()
    }

    /// Mean throughput over `[from, to)` seconds, in ops/second.
    pub fn mean_between(&self, from: f64, to: f64) -> f64 {
        let pts: Vec<f64> = self
            .points()
            .into_iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| v)
            .collect();
        if pts.is_empty() {
            0.0
        } else {
            pts.iter().sum::<f64>() / pts.len() as f64
        }
    }

    /// The longest run of consecutive zero-throughput seconds within
    /// `[from, to)` — the workload-visible downtime of Figure 11.
    pub fn longest_gap_secs(&self, from: f64, to: f64) -> u64 {
        let mut longest = 0u64;
        let mut current = 0u64;
        for (t, v) in self.points() {
            if t < from || t >= to {
                continue;
            }
            if v == 0.0 {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        longest
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn deltas_land_in_their_seconds() {
        let mut a = Analyzer::new();
        a.observe(t(100), 5);
        a.observe(t(600), 9);
        a.observe(t(1500), 15);
        let pts = a.points();
        assert_eq!(pts[0].1, 9.0);
        assert_eq!(pts[1].1, 6.0);
    }

    #[test]
    fn suspension_creates_a_gap() {
        let mut a = Analyzer::new();
        for s in 0..3u64 {
            a.observe(t(s * 1000 + 500), (s + 1) * 10);
        }
        // 4 seconds of suspension: no observations, then a burst.
        a.observe(t(7500), 40);
        a.finish(t(8000));
        assert_eq!(a.longest_gap_secs(0.0, 9.0), 4);
        assert!(a.mean_between(0.0, 3.0) > 0.0);
    }

    #[test]
    fn mean_between_windows() {
        let mut a = Analyzer::new();
        for s in 0..10u64 {
            a.observe(t(s * 1000 + 500), (s + 1) * 10);
        }
        assert!((a.mean_between(0.0, 10.0) - 10.0).abs() < 1e-9);
        assert_eq!(a.mean_between(20.0, 30.0), 0.0, "empty window");
    }
}
