#![warn(missing_docs)]
//! `workloads` — SPECjvm2008-like workload models and auxiliary apps.
//!
//! The paper's evaluation rests on nine SPECjvm2008 workloads whose heap
//! behaviour spans three categories (§5.3). [`catalog`] provides models of
//! all nine, calibrated to the paper's Tables 2-3 and Figure 5 (allocation
//! rates, survival fractions, Old-generation footprints, GC costs).
//! [`analyzer::Analyzer`] reproduces the external throughput probe of §5.1,
//! and [`cacheapp::CacheApp`] implements the §6 cache-application
//! extension of the framework.

pub mod analyzer;
pub mod cacheapp;
pub mod catalog;
pub mod spec;

pub use analyzer::Analyzer;
pub use cacheapp::{CacheApp, CacheAppConfig};
pub use spec::{Category, WorkloadSpec};
