//! Workload specifications: the heap-usage characteristics of one workload.

use jheap::config::{GcCostModel, JvmConfig};
use jheap::mutator::{MutatorProfile, SteadyMutator};

use simkit::SimDuration;

/// The paper's three workload categories (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// High object allocation rate, mostly short-lived objects; the Young
    /// generation quickly grows to its maximum (derby, compiler, xml,
    /// sunflow).
    HighAllocShortLived,
    /// Medium allocation rate, mostly short-lived objects (serial, crypto,
    /// mpeg, compress).
    MediumAllocShortLived,
    /// Low allocation rate, mostly long-lived objects: small Young, large
    /// Old generation (scimark).
    LowAllocLongLived,
}

impl Category {
    /// Category number as the paper labels them (1-3).
    pub fn number(self) -> u32 {
        match self {
            Category::HighAllocShortLived => 1,
            Category::MediumAllocShortLived => 2,
            Category::LowAllocLongLived => 3,
        }
    }
}

/// A complete workload model.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Workload name (Table 1).
    pub name: &'static str,
    /// Description (Table 1).
    pub description: &'static str,
    /// Heap-usage category.
    pub category: Category,
    /// Eden allocation rate, bytes/second.
    pub alloc_rate: f64,
    /// Fraction of Eden live at a minor GC.
    pub eden_survival: f64,
    /// Fraction of From surviving again (promoted).
    pub from_survival: f64,
    /// Long-lived Old-generation data resident at launch.
    pub old_resident: u64,
    /// Old-generation capacity; exceeding it triggers a full GC.
    pub old_max: u64,
    /// Old-generation working set actively rewritten.
    pub old_ws_bytes: u64,
    /// Old-generation rewrite rate, bytes/second.
    pub old_write_rate: f64,
    /// Operations per second of un-paused execution.
    pub ops_per_sec: f64,
    /// Upper bound on time-to-safepoint for asynchronous GC requests.
    pub safepoint_max: SimDuration,
    /// Default maximum Young generation size for this workload's
    /// experiments.
    pub default_young_max: u64,
    /// Ergonomics: grow the Young generation while GCs are closer together
    /// than this.
    pub grow_below_interval: SimDuration,
    /// Multiplier on GC pause costs (per-workload card/root scanning
    /// differences; compiler's GCs are the longest in Figure 5c).
    pub gc_cost_scale: f64,
}

impl WorkloadSpec {
    /// Builds the JVM configuration for this workload with the given
    /// maximum Young generation size.
    pub fn jvm_config(&self, young_max: u64) -> JvmConfig {
        let base = GcCostModel::default();
        let mut config = JvmConfig::with_young_max(young_max);
        config.old_resident = self.old_resident;
        config.old_max = self.old_max;
        config.grow_below_interval = self.grow_below_interval;
        config.gc_costs = GcCostModel {
            minor_base: base.minor_base,
            scan_cost_per_byte: base.scan_cost_per_byte * self.gc_cost_scale,
            copy_cost_per_byte: base.copy_cost_per_byte * self.gc_cost_scale,
            full_base: base.full_base,
            full_cost_per_byte: base.full_cost_per_byte,
        };
        config
    }

    /// Builds the JVM configuration with this workload's default `-Xmn`.
    pub fn default_jvm_config(&self) -> JvmConfig {
        self.jvm_config(self.default_young_max)
    }

    /// The mutator profile this workload exhibits.
    pub fn profile(&self) -> MutatorProfile {
        MutatorProfile {
            alloc_rate: self.alloc_rate,
            old_write_rate: self.old_write_rate,
            old_ws_bytes: self.old_ws_bytes,
            ops_per_sec: self.ops_per_sec,
            eden_survival: self.eden_survival,
            from_survival: self.from_survival,
            safepoint_max: self.safepoint_max,
        }
    }

    /// Builds a boxed mutator for launching a JVM.
    pub fn mutator(&self) -> Box<SteadyMutator> {
        Box::new(SteadyMutator::new(self.name, self.profile()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::units::MIB;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            description: "test workload",
            category: Category::MediumAllocShortLived,
            alloc_rate: 100e6,
            eden_survival: 0.02,
            from_survival: 0.1,
            old_resident: 32 * MIB,
            old_max: 532 * MIB,
            old_ws_bytes: 16 * MIB,
            old_write_rate: 1e6,
            ops_per_sec: 10.0,
            safepoint_max: SimDuration::from_millis(100),
            default_young_max: 512 * MIB,
            grow_below_interval: SimDuration::from_secs(4),
            gc_cost_scale: 1.5,
        }
    }

    #[test]
    fn jvm_config_applies_scale_and_sizes() {
        let s = spec();
        let c = s.jvm_config(256 * MIB);
        assert_eq!(c.young_max, 256 * MIB);
        assert_eq!(c.old_resident, 32 * MIB);
        let base = GcCostModel::default();
        assert!((c.gc_costs.scan_cost_per_byte - base.scan_cost_per_byte * 1.5).abs() < 1e-15);
    }

    #[test]
    fn profile_mirrors_spec() {
        let s = spec();
        let p = s.profile();
        assert_eq!(p.alloc_rate, 100e6);
        assert_eq!(p.eden_survival, 0.02);
        assert_eq!(p.safepoint_max, SimDuration::from_millis(100));
    }

    #[test]
    fn category_numbers() {
        assert_eq!(Category::HighAllocShortLived.number(), 1);
        assert_eq!(Category::MediumAllocShortLived.number(), 2);
        assert_eq!(Category::LowAllocLongLived.number(), 3);
    }
}
