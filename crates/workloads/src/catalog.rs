//! The SPECjvm2008-like workload catalog (Table 1).
//!
//! Each model is calibrated against the paper's measurements:
//!
//! * **Table 2/3** — observed Young/Old generation sizes at migration time
//!   (via allocation rate × ergonomics growth, resident Old data, and
//!   promotion rate);
//! * **Figure 5** — heap consumption, garbage ratios, and minor-GC
//!   durations;
//! * **§4.2** — Category-1 workloads fill a 1 GiB Young generation every
//!   ~3 seconds; derby's enforced GC takes ~0.9 s; compiler's GCs are the
//!   longest (~1.5 s); scimark keeps mostly long-lived data and rewrites
//!   a large Old-generation working set (the LU factorization matrices).

use crate::spec::{Category, WorkloadSpec};
use simkit::units::MIB;
use simkit::SimDuration;

/// Apache Derby database with business logic.
pub fn derby() -> WorkloadSpec {
    WorkloadSpec {
        name: "derby",
        description: "Apache Derby database with business logic",
        category: Category::HighAllocShortLived,
        alloc_rate: 380e6,
        eden_survival: 0.012,
        from_survival: 0.16,
        old_resident: 40 * MIB,
        old_max: 540 * MIB,
        old_ws_bytes: 30 * MIB,
        old_write_rate: 3e6,
        ops_per_sec: 0.78,
        safepoint_max: SimDuration::from_millis(150),
        default_young_max: 1024 * MIB,
        grow_below_interval: SimDuration::from_secs(4),
        gc_cost_scale: 1.0,
    }
}

/// OpenJDK 7 front-end compiler.
pub fn compiler() -> WorkloadSpec {
    WorkloadSpec {
        name: "compiler",
        description: "OpenJDK 7 front-end compiler",
        category: Category::HighAllocShortLived,
        alloc_rate: 250e6,
        eden_survival: 0.05,
        from_survival: 0.015,
        old_resident: 60 * MIB,
        old_max: 560 * MIB,
        old_ws_bytes: 20 * MIB,
        old_write_rate: 2e6,
        ops_per_sec: 18.0,
        safepoint_max: SimDuration::from_millis(1400),
        default_young_max: 512 * MIB,
        grow_below_interval: SimDuration::from_secs(4),
        gc_cost_scale: 1.4,
    }
}

/// Apply style sheets to XML documents.
pub fn xml() -> WorkloadSpec {
    WorkloadSpec {
        name: "xml",
        description: "Apply style sheets to XML documents",
        category: Category::HighAllocShortLived,
        alloc_rate: 400e6,
        eden_survival: 0.012,
        from_survival: 0.01,
        old_resident: 20 * MIB,
        old_max: 520 * MIB,
        old_ws_bytes: 10 * MIB,
        old_write_rate: 1e6,
        ops_per_sec: 28.0,
        safepoint_max: SimDuration::from_millis(300),
        default_young_max: 1536 * MIB,
        grow_below_interval: SimDuration::from_secs(4),
        gc_cost_scale: 0.9,
    }
}

/// An open-source image rendering system.
pub fn sunflow() -> WorkloadSpec {
    WorkloadSpec {
        name: "sunflow",
        description: "An open-source image rendering system",
        category: Category::HighAllocShortLived,
        alloc_rate: 300e6,
        eden_survival: 0.02,
        from_survival: 0.05,
        old_resident: 40 * MIB,
        old_max: 540 * MIB,
        old_ws_bytes: 20 * MIB,
        old_write_rate: 1.5e6,
        ops_per_sec: 4.2,
        safepoint_max: SimDuration::from_millis(400),
        default_young_max: 1024 * MIB,
        grow_below_interval: SimDuration::from_secs(4),
        gc_cost_scale: 1.0,
    }
}

/// Serialize and deserialize primitives and objects.
pub fn serial() -> WorkloadSpec {
    WorkloadSpec {
        name: "serial",
        description: "Serialize and deserialize primitives and objects",
        category: Category::MediumAllocShortLived,
        alloc_rate: 100e6,
        eden_survival: 0.02,
        from_survival: 0.05,
        old_resident: 45 * MIB,
        old_max: 545 * MIB,
        old_ws_bytes: 20 * MIB,
        old_write_rate: 2e6,
        ops_per_sec: 24.0,
        safepoint_max: SimDuration::from_millis(100),
        default_young_max: 1024 * MIB,
        grow_below_interval: SimDuration::from_secs(3),
        gc_cost_scale: 1.0,
    }
}

/// Sign and verify with cryptographic hashes.
pub fn crypto() -> WorkloadSpec {
    WorkloadSpec {
        name: "crypto",
        description: "Sign and verify with cryptographic hashes",
        category: Category::MediumAllocShortLived,
        alloc_rate: 190e6,
        eden_survival: 0.008,
        from_survival: 0.01,
        old_resident: 12 * MIB,
        old_max: 512 * MIB,
        old_ws_bytes: 8 * MIB,
        old_write_rate: 1e6,
        ops_per_sec: 32.0,
        safepoint_max: SimDuration::from_millis(120),
        default_young_max: 1024 * MIB,
        grow_below_interval: SimDuration::from_millis(1900),
        gc_cost_scale: 1.0,
    }
}

/// Compute the LU factorization of matrices.
pub fn scimark() -> WorkloadSpec {
    WorkloadSpec {
        name: "scimark",
        description: "Compute the LU factorization of matrices",
        category: Category::LowAllocLongLived,
        alloc_rate: 22e6,
        eden_survival: 0.12,
        from_survival: 0.15,
        old_resident: 430 * MIB,
        old_max: 560 * MIB,
        old_ws_bytes: 130 * MIB,
        old_write_rate: 500e6,
        ops_per_sec: 0.33,
        safepoint_max: SimDuration::from_millis(200),
        default_young_max: 1024 * MIB,
        grow_below_interval: SimDuration::from_secs(4),
        // Scimark's minor GCs trace pointer-dense matrix blocks: slow per
        // byte. This is the paper's point that for long-lived data,
        // collection may not beat transmission.
        gc_cost_scale: 4.0,
    }
}

/// MP3 decoding.
pub fn mpeg() -> WorkloadSpec {
    WorkloadSpec {
        name: "mpeg",
        description: "MP3 decoding",
        category: Category::MediumAllocShortLived,
        alloc_rate: 70e6,
        eden_survival: 0.015,
        from_survival: 0.03,
        old_resident: 40 * MIB,
        old_max: 540 * MIB,
        old_ws_bytes: 15 * MIB,
        old_write_rate: 1e6,
        ops_per_sec: 58.0,
        safepoint_max: SimDuration::from_millis(50),
        default_young_max: 1024 * MIB,
        grow_below_interval: SimDuration::from_millis(2500),
        gc_cost_scale: 1.0,
    }
}

/// Compression by a modified Lempel-Ziv method.
pub fn compress() -> WorkloadSpec {
    WorkloadSpec {
        name: "compress",
        description: "Compression by a modified Lempel-Ziv method",
        category: Category::MediumAllocShortLived,
        alloc_rate: 90e6,
        eden_survival: 0.02,
        from_survival: 0.04,
        old_resident: 50 * MIB,
        old_max: 550 * MIB,
        old_ws_bytes: 25 * MIB,
        old_write_rate: 2e6,
        ops_per_sec: 44.0,
        safepoint_max: SimDuration::from_millis(80),
        default_young_max: 1024 * MIB,
        grow_below_interval: SimDuration::from_secs(3),
        gc_cost_scale: 1.0,
    }
}

/// A Jython-like workload (§6: "applications written in other languages
/// that run on JVM and use JVM's garbage collectors... Jython, an
/// implementation of Python... can leverage JAVMM as it is").
///
/// Dynamic-language runtimes box aggressively: very high allocation rates
/// of very short-lived objects — squarely Category 1.
pub fn jython_like() -> WorkloadSpec {
    WorkloadSpec {
        name: "jython",
        description: "Python-on-JVM web request handling (Jython)",
        category: Category::HighAllocShortLived,
        alloc_rate: 320e6,
        eden_survival: 0.015,
        from_survival: 0.05,
        old_resident: 70 * MIB,
        old_max: 570 * MIB,
        old_ws_bytes: 25 * MIB,
        old_write_rate: 2e6,
        ops_per_sec: 850.0,
        safepoint_max: SimDuration::from_millis(60),
        default_young_max: 1024 * MIB,
        grow_below_interval: SimDuration::from_secs(4),
        gc_cost_scale: 1.0,
    }
}

/// A JRuby-like workload (§6; Ruby-on-JVM application serving).
pub fn jruby_like() -> WorkloadSpec {
    WorkloadSpec {
        name: "jruby",
        description: "Ruby-on-JVM application serving (JRuby)",
        category: Category::HighAllocShortLived,
        alloc_rate: 260e6,
        eden_survival: 0.02,
        from_survival: 0.06,
        old_resident: 90 * MIB,
        old_max: 590 * MIB,
        old_ws_bytes: 30 * MIB,
        old_write_rate: 2.5e6,
        ops_per_sec: 620.0,
        safepoint_max: SimDuration::from_millis(80),
        default_young_max: 1024 * MIB,
        grow_below_interval: SimDuration::from_secs(4),
        gc_cost_scale: 1.0,
    }
}

/// All nine workloads in the paper's Table 1 order.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        derby(),
        compiler(),
        xml(),
        sunflow(),
        serial(),
        crypto(),
        scimark(),
        mpeg(),
        compress(),
    ]
}

/// Looks a workload up by name (including the §6 JVM-language workloads
/// `jython` and `jruby`).
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all()
        .into_iter()
        .chain([jython_like(), jruby_like()])
        .find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_nine_unique_workloads() {
        let names: Vec<&str> = all().iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 9);
        let set: std::collections::BTreeSet<&&str> = names.iter().collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn categories_match_the_paper() {
        for w in ["derby", "compiler", "xml", "sunflow"] {
            assert_eq!(by_name(w).unwrap().category.number(), 1, "{w}");
        }
        for w in ["serial", "crypto", "mpeg", "compress"] {
            assert_eq!(by_name(w).unwrap().category.number(), 2, "{w}");
        }
        assert_eq!(by_name("scimark").unwrap().category.number(), 3);
    }

    #[test]
    fn category1_outpaces_gigabit() {
        // Observation 1: Category-1 dirtying beats the link, which is what
        // breaks vanilla pre-copy.
        let gigabit = 117.5e6;
        for w in all() {
            if w.category.number() == 1 {
                assert!(w.alloc_rate > gigabit, "{} too slow", w.name);
            }
        }
    }

    #[test]
    fn survival_fractions_follow_observation_2() {
        // >97% of the Young generation is garbage for everything but
        // scimark (Figure 5b).
        for w in all() {
            if w.name == "scimark" {
                assert!(w.eden_survival > 0.1);
                continue;
            } else {
                assert!(w.eden_survival < 0.06, "{}", w.name);
            }
        }
    }

    #[test]
    fn by_name_misses_gracefully() {
        assert!(by_name("nosuch").is_none());
    }

    #[test]
    fn jvm_language_workloads_are_category1() {
        for w in [jython_like(), jruby_like()] {
            assert_eq!(w.category.number(), 1, "{}", w.name);
            assert!(w.alloc_rate > 117.5e6, "{} must outpace gigabit", w.name);
        }
        assert!(by_name("jython").is_some());
        assert!(by_name("jruby").is_some());
    }
}
