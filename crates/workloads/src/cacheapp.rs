//! A memcached-like caching application (§6 extension).
//!
//! The paper's framework also applies to applications with caching
//! functionality: the application registers part of its caching memory as a
//! skip-over area, effectively shrinking the cache at the destination. When
//! asked to prepare for suspension it purges the least-recently-used
//! entries so the remaining valid data are compact, and after resumption it
//! serves with a colder cache — paying a temporary hit-rate penalty while
//! the purged region refills.

use guestos::app::GuestApp;
use guestos::coord::CoordPayload;
use guestos::kernel::GuestKernel;
use guestos::netlink::NetlinkSocket;
use guestos::process::Pid;
use simkit::{DetRng, SimDuration, SimTime};
use vmem::{PageClass, VaRange, Vaddr, PAGE_SIZE};

/// VA base of the cache region.
const CACHE_BASE: u64 = 0x7e00_0000_0000;

/// Share of churn writes that land in the cold band (when one is
/// configured): the long tail of resident entries that are read-mostly but
/// occasionally updated, re-dirtying an already-transferred page.
const COLD_TOUCH_CHANCE: f64 = 0.1;

/// Configuration of the cache application.
#[derive(Debug, Clone)]
pub struct CacheAppConfig {
    /// Total cache memory.
    pub cache_bytes: u64,
    /// Fraction of the cache (the LRU tail) offered as skip-over area.
    pub skip_fraction: f64,
    /// Cache churn: bytes written per second (inserts and updates).
    pub write_rate: f64,
    /// Request throughput at full cache warmth.
    pub ops_per_sec: f64,
    /// Fraction of throughput lost right after resuming with the purged
    /// region cold.
    pub miss_penalty: f64,
    /// Seconds to refill the purged region to full warmth.
    pub refill_secs: f64,
    /// Fraction of the cache held by the long-tail resident set: entries
    /// that stay live (they must migrate) but are updated only rarely. The
    /// band sits at the head of the region, is reported as a cold region
    /// when the cold assist queries for one, and receives
    /// [`COLD_TOUCH_CHANCE`] of the churn. `0.0` (the default) disables the
    /// band without changing a single rng draw. Clamped so the band never
    /// overlaps the skip-over tail.
    pub cold_fraction: f64,
}

impl Default for CacheAppConfig {
    fn default() -> Self {
        Self {
            cache_bytes: 512 * 1024 * 1024,
            skip_fraction: 0.5,
            write_rate: 20e6,
            ops_per_sec: 10_000.0,
            miss_penalty: 0.3,
            refill_secs: 30.0,
            cold_fraction: 0.0,
        }
    }
}

/// The cache server process.
pub struct CacheApp {
    pid: Pid,
    sock: Option<NetlinkSocket>,
    region: VaRange,
    config: CacheAppConfig,
    rng: DetRng,
    ops: f64,
    write_carry: f64,
    /// Tail purged and considered empty (between prepare and refill).
    purged: bool,
    resumed_at: Option<SimTime>,
}

impl CacheApp {
    /// Launches the cache app, warming the whole cache region.
    ///
    /// # Panics
    ///
    /// Panics if the guest cannot back the cache region.
    pub fn launch(
        kernel: &mut GuestKernel,
        config: CacheAppConfig,
        assisted: bool,
        rng: DetRng,
    ) -> Self {
        let pid = kernel.spawn("cached");
        let pages = config.cache_bytes / PAGE_SIZE;
        let region = kernel
            .alloc_map(pid, Vaddr(CACHE_BASE), pages, PageClass::AppCache)
            .expect("cache region fits in guest memory");
        kernel.write_range(pid, region, PageClass::AppCache);
        let sock = assisted.then(|| kernel.subscribe_netlink(pid));
        Self {
            pid,
            sock,
            region,
            config,
            rng,
            ops: 0.0,
            write_carry: 0.0,
            purged: false,
            resumed_at: None,
        }
    }

    /// The skip-over area: the LRU tail of the cache.
    pub fn tail_range(&self) -> VaRange {
        let keep = ((self.region.len() as f64) * (1.0 - self.config.skip_fraction)) as u64;
        VaRange::new(Vaddr(self.region.start().0 + keep), self.region.end()).align_inward()
    }

    /// Returns `true` once the tail was purged for a migration.
    pub fn is_purged(&self) -> bool {
        self.purged
    }

    /// Pages in the cold band (the long-tail resident set), clamped to the
    /// head so coldness never overlaps the skip-over tail.
    fn cold_pages(&self) -> u64 {
        let total = self.region.page_count();
        let tail_start = self.tail_range().start().vpn() - self.region.start().vpn();
        (((total as f64) * self.config.cold_fraction.clamp(0.0, 1.0)) as u64).min(tail_start)
    }

    /// The cold band: live-but-rarely-updated entries at the head of the
    /// cache. Empty when `cold_fraction` is zero.
    pub fn cold_range(&self) -> VaRange {
        VaRange::from_len(self.region.start(), self.cold_pages() * PAGE_SIZE)
    }

    /// Current warmth factor in `[1 - miss_penalty, 1]`.
    fn warmth(&self, now: SimTime) -> f64 {
        let Some(resumed) = self.resumed_at else {
            return 1.0;
        };
        let since = now.saturating_since(resumed).as_secs_f64();
        let progress = (since / self.config.refill_secs).min(1.0);
        1.0 - self.config.miss_penalty * (1.0 - progress)
    }

    fn handle_messages(&mut self, now: SimTime) {
        let Some(sock) = &self.sock else { return };
        for msg in sock.recv(now) {
            match msg.payload {
                CoordPayload::QuerySkipOver => {
                    // Cache servers register through the /proc entry
                    // (§3.3.2); the LKM treats it like a netlink report.
                    guestos::procfs::write_skip_over(sock, now, &[self.tail_range()])
                        .expect("page-aligned tail range is always valid");
                }
                CoordPayload::PrepareSuspension => {
                    // Purge the LRU tail: the remaining valid entries are
                    // already compact in the head of the region.
                    self.purged = true;
                    sock.send(
                        now,
                        CoordPayload::SuspensionReady {
                            areas: vec![self.tail_range()],
                            must_send: vec![],
                        },
                    );
                }
                CoordPayload::QueryColdRegions => {
                    let cold = self.cold_range();
                    if !cold.is_empty() {
                        sock.send(now, CoordPayload::ColdRegions(vec![cold]));
                    }
                }
                CoordPayload::VmResumed => {
                    self.resumed_at = Some(now);
                }
                _ => {}
            }
        }
    }
}

impl GuestApp for CacheApp {
    fn pid(&self) -> Pid {
        self.pid
    }

    fn advance(&mut self, now: SimTime, dt: SimDuration, kernel: &mut GuestKernel) {
        self.handle_messages(now);
        let warmth = self.warmth(now);

        // Cache churn: updates hit the hot head mostly; inserts refill the
        // tail once it was purged and the VM resumed.
        let bytes = self.config.write_rate * dt.as_secs_f64() + self.write_carry;
        let pages = (bytes / PAGE_SIZE as f64) as u64;
        self.write_carry = bytes - (pages * PAGE_SIZE) as f64;
        let total_pages = self.region.page_count();
        let tail_start_page = self.tail_range().start().vpn() - self.region.start().vpn();
        let cold_pages = self.cold_pages();
        // The `cold_pages > 0` guards short-circuit before touching the rng,
        // so a zero cold fraction consumes exactly the historical draws.
        for _ in 0..pages {
            let page = if self.purged && self.resumed_at.is_none() {
                // Between purge and resume: only the compact head is
                // touched, keeping the tail empty as the paper requires.
                if cold_pages > 0 && self.rng.chance(COLD_TOUCH_CHANCE) {
                    self.rng.below(cold_pages)
                } else {
                    cold_pages + self.rng.below((tail_start_page - cold_pages).max(1))
                }
            } else if cold_pages > 0 && self.rng.chance(COLD_TOUCH_CHANCE) {
                // Long-tail update: re-dirty a resident cold entry.
                self.rng.below(cold_pages)
            } else if self.rng.chance(0.8) {
                cold_pages + self.rng.below((tail_start_page - cold_pages).max(1))
            } else {
                tail_start_page + self.rng.below((total_pages - tail_start_page).max(1))
            };
            let va = Vaddr(self.region.start().0 + page * PAGE_SIZE);
            kernel.write_range(self.pid, VaRange::from_len(va, 1), PageClass::AppCache);
        }

        self.ops += self.config.ops_per_sec * warmth * dt.as_secs_f64();
    }

    fn ops_completed(&self) -> u64 {
        self.ops as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guestos::kernel::GuestOsConfig;
    use simkit::units::MIB;
    use vmem::VmSpec;

    fn boot() -> GuestKernel {
        GuestKernel::boot(
            GuestOsConfig {
                spec: VmSpec::new(1024 * MIB, 2),
                kernel_bytes: 16 * MIB,
                pagecache_bytes: 16 * MIB,
                kernel_dirty_rate: 0.0,
                pagecache_dirty_rate: 0.0,
            },
            DetRng::new(2),
        )
    }

    #[test]
    fn launch_warms_cache() {
        let mut kernel = boot();
        let app = CacheApp::launch(
            &mut kernel,
            CacheAppConfig {
                cache_bytes: 64 * MIB,
                ..CacheAppConfig::default()
            },
            false,
            DetRng::new(3),
        );
        let pfn = kernel.translate(app.pid(), Vaddr(CACHE_BASE)).unwrap();
        assert_eq!(kernel.memory().page(pfn).class, PageClass::AppCache);
        assert_eq!(kernel.memory().page(pfn).version, 1);
    }

    #[test]
    fn tail_is_half_by_default() {
        let mut kernel = boot();
        let app = CacheApp::launch(
            &mut kernel,
            CacheAppConfig {
                cache_bytes: 64 * MIB,
                ..CacheAppConfig::default()
            },
            false,
            DetRng::new(3),
        );
        assert_eq!(app.tail_range().len(), 32 * MIB);
    }

    #[test]
    fn cold_range_defaults_empty_and_clamps_to_head() {
        let mut kernel = boot();
        let app = CacheApp::launch(
            &mut kernel,
            CacheAppConfig {
                cache_bytes: 64 * MIB,
                ..CacheAppConfig::default()
            },
            false,
            DetRng::new(3),
        );
        assert!(app.cold_range().is_empty());

        let mut kernel = boot();
        let app = CacheApp::launch(
            &mut kernel,
            CacheAppConfig {
                cache_bytes: 64 * MIB,
                skip_fraction: 0.5,
                cold_fraction: 0.8,
                ..CacheAppConfig::default()
            },
            false,
            DetRng::new(3),
        );
        // 0.8 of the cache would reach into the skip-over tail; the band is
        // clamped to the 32 MiB head.
        assert_eq!(app.cold_range().len(), 32 * MIB);
        assert_eq!(app.cold_range().start().0, CACHE_BASE);

        let mut kernel = boot();
        let app = CacheApp::launch(
            &mut kernel,
            CacheAppConfig {
                cache_bytes: 64 * MIB,
                skip_fraction: 0.1,
                cold_fraction: 0.25,
                ..CacheAppConfig::default()
            },
            false,
            DetRng::new(3),
        );
        assert_eq!(app.cold_range().len(), 16 * MIB);
    }

    #[test]
    fn warmth_recovers_after_resume() {
        let mut kernel = boot();
        let mut app = CacheApp::launch(
            &mut kernel,
            CacheAppConfig {
                cache_bytes: 64 * MIB,
                write_rate: 0.0,
                miss_penalty: 0.4,
                refill_secs: 10.0,
                ..CacheAppConfig::default()
            },
            false,
            DetRng::new(3),
        );
        app.resumed_at = Some(SimTime::ZERO);
        let cold = app.warmth(SimTime::ZERO);
        assert!((cold - 0.6).abs() < 1e-9);
        let mid = app.warmth(SimTime::ZERO + SimDuration::from_secs(5));
        assert!((mid - 0.8).abs() < 1e-9);
        let warm = app.warmth(SimTime::ZERO + SimDuration::from_secs(20));
        assert!((warm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ops_accumulate_with_dt() {
        let mut kernel = boot();
        let mut app = CacheApp::launch(
            &mut kernel,
            CacheAppConfig {
                cache_bytes: 64 * MIB,
                ops_per_sec: 100.0,
                write_rate: 1e6,
                ..CacheAppConfig::default()
            },
            false,
            DetRng::new(3),
        );
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            app.advance(now, SimDuration::from_millis(10), &mut kernel);
            now += SimDuration::from_millis(10);
        }
        let ops = app.ops_completed();
        assert!((995..=1005).contains(&ops), "ops {ops}");
    }
}
