//! `cargo bench --bench figures` — regenerates every paper table/figure.
//!
//! This is not a timing benchmark: it is the reproduction harness, wired
//! into `cargo bench` so the standard workflow produces the paper's
//! evaluation output. Set JAVMM_BENCH=quick for a fast pass.

use javmm_bench::{ablations, figs, FigOpts};

fn main() {
    let opts = FigOpts::from_env();
    print!("{}", figs::tables::table1());
    print!("{}", figs::fig01::run(&opts));
    print!("{}", figs::fig05::run(&opts));
    print!("{}", figs::fig08::run(&opts));
    print!("{}", figs::fig10::run(&opts));
    print!("{}", figs::fig11::run(&opts));
    print!("{}", figs::fig12::run(&opts));
    print!("{}", ablations::compression(&opts));
    print!("{}", ablations::final_update_strategy(&opts));
    print!("{}", ablations::adaptive_policy(&opts));
    print!("{}", ablations::scaling(&opts));
    print!("{}", ablations::parallel_walks(&opts));
    print!("{}", ablations::checkpointing(&opts));
    print!("{}", ablations::baselines(&opts));
    print!("{}", ablations::g1_collector(&opts));
}
