//! Criterion micro-benchmarks of the hot substrate operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use guestos::frames::FrameAllocator;
use guestos::kernel::{GuestKernel, GuestOsConfig};
use jheap::config::JvmConfig;
use jheap::gc::GcKind;
use jheap::heap::JvmHeap;
use jheap::mutator::MutatorProfile;
use simkit::units::MIB;
use simkit::{DetRng, SimTime};
use vmem::{Bitmap, DirtyLog, PageClass, Pfn, TransferBitmap, VaRange, Vaddr, VmSpec, PAGE_SIZE};

fn bitmap_ops(c: &mut Criterion) {
    let npages = 524_288; // 2 GiB VM.
    c.bench_function("bitmap/set_clear_1k", |b| {
        let mut bm = Bitmap::new(npages);
        b.iter(|| {
            for i in 0..1024u64 {
                bm.set(Pfn(i * 512 % npages));
            }
            for i in 0..1024u64 {
                bm.clear(Pfn(i * 512 % npages));
            }
        });
    });
    c.bench_function("bitmap/iter_set_sparse", |b| {
        let mut bm = Bitmap::new(npages);
        for i in (0..npages).step_by(97) {
            bm.set(Pfn(i));
        }
        b.iter(|| bm.iter_set().count());
    });
    c.bench_function("bitmap/union_2gib", |b| {
        let a = Bitmap::new_all_set(npages);
        let mut target = Bitmap::new(npages);
        b.iter(|| target.union_with(&a));
    });
}

/// The word-granular combinators the pre-copy scan pipeline is built on.
fn bitmap_word_ops(c: &mut Criterion) {
    let npages = 524_288;
    let mut dirty = Bitmap::new(npages);
    for i in (0..npages).step_by(5) {
        dirty.set(Pfn(i));
    }
    let mut transfer = Bitmap::new_all_set(npages);
    for p in npages / 2..3 * npages / 4 {
        transfer.clear(Pfn(p));
    }

    c.bench_function("bitmap/count_and_2gib", |b| {
        b.iter(|| dirty.count_and(&transfer));
    });
    c.bench_function("bitmap/count_and_not_2gib", |b| {
        b.iter(|| dirty.count_and_not(&transfer));
    });
    c.bench_function("bitmap/intersect_with_2gib", |b| {
        b.iter_batched(
            || Bitmap::new_all_set(npages),
            |mut bm| {
                bm.intersect_with(&transfer);
                bm
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("bitmap/invert_2gib", |b| {
        b.iter_batched(
            || transfer.clone(),
            |mut bm| {
                bm.invert();
                bm
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("bitmap/word_scan_classify_2gib", |b| {
        // The engine's per-quantum classification: three word ops + popcounts.
        let snap = Bitmap::new_all_set(npages);
        b.iter(|| {
            let mut sends = 0u64;
            snap.for_each_set_word(|wi, w| {
                let d = dirty.words()[wi];
                let t = transfer.words()[wi];
                sends += u64::from((w & t & !d).count_ones());
            });
            sends
        });
    });
}

fn dirty_log_ops(c: &mut Criterion) {
    c.bench_function("dirty_log/mark_and_clean", |b| {
        let mut log = DirtyLog::new(524_288);
        log.enable();
        b.iter(|| {
            for i in 0..4096u64 {
                log.mark(Pfn(i * 127 % 524_288));
            }
            log.read_and_clear()
        });
    });
}

fn transfer_bitmap_ops(c: &mut Criterion) {
    c.bench_function("transfer_bitmap/clear_young_gen", |b| {
        // Clearing the bits of a 1 GiB Young generation (the first update).
        let pfns: Vec<Pfn> = (0..262_144u64).map(|i| Pfn(i * 2 % 524_288)).collect();
        b.iter_batched(
            || TransferBitmap::new(524_288),
            |mut tb| {
                for &p in &pfns {
                    tb.clear(p);
                }
                tb
            },
            BatchSize::SmallInput,
        );
    });
}

fn frame_allocator_ops(c: &mut Criterion) {
    c.bench_function("frames/alloc_free_64k_pages", |b| {
        b.iter_batched(
            || FrameAllocator::new(0, 262_144),
            |mut fa| {
                let frames = fa.alloc(65_536).expect("fits");
                fa.free(frames);
                fa
            },
            BatchSize::SmallInput,
        );
    });
}

fn guest_write_path(c: &mut Criterion) {
    c.bench_function("guest/write_range_1mib", |b| {
        let mut kernel = GuestKernel::boot(
            GuestOsConfig {
                spec: VmSpec::new(256 * MIB, 2),
                kernel_bytes: 8 * MIB,
                pagecache_bytes: 8 * MIB,
                kernel_dirty_rate: 0.0,
                pagecache_dirty_rate: 0.0,
            },
            DetRng::new(1),
        );
        let pid = kernel.spawn("bench");
        let range = kernel
            .alloc_map(pid, Vaddr(0), 16 * MIB / PAGE_SIZE, PageClass::Anon)
            .expect("fits");
        kernel.memory_mut().dirty_log_mut().enable();
        let chunk = VaRange::new(range.start(), Vaddr(range.start().0 + MIB));
        b.iter(|| kernel.write_range(pid, chunk, PageClass::Anon));
    });
}

fn minor_gc(c: &mut Criterion) {
    c.bench_function("jvm/minor_gc_512mib_young", |b| {
        let mut kernel = GuestKernel::boot(
            GuestOsConfig {
                spec: VmSpec::new(2048 * MIB, 2),
                kernel_bytes: 8 * MIB,
                pagecache_bytes: 8 * MIB,
                kernel_dirty_rate: 0.0,
                pagecache_dirty_rate: 0.0,
            },
            DetRng::new(1),
        );
        let pid = kernel.spawn("java");
        let mut config = JvmConfig::with_young_max(512 * MIB);
        config.young_init = 512 * MIB;
        let mut heap = JvmHeap::launch(&mut kernel, pid, config);
        let mut rng = DetRng::new(2);
        // No promotion: the Old generation must stay flat across the
        // thousands of iterations Criterion runs.
        let profile = MutatorProfile {
            eden_survival: 0.01,
            from_survival: 0.0,
            ..MutatorProfile::quiet()
        };
        let mut now = SimTime::ZERO;
        b.iter(|| {
            let headroom = heap.eden_headroom();
            heap.bump_eden(&mut kernel, headroom);
            now += simkit::SimDuration::from_secs(10);
            heap.perform_minor_gc(&mut kernel, &mut rng, &profile, now, GcKind::Minor)
        });
    });
}

criterion_group!(
    benches,
    bitmap_ops,
    bitmap_word_ops,
    dirty_log_ops,
    transfer_bitmap_ops,
    frame_allocator_ops,
    guest_write_path,
    minor_gc
);
criterion_main!(benches);
