//! The parallel cell runner's determinism contract: fanning scenario
//! cells out to the thread pool must not change a single byte of the
//! rendered figures relative to a serial run.

use javmm_bench::{figs, FigOpts};
use simkit::SimDuration;

/// A deliberately tiny configuration so the double render stays fast.
fn tiny() -> FigOpts {
    let mut opts = FigOpts::quick();
    opts.seeds = 1;
    opts.warmup = SimDuration::from_secs(5);
    opts.tail = SimDuration::from_secs(2);
    opts.profile = SimDuration::from_secs(5);
    opts
}

#[test]
fn fig10_grid_renders_identically_serial_and_parallel() {
    let entries = vec![
        (workloads::catalog::derby(), None),
        (workloads::catalog::crypto(), None),
    ];
    let mut opts = tiny();
    opts.parallel = false;
    let serial = figs::fig10::render_panels("determinism probe", &entries, &opts, "");
    opts.parallel = true;
    let parallel = figs::fig10::render_panels("determinism probe", &entries, &opts, "");
    assert_eq!(serial, parallel, "parallel render diverged from serial");
    assert!(serial.contains("derby"), "render produced real content");
}

#[test]
fn fig05_profiles_render_identically_serial_and_parallel() {
    let mut opts = tiny();
    opts.parallel = false;
    let serial = figs::fig05::run(&opts);
    opts.parallel = true;
    let parallel = figs::fig05::run(&opts);
    assert_eq!(serial, parallel, "parallel profiling diverged from serial");
}

#[test]
fn tracing_forces_serial_execution() {
    let mut opts = tiny();
    opts.trace = Some("/tmp/never-written.json".into());
    assert!(!opts.run_parallel(), "trace output requires ordered runs");
    opts.trace = None;
    assert!(opts.run_parallel());
}
