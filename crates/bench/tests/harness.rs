//! Fast checks of the figure harness (no long simulations).

use javmm_bench::figs::tables::table1;
use javmm_bench::render::{bar, reduction, table};

#[test]
fn table1_lists_the_paper_workloads() {
    let out = table1();
    for name in [
        "derby", "compiler", "xml", "sunflow", "serial", "crypto", "scimark", "mpeg", "compress",
    ] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
    assert!(out.contains("Apache Derby database"));
    assert!(out.contains("Lempel-Ziv"));
}

#[test]
fn render_primitives_compose() {
    let t = table(
        &["a", "b"],
        &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
    );
    assert_eq!(t.lines().count(), 4);
    assert_eq!(bar(2.0, 4.0, 8), "####    ");
    assert_eq!(reduction(100.0, 9.0), "-91%");
}
