//! `javmm-bench` — the figure/table harness of the JAVMM reproduction.
//!
//! Every table and figure of the paper's evaluation has a generator here;
//! each returns its rendered output as a `String` (so tests can assert on
//! content) and is wired both into the `figures` binary and the `figures`
//! bench target. Pass [`opts::FigOpts::quick`] for fast smoke runs or
//! [`opts::FigOpts::full`] for the paper's full methodology (300 s warmup,
//! ≥3 seeds, 90% confidence intervals).

pub mod ablations;
pub mod cold;
pub mod digests;
pub mod evacuate;
pub mod figs;
pub mod fleet;
pub mod opts;
pub mod render;
pub mod runner;

pub use opts::FigOpts;
