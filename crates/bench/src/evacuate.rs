//! `bench evacuate` — placement comparison for multi-host evacuations.
//!
//! Runs the 48-VM, four-rack evacuation fleet (see
//! [`cluster::roster::evacuate48`]) over the contended topology once per
//! placement policy — SLA-cost-aware, greedy headroom, and seeded random
//! — and folds the results into `BENCH_evacuate.json`: per-placement
//! fleet eviction time, aggregate downtime, wire bytes, SLA cost and
//! per-destination placement counts, plus the SLA policy's cost and
//! eviction ratios against random placement (the headline: cost-aware
//! placement must keep tenants that cannot afford the WAN off it).
//! Everything is deterministic — same plan + same seed produce a
//! byte-identical document — and the `--pin-placement` drill pins every
//! VM onto one destination, funnelling the fleet through a single ingress
//! so the `placements.sla.eviction_ns` gate trips.

use cluster::{evacuate, roster, EvacOutcome, EvacuationPlan, FleetPolicy, PlacementPolicy};
use simkit::telemetry::export::{pipes_prometheus_to_string, PipeSeriesView};
use std::fmt::Write as _;

/// The placement policies the benchmark compares, in run (and JSON key)
/// order. Random forks its streams from the plan seed.
pub fn compared_placements(seed: u64) -> [PlacementPolicy; 3] {
    [
        PlacementPolicy::SlaAware,
        PlacementPolicy::Greedy,
        PlacementPolicy::Random(seed),
    ]
}

/// The standard evacuation plan: four 12-VM racks onto the 56-slot
/// destination pool across the contended core.
pub fn evacuate48_plan(seed: u64, placement: PlacementPolicy) -> EvacuationPlan {
    EvacuationPlan::new("evacuate48", roster::evacuate48(seed))
        .destinations(roster::evacuate_destinations())
        .core(roster::evacuate_core())
        .placement(placement)
}

/// One placement policy's evacuation outcome, reduced to the numbers the
/// benchmark compares.
#[derive(Debug, Clone)]
pub struct PlacementRun {
    /// The placement policy the evacuation ran under.
    pub placement: PlacementPolicy,
    /// Fleet-wide eviction time (first drain start to last migration end).
    pub eviction_ns: u64,
    /// Summed workload downtime across every VM.
    pub aggregate_downtime_ns: u64,
    /// Total bytes across every migration.
    pub total_bytes: u64,
    /// Summed SLA cost (downtime + brownout + penalties).
    pub sla_cost: f64,
    /// Migrations that fell back to vanilla pre-copy.
    pub degraded: u64,
    /// Migrations stopped by the iteration cap instead of convergence.
    pub nonconverged: u64,
    /// VMs placed per destination, in destination-pool order.
    pub dest_counts: Vec<(String, u64)>,
}

/// Reduces one evacuation outcome against its plan.
pub fn reduce(plan: &EvacuationPlan, out: &EvacOutcome) -> PlacementRun {
    let mut dest_counts: Vec<(String, u64)> = plan
        .destinations
        .iter()
        .map(|d| (d.name.clone(), 0))
        .collect();
    for p in &out.placements {
        if let Some(d) = p.dest {
            dest_counts[d].1 += 1;
        }
    }
    PlacementRun {
        placement: plan.placement,
        eviction_ns: out.eviction_ns,
        aggregate_downtime_ns: out.hosts.iter().map(|h| h.aggregate_downtime_ns).sum(),
        total_bytes: out.hosts.iter().map(|h| h.total_bytes).sum(),
        sla_cost: out.sla_total.total(),
        degraded: out.hosts.iter().map(|h| u64::from(h.degraded)).sum(),
        nonconverged: out.hosts.iter().map(|h| u64::from(h.nonconverged)).sum(),
        dest_counts,
    }
}

/// Runs the evacuation once per placement policy under `policy`
/// (admission order), calling `on_done` after each run.
pub fn run_placements(
    seed: u64,
    policy: FleetPolicy,
    on_done: &mut dyn FnMut(&PlacementRun),
) -> Vec<PlacementRun> {
    run_placements_observed(seed, policy, false, on_done).0
}

/// [`run_placements`], keeping the SLA-aware run's full outcome — its
/// mission-control readout (causal log, pipe timelines, ETA calibration,
/// watchdog findings) feeds the observability artifacts. `freeze_eta`
/// pins that run's ETA to the admission-time projection: the CI drill
/// that must blow the `eta.p90_abs_err` gate. Mission control never
/// touches a recorder, so the placement comparison stays byte-identical
/// either way.
pub fn run_placements_observed(
    seed: u64,
    policy: FleetPolicy,
    freeze_eta: bool,
    on_done: &mut dyn FnMut(&PlacementRun),
) -> (Vec<PlacementRun>, EvacOutcome) {
    let mut observed = None;
    let runs = compared_placements(seed)
        .into_iter()
        .map(|placement| {
            let sla = matches!(placement, PlacementPolicy::SlaAware);
            let mut plan = evacuate48_plan(seed, placement);
            if sla {
                plan = plan.freeze_eta(freeze_eta);
            }
            let out = evacuate(&plan, policy).expect("evacuation failed");
            let run = reduce(&plan, &out);
            on_done(&run);
            if sla {
                observed = Some(out);
            }
            run
        })
        .collect();
    (runs, observed.expect("SLA-aware run always present"))
}

/// Renders the per-placement comparison as an aligned text table.
pub fn render_table(runs: &[PlacementRun]) -> String {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "{:<8} {:>11} {:>16} {:>9} {:>9} {:>9} {:>13}  dest_counts",
        "place",
        "eviction_s",
        "agg_downtime_ms",
        "total_MB",
        "sla_cost",
        "degraded",
        "nonconverged"
    );
    for run in runs {
        let counts = run
            .dest_counts
            .iter()
            .map(|(n, c)| format!("{n}={c}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            o,
            "{:<8} {:>11.2} {:>16.1} {:>9.1} {:>9.2} {:>9} {:>13}  {counts}",
            run.placement.name(),
            run.eviction_ns as f64 / 1e9,
            run.aggregate_downtime_ns as f64 / 1e6,
            run.total_bytes as f64 / 1e6,
            run.sla_cost,
            run.degraded,
            run.nonconverged,
        );
    }
    o
}

fn write_placement(o: &mut String, key: &str, run: &PlacementRun, last: bool) {
    let _ = writeln!(o, "    \"{key}\": {{");
    let _ = writeln!(o, "      \"placement\": \"{}\",", run.placement.name());
    let _ = writeln!(o, "      \"eviction_ns\": {},", run.eviction_ns);
    let _ = writeln!(
        o,
        "      \"aggregate_downtime_ns\": {},",
        run.aggregate_downtime_ns
    );
    let _ = writeln!(o, "      \"total_bytes\": {},", run.total_bytes);
    let _ = writeln!(o, "      \"sla_cost\": {},", run.sla_cost);
    let _ = writeln!(o, "      \"degraded\": {},", run.degraded);
    let _ = writeln!(o, "      \"nonconverged\": {},", run.nonconverged);
    o.push_str("      \"dest_counts\": {");
    for (i, (name, count)) in run.dest_counts.iter().enumerate() {
        let _ = write!(
            o,
            "\"{name}\": {count}{}",
            if i + 1 < run.dest_counts.len() {
                ", "
            } else {
                ""
            }
        );
    }
    o.push_str("}\n");
    o.push_str(if last { "    }\n" } else { "    },\n" });
}

/// Serialises the comparison as the `BENCH_evacuate.json` document.
/// `runs` must be in [`compared_placements`] order (sla, greedy, random);
/// the pin drill passes the same pinned run three times, so the gated
/// `placements.sla.*` metrics describe the crippled evacuation.
pub fn to_json(seed: u64, policy: FleetPolicy, runs: &[PlacementRun]) -> String {
    assert_eq!(runs.len(), 3, "sla, greedy and random runs expected");
    let (sla, random) = (&runs[0], &runs[2]);
    let plan = evacuate48_plan(seed, PlacementPolicy::SlaAware);
    let mut o = String::new();
    o.push_str("{\n");
    o.push_str("  \"schema\": \"javmm-bench-evacuate-v1\",\n");
    let _ = writeln!(o, "  \"plan\": \"{}\",", plan.name);
    let _ = writeln!(o, "  \"seed\": {seed},");
    let _ = writeln!(o, "  \"policy\": \"{}\",", policy.name());
    let _ = writeln!(o, "  \"sources\": {},", plan.sources.len());
    let _ = writeln!(o, "  \"tenants\": {},", plan.population());
    let core = plan.core.as_ref().expect("evacuate48 has a core switch");
    let _ = writeln!(
        o,
        "  \"core_bytes_per_sec\": {},",
        core.bandwidth.bytes_per_sec()
    );
    o.push_str("  \"destinations\": [\n");
    for (i, d) in plan.destinations.iter().enumerate() {
        let _ =
            writeln!(
            o,
            "    {{\"name\": \"{}\", \"slots\": {}, \"ingress_bytes_per_sec\": {}, \"wan\": {}}}{}",
            d.name,
            d.slots,
            d.ingress.bytes_per_sec(),
            d.wan,
            if i + 1 < plan.destinations.len() { "," } else { "" }
        );
    }
    o.push_str("  ],\n");
    o.push_str("  \"placements\": {\n");
    write_placement(&mut o, "sla", &runs[0], false);
    write_placement(&mut o, "greedy", &runs[1], false);
    write_placement(&mut o, "random", &runs[2], true);
    o.push_str("  },\n");
    // The headline ratios: SLA-aware placement against random. Cost below
    // 1.0 is the policy earning its keep; the compare gate watches both.
    o.push_str("  \"sla_vs_random\": {\n");
    let _ = writeln!(
        o,
        "    \"sla_cost_ratio\": {:.4},",
        sla.sla_cost / random.sla_cost
    );
    let _ = writeln!(
        o,
        "    \"eviction_ratio\": {:.4}",
        sla.eviction_ns as f64 / random.eviction_ns as f64
    );
    o.push_str("  }\n");
    o.push_str("}\n");
    o
}

fn json_opt_score(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |s| format!("{s:.4}"))
}

fn json_opt_str(v: Option<&str>) -> String {
    v.map_or_else(
        || "null".to_string(),
        |s| format!("\"{}\"", simkit::telemetry::export::escape_json(s)),
    )
}

/// Serialises the SLA-aware run's mission-control readout as the
/// `BENCH_evacuate_eta.json` companion document (schema
/// `javmm-bench-evacuate-eta-v1`): ETA calibration quality, watchdog
/// findings, per-pipe utilization summaries, and per-VM placement
/// rationale (chosen score vs runner-up). Kept separate from
/// `BENCH_evacuate.json` so that document stays byte-identical; the
/// `eta.p90_abs_err` and `findings.total` gates watch this one.
pub fn eta_to_json(seed: u64, policy: FleetPolicy, frozen: bool, out: &EvacOutcome) -> String {
    let m = &out.mission;
    let mut o = String::new();
    o.push_str("{\n");
    o.push_str("  \"schema\": \"javmm-bench-evacuate-eta-v1\",\n");
    o.push_str("  \"plan\": \"evacuate48\",\n");
    let _ = writeln!(o, "  \"seed\": {seed},");
    let _ = writeln!(o, "  \"policy\": \"{}\",", policy.name());
    let _ = writeln!(o, "  \"frozen\": {frozen},");
    let _ = writeln!(o, "  \"causal_events\": {},", m.causal.len());
    o.push_str("  \"eta\": {\n");
    let _ = writeln!(o, "    \"vms\": {},", m.eta.vms);
    let _ = writeln!(o, "    \"predictions\": {},", m.eta.predictions);
    let _ = writeln!(o, "    \"p50_abs_err\": {:.4},", m.eta.p50_abs_err);
    let _ = writeln!(o, "    \"p90_abs_err\": {:.4},", m.eta.p90_abs_err);
    let _ = writeln!(o, "    \"drift\": {:.4}", m.eta.drift);
    o.push_str("  },\n");
    o.push_str("  \"findings\": {\n");
    let _ = writeln!(o, "    \"total\": {},", m.findings.len());
    o.push_str("    \"rows\": [");
    for (i, f) in m.findings.iter().enumerate() {
        let _ = write!(
            o,
            "\n      {{\"rule\": \"{}\", \"subject\": \"{}\", \"at_ns\": {}, \"causal\": {}, \"detail\": \"{}\"}}{}",
            f.rule,
            simkit::telemetry::export::escape_json(&f.subject),
            f.at_ns,
            f.causal.0,
            simkit::telemetry::export::escape_json(&f.detail),
            if i + 1 < m.findings.len() { "," } else { "\n    " }
        );
    }
    o.push_str("]\n");
    o.push_str("  },\n");
    o.push_str("  \"pipes\": [\n");
    let pipes = m.pipes.pipes();
    for (i, p) in pipes.iter().enumerate() {
        let _ = writeln!(
            o,
            "    {{\"name\": \"{}\", \"samples\": {}, \"utilization_mean\": {:.4}, \"utilization_p95\": {:.4}, \"queued_demand_mean\": {:.0}, \"queued_demand_p95\": {:.0}}}{}",
            simkit::telemetry::export::escape_json(&p.name),
            p.utilization.len(),
            p.utilization.mean(),
            p.utilization.quantile(0.95),
            p.queued_demand.mean(),
            p.queued_demand.quantile(0.95),
            if i + 1 < pipes.len() { "," } else { "" }
        );
    }
    o.push_str("  ],\n");
    o.push_str("  \"placements\": [\n");
    for (i, p) in out.placements.iter().enumerate() {
        let _ = writeln!(
            o,
            "    {{\"vm\": \"{}\", \"dest\": {}, \"chosen_score\": {}, \"runner_up\": {}, \"runner_up_score\": {}}}{}",
            simkit::telemetry::export::escape_json(&p.vm),
            json_opt_str(p.dest_name.as_deref()),
            json_opt_score(p.chosen_score),
            json_opt_str(p.runner_up.as_deref()),
            json_opt_score(p.runner_up_score),
            if i + 1 < out.placements.len() { "," } else { "" }
        );
    }
    o.push_str("  ]\n");
    o.push_str("}\n");
    o
}

/// Renders the SLA-aware run's pipe timelines in Prometheus exposition
/// format (the `javmm_pipe_*` families), one `pipe` label per topology
/// pipe in topology order.
pub fn pipes_to_prometheus(out: &EvacOutcome) -> String {
    let views: Vec<PipeSeriesView<'_>> = out
        .mission
        .pipes
        .pipes()
        .iter()
        .map(|p| PipeSeriesView {
            name: &p.name,
            utilization: &p.utilization,
            queued_demand: &p.queued_demand,
        })
        .collect();
    pipes_prometheus_to_string(&views)
}
