//! Deterministic parallel execution of independent scenario cells.
//!
//! Every data point in the harness is a self-contained co-simulation: it
//! owns its [`simkit::SimClock`], derives all randomness from a fixed seed,
//! and touches no global state. That makes the figure generators
//! embarrassingly parallel — *as long as the merge is deterministic*. The
//! contract here is:
//!
//! * each cell is computed by a pure-ish closure over its input;
//! * cells are claimed from an atomic work queue (so thread scheduling only
//!   affects *who* computes a cell, never *what* it computes);
//! * results are written into a slot table indexed by input position and
//!   read back in input order.
//!
//! Output is therefore byte-identical to a serial run by construction,
//! which `figures --serial` (and the CI smoke job) cross-checks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Returns the worker count a parallel map will use: the machine's
/// available parallelism, or 1 when it cannot be determined.
pub fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on a scoped thread pool, returning results in
/// input order regardless of completion order.
///
/// With `parallel` false (or a single-core machine, or fewer than two
/// items) this degenerates to a plain serial map on the calling thread.
///
/// # Panics
///
/// Panics if `f` panics on any item; the panic is propagated once all
/// workers have stopped.
pub fn par_map<T, R, F>(parallel: bool, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = if parallel { worker_count() } else { 1 };
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("every slot filled by the work queue")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(false, &items, |&x| x * x);
        let parallel = par_map(true, &items, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[7], 49);
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u64> = vec![];
        assert!(par_map(true, &none, |&x| x).is_empty());
        assert_eq!(par_map(true, &[42u64], |&x| x + 1), vec![43]);
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }
}
