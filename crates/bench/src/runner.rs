//! Deterministic parallel execution of independent scenario cells.
//!
//! Every data point in the harness is a self-contained co-simulation: it
//! owns its [`simkit::SimClock`], derives all randomness from a fixed seed,
//! and touches no global state. That makes the figure generators
//! embarrassingly parallel — *as long as the merge is deterministic*. The
//! contract here is:
//!
//! * each cell is computed by a pure-ish closure over its input;
//! * cells are claimed from an atomic work queue (so thread scheduling only
//!   affects *who* computes a cell, never *what* it computes);
//! * results are written into a slot table indexed by input position and
//!   read back in input order.
//!
//! Output is therefore byte-identical to a serial run by construction,
//! which `figures --serial` (and the CI smoke job) cross-checks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The machine's available parallelism, or 1 when it cannot be determined.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// How the harness decided its worker count. The old behaviour — "use
/// whatever `available_parallelism()` says" — silently collapsed every run
/// to one worker on single-core containers and ignored any user intent;
/// the plan makes each input explicit so `BENCH_precopy.json` can report
/// the *effective* count honestly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPlan {
    /// The `JAVMM_BENCH_WORKERS` override, when set to a positive integer.
    pub requested: Option<usize>,
    /// Workers a parallel map will actually spawn.
    pub effective: usize,
    /// Detected hardware parallelism (floor 1).
    pub available: usize,
    /// Where `effective` came from: `"env"`, `"detected"` or
    /// `"serialized"`.
    pub source: &'static str,
    /// The request exceeds the hardware: threads will timeshare, so
    /// wall-clock speedup is capped at `available` even though all
    /// `effective` workers run (outputs are identical regardless).
    pub capped: bool,
    /// `JAVMM_SERIALIZE_POOL` collapsed the plan to one worker (the CI
    /// drill that must fail the parallel-efficiency gate).
    pub serialized: bool,
}

/// Builds the worker plan from the process environment
/// (`JAVMM_BENCH_WORKERS`, `JAVMM_SERIALIZE_POOL`) and the detected
/// hardware, warning on stderr when the request outruns the machine.
pub fn worker_plan() -> WorkerPlan {
    let env = std::env::var("JAVMM_BENCH_WORKERS").ok();
    let serialized = std::env::var("JAVMM_SERIALIZE_POOL")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    let plan = worker_plan_from(env.as_deref(), serialized, available_parallelism());
    if plan.serialized {
        eprintln!("runner: JAVMM_SERIALIZE_POOL forces 1 worker");
    } else if plan.capped {
        eprintln!(
            "runner: JAVMM_BENCH_WORKERS={} exceeds available parallelism {}; \
             all {} workers run but will timeshare",
            plan.effective, plan.available, plan.effective
        );
    }
    plan
}

/// Pure core of [`worker_plan`], split out so tests can exercise every
/// combination without racing on real environment variables. A missing,
/// empty, non-numeric or zero `env` falls back to detection.
pub fn worker_plan_from(env: Option<&str>, serialized: bool, available: usize) -> WorkerPlan {
    let available = available.max(1);
    let requested = env
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0);
    let (effective, source) = if serialized {
        (1, "serialized")
    } else {
        match requested {
            Some(n) => (n, "env"),
            None => (available, "detected"),
        }
    };
    WorkerPlan {
        requested,
        effective,
        available,
        source,
        capped: effective > available,
        serialized,
    }
}

/// Returns the worker count a parallel map will use: the
/// `JAVMM_BENCH_WORKERS` override when set, else the machine's available
/// parallelism (or 1 when it cannot be determined).
pub fn worker_count() -> usize {
    worker_plan().effective
}

/// Splits a total worker budget across the two levels of the harness:
/// cell-level concurrency (independent scenario runs) first, then
/// intra-run scan-pool shards from whatever budget is left per cell.
/// Returns `(cell_workers, shard_workers)`; both are at least 1 and
/// `cell_workers * shard_workers <= max(total, 1)`.
pub fn split_workers(total: usize, cells: usize) -> (usize, usize) {
    let total = total.max(1);
    let cell_workers = total.min(cells.max(1));
    let shard_workers = (total / cell_workers).max(1);
    (cell_workers, shard_workers)
}

/// Maps `f` over `items` on a scoped thread pool, returning results in
/// input order regardless of completion order.
///
/// With `parallel` false (or an effective worker count of one, or fewer
/// than two items) this degenerates to a plain serial map on the calling
/// thread. `JAVMM_BENCH_WORKERS` overrides the worker count — including
/// past the core count, where workers timeshare but output is unchanged.
///
/// # Panics
///
/// Panics if `f` panics on any item; the panic is propagated once all
/// workers have stopped.
pub fn par_map<T, R, F>(parallel: bool, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = if parallel { worker_count() } else { 1 };
    par_map_workers(workers, items, f)
}

/// [`par_map`] with an explicit worker count: the harness's scaling rows
/// use this to run the same cell roster at 1, 2, 4 and 8 workers and
/// assert the outputs byte-identical.
pub fn par_map_workers<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("every slot filled by the work queue")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(false, &items, |&x| x * x);
        let parallel = par_map(true, &items, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[7], 49);
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u64> = vec![];
        assert!(par_map(true, &none, |&x| x).is_empty());
        assert_eq!(par_map(true, &[42u64], |&x| x + 1), vec![43]);
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn explicit_worker_counts_preserve_order() {
        let items: Vec<u64> = (0..50).collect();
        let serial = par_map_workers(1, &items, |&x| x * 3);
        for workers in [2usize, 4, 8, 64] {
            assert_eq!(par_map_workers(workers, &items, |&x| x * 3), serial);
        }
    }

    #[test]
    fn plan_honours_env_override_even_past_the_hardware() {
        let plan = worker_plan_from(Some("8"), false, 2);
        assert_eq!(plan.requested, Some(8));
        assert_eq!(plan.effective, 8);
        assert_eq!(plan.available, 2);
        assert_eq!(plan.source, "env");
        assert!(plan.capped);
        assert!(!plan.serialized);
    }

    #[test]
    fn plan_falls_back_to_detection_on_bad_or_missing_env() {
        for env in [None, Some(""), Some("zero"), Some("0"), Some("-3")] {
            let plan = worker_plan_from(env, false, 4);
            assert_eq!(plan.requested, None, "env {env:?}");
            assert_eq!(plan.effective, 4);
            assert_eq!(plan.source, "detected");
            assert!(!plan.capped);
        }
        // Undetectable hardware still yields a usable plan.
        assert_eq!(worker_plan_from(None, false, 0).effective, 1);
    }

    #[test]
    fn serialize_drill_collapses_any_request() {
        let plan = worker_plan_from(Some("8"), true, 4);
        assert_eq!(plan.effective, 1);
        assert_eq!(plan.source, "serialized");
        assert!(plan.serialized);
        assert!(!plan.capped);
    }

    #[test]
    fn split_workers_covers_both_levels() {
        // Plenty of cells: all budget goes to cell-level concurrency.
        assert_eq!(split_workers(4, 24), (4, 1));
        // Fewer cells than workers: the surplus shards inside each run.
        assert_eq!(split_workers(8, 2), (2, 4));
        assert_eq!(split_workers(7, 2), (2, 3));
        // Degenerate inputs stay sane.
        assert_eq!(split_workers(0, 0), (1, 1));
        assert_eq!(split_workers(1, 100), (1, 1));
    }
}
