//! Plain-text rendering helpers for figures and tables.

/// Renders a horizontal bar of `value` against `max`, `width` chars wide.
///
/// # Examples
///
/// ```
/// use javmm_bench::render::bar;
///
/// assert_eq!(bar(5.0, 10.0, 10), "#####     ");
/// assert_eq!(bar(0.0, 10.0, 4), "    ");
/// ```
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 {
        ((value / max) * width as f64)
            .round()
            .clamp(0.0, width as f64) as usize
    } else {
        0
    };
    format!("{}{}", "#".repeat(filled), " ".repeat(width - filled))
}

/// Renders rows as a fixed-width table with a header and separator.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats bytes as decimal gigabytes, like the paper's traffic axis.
pub fn gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e9)
}

/// Formats bytes as mebibytes.
pub fn mb(bytes: u64) -> String {
    format!("{:.0}", bytes as f64 / (1024.0 * 1024.0))
}

/// Percentage reduction from `base` to `new` (positive = improvement).
pub fn reduction(base: f64, new: f64) -> String {
    if base <= 0.0 {
        return "-".into();
    }
    format!("{:+.0}%", (new - base) / base * 100.0)
}

/// A section heading.
pub fn heading(title: &str) -> String {
    format!("\n==== {title} ====\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(20.0, 10.0, 5), "#####");
        assert_eq!(bar(-1.0, 10.0, 5), "     ");
        assert_eq!(bar(1.0, 0.0, 3), "   ");
    }

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("22"));
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(gb(7_000_000_000), "7.00");
        assert_eq!(mb(1024 * 1024 * 10), "10");
        assert_eq!(reduction(10.0, 2.0), "-80%");
        assert_eq!(reduction(0.0, 2.0), "-");
    }
}
