//! Harness options.

use simkit::SimDuration;

/// How thoroughly to run the figure generators.
#[derive(Debug, Clone)]
pub struct FigOpts {
    /// Independent seeds per data point (the paper repeats ≥3 times).
    pub seeds: u64,
    /// Workload runtime before migration begins.
    pub warmup: SimDuration,
    /// Workload runtime after migration completes.
    pub tail: SimDuration,
    /// Duration of the heap-profiling runs (Figure 5).
    pub profile: SimDuration,
    /// Record each figure migration with the flight recorder and export a
    /// Chrome trace (plus a `.jsonl` flight log) to this path. The file is
    /// rewritten per run — the last migration wins — so pair it with a
    /// single-figure filter (e.g. `figures --quick fig10 --trace t.json`).
    pub trace: Option<String>,
    /// Run independent scenario cells on a thread pool (`figures --serial`
    /// turns this off). Output is byte-identical either way; see
    /// [`crate::runner`] for the determinism contract.
    pub parallel: bool,
    /// Scan-pool workers inside each cell's migration session — the second
    /// level of the cells × shards scheme (see
    /// [`crate::runner::split_workers`]). The sharded scan is bit-identical
    /// to the serial one, so this never changes any figure; it only spends
    /// leftover worker budget when there are fewer cells than workers.
    pub shard_workers: usize,
}

impl FigOpts {
    /// The paper's methodology: 10-minute runs migrated halfway, 3 repeats.
    pub fn full() -> Self {
        Self {
            seeds: 3,
            warmup: SimDuration::from_secs(300),
            tail: SimDuration::from_secs(150),
            profile: SimDuration::from_secs(300),
            trace: None,
            parallel: true,
            shard_workers: 1,
        }
    }

    /// A fast variant for smoke tests and CI.
    pub fn quick() -> Self {
        Self {
            seeds: 2,
            warmup: SimDuration::from_secs(45),
            tail: SimDuration::from_secs(45),
            profile: SimDuration::from_secs(60),
            trace: None,
            parallel: true,
            shard_workers: 1,
        }
    }

    /// Reads `JAVMM_BENCH=quick|full` from the environment (default full).
    pub fn from_env() -> Self {
        match std::env::var("JAVMM_BENCH").as_deref() {
            Ok("quick") => Self::quick(),
            _ => Self::full(),
        }
    }

    /// Whether the figure generators should fan cells out to the thread
    /// pool. Tracing forces serial execution: the flight-recorder files are
    /// rewritten per run and "the last migration wins" only has a meaning
    /// when runs happen in order.
    pub fn run_parallel(&self) -> bool {
        self.parallel && self.trace.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        let q = FigOpts::quick();
        let f = FigOpts::full();
        assert!(q.warmup < f.warmup);
        assert!(q.seeds <= f.seeds);
    }
}
