//! Ablations for the paper's §6 extensions and design choices.
//!
//! Not figures from the paper, but experiments DESIGN.md commits to:
//!
//! * **Selective compression** — compress only the pages that are actually
//!   transferred, with a per-page method choice (the widened transfer map).
//! * **Final-update strategy** — the implemented incremental strategy
//!   (shrink notifications + PFN cache) vs the §3.3.4 alternative that
//!   re-walks the page tables of all skip-over areas at the final update.
//! * **Adaptive policy** — estimate both downtimes per workload and pick a
//!   strategy, reproducing §6's "make the framework intelligent".

use crate::opts::FigOpts;
use crate::render::{gb, heading, table};
use javmm::orchestrator::{run_scenario, Scenario};
use javmm::vm::JavaVmConfig;
use migrate::config::{CompressionPolicy, MigrationConfig};
use migrate::policy::{choose_strategy, Strategy, WorkloadProbe};
use netsim::CompressionMethod;
use simkit::units::Bandwidth;
use simkit::SimDuration;
use workloads::catalog;

/// Compression ablation on the derby VM under vanilla pre-copy.
pub fn compression(opts: &FigOpts) -> String {
    let variants: Vec<(&str, CompressionPolicy)> = vec![
        ("off", CompressionPolicy::Off),
        ("fast", CompressionPolicy::Uniform(CompressionMethod::Fast)),
        (
            "strong",
            CompressionPolicy::Uniform(CompressionMethod::Strong),
        ),
        ("per-class", CompressionPolicy::PerClass),
    ];
    let rows: Vec<Vec<String>> = variants
        .into_iter()
        .map(|(name, policy)| {
            let mut config = MigrationConfig::javmm_default();
            config.compression = policy;
            let vm = JavaVmConfig::paper(catalog::derby(), true, 1);
            let out = run_scenario(&Scenario::quick(vm, config, opts.warmup, opts.tail))
                .expect("scenario failed");
            vec![
                name.to_string(),
                format!("{:.1}", out.report.total_duration.as_secs_f64()),
                gb(out.report.total_bytes),
                format!("{:.1}", out.report.cpu_time.as_secs_f64()),
                format!(
                    "{:.2}",
                    out.report.downtime.workload_downtime().as_secs_f64()
                ),
            ]
        })
        .collect();
    let mut s = heading("Ablation: selective compression of transferred pages (JAVMM, derby)");
    s.push_str(&table(
        &["policy", "time(s)", "traffic(GB)", "cpu(s)", "downtime(s)"],
        &rows,
    ));
    s.push_str(
        "compression trades daemon CPU for traffic; skipping already removed \
         the garbage, so only live/OS pages pay the CPU cost (§6).\n",
    );
    s
}

/// Final-update strategy ablation on the derby VM.
pub fn final_update_strategy(opts: &FigOpts) -> String {
    let rows: Vec<Vec<String>> = [("incremental", false), ("rewalk", true)]
        .into_iter()
        .map(|(name, rewalk)| {
            let mut vm = JavaVmConfig::paper(catalog::derby(), true, 1);
            vm.lkm.rewalk_final_update = rewalk;
            let mut config = MigrationConfig::javmm_default();
            // The rewalk strategy performs no intermediate updates, so the
            // last iteration must consider everything dirtied (§3.3.4).
            config.last_iter_considers_all_dirtied = rewalk;
            let out = run_scenario(&Scenario::quick(vm, config, opts.warmup, opts.tail))
                .expect("scenario failed");
            let lkm = out.report.lkm.as_ref().expect("assisted run has LKM stats");
            vec![
                name.to_string(),
                format!(
                    "{:.0}",
                    out.report.downtime.final_update.as_secs_f64() * 1e6
                ),
                format!("{:.2}", lkm.first_update_duration.as_secs_f64() * 1e3),
                format!(
                    "{:.2}",
                    out.report.downtime.workload_downtime().as_secs_f64()
                ),
                gb(out.report.total_bytes),
                format!("{}", out.report.verification.mismatched),
            ]
        })
        .collect();
    let mut s = heading("Ablation: final transfer-bitmap update strategy (JAVMM, derby)");
    s.push_str(&table(
        &[
            "strategy",
            "final-update(us)",
            "first-update(ms)",
            "downtime(s)",
            "traffic(GB)",
            "mismatches",
        ],
        &rows,
    ));
    s.push_str(
        "re-walking all skip-over areas inflates the final update — performed \
         while the application is paused — which is why the paper deferred \
         that approach (§3.3.4).\n",
    );
    s
}

/// Adaptive strategy choice per §6, driven by observed heap profiles.
pub fn adaptive_policy(opts: &FigOpts) -> String {
    let rows: Vec<Vec<String>> = [catalog::derby(), catalog::crypto(), catalog::scimark()]
        .into_iter()
        .map(|w| {
            let profile = javmm::profiles::profile_heap(&w, w.default_young_max, opts.profile, 1);
            let probe = WorkloadProbe {
                vm_bytes: 2 << 30,
                young_committed: profile.avg_young as u64,
                alloc_rate: w.alloc_rate,
                other_dirty_rate: w.old_write_rate + 2.5e6,
                other_ws_bytes: w.old_ws_bytes + (8 << 20),
                expected_survivors: profile.gc_live as u64,
                minor_gc_duration: profile.gc_duration,
                bandwidth: Bandwidth::gigabit_ethernet(),
                resume_time: SimDuration::from_millis(170),
            };
            let d = choose_strategy(&probe);
            vec![
                w.name.to_string(),
                format!("{:.2}", d.precopy_downtime.as_secs_f64()),
                format!("{:.2}", d.javmm_downtime.as_secs_f64()),
                match d.strategy {
                    Strategy::Javmm => "JAVMM".to_string(),
                    Strategy::Precopy => "pre-copy".to_string(),
                },
            ]
        })
        .collect();
    let mut s = heading("Extension: adaptive strategy selection (§6)");
    s.push_str(&table(
        &[
            "workload",
            "est. Xen downtime(s)",
            "est. JAVMM downtime(s)",
            "choice",
        ],
        &rows,
    ));
    s.push_str(
        "the framework turns JAVMM off for scimark-like workloads, as §6 \
         proposes.\n",
    );
    s
}

/// §6 "Use JAVMM for large VMs with fast networks": scale the VM and the
/// link together and show the benefit persists, plus link sharing when two
/// VMs migrate concurrently.
pub fn scaling(opts: &FigOpts) -> String {
    use guestos::kernel::GuestOsConfig;
    use simkit::units::{GIB, MIB};

    let mut rows = Vec::new();
    for (label, mem, young_max, gbps, share) in [
        ("paper testbed (2G, 1Gb/s)", 2 * GIB, 1024 * MIB, 1.0, 1.0),
        ("large VM (12G, 10Gb/s)", 12 * GIB, 6 * GIB, 10.0, 1.0),
        (
            "large VM, link shared by 2 migrations",
            12 * GIB,
            6 * GIB,
            10.0,
            0.5,
        ),
    ] {
        let mut results = Vec::new();
        for assisted in [false, true] {
            let spec = {
                // Scale derby's appetite with the VM (§6: "VM processing
                // power, application memory footprints and memory-dirtying
                // rates likely increase proportionally"); a beefier host
                // also collects with more GC threads.
                let mut w = catalog::derby();
                let scale = young_max as f64 / (1024.0 * MIB as f64);
                w.alloc_rate *= scale;
                w.old_write_rate *= scale;
                w.default_young_max = young_max;
                w.old_max += young_max / 4;
                if scale > 1.0 {
                    // A beefier host collects with more GC threads.
                    w.gc_cost_scale = 0.25;
                }
                w
            };
            let mut vm = JavaVmConfig::paper(spec, assisted, 1);
            vm.os = GuestOsConfig::sized(mem);
            vm.young_max = Some(young_max);
            let mut config = if assisted {
                MigrationConfig::javmm_default()
            } else {
                MigrationConfig::xen_default()
            };
            config.bandwidth = Bandwidth::from_gbit_per_sec(gbps, 0.94).scaled(share);
            let out = run_scenario(&Scenario::quick(vm, config, opts.warmup, opts.tail))
                .expect("scenario failed");
            assert!(out.report.verification.is_correct());
            results.push(out);
        }
        let (xen, javmm) = (&results[0], &results[1]);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", xen.report.total_duration.as_secs_f64()),
            format!("{:.1}", javmm.report.total_duration.as_secs_f64()),
            gb(xen.report.total_bytes),
            gb(javmm.report.total_bytes),
            format!(
                "{:.2}",
                xen.report.downtime.workload_downtime().as_secs_f64()
            ),
            format!(
                "{:.2}",
                javmm.report.downtime.workload_downtime().as_secs_f64()
            ),
        ]);
    }
    let mut s = heading("Extension: large VMs and fast networks (§6)");
    s.push_str(&table(
        &[
            "configuration",
            "Xen t(s)",
            "JAVMM t(s)",
            "Xen GB",
            "JAVMM GB",
            "Xen down(s)",
            "JAVMM down(s)",
        ],
        &rows,
    ));
    s.push_str(
        "memory footprints and dirtying rates grow with VM size, so the \
         network stays the bottleneck and JAVMM's advantage persists (§6).\n",
    );
    s
}

/// §6 parallel bitmap updates: the rewalk strategy becomes viable once the
/// LKM parallelizes its page-table walks.
pub fn parallel_walks(opts: &FigOpts) -> String {
    let rows: Vec<Vec<String>> = [1u32, 2, 4, 8]
        .into_iter()
        .map(|workers| {
            let mut vm = JavaVmConfig::paper(catalog::derby(), true, 1);
            vm.lkm.rewalk_final_update = true;
            vm.lkm.walk_parallelism = workers;
            let mut config = MigrationConfig::javmm_default();
            config.last_iter_considers_all_dirtied = true;
            let out = run_scenario(&Scenario::quick(vm, config, opts.warmup, opts.tail))
                .expect("scenario failed");
            assert!(out.report.verification.is_correct());
            vec![
                workers.to_string(),
                format!(
                    "{:.0}",
                    out.report.downtime.final_update.as_secs_f64() * 1e6
                ),
                format!(
                    "{:.2}",
                    out.report.downtime.workload_downtime().as_secs_f64()
                ),
            ]
        })
        .collect();
    let mut s = heading("Extension: parallelized final-update walks (§6, rewalk strategy)");
    s.push_str(&table(
        &["workers", "final-update(us)", "downtime(s)"],
        &rows,
    ));
    s.push_str(
        "the paper deferred the rewalk strategy 'while exploring its \
         acceleration by using parallelism' — parallel walks shrink the \
         application-paused final update accordingly.\n",
    );
    s
}

/// RemusDB-style continuous replication (§2 related work, §3.1): checkpoint
/// sizes with and without memory deprotection of skip-over areas.
pub fn checkpointing(opts: &FigOpts) -> String {
    use javmm::vm::JavaVm;
    use migrate::checkpoint::{CheckpointConfig, CheckpointEngine};
    use simkit::SimClock;

    let rows: Vec<Vec<String>> = [("plain", false), ("deprotected", true)]
        .into_iter()
        .map(|(name, assisted)| {
            let mut vm = JavaVm::launch(JavaVmConfig::paper(catalog::derby(), assisted, 1));
            let mut clock = SimClock::new();
            vm.run_for(&mut clock, opts.warmup, SimDuration::from_millis(2));
            let report = CheckpointEngine::new(CheckpointConfig {
                epochs: 50,
                assisted,
                ..CheckpointConfig::default()
            })
            .replicate(&mut vm, &mut clock);
            let waits: SimDuration = report.epochs.iter().map(|e| e.backlog_wait).sum();
            vec![
                name.to_string(),
                format!("{:.1}", report.mean_bytes() / 1e6),
                gb(report.total_bytes),
                format!("{:.1}", report.total_stall.as_secs_f64() * 1e3),
                format!("{:.2}", waits.as_secs_f64()),
            ]
        })
        .collect();
    let mut s = heading("Extension: RemusDB-style checkpoint replication with memory deprotection");
    s.push_str(&table(
        &[
            "mode",
            "ckpt size(MB)",
            "total(GB)",
            "stall(ms, 50 epochs)",
            "throttle(s)",
        ],
        &rows,
    ));
    s.push_str(
        "skip-over areas need no replication either (§3.1): deprotecting the \
         Young generation keeps a derby VM's replication stream within the \
         link instead of throttling the guest.\n",
    );
    s
}

/// Baseline comparison: vanilla pre-copy vs JAVMM vs post-copy (§2's
/// related-work trade-off, measured).
pub fn baselines(opts: &FigOpts) -> String {
    use javmm::vm::JavaVm;
    use migrate::postcopy::{PostcopyConfig, PostcopyEngine};
    use migrate::precopy::PrecopyEngine;
    use simkit::SimClock;

    let mut rows = Vec::new();
    for (name, mode) in [("pre-copy (Xen)", 0u8), ("JAVMM", 1), ("post-copy", 2)] {
        let assisted = mode == 1;
        let mut vm = JavaVm::launch(JavaVmConfig::paper(catalog::derby(), assisted, 1));
        let mut clock = SimClock::new();
        vm.run_for(&mut clock, opts.warmup, SimDuration::from_millis(2));
        let row = match mode {
            2 => {
                let r = PostcopyEngine::new(PostcopyConfig::default()).migrate(&mut vm, &mut clock);
                vec![
                    name.to_string(),
                    format!("{:.1}", r.total_duration.as_secs_f64()),
                    gb(r.total_bytes),
                    format!("{:.2}", r.downtime.as_secs_f64()),
                    format!(
                        "stalled {:.1}s over a {:.1}s window ({} demand fetches)",
                        r.stall_time.as_secs_f64(),
                        r.degradation_window.as_secs_f64(),
                        r.demand_fetches
                    ),
                ]
            }
            _ => {
                let config = if assisted {
                    MigrationConfig::javmm_default()
                } else {
                    MigrationConfig::xen_default()
                };
                let r = PrecopyEngine::new(config)
                    .migrate(&mut vm, &mut clock)
                    .expect("migration failed");
                assert!(r.verification.is_correct());
                vec![
                    name.to_string(),
                    format!("{:.1}", r.total_duration.as_secs_f64()),
                    gb(r.total_bytes),
                    format!("{:.2}", r.downtime.workload_downtime().as_secs_f64()),
                    if assisted {
                        "no post-resume penalty".to_string()
                    } else {
                        "throughput degraded during migration".to_string()
                    },
                ]
            }
        };
        rows.push(row);
    }
    let mut s = heading("Baselines: pre-copy vs JAVMM vs post-copy (derby)");
    s.push_str(&table(
        &[
            "strategy",
            "time(s)",
            "traffic(GB)",
            "downtime(s)",
            "post-resume behaviour",
        ],
        &rows,
    ));
    s.push_str(
        "post-copy minimizes downtime but pays with demand-fetch stalls after \
         resumption (§2); JAVMM gets both low downtime and no penalty by not \
         moving garbage at all.\n",
    );
    s
}

/// §6 collector portability: JAVMM on the region-based (G1-like) collector
/// vs the contiguous ParallelGC-like one.
pub fn g1_collector(opts: &FigOpts) -> String {
    use javmm::vm::Collector;
    use simkit::units::MIB;

    let mut rows = Vec::new();
    for (name, collector) in [
        ("ParallelGC (contiguous)", Collector::Parallel),
        (
            "G1 (4MiB regions)",
            Collector::G1 {
                region_bytes: 4 * MIB,
            },
        ),
    ] {
        for assisted in [false, true] {
            let mut vm = JavaVmConfig::paper(catalog::derby(), assisted, 1);
            vm.collector = collector;
            let config = if assisted {
                MigrationConfig::javmm_default()
            } else {
                MigrationConfig::xen_default()
            };
            let out = run_scenario(&Scenario::quick(vm, config, opts.warmup, opts.tail))
                .expect("scenario failed");
            assert!(out.report.verification.is_correct());
            rows.push(vec![
                format!("{name} / {}", if assisted { "JAVMM" } else { "Xen" }),
                format!("{:.1}", out.report.total_duration.as_secs_f64()),
                gb(out.report.total_bytes),
                format!(
                    "{:.2}",
                    out.report.downtime.workload_downtime().as_secs_f64()
                ),
            ]);
        }
    }
    let mut s = heading("Extension: JAVMM across collectors (§6, derby)");
    s.push_str(&table(
        &[
            "collector / migration",
            "time(s)",
            "traffic(GB)",
            "downtime(s)",
        ],
        &rows,
    ));
    s.push_str(
        "the framework's skip-over areas are sets of VA ranges, so the \
         region-based Young generation (hundreds of non-contiguous ranges) \
         skips exactly like the contiguous one.\n",
    );
    s
}
