//! Calibration tool: migrate one workload with Xen and JAVMM, print the
//! key metrics next to the paper's numbers.
//!
//! Usage: `calibrate [workload] [warmup_secs] [young_max_mb] [mbps] [g1]`

use javmm::orchestrator::{run_scenario, Scenario};
use javmm::vm::{Collector, JavaVmConfig};
use migrate::config::MigrationConfig;
use simkit::units::{fmt_bytes, Bandwidth, MIB};
use workloads::catalog;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("derby");
    let warmup: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);
    let young_max: Option<u64> = args
        .get(3)
        .and_then(|s| s.parse().ok())
        .map(|m: u64| m * MIB);
    let mbps: Option<f64> = args.get(4).and_then(|s| s.parse().ok());
    let g1 = args.iter().any(|a| a == "g1");
    let spec = catalog::by_name(name).expect("unknown workload");

    for (label, assisted, config) in [
        ("Xen  ", false, MigrationConfig::xen_default()),
        ("JAVMM", true, MigrationConfig::javmm_default()),
    ] {
        let mut vmc = JavaVmConfig::paper(spec.clone(), assisted, 1);
        vmc.young_max = young_max;
        if g1 {
            vmc.collector = Collector::G1 {
                region_bytes: 4 * MIB,
            };
        }
        let mut config = config;
        if let Some(mbps) = mbps {
            config.bandwidth = Bandwidth::from_mbytes_per_sec(mbps);
        }
        let mut sc = Scenario::paper(vmc, config);
        sc.warmup = simkit::SimDuration::from_secs(warmup);
        sc.total = sc.warmup + simkit::SimDuration::from_secs(150);
        let t0 = std::time::Instant::now();
        let out = run_scenario(&sc).expect("scenario failed");
        let r = &out.report;
        println!(
            "{label} {name}: young={} old={} | time={} traffic={} iters={} downtime={} (gc={} last={} sp_wait={}) cpu={} mismatch={} ops_before={:.2} ops_after={:.2} [wall {:?}]",
            fmt_bytes(out.observed.young),
            fmt_bytes(out.observed.old),
            r.total_duration,
            fmt_bytes(r.total_bytes),
            r.iteration_count(),
            r.downtime.workload_downtime(),
            r.downtime.enforced_gc,
            r.downtime.last_iteration,
            r.downtime.safepoint_wait,
            r.cpu_time,
            r.verification.mismatched,
            out.mean_ops_before,
            out.mean_ops_after,
            t0.elapsed(),
        );
        for it in &r.iterations {
            let (t, d, s) = it.processed_bytes();
            println!(
                "   it{:>2}: dur={} sent={} skip_dirty={} skip_young={} dirtied={}",
                it.index,
                it.duration,
                fmt_bytes(t),
                fmt_bytes(d),
                fmt_bytes(s),
                it.pages_dirtied_during
            );
        }
    }
}
