//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!   figures [--quick] [--serial] [--out DIR] [--trace FILE] [fig1|fig5|fig8|fig10|fig11|fig12|table1|table2|table3|ablations|all]
//!
//! `--quick` (or JAVMM_BENCH=quick) shortens warmups and uses two seeds.
//! `--serial` disables the parallel cell runner (output is byte-identical
//! either way; `--trace` implies serial).
//! `--out DIR` additionally writes each section to `DIR/<name>.txt`.
//! `--trace FILE` flight-records each figure migration and writes the last
//! run as a Chrome trace (plus a `.jsonl` flight log) to FILE; combine with
//! a single-figure target, e.g. `figures --quick fig10 --trace t.json`.

use javmm_bench::{ablations, figs, FigOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_dir = flag_value("--out");
    let mut opts = if quick {
        FigOpts::quick()
    } else {
        FigOpts::from_env()
    };
    opts.trace = flag_value("--trace");
    if args.iter().any(|a| a == "--serial") {
        opts.parallel = false;
    }
    let targets: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && (*i == 0
                    || !matches!(
                        args.get(i - 1).map(String::as_str),
                        Some("--out") | Some("--trace")
                    ))
        })
        .map(|(_, a)| a.as_str())
        .collect();
    let want =
        |name: &str| targets.is_empty() || targets.contains(&name) || targets.contains(&"all");
    let emit = |name: &str, body: String| {
        print!("{body}");
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create output directory");
            std::fs::write(format!("{dir}/{name}.txt"), body).expect("write section");
        }
    };

    if want("table1") {
        emit("table1", figs::tables::table1());
    }
    if want("fig1") {
        emit("fig1", figs::fig01::run(&opts));
    }
    if want("fig5") {
        emit("fig5", figs::fig05::run(&opts));
    }
    if want("fig8") || want("fig9") {
        emit("fig8-9", figs::fig08::run(&opts));
    }
    if want("fig10") {
        emit("fig10-table2", figs::fig10::run(&opts));
    }
    if want("fig11") {
        emit("fig11", figs::fig11::run(&opts));
    }
    if want("fig12") {
        emit("fig12-table3", figs::fig12::run(&opts));
    }
    if want("table2") && !want("fig10") {
        emit("table2", figs::tables::table2(&opts));
    }
    if want("table3") && !want("fig12") {
        emit("table3", figs::tables::table3(&opts));
    }
    if want("ablations") {
        emit("ablation-compression", ablations::compression(&opts));
        emit(
            "ablation-final-update",
            ablations::final_update_strategy(&opts),
        );
        emit("ablation-policy", ablations::adaptive_policy(&opts));
        emit("ablation-scaling", ablations::scaling(&opts));
        emit("ablation-parallel-walks", ablations::parallel_walks(&opts));
        emit("ablation-checkpointing", ablations::checkpointing(&opts));
        emit("ablation-baselines", ablations::baselines(&opts));
        emit("ablation-g1", ablations::g1_collector(&opts));
    }
}
