//! `bench` — performance evidence for the pre-copy scan pipeline, plus
//! the migration observatory's digest/compare subcommands.
//!
//! Usage:
//!   bench [--scan-only] [--out PATH]
//!   bench digest [--out-dir DIR] [--scan-slowdown FACTOR]
//!   bench compare <old.json> <new.json>
//!   bench fleet [--roster NAME] [--seed N] [--out PATH] [--policy NAME]
//!               [--digest-dir DIR] [--series-cap N]
//!
//! `bench fleet` drains one multi-VM roster (`solo`, `drain4`, `drain12`
//! or `adversarial`; default `drain12`) under every fleet scheduling
//! policy (or just `--policy`) and writes `BENCH_fleet.json` comparing
//! total eviction time, aggregate downtime, wire bytes, SLA cost and
//! workload-observatory detection accuracy per policy, plus the
//! cycle-aware policy's detected-vs-declared eviction ratio. Per-VM rows
//! stream to stderr as migrations complete. `--digest-dir` additionally
//! writes each policy's full fleet digest (for baseline gating via
//! `bench compare`, which dispatches on the digest's schema);
//! `--series-cap` shrinks the observatory's sample ring — capping it
//! below 16 blinds the detector, the seeded regression CI drills. The
//! document is deterministic for a fixed roster + seed.
//!
//! `bench digest` runs the fixed roster of recorded migrations and writes
//! one `DIGEST_<scenario>.json` (plus a `.prom` Prometheus exposition) per
//! scenario into `--out-dir` (default `results`). `--scan-slowdown 1.25`
//! scales the engine's per-page scan CPU cost, seeding a deliberate
//! scan-throughput regression for gate testing. `bench compare` diffs two
//! digests under the built-in per-metric thresholds and exits 1 on
//! regression (naming the metric) or 2 on a parse/schema error.
//!
//! Two measurements, both taken in the same run so they share a machine
//! and a build:
//!
//! 1. **Scan microbenchmark** — classifies the same page sets with the
//!    word-granular pipeline the engine now uses and with a per-bit
//!    reference that replicates the seed engine's scan loop
//!    (`next_set_at` / `clear` / per-PFN bitmap queries). Both kernels
//!    must produce identical tallies; the JSON records pages/second for
//!    each and the speedup.
//! 2. **Harness wall-clock** — renders the Figure 10 grid serially and
//!    through the parallel cell runner, asserts the outputs are
//!    byte-identical, and records both times plus the worker count.
//!    Skipped under `--scan-only` (the CI smoke mode).
//!
//! Results land in `BENCH_precopy.json` (override with `--out`).

use javmm_bench::{figs, runner, FigOpts};
use simkit::rng::DetRng;
use simkit::SimDuration;
use std::time::Instant;
use vmem::{Bitmap, Pfn};

/// Pages per synthetic VM: 2 GiB of 4 KiB pages, the paper's VM size.
const NPAGES: u64 = 524_288;
/// Timed repetitions per scan kernel.
const REPS: u32 = 40;

#[derive(PartialEq, Eq, Debug)]
struct Tallies {
    sends: u64,
    skip_dirty: u64,
    skip_transfer: u64,
    deferred: u64,
}

struct Fixture {
    name: &'static str,
    to_send: Bitmap,
    dirty: Bitmap,
    transfer: Bitmap,
}

impl Fixture {
    /// Iteration-1 shape: everything pending, a Young-generation region
    /// skip-marked, a quarter of memory re-dirtied.
    fn first_iter(seed: u64) -> Self {
        let mut rng = DetRng::new(seed);
        let mut transfer = Bitmap::new_all_set(NPAGES);
        for p in NPAGES / 2..3 * NPAGES / 4 {
            transfer.clear(Pfn(p));
        }
        let mut dirty = Bitmap::new(NPAGES);
        for _ in 0..NPAGES / 4 {
            dirty.set(Pfn(rng.next_u64() % NPAGES));
        }
        Self {
            name: "first_iter",
            to_send: Bitmap::new_all_set(NPAGES),
            dirty,
            transfer,
        }
    }

    /// Late-iteration shape: a sparse working set still pending.
    fn later_iter(seed: u64) -> Self {
        let mut rng = DetRng::new(seed);
        let mut to_send = Bitmap::new(NPAGES);
        for _ in 0..NPAGES / 10 {
            to_send.set(Pfn(rng.next_u64() % NPAGES));
        }
        let mut dirty = Bitmap::new(NPAGES);
        for _ in 0..NPAGES / 20 {
            dirty.set(Pfn(rng.next_u64() % NPAGES));
        }
        let mut transfer = Bitmap::new_all_set(NPAGES);
        for _ in 0..NPAGES / 8 {
            transfer.clear(Pfn(rng.next_u64() % NPAGES));
        }
        Self {
            name: "later_iter",
            to_send,
            dirty,
            transfer,
        }
    }
}

/// The seed engine's scan loop: walk set bits one PFN at a time, querying
/// the transfer and dirty bitmaps per page.
fn per_bit_scan(fix: &Fixture) -> Tallies {
    let mut to_send = fix.to_send.clone();
    let mut deferred = Bitmap::new(NPAGES);
    let mut t = Tallies {
        sends: 0,
        skip_dirty: 0,
        skip_transfer: 0,
        deferred: 0,
    };
    let mut cursor = 0u64;
    while let Some(pfn) = to_send.next_set_at(cursor) {
        cursor = pfn.0 + 1;
        to_send.clear(pfn);
        if !fix.transfer.get(pfn) {
            t.skip_transfer += 1;
            deferred.set(pfn);
            continue;
        }
        if fix.dirty.get(pfn) {
            t.skip_dirty += 1;
            continue;
        }
        t.sends += 1;
    }
    t.deferred = deferred.count_set();
    t
}

/// The engine's current pipeline: classify 64 pages per step with word
/// algebra, retiring whole words at once.
fn word_scan(fix: &Fixture) -> Tallies {
    let mut to_send = fix.to_send.clone();
    let mut deferred = Bitmap::new(NPAGES);
    let mut t = Tallies {
        sends: 0,
        skip_dirty: 0,
        skip_transfer: 0,
        deferred: 0,
    };
    for wi in 0..to_send.word_count() {
        let w = to_send.words()[wi];
        if w == 0 {
            continue;
        }
        let d = fix.dirty.words()[wi];
        let tr = fix.transfer.words()[wi];
        let skips_t = w & !tr;
        t.skip_transfer += u64::from(skips_t.count_ones());
        t.skip_dirty += u64::from((w & tr & d).count_ones());
        t.sends += u64::from((w & tr & !d).count_ones());
        deferred.set_bits_in_word(wi, skips_t);
        to_send.clear_bits_in_word(wi, w);
    }
    t.deferred = deferred.count_set();
    t
}

fn time_scans(fixtures: &[Fixture], scan: fn(&Fixture) -> Tallies) -> f64 {
    let start = Instant::now();
    for _ in 0..REPS {
        for fix in fixtures {
            std::hint::black_box(scan(std::hint::black_box(fix)));
        }
    }
    start.elapsed().as_secs_f64()
}

/// Runs the digest roster, writing per-scenario JSON + Prometheus files.
fn cmd_digest(args: &[String]) {
    let out_dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string());
    let scan_slowdown = args
        .iter()
        .position(|a| a == "--scan-slowdown")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse::<f64>().expect("--scan-slowdown takes a number"))
        .unwrap_or(1.0);
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    for scenario in javmm_bench::digests::scenarios() {
        let (digest, prom) = javmm_bench::digests::run_digest_scenario(&scenario, scan_slowdown);
        let json_path = format!("{out_dir}/DIGEST_{}.json", scenario.name);
        let prom_path = format!("{out_dir}/DIGEST_{}.prom", scenario.name);
        std::fs::write(&json_path, digest.to_json()).expect("write digest");
        std::fs::write(&prom_path, prom).expect("write prometheus exposition");
        eprintln!(
            "{}: {} ({} findings) -> {json_path}",
            scenario.name,
            digest.outcome_kind,
            digest.findings.len()
        );
    }
}

/// Diffs two digest files; exit 1 on regression, 2 on parse/schema error.
fn cmd_compare(args: &[String]) {
    let (old_path, new_path) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            eprintln!("usage: bench compare <old.json> <new.json>");
            std::process::exit(2);
        }
    };
    let read = |path: &String| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let (old_json, new_json) = (read(old_path), read(new_path));
    match migrate::digest::compare_any(&old_json, &new_json) {
        Ok(report) => {
            print!("{}", report.render());
            if report.has_regression() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("compare failed: {e}");
            std::process::exit(2);
        }
    }
}

/// Drains one roster under every fleet policy (or one, with `--policy`);
/// writes the comparison and optional per-policy fleet digests.
fn cmd_fleet(args: &[String]) {
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let roster_name = flag("--roster").unwrap_or_else(|| "drain12".to_string());
    let seed = flag("--seed")
        .map(|s| s.parse::<u64>().expect("--seed takes an integer"))
        .unwrap_or(7);
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let digest_dir = flag("--digest-dir");
    let series_cap =
        flag("--series-cap").map(|s| s.parse::<usize>().expect("--series-cap takes an integer"));
    let policies: Vec<cluster::FleetPolicy> = match flag("--policy") {
        None => cluster::FleetPolicy::ALL.to_vec(),
        Some(name) => match cluster::FleetPolicy::parse(&name) {
            Some(p) => vec![p],
            None => {
                eprintln!("unknown policy {name}; use fifo, swsf, cycle or cycle-declared");
                std::process::exit(2);
            }
        },
    };
    let Some(mut host) = javmm_bench::fleet::roster_by_name(&roster_name, seed) else {
        eprintln!("unknown roster {roster_name}; use solo, drain4, drain12 or adversarial");
        std::process::exit(2);
    };
    if let Some(cap) = series_cap {
        // Regression drill: starve the observatory's sample ring (below
        // 16 samples the detector refuses to certify anything).
        host.sense_capacity = cap;
    }
    // Rows stream out of the scheduler in completion order; narrate them
    // so long drains show progress instead of going dark.
    let runs = javmm_bench::fleet::run_policies_with(&host, &policies, &mut |policy, entry| {
        eprintln!(
            "{}: {} done at {:.1}s (confident={} window_hit={:?})",
            policy.name(),
            entry.digest.meta.name,
            entry.ended_at_ns as f64 / 1e9,
            entry.detect_confident,
            entry.window_hit,
        );
    });
    print!("{}", javmm_bench::fleet::render_table(&runs));
    let json = javmm_bench::fleet::to_json(&host, &runs);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, json).expect("write fleet results");
    eprintln!("wrote {out_path}");
    if let Some(dir) = digest_dir {
        std::fs::create_dir_all(&dir).expect("create digest directory");
        for run in &runs {
            let path = format!(
                "{dir}/DIGEST_fleet_{}_{}.json",
                host.name,
                run.policy.name()
            );
            std::fs::write(&path, run.digest.to_json()).expect("write fleet digest");
            eprintln!("wrote {path}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("digest") => return cmd_digest(&args[1..]),
        Some("compare") => return cmd_compare(&args[1..]),
        Some("fleet") => return cmd_fleet(&args[1..]),
        _ => {}
    }
    let scan_only = args.iter().any(|a| a == "--scan-only");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_precopy.json".to_string());

    // -- Scan microbenchmark ------------------------------------------------
    let fixtures = [Fixture::first_iter(9), Fixture::later_iter(5)];
    for fix in &fixtures {
        assert_eq!(
            per_bit_scan(fix),
            word_scan(fix),
            "scan kernels disagree on {}",
            fix.name
        );
    }
    let pages_per_rep: u64 = fixtures.iter().map(|f| f.to_send.count_set()).sum();
    let total_pages = pages_per_rep * u64::from(REPS);
    let bit_secs = time_scans(&fixtures, per_bit_scan);
    let word_secs = time_scans(&fixtures, word_scan);
    let bit_rate = total_pages as f64 / bit_secs;
    let word_rate = total_pages as f64 / word_secs;
    let scan_speedup = word_rate / bit_rate;
    eprintln!(
        "scan: per-bit {bit_rate:.3e} pages/s, word {word_rate:.3e} pages/s, \
         speedup {scan_speedup:.1}x over {total_pages} pages"
    );

    // -- Harness wall-clock -------------------------------------------------
    let harness_json = if scan_only {
        "null".to_string()
    } else {
        let mut opts = FigOpts::quick();
        opts.warmup = SimDuration::from_secs(20);
        opts.tail = SimDuration::from_secs(10);
        opts.parallel = false;
        let t0 = Instant::now();
        let serial_out = figs::fig10::run(&opts);
        let serial_secs = t0.elapsed().as_secs_f64();
        opts.parallel = true;
        let t1 = Instant::now();
        let parallel_out = figs::fig10::run(&opts);
        let parallel_secs = t1.elapsed().as_secs_f64();
        assert_eq!(
            serial_out, parallel_out,
            "parallel harness output diverged from serial"
        );
        let workers = runner::worker_count();
        eprintln!(
            "harness: fig10 serial {serial_secs:.1}s, parallel {parallel_secs:.1}s \
             ({workers} workers), outputs byte-identical"
        );
        format!(
            "{{\n    \"workers\": {workers},\n    \"serial_secs\": {serial_secs:.3},\n    \
             \"parallel_secs\": {parallel_secs:.3},\n    \"speedup\": {:.3},\n    \
             \"outputs_identical\": true\n  }}",
            serial_secs / parallel_secs
        )
    };

    let json = format!(
        "{{\n  \"schema\": \"javmm-bench-precopy-v1\",\n  \"scan\": {{\n    \
         \"pages_per_rep\": {pages_per_rep},\n    \"reps\": {REPS},\n    \
         \"per_bit_pages_per_sec\": {bit_rate:.0},\n    \
         \"word_pages_per_sec\": {word_rate:.0},\n    \
         \"speedup\": {scan_speedup:.2}\n  }},\n  \"harness\": {harness_json}\n}}\n"
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write benchmark results");
    println!("{json}");
    eprintln!("wrote {out_path}");
    assert!(
        scan_speedup >= 2.0,
        "word-granular scan must be at least 2x the per-bit reference \
         (measured {scan_speedup:.2}x)"
    );
}
