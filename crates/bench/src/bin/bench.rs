//! `bench` — performance evidence for the pre-copy scan pipeline, plus
//! the migration observatory's digest/compare subcommands.
//!
//! Usage:
//!   bench [--scan-only] [--out PATH]
//!   bench digest [--out-dir DIR] [--scan-slowdown FACTOR]
//!   bench compare <old.json> <new.json>
//!   bench fleet [--roster NAME] [--seed N] [--out PATH] [--policy NAME]
//!               [--digest-dir DIR] [--series-cap N] [--scan-workers N]
//!   bench evacuate [--seed N] [--out PATH] [--policy NAME]
//!                  [--pin-placement DEST]
//!   bench cold [--out PATH] [--delta-cache N] [--cold-fraction F[,F..]]
//!              [--warmup-secs S]
//!
//! `bench cold` migrates the cold-heavy cacheapp roster twice per guest —
//! with the cold assist off (baseline) and with defer + delta on — and
//! writes `BENCH_cold.json` (schema `javmm-bench-cold-v1`) recording the
//! roster-wide savings ratios: total sent bytes, stop-and-copy bytes and
//! the XBZRLE wire discount, plus page-for-page destination verification.
//! `--cold-fraction` overrides the long-tail ladder (default
//! `0.0,0.2,0.4,0.6,0.8` of the cache held by the rarely-written resident
//! set); `--delta-cache 1` is the CI drill — a one-entry delta page cache
//! evicts every prior page version before it can be reused, collapsing
//! `delta.saved_bytes_ratio` so `bench compare` must fail naming it.
//!
//! `bench evacuate` drains the 48-VM four-rack evacuation fleet onto the
//! 56-slot destination pool across the contended core switch, once per
//! placement policy (SLA-cost-aware, greedy headroom, seeded random), and
//! writes `BENCH_evacuate.json` comparing fleet eviction time, aggregate
//! downtime, wire bytes, SLA cost and per-destination placement counts,
//! plus the SLA policy's cost/eviction ratios against random placement.
//! `--pin-placement DEST` is the CI drill: placement is disabled, every
//! VM lands on destination index DEST, and the document records the
//! crippled run under all three placement keys so `bench compare` trips
//! its `placements.sla.eviction_ns` gate.
//!
//! `bench fleet` drains one multi-VM roster (`solo`, `drain4`, `drain12`
//! or `adversarial`; default `drain12`) under every fleet scheduling
//! policy (or just `--policy`) and writes `BENCH_fleet.json` comparing
//! total eviction time, aggregate downtime, wire bytes, SLA cost and
//! workload-observatory detection accuracy per policy, plus the
//! cycle-aware policy's detected-vs-declared eviction ratio. Per-VM rows
//! stream to stderr as migrations complete. `--digest-dir` additionally
//! writes each policy's full fleet digest (for baseline gating via
//! `bench compare`, which dispatches on the digest's schema);
//! `--series-cap` shrinks the observatory's sample ring — capping it
//! below 16 blinds the detector, the seeded regression CI drills.
//! `--scan-workers N` runs every per-VM migration session on an N-worker
//! scan pool — the sharded pipeline is bit-identical to the serial one,
//! so the document does not change, which `tests/parallel_determinism.rs`
//! locks. The document is deterministic for a fixed roster + seed.
//!
//! `bench digest` runs the fixed roster of recorded migrations and writes
//! one `DIGEST_<scenario>.json` (plus a `.prom` Prometheus exposition) per
//! scenario into `--out-dir` (default `results`). `--scan-slowdown 1.25`
//! scales the engine's per-page scan CPU cost, seeding a deliberate
//! scan-throughput regression for gate testing. `bench compare` diffs two
//! digests under the built-in per-metric thresholds and exits 1 on
//! regression (naming the metric) or 2 on a parse/schema error. It also
//! understands `BENCH_precopy.json` v2 documents, gating the harness's
//! parallel efficiency (`JAVMM_SERIALIZE_POOL=1` seeds that drill).
//!
//! The default (no subcommand) run writes `BENCH_precopy.json` (schema
//! `javmm-bench-precopy-v2`; override the path with `--out`), all
//! measurements taken in the same run so they share a machine and a build:
//!
//! 1. **Scan microbenchmark** — classifies the same page sets with the
//!    word-granular pipeline the engine now uses and with a per-bit
//!    reference that replicates the seed engine's scan loop
//!    (`next_set_at` / `clear` / per-PFN bitmap queries); both must
//!    produce identical tallies. On top, the sharded classify kernel runs
//!    at 1/2/4/8 shards: every sharded tally must match the serial word
//!    scan exactly, and each row reports the measured per-shard costs.
//! 2. **Allocation micro-bench** — a counting global allocator measures
//!    the scan hot path with a fresh `ScanScratch` per walk vs the
//!    persistent per-session arena the engine actually uses; the arena
//!    must allocate strictly less (steady state: nothing).
//! 3. **Harness scaling** — a roster of independent end-to-end migration
//!    cells runs serially (measuring per-cell cost), then through
//!    `runner::par_map_workers` at 1/2/4/8 workers. Every row's output
//!    must be byte-identical to the serial pass. Because wall-clock
//!    speedup is bounded by the machine (CI containers are often
//!    single-core), each row also reports a **modeled** makespan: greedy
//!    earliest-free-worker list scheduling of the measured per-cell
//!    serial costs — deterministic given the measurements, and what the
//!    `harness.parallel_speedup` gate uses (`speedup_basis` says so).
//!    Skipped under `--scan-only` (the CI smoke mode).
//!
//! Worker counts honour `JAVMM_BENCH_WORKERS` (oversubscription allowed,
//! with a warning when the request exceeds the hardware) and
//! `JAVMM_SERIALIZE_POOL=1` (everything collapses to one worker and the
//! modeled speedup honestly reports ~1.0 — the seeded gate drill).

use javmm::orchestrator::{run_scenario, Scenario};
use javmm::vm::JavaVmConfig;
use javmm_bench::runner;
use migrate::config::MigrationConfig;
use migrate::scanpool::{classify_range, shard_range, ScanScratch, WordClass, CHUNK_WORDS};
use simkit::rng::DetRng;
use simkit::SimDuration;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use vmem::{Bitmap, Pfn};
use workloads::spec::WorkloadSpec;

/// Pages per synthetic VM: 2 GiB of 4 KiB pages, the paper's VM size.
const NPAGES: u64 = 524_288;
/// Timed repetitions per scan kernel.
const REPS: u32 = 40;
/// Walks per arm of the allocation micro-bench.
const ALLOC_REPS: u32 = 32;
/// Words walked per allocation-bench rep (64 chunks).
const ALLOC_WORDS: usize = 64 * CHUNK_WORDS;
/// Seeds per (workload, mode) harness cell group.
const HARNESS_SEEDS: u64 = 3;

// ---------------------------------------------------------------------------
// Counting allocator: the evidence behind the "no steady-state allocation"
// claim on `ScanScratch`. One relaxed atomic bump per alloc/realloc; the
// delta across a region is its allocation count.
// ---------------------------------------------------------------------------

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[derive(PartialEq, Eq, Debug, Default)]
struct Tallies {
    sends: u64,
    skip_dirty: u64,
    skip_transfer: u64,
    deferred: u64,
}

struct Fixture {
    name: &'static str,
    to_send: Bitmap,
    dirty: Bitmap,
    transfer: Bitmap,
}

impl Fixture {
    /// Iteration-1 shape: everything pending, a Young-generation region
    /// skip-marked, a quarter of memory re-dirtied.
    fn first_iter(seed: u64) -> Self {
        let mut rng = DetRng::new(seed);
        let mut transfer = Bitmap::new_all_set(NPAGES);
        for p in NPAGES / 2..3 * NPAGES / 4 {
            transfer.clear(Pfn(p));
        }
        let mut dirty = Bitmap::new(NPAGES);
        for _ in 0..NPAGES / 4 {
            dirty.set(Pfn(rng.next_u64() % NPAGES));
        }
        Self {
            name: "first_iter",
            to_send: Bitmap::new_all_set(NPAGES),
            dirty,
            transfer,
        }
    }

    /// Late-iteration shape: a sparse working set still pending.
    fn later_iter(seed: u64) -> Self {
        let mut rng = DetRng::new(seed);
        let mut to_send = Bitmap::new(NPAGES);
        for _ in 0..NPAGES / 10 {
            to_send.set(Pfn(rng.next_u64() % NPAGES));
        }
        let mut dirty = Bitmap::new(NPAGES);
        for _ in 0..NPAGES / 20 {
            dirty.set(Pfn(rng.next_u64() % NPAGES));
        }
        let mut transfer = Bitmap::new_all_set(NPAGES);
        for _ in 0..NPAGES / 8 {
            transfer.clear(Pfn(rng.next_u64() % NPAGES));
        }
        Self {
            name: "later_iter",
            to_send,
            dirty,
            transfer,
        }
    }
}

/// The seed engine's scan loop: walk set bits one PFN at a time, querying
/// the transfer and dirty bitmaps per page.
fn per_bit_scan(fix: &Fixture) -> Tallies {
    let mut to_send = fix.to_send.clone();
    let mut deferred = Bitmap::new(NPAGES);
    let mut t = Tallies::default();
    let mut cursor = 0u64;
    while let Some(pfn) = to_send.next_set_at(cursor) {
        cursor = pfn.0 + 1;
        to_send.clear(pfn);
        if !fix.transfer.get(pfn) {
            t.skip_transfer += 1;
            deferred.set(pfn);
            continue;
        }
        if fix.dirty.get(pfn) {
            t.skip_dirty += 1;
            continue;
        }
        t.sends += 1;
    }
    t.deferred = deferred.count_set();
    t
}

/// The engine's current pipeline: classify 64 pages per step with word
/// algebra, retiring whole words at once.
fn word_scan(fix: &Fixture) -> Tallies {
    let mut to_send = fix.to_send.clone();
    let mut deferred = Bitmap::new(NPAGES);
    let mut t = Tallies::default();
    for wi in 0..to_send.word_count() {
        let w = to_send.words()[wi];
        if w == 0 {
            continue;
        }
        let d = fix.dirty.words()[wi];
        let tr = fix.transfer.words()[wi];
        let skips_t = w & !tr;
        t.skip_transfer += u64::from(skips_t.count_ones());
        t.skip_dirty += u64::from((w & tr & d).count_ones());
        t.sends += u64::from((w & tr & !d).count_ones());
        deferred.set_bits_in_word(wi, skips_t);
        to_send.clear_bits_in_word(wi, w);
    }
    t.deferred = deferred.count_set();
    t
}

fn time_scans(fixtures: &[Fixture], scan: fn(&Fixture) -> Tallies) -> f64 {
    let start = Instant::now();
    for _ in 0..REPS {
        for fix in fixtures {
            std::hint::black_box(scan(std::hint::black_box(fix)));
        }
    }
    start.elapsed().as_secs_f64()
}

// ---------------------------------------------------------------------------
// Sharded raw-scan rows.
// ---------------------------------------------------------------------------

struct ShardRow {
    shards: usize,
    /// CPU actually spent classifying all shards (serial sum).
    wall_secs: f64,
    /// Makespan if the shards ran concurrently: the slowest shard. Shards
    /// are independent and near-equal, so this is the pool's lower bound.
    modeled_secs: f64,
}

/// Times the classify kernel shard-by-shard at each shard count, asserting
/// every sharded tally equal to the serial word scan (the merge is a sum
/// over a partition, so any divergence is a bug, not noise).
fn sharded_scan_rows(fixtures: &[Fixture]) -> Vec<ShardRow> {
    let mut rows = Vec::new();
    let mut out: Vec<WordClass> = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        let mut shard_secs = vec![0.0f64; shards];
        for fix in fixtures {
            let len = fix.to_send.word_count();
            out.clear();
            out.resize(len, WordClass::default());
            for _ in 0..REPS {
                for (i, secs) in shard_secs.iter_mut().enumerate() {
                    let r = shard_range(len, shards, i);
                    let t0 = Instant::now();
                    classify_range(
                        &mut out[r.clone()],
                        &fix.to_send.words()[r.clone()],
                        &fix.dirty.words()[r.clone()],
                        Some(&fix.transfer.words()[r]),
                    );
                    *secs += t0.elapsed().as_secs_f64();
                }
                std::hint::black_box(&out);
            }
            let mut t = Tallies::default();
            for c in &out {
                t.sends += u64::from(c.sends.count_ones());
                t.skip_dirty += u64::from(c.skips_dirty.count_ones());
                t.skip_transfer += u64::from(c.skips_transfer.count_ones());
            }
            t.deferred = t.skip_transfer;
            assert_eq!(
                t,
                word_scan(fix),
                "sharded scan diverged at {shards} shards on {}",
                fix.name
            );
        }
        rows.push(ShardRow {
            shards,
            wall_secs: shard_secs.iter().sum(),
            modeled_secs: shard_secs.iter().cloned().fold(0.0, f64::max),
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Allocation micro-bench.
// ---------------------------------------------------------------------------

/// Deterministic word soup (splitmix64) for the allocation walks.
fn soup(seed: u64, len: usize) -> Vec<u64> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        })
        .collect()
}

/// Counts allocations for the same chunked walk done two ways: a fresh
/// `ScanScratch` per walk (what a naive per-iteration implementation
/// would do) vs one persistent arena recycled across walks (what the
/// engine does). Returns `(fresh_allocs, arena_allocs)`.
fn alloc_microbench() -> (u64, u64) {
    let ts = soup(31, ALLOC_WORDS);
    let d = soup(32, ALLOC_WORDS);
    let t = soup(33, ALLOC_WORDS);
    let walk = |scratch: &mut ScanScratch| {
        scratch.begin_quantum();
        for wi in 0..ALLOC_WORDS {
            scratch.ensure(wi, &ts, &d, Some(&t));
            std::hint::black_box(scratch.class_at(wi));
        }
    };
    let before = ALLOC_COUNT.load(Ordering::Relaxed);
    for _ in 0..ALLOC_REPS {
        let mut scratch = ScanScratch::new(1);
        walk(&mut scratch);
        walk(&mut scratch); // second quantum: the prefetch-armed shape
    }
    let fresh = ALLOC_COUNT.load(Ordering::Relaxed) - before;

    let mut scratch = ScanScratch::new(1);
    walk(&mut scratch);
    walk(&mut scratch); // warm the arenas into their steady-state capacity
    let before = ALLOC_COUNT.load(Ordering::Relaxed);
    for _ in 0..ALLOC_REPS {
        walk(&mut scratch);
    }
    let arena = ALLOC_COUNT.load(Ordering::Relaxed) - before;
    (fresh, arena)
}

// ---------------------------------------------------------------------------
// Harness scaling rows.
// ---------------------------------------------------------------------------

struct HarnessJob {
    widx: usize,
    assisted: bool,
    seed: u64,
}

/// One end-to-end migration cell: warm up, migrate, render the report
/// facts that must not depend on who ran the cell or how the scan pool
/// was sized. The returned string is the byte-identity contract.
fn run_cell(w: &WorkloadSpec, job: &HarnessJob, shard_workers: usize) -> String {
    let vm = JavaVmConfig::paper(w.clone(), job.assisted, job.seed);
    let mut migration = if job.assisted {
        MigrationConfig::javmm_default()
    } else {
        MigrationConfig::xen_default()
    };
    migration.scan_workers = shard_workers;
    let o = run_scenario(&Scenario::quick(
        vm,
        migration,
        SimDuration::from_secs(10),
        SimDuration::from_secs(3),
    ))
    .expect("harness cell failed");
    format!(
        "{}/{}/seed{}: bytes={} dur_ns={} cpu_ns={} down_ns={} iters={}",
        w.name,
        if job.assisted { "javmm" } else { "xen" },
        job.seed,
        o.report.total_bytes,
        o.report.total_duration.as_nanos(),
        o.report.cpu_time.as_nanos(),
        o.report.downtime.workload_downtime().as_nanos(),
        o.report.iteration_count(),
    )
}

/// Greedy earliest-free-worker list scheduling of independent cells with
/// the measured per-cell costs, in input order: the makespan `workers`
/// identical machines would reach. For independent jobs this is monotone
/// non-increasing in the worker count (no precedence anomalies), which is
/// what makes the 1→2→4→8 scaling assertion sound.
fn makespan(costs: &[f64], workers: usize) -> f64 {
    let mut free = vec![0.0f64; workers.max(1)];
    for &c in costs {
        let idx = free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite cost"))
            .map(|(i, _)| i)
            .expect("at least one worker");
        free[idx] += c;
    }
    free.iter().cloned().fold(0.0, f64::max)
}

struct HarnessRow {
    workers: usize,
    cell_workers: usize,
    shard_workers: usize,
    wall_secs: f64,
    modeled_secs: f64,
}

struct HarnessResult {
    cells: usize,
    serial_secs: f64,
    rows: Vec<HarnessRow>,
    parallel_speedup: f64,
}

/// Runs the harness roster serially (measuring per-cell costs), then at
/// each worker count, asserting byte-identical outputs every time.
fn run_harness(plan: &runner::WorkerPlan) -> HarnessResult {
    let workloads = [
        workloads::catalog::derby(),
        workloads::catalog::crypto(),
        workloads::catalog::scimark(),
        workloads::catalog::mpeg(),
    ];
    let jobs: Vec<HarnessJob> = (0..workloads.len())
        .flat_map(|widx| {
            [false, true].into_iter().flat_map(move |assisted| {
                (1..=HARNESS_SEEDS).map(move |seed| HarnessJob {
                    widx,
                    assisted,
                    seed,
                })
            })
        })
        .collect();

    // Serial pass: the reference outputs and the per-cell cost vector the
    // makespan model schedules.
    let mut costs = Vec::with_capacity(jobs.len());
    let mut reference = Vec::with_capacity(jobs.len());
    for job in &jobs {
        let t0 = Instant::now();
        reference.push(run_cell(&workloads[job.widx], job, 1));
        costs.push(t0.elapsed().as_secs_f64());
    }
    let serial_secs: f64 = costs.iter().sum();
    eprintln!("harness: {} cells serial in {serial_secs:.1}s", jobs.len());

    let mut worker_counts = vec![1usize, 2, 4, 8];
    if !worker_counts.contains(&plan.effective) {
        worker_counts.push(plan.effective);
        worker_counts.sort_unstable();
    }
    let mut rows = Vec::new();
    for &w in &worker_counts {
        let (cell_workers, shard_workers) = if plan.serialized {
            (1, 1)
        } else {
            runner::split_workers(w, jobs.len())
        };
        let (wall_secs, outputs) = if w == 1 {
            (serial_secs, None)
        } else {
            let t0 = Instant::now();
            let outs = runner::par_map_workers(cell_workers, &jobs, |job| {
                run_cell(&workloads[job.widx], job, shard_workers)
            });
            (t0.elapsed().as_secs_f64(), Some(outs))
        };
        if let Some(outs) = outputs {
            assert_eq!(
                outs, reference,
                "harness output diverged from serial at {w} workers"
            );
        }
        let modeled_workers = if plan.serialized { 1 } else { w };
        let modeled_secs = makespan(&costs, modeled_workers);
        eprintln!(
            "harness: {w} workers wall {wall_secs:.1}s, modeled {modeled_secs:.1}s \
             ({:.2}x), outputs byte-identical",
            serial_secs / modeled_secs
        );
        rows.push(HarnessRow {
            workers: w,
            cell_workers,
            shard_workers,
            wall_secs,
            modeled_secs,
        });
    }

    let parallel_speedup = rows
        .iter()
        .find(|r| r.workers == 4)
        .map(|r| serial_secs / r.modeled_secs)
        .expect("the 4-worker row is always present");
    HarnessResult {
        cells: jobs.len(),
        serial_secs,
        rows,
        parallel_speedup,
    }
}

// ---------------------------------------------------------------------------
// Subcommands.
// ---------------------------------------------------------------------------

/// Runs the digest roster, writing per-scenario JSON + Prometheus files.
fn cmd_digest(args: &[String]) {
    let out_dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string());
    let scan_slowdown = args
        .iter()
        .position(|a| a == "--scan-slowdown")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse::<f64>().expect("--scan-slowdown takes a number"))
        .unwrap_or(1.0);
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    for scenario in javmm_bench::digests::scenarios() {
        let (digest, prom) = javmm_bench::digests::run_digest_scenario(&scenario, scan_slowdown);
        let json_path = format!("{out_dir}/DIGEST_{}.json", scenario.name);
        let prom_path = format!("{out_dir}/DIGEST_{}.prom", scenario.name);
        std::fs::write(&json_path, digest.to_json()).expect("write digest");
        std::fs::write(&prom_path, prom).expect("write prometheus exposition");
        eprintln!(
            "{}: {} ({} findings) -> {json_path}",
            scenario.name,
            digest.outcome_kind,
            digest.findings.len()
        );
    }
}

/// Diffs two digest files; exit 1 on regression, 2 on parse/schema error.
fn cmd_compare(args: &[String]) {
    let (old_path, new_path) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            eprintln!("usage: bench compare <old.json> <new.json>");
            std::process::exit(2);
        }
    };
    let read = |path: &String| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let (old_json, new_json) = (read(old_path), read(new_path));
    match migrate::digest::compare_any(&old_json, &new_json) {
        Ok(report) => {
            print!("{}", report.render());
            if report.has_regression() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("compare failed: {e}");
            std::process::exit(2);
        }
    }
}

/// Drains one roster under every fleet policy (or one, with `--policy`);
/// writes the comparison and optional per-policy fleet digests.
fn cmd_fleet(args: &[String]) {
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let roster_name = flag("--roster").unwrap_or_else(|| "drain12".to_string());
    let seed = flag("--seed")
        .map(|s| s.parse::<u64>().expect("--seed takes an integer"))
        .unwrap_or(7);
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let digest_dir = flag("--digest-dir");
    let series_cap =
        flag("--series-cap").map(|s| s.parse::<usize>().expect("--series-cap takes an integer"));
    let scan_workers = flag("--scan-workers")
        .map(|s| s.parse::<usize>().expect("--scan-workers takes an integer"));
    let policies: Vec<cluster::FleetPolicy> = match flag("--policy") {
        None => cluster::FleetPolicy::ALL.to_vec(),
        Some(name) => match cluster::FleetPolicy::parse(&name) {
            Some(p) => vec![p],
            None => {
                eprintln!("unknown policy {name}; use fifo, swsf, cycle or cycle-declared");
                std::process::exit(2);
            }
        },
    };
    let Some(mut host) = javmm_bench::fleet::roster_by_name(&roster_name, seed) else {
        eprintln!("unknown roster {roster_name}; use solo, drain4, drain12 or adversarial");
        std::process::exit(2);
    };
    if let Some(cap) = series_cap {
        // Regression drill: starve the observatory's sample ring (below
        // 16 samples the detector refuses to certify anything).
        host.sense_capacity = cap;
    }
    if let Some(workers) = scan_workers {
        // Pooled per-VM scanning: changes wall-clock only, never the
        // digest (tests/parallel_determinism.rs locks that).
        host.scan_workers = workers.max(1);
    }
    // Rows stream out of the scheduler in completion order; narrate them
    // so long drains show progress instead of going dark.
    let runs = javmm_bench::fleet::run_policies_with(&host, &policies, &mut |policy, entry| {
        eprintln!(
            "{}: {} done at {:.1}s (confident={} window_hit={:?})",
            policy.name(),
            entry.digest.meta.name,
            entry.ended_at_ns as f64 / 1e9,
            entry.detect_confident,
            entry.window_hit,
        );
    });
    print!("{}", javmm_bench::fleet::render_table(&runs));
    let json = javmm_bench::fleet::to_json(&host, &runs);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, json).expect("write fleet results");
    eprintln!("wrote {out_path}");
    if let Some(dir) = digest_dir {
        std::fs::create_dir_all(&dir).expect("create digest directory");
        for run in &runs {
            let path = format!(
                "{dir}/DIGEST_fleet_{}_{}.json",
                host.name,
                run.policy.name()
            );
            std::fs::write(&path, run.digest.to_json()).expect("write fleet digest");
            eprintln!("wrote {path}");
        }
    }
}

/// Evacuates the 48-VM four-rack fleet once per placement policy (or once
/// with every VM pinned to one destination — the CI drill); writes the
/// placement comparison document.
fn cmd_evacuate(args: &[String]) {
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seed = flag("--seed")
        .map(|s| s.parse::<u64>().expect("--seed takes an integer"))
        .unwrap_or(7);
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_evacuate.json".to_string());
    let policy = match flag("--policy") {
        None => cluster::FleetPolicy::CycleAware,
        Some(name) => match cluster::FleetPolicy::parse(&name) {
            Some(p) => p,
            None => {
                eprintln!("unknown policy {name}; use fifo, swsf, cycle or cycle-declared");
                std::process::exit(2);
            }
        },
    };
    let pin = flag("--pin-placement").map(|s| {
        s.parse::<usize>()
            .expect("--pin-placement takes a destination index")
    });
    let eta_out = flag("--eta-out");
    let trace_out = flag("--trace-out");
    let freeze_eta = args.iter().any(|a| a == "--freeze-eta");
    let narrate = |run: &javmm_bench::evacuate::PlacementRun| {
        eprintln!(
            "{}: eviction {:.1}s, sla cost {:.2}, {} nonconverged",
            run.placement.name(),
            run.eviction_ns as f64 / 1e9,
            run.sla_cost,
            run.nonconverged,
        );
    };
    let (runs, observed) = match pin {
        Some(d) => {
            // Placement-disabled drill: every VM lands on destination `d`,
            // funnelling the fleet through one ingress. The single crippled
            // run is stamped into all three placement keys so the gated
            // `placements.sla.*` metrics describe it.
            let plan =
                javmm_bench::evacuate::evacuate48_plan(seed, cluster::PlacementPolicy::Pinned(d))
                    .freeze_eta(freeze_eta);
            let out = cluster::evacuate(&plan, policy).expect("pinned evacuation failed");
            let run = javmm_bench::evacuate::reduce(&plan, &out);
            narrate(&run);
            (vec![run.clone(), run.clone(), run], out)
        }
        None => {
            javmm_bench::evacuate::run_placements_observed(seed, policy, freeze_eta, &mut |run| {
                narrate(run)
            })
        }
    };
    print!("{}", javmm_bench::evacuate::render_table(&runs));
    let write_out = |path: &str, contents: String, what: &str| {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create output directory");
            }
        }
        std::fs::write(path, contents).unwrap_or_else(|e| panic!("write {what}: {e}"));
        eprintln!("wrote {path}");
    };
    write_out(
        &out_path,
        javmm_bench::evacuate::to_json(seed, policy, &runs),
        "evacuation results",
    );
    let m = &observed.mission;
    eprintln!(
        "eta: {} predictions over {} vms, p50 {:.3} p90 {:.3} drift {:+.3}; {} findings",
        m.eta.predictions,
        m.eta.vms,
        m.eta.p50_abs_err,
        m.eta.p90_abs_err,
        m.eta.drift,
        m.findings.len(),
    );
    if let Some(path) = eta_out {
        write_out(
            &path,
            javmm_bench::evacuate::eta_to_json(seed, policy, freeze_eta, &observed),
            "eta calibration document",
        );
    }
    if let Some(prefix) = trace_out {
        use simkit::telemetry::causal;
        write_out(
            &format!("{prefix}.trace.json"),
            causal::chrome_trace_to_string(&m.causal),
            "causal Chrome trace",
        );
        write_out(
            &format!("{prefix}.causal.jsonl"),
            causal::jsonl_to_string(&m.causal),
            "causal JSONL log",
        );
        write_out(
            &format!("{prefix}.pipes.prom"),
            javmm_bench::evacuate::pipes_to_prometheus(&observed),
            "pipe utilization exposition",
        );
    }
}

/// Runs the cold-heavy cacheapp roster baseline-vs-assist and writes
/// `BENCH_cold.json`.
fn cmd_cold(args: &[String]) {
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_cold.json".to_string());
    let delta_cache = flag("--delta-cache")
        .map(|s| s.parse::<u64>().expect("--delta-cache takes an integer"))
        .unwrap_or(javmm_bench::cold::COLD_DELTA_CACHE_PAGES);
    let ladder: Vec<f64> = match flag("--cold-fraction") {
        None => javmm_bench::cold::COLD_LADDER.to_vec(),
        Some(list) => list
            .split(',')
            .map(|s| {
                let f = s
                    .trim()
                    .parse::<f64>()
                    .expect("--cold-fraction takes comma-separated fractions");
                assert!(
                    (0.0..=0.9).contains(&f),
                    "--cold-fraction entries must be within 0.0..=0.9"
                );
                f
            })
            .collect(),
    };
    let warmup_secs = flag("--warmup-secs")
        .map(|s| s.parse::<u64>().expect("--warmup-secs takes an integer"))
        .unwrap_or(20);
    let result = javmm_bench::cold::run_roster(
        &ladder,
        delta_cache,
        SimDuration::from_secs(warmup_secs),
        |line| eprintln!("{line}"),
    );
    eprint!("{}", javmm_bench::cold::render_table(&result));
    let json = javmm_bench::cold::to_json(&result);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, json).expect("write cold benchmark document");
    eprintln!("wrote {out_path}");
}

// ---------------------------------------------------------------------------
// JSON assembly.
// ---------------------------------------------------------------------------

fn json_opt_usize(v: Option<usize>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("digest") => return cmd_digest(&args[1..]),
        Some("compare") => return cmd_compare(&args[1..]),
        Some("fleet") => return cmd_fleet(&args[1..]),
        Some("evacuate") => return cmd_evacuate(&args[1..]),
        Some("cold") => return cmd_cold(&args[1..]),
        _ => {}
    }
    let scan_only = args.iter().any(|a| a == "--scan-only");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_precopy.json".to_string());

    let plan = runner::worker_plan();
    eprintln!(
        "workers: requested={} effective={} available={} source={} capped={} serialized={}",
        json_opt_usize(plan.requested),
        plan.effective,
        plan.available,
        plan.source,
        plan.capped,
        plan.serialized
    );

    // -- Scan microbenchmark ------------------------------------------------
    let fixtures = [Fixture::first_iter(9), Fixture::later_iter(5)];
    for fix in &fixtures {
        assert_eq!(
            per_bit_scan(fix),
            word_scan(fix),
            "scan kernels disagree on {}",
            fix.name
        );
    }
    let pages_per_rep: u64 = fixtures.iter().map(|f| f.to_send.count_set()).sum();
    let total_pages = pages_per_rep * u64::from(REPS);
    let bit_secs = time_scans(&fixtures, per_bit_scan);
    let word_secs = time_scans(&fixtures, word_scan);
    let bit_rate = total_pages as f64 / bit_secs;
    let word_rate = total_pages as f64 / word_secs;
    let scan_speedup = word_rate / bit_rate;
    eprintln!(
        "scan: per-bit {bit_rate:.3e} pages/s, word {word_rate:.3e} pages/s, \
         speedup {scan_speedup:.1}x over {total_pages} pages"
    );
    let shard_rows = sharded_scan_rows(&fixtures);
    let shard_base = shard_rows[0].modeled_secs;
    for r in &shard_rows {
        eprintln!(
            "scan: {} shards wall {:.4}s, modeled {:.4}s ({:.2}x), tallies identical",
            r.shards,
            r.wall_secs,
            r.modeled_secs,
            shard_base / r.modeled_secs
        );
    }

    // -- Allocation micro-bench ---------------------------------------------
    let (fresh_allocs, arena_allocs) = alloc_microbench();
    assert!(
        arena_allocs < fresh_allocs,
        "persistent arena must allocate less than fresh scratch \
         ({arena_allocs} vs {fresh_allocs})"
    );
    eprintln!(
        "alloc: fresh scratch {fresh_allocs} allocs over {ALLOC_REPS} walks, \
         persistent arena {arena_allocs}"
    );

    // -- Harness scaling ----------------------------------------------------
    let harness = if scan_only {
        None
    } else {
        Some(run_harness(&plan))
    };

    // -- JSON ---------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"javmm-bench-precopy-v2\",\n");
    json.push_str(&format!(
        "  \"workers\": {{\n    \"requested\": {},\n    \"effective\": {},\n    \
         \"available_parallelism\": {},\n    \"source\": \"{}\",\n    \
         \"capped\": {},\n    \"serialized_pool\": {}\n  }},\n",
        json_opt_usize(plan.requested),
        plan.effective,
        plan.available,
        plan.source,
        plan.capped,
        plan.serialized
    ));
    json.push_str(&format!(
        "  \"scan\": {{\n    \"pages_per_rep\": {pages_per_rep},\n    \"reps\": {REPS},\n    \
         \"per_bit_pages_per_sec\": {bit_rate:.0},\n    \
         \"word_pages_per_sec\": {word_rate:.0},\n    \
         \"speedup\": {scan_speedup:.2},\n    \"sharded\": [\n"
    ));
    for (i, r) in shard_rows.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"shards\": {}, \"wall_secs\": {:.6}, \"modeled_secs\": {:.6}, \
             \"modeled_speedup\": {:.3}}}{}\n",
            r.shards,
            r.wall_secs,
            r.modeled_secs,
            shard_base / r.modeled_secs,
            if i + 1 < shard_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  },\n");
    json.push_str(&format!(
        "  \"alloc\": {{\n    \"walks\": {ALLOC_REPS},\n    \
         \"words_per_walk\": {ALLOC_WORDS},\n    \
         \"fresh_scratch_allocs\": {fresh_allocs},\n    \
         \"persistent_arena_allocs\": {arena_allocs},\n    \"reduction\": {:.1}\n  }},\n",
        fresh_allocs as f64 / (arena_allocs.max(1)) as f64
    ));
    match &harness {
        None => json.push_str("  \"harness\": null\n"),
        Some(h) => {
            json.push_str(&format!(
                "  \"harness\": {{\n    \"cells\": {},\n    \"speedup_basis\": \"modeled\",\n    \
                 \"serial_secs\": {:.3},\n    \"rows\": [\n",
                h.cells, h.serial_secs
            ));
            for (i, r) in h.rows.iter().enumerate() {
                json.push_str(&format!(
                    "      {{\"workers\": {}, \"cell_workers\": {}, \"shard_workers\": {}, \
                     \"wall_secs\": {:.3}, \"modeled_secs\": {:.3}, \
                     \"modeled_speedup\": {:.3}, \"outputs_identical\": true}}{}\n",
                    r.workers,
                    r.cell_workers,
                    r.shard_workers,
                    r.wall_secs,
                    r.modeled_secs,
                    h.serial_secs / r.modeled_secs,
                    if i + 1 < h.rows.len() { "," } else { "" }
                ));
            }
            json.push_str(&format!(
                "    ],\n    \"parallel_speedup\": {:.3},\n    \
                 \"outputs_identical\": true\n  }}\n",
                h.parallel_speedup
            ));
        }
    }
    json.push_str("}\n");

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write benchmark results");
    println!("{json}");
    eprintln!("wrote {out_path}");

    assert!(
        scan_speedup >= 2.0,
        "word-granular scan must be at least 2x the per-bit reference \
         (measured {scan_speedup:.2}x)"
    );
    if let Some(h) = &harness {
        if !plan.serialized {
            // The scaling contract: >=1.7x modeled speedup at 4 workers
            // and monotone non-degrading 1->2->4->8 scaling. A
            // serialized-pool build skips these asserts — its job is to
            // fail the `bench compare` gate, which needs the JSON above.
            let mut prev = 0.0f64;
            for r in &h.rows {
                let s = h.serial_secs / r.modeled_secs;
                assert!(
                    s + 1e-6 >= prev,
                    "modeled speedup degraded from {prev:.3}x to {s:.3}x at {} workers",
                    r.workers
                );
                prev = s;
            }
            assert!(
                h.parallel_speedup >= 1.7,
                "modeled 4-worker speedup {:.2}x below the 1.7x floor",
                h.parallel_speedup
            );
        }
    }
}
