//! Seeded fault-matrix sweep: every fault scenario × seed cell runs one
//! migration under a wall-clock guard and reports a typed outcome.
//!
//! Usage: `fault-matrix [--out <path>] [--guard-secs <n>]`
//!
//! The sweep proves three properties the CI `fault-matrix` job gates on:
//!
//! * **no hangs** — each cell must finish inside the wall-clock guard or
//!   the binary exits non-zero naming the cell;
//! * **typed outcomes** — every cell ends in `completed`,
//!   `degraded:<fault>` or `error:<kind>`; nothing panics, nothing is
//!   silent;
//! * **zero-fault inertness** — the `none` column reruns the three
//!   scenarios locked by `tests/precopy_equivalence.rs` through the fault
//!   harness (explicit [`FaultPlan::none`]) and emits the full report
//!   projection. The output file is deterministic, so running the binary
//!   twice and comparing bytes proves the harness adds no nondeterminism;
//!   the locked goldens in the test suite pin the same digits to the
//!   pre-harness engine.

use javmm::orchestrator::{run_scenario, Scenario};
use javmm::vm::{JavaVm, JavaVmConfig};
use migrate::config::{CoordPolicy, MigrationConfig};
use migrate::error::{MigrateError, MigrationOutcome};
use migrate::precopy::PrecopyEngine;
use migrate::report::MigrationReport;
use simkit::units::MIB;
use simkit::{FaultPlan, GcOverrun, LaneFaults, LinkDegrade, SimClock, SimDuration, StallPoint};
use std::fmt::Write as _;
use std::time::Instant;
use workloads::catalog;

/// One row of the matrix: a named fault scenario.
struct Row {
    name: &'static str,
    faults: FaultPlan,
    /// Whether the cell is allowed (expected) to end in `Err`.
    may_error: bool,
}

fn rows() -> Vec<Row> {
    let mut rows = vec![Row {
        name: "none",
        faults: FaultPlan::none(),
        may_error: false,
    }];
    for stall in StallPoint::ALL {
        rows.push(Row {
            name: match stall {
                StallPoint::Initialized => "stall-initialized",
                StallPoint::MigrationStarted => "stall-migration-started",
                StallPoint::EnteringLastIter => "stall-entering-last-iter",
                StallPoint::SuspensionReady => "stall-suspension-ready",
                StallPoint::Degraded => "stall-degraded",
            },
            faults: FaultPlan {
                agent_stall: Some(stall),
                ..FaultPlan::none()
            },
            may_error: false,
        });
    }
    rows.push(Row {
        name: "evtchn-dead",
        faults: FaultPlan {
            seed: 7,
            evtchn: LaneFaults {
                drop: 1.0,
                ..LaneFaults::NONE
            },
            ..FaultPlan::none()
        },
        may_error: false,
    });
    let chaos = LaneFaults {
        drop: 0.3,
        delay: 0.3,
        delay_max: SimDuration::from_millis(5),
        duplicate: 0.3,
    };
    rows.push(Row {
        name: "evtchn-chaos",
        faults: FaultPlan {
            seed: 11,
            evtchn: chaos,
            ..FaultPlan::none()
        },
        may_error: false,
    });
    rows.push(Row {
        name: "netlink-chaos",
        faults: FaultPlan {
            seed: 13,
            netlink: chaos,
            ..FaultPlan::none()
        },
        may_error: false,
    });
    rows.push(Row {
        name: "gc-overrun-5s",
        faults: FaultPlan {
            gc_overrun: Some(GcOverrun {
                extra: SimDuration::from_secs(5),
            }),
            ..FaultPlan::none()
        },
        may_error: false,
    });
    rows.push(Row {
        name: "link-quartered",
        faults: FaultPlan {
            link: Some(LinkDegrade {
                after: SimDuration::from_secs(1),
                factor: 0.25,
            }),
            ..FaultPlan::none()
        },
        may_error: false,
    });
    rows.push(Row {
        name: "link-dead",
        faults: FaultPlan {
            link: Some(LinkDegrade {
                after: SimDuration::from_secs(1),
                factor: 0.0,
            }),
            ..FaultPlan::none()
        },
        may_error: true,
    });
    rows
}

fn cell_config(faults: FaultPlan) -> MigrationConfig {
    MigrationConfig::builder()
        .assisted(true)
        .coord(CoordPolicy {
            degrade_on_stragglers: true,
            ..CoordPolicy::default()
        })
        .faults(faults)
        .build()
        .expect("valid config")
}

/// Runs one matrix cell: a small assisted guest with the row's faults.
fn run_cell(faults: FaultPlan, seed: u64) -> Result<MigrationReport, MigrateError> {
    let mut vmc = JavaVmConfig::paper(catalog::mpeg(), true, seed);
    vmc.young_max = Some(256 * MIB);
    vmc.lkm.reply_timeout = SimDuration::from_millis(500);
    let mut vm = JavaVm::launch(vmc);
    let mut clock = SimClock::new();
    vm.run_for(
        &mut clock,
        SimDuration::from_secs(10),
        SimDuration::from_millis(2),
    );
    PrecopyEngine::new(cell_config(faults)).migrate(&mut vm, &mut clock)
}

fn outcome_label(result: &Result<MigrationReport, MigrateError>) -> String {
    match result {
        Ok(r) => match r.outcome {
            MigrationOutcome::Completed => "completed".to_string(),
            MigrationOutcome::DegradedVanilla { fault } => format!("degraded:{}", fault.name()),
        },
        Err(MigrateError::LinkDown) => "error:link_down".to_string(),
        Err(MigrateError::CoordTimeout { phase, .. }) => {
            format!("error:coord_timeout:{}", phase.name())
        }
        Err(MigrateError::MissingLkm) => "error:missing_lkm".to_string(),
        Err(MigrateError::Config(_)) => "error:config".to_string(),
    }
}

/// Serializes the deterministic projection of a report — the same fields
/// `tests/precopy_equivalence.rs` locks.
fn report_lines(name: &str, r: &MigrationReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{name} total_bytes={} duration_ns={} cpu_ns={}",
        r.total_bytes,
        r.total_duration.as_nanos(),
        r.cpu_time.as_nanos()
    );
    let _ = writeln!(
        s,
        "{name} downtime_ns=({},{},{},{},{})",
        r.downtime.safepoint_wait.as_nanos(),
        r.downtime.enforced_gc.as_nanos(),
        r.downtime.final_update.as_nanos(),
        r.downtime.last_iteration.as_nanos(),
        r.downtime.resume.as_nanos()
    );
    let _ = writeln!(
        s,
        "{name} verification=({},{},{},{})",
        r.verification.matching,
        r.verification.excused_skipped,
        r.verification.excused_free,
        r.verification.mismatched
    );
    for it in &r.iterations {
        let _ = writeln!(
            s,
            "{name} iter={} to_send={} sent={} bytes={} skip_dirty={} skip_transfer={} duration_ns={}",
            it.index,
            it.pages_to_send,
            it.pages_sent,
            it.bytes_sent,
            it.pages_skipped_dirty,
            it.pages_skipped_transfer,
            it.duration.as_nanos()
        );
    }
    s
}

/// The three fixed scenarios locked by `tests/precopy_equivalence.rs`,
/// rerun through the fault harness with an explicit zero plan.
fn zero_fault_column(out: &mut String, guard: std::time::Duration) {
    let cases: [(&str, _, bool, u64); 3] = [
        ("equiv/crypto-assisted-seed9", catalog::crypto(), true, 9),
        ("equiv/derby-xen-seed1", catalog::derby(), false, 1),
        ("equiv/derby-assisted-seed3", catalog::derby(), true, 3),
    ];
    for (name, workload, assisted, seed) in cases {
        let config = MigrationConfig::builder()
            .assisted(assisted)
            .faults(FaultPlan::none())
            .build()
            .expect("valid config");
        let started = Instant::now();
        let report = run_scenario(&Scenario::quick(
            JavaVmConfig::paper(workload, assisted, seed),
            config,
            SimDuration::from_secs(20),
            SimDuration::from_secs(5),
        ))
        .expect("zero-fault scenario failed")
        .report;
        let wall = started.elapsed();
        assert!(
            wall < guard,
            "{name} exceeded the wall-clock guard ({wall:?} >= {guard:?})"
        );
        assert_eq!(
            report.outcome,
            MigrationOutcome::Completed,
            "{name}: a zero plan must not degrade"
        );
        eprintln!("{name}: completed in {wall:?} wall");
        out.push_str(&report_lines(name, &report));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let guard_secs: u64 = args
        .iter()
        .position(|a| a == "--guard-secs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let guard = std::time::Duration::from_secs(guard_secs);

    let seeds = [1u64, 2];
    let mut out = String::new();
    let mut hung = false;

    for row in rows() {
        for seed in seeds {
            let started = Instant::now();
            let result = run_cell(row.faults.clone(), seed);
            let wall = started.elapsed();
            let label = outcome_label(&result);
            if wall >= guard {
                eprintln!(
                    "FAIL {}/{seed}: exceeded wall-clock guard ({wall:?} >= {guard:?})",
                    row.name
                );
                hung = true;
            }
            if let Ok(report) = &result {
                assert!(
                    report.verification.is_correct(),
                    "{}/{seed}: destination memory incorrect",
                    row.name
                );
            } else {
                assert!(
                    row.may_error,
                    "{}/{seed}: unexpected error outcome {label}",
                    row.name
                );
            }
            eprintln!("{}/{seed}: {label} in {wall:?} wall", row.name);
            let _ = writeln!(
                out,
                "cell scenario={} seed={seed} outcome={label}",
                row.name
            );
        }
    }

    zero_fault_column(&mut out, guard);

    if let Some(path) = out_path {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
        std::fs::write(&path, &out).expect("write output");
        eprintln!("wrote {path}");
    } else {
        print!("{out}");
    }

    if hung {
        std::process::exit(1);
    }
}
