//! `bench fleet` — policy comparison for whole-host drains.
//!
//! Runs one roster (see [`cluster::roster`]) under every [`FleetPolicy`]
//! and folds the results into `BENCH_fleet.json`: per-policy total
//! eviction time, aggregate downtime, wire bytes, SLA cost and workload
//! observatory accuracy (confident estimates, window-hit rate, period
//! accuracy), plus each policy's eviction ratio against the FIFO
//! baseline and a detected-vs-declared comparison of the cycle-aware
//! policy against its declared-hint oracle. Per-VM rows stream out of
//! the scheduler as each migration completes (the digest never needs
//! every report in memory at once), and everything is deterministic —
//! same roster + same seed produce a byte-identical document — so CI
//! diffs two fresh runs to prove it.

use cluster::{roster, run_fleet_streamed, FleetPolicy, FleetRowSink};
use javmm::host::HostSpec;
use migrate::digest::{FleetDigest, FleetVmEntry};
use std::fmt::Write as _;

/// Looks up a roster by its CLI name.
pub fn roster_by_name(name: &str, seed: u64) -> Option<HostSpec> {
    match name {
        "solo" => Some(roster::solo(seed)),
        "drain4" => Some(roster::drain4(seed)),
        "drain12" => Some(roster::drain12(seed)),
        "adversarial" => Some(roster::adversarial(seed)),
        _ => None,
    }
}

/// One policy's drain outcome.
pub struct PolicyRun {
    /// The ordering policy the drain ran under.
    pub policy: FleetPolicy,
    /// The drain's fleet digest.
    pub digest: FleetDigest,
}

/// Adapter turning a closure into a [`FleetRowSink`].
struct RowTap<'a>(&'a mut dyn FnMut(&FleetVmEntry));

impl FleetRowSink for RowTap<'_> {
    fn row(&mut self, entry: &FleetVmEntry) {
        (self.0)(entry);
    }
}

/// Drains `host` once per listed policy, streaming each completed VM's
/// row to `on_row` as the drain produces it (completion order).
pub fn run_policies_with(
    host: &HostSpec,
    policies: &[FleetPolicy],
    on_row: &mut dyn FnMut(FleetPolicy, &FleetVmEntry),
) -> Vec<PolicyRun> {
    policies
        .iter()
        .map(|&policy| {
            let mut tap = |entry: &FleetVmEntry| on_row(policy, entry);
            let mut sink = RowTap(&mut tap);
            PolicyRun {
                policy,
                digest: run_fleet_streamed(host, policy, &mut sink).expect("drain failed"),
            }
        })
        .collect()
}

/// Drains `host` once per policy, in [`FleetPolicy::ALL`] order.
pub fn run_policies(host: &HostSpec) -> Vec<PolicyRun> {
    run_policies_with(host, &FleetPolicy::ALL, &mut |_, _| {})
}

/// Renders the per-policy comparison as an aligned text table.
pub fn render_table(runs: &[PolicyRun]) -> String {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "{:<14} {:>11} {:>16} {:>9} {:>9} {:>9} {:>13} {:>9} {:>9} {:>11}",
        "policy",
        "eviction_s",
        "agg_downtime_ms",
        "total_MB",
        "sla_cost",
        "degraded",
        "nonconverged",
        "estimated",
        "hit_rate",
        "period_acc"
    );
    for run in runs {
        let d = &run.digest;
        let _ = writeln!(
            o,
            "{:<14} {:>11.2} {:>16.1} {:>9.1} {:>9.2} {:>9} {:>13} {:>9} {:>9.2} {:>11.3}",
            run.policy.name(),
            d.eviction_ns as f64 / 1e9,
            d.aggregate_downtime_ns as f64 / 1e6,
            d.total_bytes as f64 / 1e6,
            d.sla_total.total(),
            d.degraded,
            d.nonconverged,
            d.detect.estimated,
            d.detect.window_hit_rate,
            d.detect.period_accuracy,
        );
    }
    o
}

/// Serialises the comparison as the `BENCH_fleet.json` document. Rows are
/// in the order the policies ran and every number is computed from the
/// deterministic digests, so the output is byte-stable across runs.
pub fn to_json(host: &HostSpec, runs: &[PolicyRun]) -> String {
    let fifo_eviction = runs
        .iter()
        .find(|r| r.policy == FleetPolicy::Fifo)
        .map(|r| r.digest.eviction_ns)
        .unwrap_or(0);
    let mut o = String::new();
    o.push_str("{\n");
    o.push_str("  \"schema\": \"javmm-bench-fleet-v2\",\n");
    let _ = writeln!(o, "  \"roster\": \"{}\",", host.name);
    let _ = writeln!(o, "  \"seed\": {},", host.seed);
    let _ = writeln!(o, "  \"tenants\": {},", host.tenants.len());
    let _ = writeln!(
        o,
        "  \"uplink_bytes_per_sec\": {},",
        host.uplink.bytes_per_sec()
    );
    let _ = writeln!(o, "  \"max_concurrent\": {},", host.max_concurrent);
    o.push_str("  \"policies\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let d = &run.digest;
        o.push_str("    {\n");
        let _ = writeln!(o, "      \"policy\": \"{}\",", run.policy.name());
        let _ = writeln!(o, "      \"eviction_ns\": {},", d.eviction_ns);
        let _ = writeln!(
            o,
            "      \"eviction_vs_fifo\": {},",
            if fifo_eviction > 0 {
                format!("{:.4}", d.eviction_ns as f64 / fifo_eviction as f64)
            } else {
                "null".to_string()
            }
        );
        let _ = writeln!(
            o,
            "      \"aggregate_downtime_ns\": {},",
            d.aggregate_downtime_ns
        );
        let _ = writeln!(o, "      \"total_bytes\": {},", d.total_bytes);
        let _ = writeln!(o, "      \"sla_cost\": {},", d.sla_total.total());
        let _ = writeln!(o, "      \"sla_downtime\": {},", d.sla_total.downtime);
        let _ = writeln!(o, "      \"sla_brownout\": {},", d.sla_total.brownout);
        let _ = writeln!(o, "      \"sla_penalty\": {},", d.sla_total.penalty);
        let _ = writeln!(o, "      \"degraded\": {},", d.degraded);
        let _ = writeln!(o, "      \"nonconverged\": {},", d.nonconverged);
        o.push_str("      \"detect\": {\n");
        let _ = writeln!(o, "        \"estimated\": {},", d.detect.estimated);
        let _ = writeln!(
            o,
            "        \"cyclic_declared\": {},",
            d.detect.cyclic_declared
        );
        let _ = writeln!(
            o,
            "        \"window_hit_rate\": {},",
            d.detect.window_hit_rate
        );
        let _ = writeln!(
            o,
            "        \"mean_confidence\": {},",
            d.detect.mean_confidence
        );
        let _ = writeln!(
            o,
            "        \"period_accuracy\": {}",
            d.detect.period_accuracy
        );
        o.push_str("      }\n");
        o.push_str(if i + 1 < runs.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    o.push_str("  ],\n");
    // The observatory's headline number: how much the cycle-aware policy
    // scheduled on *detected* estimates costs (or saves) relative to the
    // same deferral computed from the tenants' *declared* phase cycles.
    let cycle = runs.iter().find(|r| r.policy == FleetPolicy::CycleAware);
    let declared = runs.iter().find(|r| r.policy == FleetPolicy::CycleDeclared);
    match (cycle, declared) {
        (Some(c), Some(d)) if d.digest.eviction_ns > 0 => {
            o.push_str("  \"detected_vs_declared\": {\n");
            let _ = writeln!(o, "    \"detected_eviction_ns\": {},", c.digest.eviction_ns);
            let _ = writeln!(o, "    \"declared_eviction_ns\": {},", d.digest.eviction_ns);
            let _ = writeln!(
                o,
                "    \"eviction_ratio\": {:.4},",
                c.digest.eviction_ns as f64 / d.digest.eviction_ns as f64
            );
            let _ = writeln!(
                o,
                "    \"window_hit_rate\": {},",
                c.digest.detect.window_hit_rate
            );
            let _ = writeln!(
                o,
                "    \"period_accuracy\": {}",
                c.digest.detect.period_accuracy
            );
            o.push_str("  }\n");
        }
        _ => o.push_str("  \"detected_vs_declared\": null\n"),
    }
    o.push_str("}\n");
    o
}
