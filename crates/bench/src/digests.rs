//! The migration observatory's digest scenarios.
//!
//! `bench digest` runs a fixed roster of recorded migrations — the three
//! fixed-seed scenarios locked by `tests/precopy_equivalence.rs` plus one
//! deliberately degraded run — folds each into a
//! [`migrate::digest::RunDigest`], and writes `DIGEST_<name>.json` (the
//! compare baseline) and `DIGEST_<name>.prom` (Prometheus text exposition
//! of the run's metrics registry) into the output directory. `bench
//! compare <old> <new>` diffs two digest documents under the per-metric
//! regression thresholds of [`migrate::digest::compare`].
//!
//! Everything here is deterministic: same binary, same roster, same seeds
//! produce byte-identical digests, which is what makes the committed
//! baselines in `results/` a meaningful CI gate.

use javmm::orchestrator::{run_scenario_recorded, Scenario};
use javmm::vm::JavaVmConfig;
use migrate::config::{CoordPolicy, MigrationConfig};
use migrate::digest::{DigestMeta, RunDigest};
use simkit::telemetry::export::prometheus_to_string;
use simkit::telemetry::Recorder;
use simkit::units::MIB;
use simkit::{FaultPlan, LaneFaults, SimDuration};
use workloads::catalog;

/// One roster entry: a named, fully pinned migration scenario.
pub struct DigestScenario {
    /// Stable name; becomes the digest's scenario key and file name.
    pub name: &'static str,
    /// Workload label carried into the digest metadata.
    pub workload: &'static str,
    /// Whether the run is assisted.
    pub assisted: bool,
    /// Root seed.
    pub seed: u64,
    build: fn(u64) -> (JavaVmConfig, MigrationConfig, SimDuration, SimDuration),
}

fn standard(
    workload: workloads::spec::WorkloadSpec,
    assisted: bool,
    seed: u64,
) -> (JavaVmConfig, MigrationConfig, SimDuration, SimDuration) {
    let config = if assisted {
        MigrationConfig::javmm_default()
    } else {
        MigrationConfig::xen_default()
    };
    (
        JavaVmConfig::paper(workload, assisted, seed),
        config,
        SimDuration::from_secs(20),
        SimDuration::from_secs(5),
    )
}

/// The degraded roster entry: a dead event channel eats every coordination
/// message, so the begin-ack retry budget runs out and the engine falls
/// back to vanilla pre-copy (`tests/degradation.rs` locks this behavior).
fn degraded_beginack(seed: u64) -> (JavaVmConfig, MigrationConfig, SimDuration, SimDuration) {
    let mut vm = JavaVmConfig::paper(catalog::mpeg(), true, seed);
    vm.young_max = Some(256 * MIB);
    vm.lkm.reply_timeout = SimDuration::from_millis(500);
    let config = MigrationConfig::builder()
        .assisted(true)
        .coord(CoordPolicy {
            degrade_on_stragglers: true,
            ..CoordPolicy::default()
        })
        .faults(FaultPlan {
            seed: 7,
            evtchn: LaneFaults {
                drop: 1.0,
                ..LaneFaults::NONE
            },
            ..FaultPlan::none()
        })
        .build()
        .expect("valid config");
    (
        vm,
        config,
        SimDuration::from_secs(10),
        SimDuration::from_secs(5),
    )
}

/// The fixed digest roster.
pub fn scenarios() -> Vec<DigestScenario> {
    vec![
        DigestScenario {
            name: "crypto-assisted-seed9",
            workload: "crypto",
            assisted: true,
            seed: 9,
            build: |seed| standard(catalog::crypto(), true, seed),
        },
        DigestScenario {
            name: "derby-xen-seed1",
            workload: "derby",
            assisted: false,
            seed: 1,
            build: |seed| standard(catalog::derby(), false, seed),
        },
        DigestScenario {
            name: "derby-assisted-seed3",
            workload: "derby",
            assisted: true,
            seed: 3,
            build: |seed| standard(catalog::derby(), true, seed),
        },
        DigestScenario {
            name: "mpeg-degraded-beginack",
            workload: "mpeg",
            assisted: true,
            seed: 31,
            build: degraded_beginack,
        },
    ]
}

/// Runs one roster entry and folds it into a digest plus the Prometheus
/// exposition of its metrics registry. `scan_slowdown` scales the
/// engine's per-page scan CPU cost (1.0 = stock); it exists to prove the
/// regression gate fires — see the `--scan-slowdown` flag.
pub fn run_digest_scenario(s: &DigestScenario, scan_slowdown: f64) -> (RunDigest, String) {
    let (vm, mut config, warmup, tail) = (s.build)(s.seed);
    if scan_slowdown != 1.0 {
        config.cpu_cost_per_page_scan = config.cpu_cost_per_page_scan.mul_f64(scan_slowdown);
    }
    let outcome =
        run_scenario_recorded(&Scenario::quick(vm, config, warmup, tail), Recorder::new())
            .expect("digest scenario failed");
    let meta = DigestMeta {
        name: s.name.to_string(),
        workload: s.workload.to_string(),
        assisted: s.assisted,
        seed: s.seed,
    };
    let prom = prometheus_to_string(&outcome.report.telemetry);
    (RunDigest::from_report(meta, &outcome.report), prom)
}
