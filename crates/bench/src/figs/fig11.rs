//! Figure 11: effect of migration on workload throughput.
//!
//! Operations per second over time, sampled by the external analyzer, with
//! migration starting halfway through the run. Xen shows an extended gap
//! and a degradation during migration; JAVMM only a short pause.

use crate::opts::FigOpts;
use crate::render::{bar, heading};
use javmm::orchestrator::ScenarioOutcome;
use workloads::catalog;

fn render_series(label: &str, out: &ScenarioOutcome, window: (f64, f64)) -> String {
    let mut s = format!(
        "\n{label}: migration {:.1}s..{:.1}s, mean ops/s before {:.2} / after {:.2}, \
         longest throughput gap {}s\n",
        out.migration_started_at,
        out.migration_ended_at,
        out.mean_ops_before,
        out.mean_ops_after,
        out.throughput_gap(),
    );
    let peak = out
        .throughput
        .iter()
        .filter(|(t, _)| *t >= window.0 && *t < window.1)
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max);
    for (t, v) in &out.throughput {
        if *t < window.0 || *t >= window.1 {
            continue;
        }
        let marker = if *t >= out.migration_started_at && *t <= out.migration_ended_at {
            "M"
        } else {
            " "
        };
        s.push_str(&format!(
            "{t:>6.0}s {marker} |{}| {v:.2}\n",
            bar(*v, peak, 30)
        ));
    }
    s
}

/// Extension trait-ish helper: the longest zero-ops gap around migration.
trait GapExt {
    fn throughput_gap(&self) -> u64;
}

impl GapExt for ScenarioOutcome {
    fn throughput_gap(&self) -> u64 {
        let mut longest = 0u64;
        let mut current = 0u64;
        for (t, v) in &self.throughput {
            if *t < self.migration_started_at - 5.0 || *t > self.migration_ended_at + 5.0 {
                continue;
            }
            if *v == 0.0 {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        longest
    }
}

/// Generates the three panels (derby, crypto, scimark). All six runs fan
/// out through the deterministic runner and render in fixed order.
pub fn run(opts: &FigOpts) -> String {
    let specs = [catalog::derby(), catalog::crypto(), catalog::scimark()];
    let jobs: Vec<(usize, bool)> = (0..specs.len())
        .flat_map(|i| [(i, false), (i, true)])
        .collect();
    let mut outcomes = crate::runner::par_map(opts.run_parallel(), &jobs, |&(i, assisted)| {
        super::run_one(&specs[i], None, assisted, 1, opts)
    })
    .into_iter();

    let mut s = heading("Figure 11: workload throughput across migration");
    for spec in &specs {
        let xen = outcomes.next().expect("xen run");
        let javmm = outcomes.next().expect("javmm run");
        let w0 = (xen.migration_started_at - 20.0).max(0.0);
        let w1 = xen.migration_ended_at + 20.0;
        s.push_str(&format!("\n--- {} ---\n", spec.name));
        s.push_str(&render_series("Xen  ", &xen, (w0, w1)));
        let w1j = javmm.migration_ended_at + 20.0;
        s.push_str(&render_series("JAVMM", &javmm, (w0, w1j)));
    }
    s.push_str(
        "\npaper: with JAVMM no noticeable degradation except the short pause; \
         with Xen an extended downtime and reduced throughput during migration.\n",
    );
    s
}
