//! Figure 10 (+ Table 2 + the §5.3 resource numbers): migration
//! performance for workloads of different heap-usage categories.
//!
//! Total migration time (a), total traffic (b) and workload downtime (c)
//! for derby (Category 1), crypto (Category 2) and scimark (Category 3),
//! under vanilla Xen and JAVMM, averaged over seeds with 90% CIs.

use crate::opts::FigOpts;
use crate::render::{heading, mb, reduction, table};
use crate::runner;
use javmm::experiment::Summary;
use javmm::orchestrator::ScenarioOutcome;
use workloads::spec::WorkloadSpec;

struct Cell {
    time: Summary,
    traffic: Summary,
    downtime: Summary,
    cpu: Summary,
    outcomes: Vec<ScenarioOutcome>,
}

fn build_cell(outcomes: Vec<ScenarioOutcome>) -> Cell {
    let metric = |f: &dyn Fn(&ScenarioOutcome) -> f64| {
        Summary::of(&outcomes.iter().map(f).collect::<Vec<_>>())
    };
    Cell {
        time: metric(&|o| o.report.total_duration.as_secs_f64()),
        traffic: metric(&|o| o.report.total_bytes as f64 / 1e9),
        downtime: metric(&|o| o.report.downtime.workload_downtime().as_secs_f64()),
        cpu: metric(&|o| o.report.cpu_time.as_secs_f64()),
        outcomes,
    }
}

/// Shared by Figures 10 and 12: render the three panels for a set of
/// (workload, young_max) rows.
///
/// Every (workload, mode, seed) triple is an independent co-simulation, so
/// the whole grid fans out through [`runner::par_map`]; cells come back in
/// input order, keeping the rendering byte-identical to a serial run.
pub fn render_panels(
    title: &str,
    entries: &[(WorkloadSpec, Option<u64>)],
    opts: &FigOpts,
    paper_note: &str,
) -> String {
    let jobs: Vec<(usize, bool, u64)> = entries
        .iter()
        .enumerate()
        .flat_map(|(i, _)| {
            [false, true]
                .into_iter()
                .flat_map(move |assisted| (1..=opts.seeds).map(move |seed| (i, assisted, seed)))
        })
        .collect();
    let mut outcomes = runner::par_map(opts.run_parallel(), &jobs, |&(i, assisted, seed)| {
        let (w, young) = &entries[i];
        super::run_one(w, *young, assisted, seed, opts)
    })
    .into_iter();
    let cells: Vec<(String, Cell, Cell)> = entries
        .iter()
        .map(|(w, _)| {
            let per_mode = opts.seeds as usize;
            (
                w.name.to_string(),
                build_cell(outcomes.by_ref().take(per_mode).collect()),
                build_cell(outcomes.by_ref().take(per_mode).collect()),
            )
        })
        .collect();

    let mut s = heading(title);
    for (panel, label, get) in [
        ("(a) total migration time (s)", "time", 0usize),
        ("(b) total migration traffic (GB)", "traffic", 1),
        ("(c) workload downtime (s)", "downtime", 2),
    ] {
        let _ = label;
        let rows: Vec<Vec<String>> = cells
            .iter()
            .map(|(name, xen, javmm)| {
                let (x, j) = match get {
                    0 => (&xen.time, &javmm.time),
                    1 => (&xen.traffic, &javmm.traffic),
                    _ => (&xen.downtime, &javmm.downtime),
                };
                vec![
                    name.clone(),
                    format!("{}", x),
                    format!("{}", j),
                    reduction(x.mean, j.mean),
                ]
            })
            .collect();
        s.push_str(&format!("\n{panel}\n"));
        s.push_str(&table(&["workload", "Xen", "JAVMM", "JAVMM vs Xen"], &rows));
    }

    s.push_str("\nresource details (§5.3):\n");
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|(name, xen, javmm)| {
            let o = &javmm.outcomes[0];
            let lkm_bytes = o
                .report
                .lkm
                .as_ref()
                .map(|l| l.peak_cache_bytes + 64 * 1024)
                .unwrap_or(0);
            vec![
                name.clone(),
                format!("{}", xen.cpu),
                format!("{}", javmm.cpu),
                format!("{:.0}", o.report.downtime.final_update.as_secs_f64() * 1e6),
                format!("{:.2}", lkm_bytes as f64 / 1e6),
                format!("{:.2}", o.report.downtime.enforced_gc.as_secs_f64()),
            ]
        })
        .collect();
    s.push_str(&table(
        &[
            "workload",
            "Xen cpu(s)",
            "JAVMM cpu(s)",
            "final-update(us)",
            "bitmap+cache(MB)",
            "enforced-gc(s)",
        ],
        &rows,
    ));
    s.push_str(paper_note);

    s.push_str("\nobserved heap at migration (first seed):\n");
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|(name, xen, _)| {
            let o = &xen.outcomes[0];
            vec![name.clone(), mb(o.observed.young), mb(o.observed.old)]
        })
        .collect();
    s.push_str(&table(&["workload", "young(MB)", "old(MB)"], &rows));
    s
}

/// Generates Figure 10 with Table 2.
pub fn run(opts: &FigOpts) -> String {
    let entries = vec![
        (workloads::catalog::derby(), None),
        (workloads::catalog::crypto(), None),
        (workloads::catalog::scimark(), None),
    ];
    render_panels(
        "Figure 10 + Table 2: migration across heap-usage categories",
        &entries,
        opts,
        "paper: JAVMM reduces derby time/traffic/downtime by 82%/84%/83%, \
         crypto by 69%/72%/73%; scimark comparable time, 10% less traffic, \
         slightly longer downtime. Final update <300us, bitmap+cache <=1MB, \
         derby enforced GC 0.9s, CPU up to 84% less.\n",
    )
}
