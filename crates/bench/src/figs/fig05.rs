//! Figure 5: Java heap usage and GC behaviour of the nine workloads.
//!
//! (a) average Young/Old generation consumption, (b) garbage vs live data
//! in a minor GC, (c) minor-GC duration — all with the Young generation
//! allowed at most 1 GiB, as in the paper's profiling runs (§4.2).

use crate::opts::FigOpts;
use crate::render::{bar, heading, mb, table};
use crate::runner;
use javmm::profiles::profile_heap;
use simkit::units::GIB;
use workloads::catalog;

/// Generates all three panels. The nine profiling runs are independent,
/// so they fan out through [`runner::par_map`].
pub fn run(opts: &FigOpts) -> String {
    let profiles = runner::par_map(opts.run_parallel(), &catalog::all(), |w| {
        profile_heap(w, GIB, opts.profile, 1)
    });

    let mut s = heading("Figure 5a: memory consumption of the Java heap (MB)");
    let rows: Vec<Vec<String>> = profiles
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                mb(p.avg_young as u64),
                mb(p.avg_old as u64),
                bar(p.avg_young, GIB as f64, 24),
            ]
        })
        .collect();
    s.push_str(&table(&["workload", "young", "old", "young-gen"], &rows));

    s.push_str(&heading(
        "Figure 5b: garbage vs live data in a minor GC (MB)",
    ));
    let rows: Vec<Vec<String>> = profiles
        .iter()
        .map(|p| {
            let total = p.gc_garbage + p.gc_live;
            let pct = if total > 0.0 {
                p.gc_garbage / total * 100.0
            } else {
                0.0
            };
            vec![
                p.name.to_string(),
                mb(p.gc_garbage as u64),
                mb(p.gc_live as u64),
                format!("{pct:.1}%"),
            ]
        })
        .collect();
    s.push_str(&table(&["workload", "garbage", "live", "garbage%"], &rows));
    s.push_str("paper: >97% garbage for all workloads except scimark\n");

    s.push_str(&heading("Figure 5c: duration of a minor GC (s)"));
    let rows: Vec<Vec<String>> = profiles
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                format!("{:.2}", p.gc_duration.as_secs_f64()),
                format!("{}", p.gc_count),
                format!("{:.1}", p.gc_interval_secs),
            ]
        })
        .collect();
    s.push_str(&table(
        &["workload", "gc(s)", "gc-count", "interval(s)"],
        &rows,
    ));
    s.push_str("paper: compiler longest (~1.5s); Category-1 workloads GC every ~3s\n");
    s
}
