//! One module per figure/table of the paper's evaluation.

pub mod fig01;
pub mod fig05;
pub mod fig08;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod tables;

use crate::opts::FigOpts;
use javmm::orchestrator::{run_scenario, Scenario, ScenarioOutcome};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use workloads::spec::WorkloadSpec;

/// Runs the paper's procedure once: warm up, migrate, keep running.
pub fn run_one(
    workload: &WorkloadSpec,
    young_max: Option<u64>,
    assisted: bool,
    seed: u64,
    opts: &FigOpts,
) -> ScenarioOutcome {
    let mut vm = JavaVmConfig::paper(workload.clone(), assisted, seed);
    vm.young_max = young_max;
    let migration = if assisted {
        MigrationConfig::javmm_default()
    } else {
        MigrationConfig::xen_default()
    };
    run_scenario(&Scenario::quick(vm, migration, opts.warmup, opts.tail))
}
