//! One module per figure/table of the paper's evaluation.

pub mod fig01;
pub mod fig05;
pub mod fig08;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod tables;

use crate::opts::FigOpts;
use javmm::orchestrator::{run_scenario_recorded, Scenario, ScenarioOutcome};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use simkit::telemetry::export;
use simkit::{Recorder, RunTelemetry};
use workloads::spec::WorkloadSpec;

/// Runs the paper's procedure once: warm up, migrate, keep running.
///
/// With `opts.trace` set, the migration window is flight-recorded and the
/// trace files are (re)written after the run.
pub fn run_one(
    workload: &WorkloadSpec,
    young_max: Option<u64>,
    assisted: bool,
    seed: u64,
    opts: &FigOpts,
) -> ScenarioOutcome {
    let mut vm = JavaVmConfig::paper(workload.clone(), assisted, seed);
    vm.young_max = young_max;
    let mut migration = if assisted {
        MigrationConfig::javmm_default()
    } else {
        MigrationConfig::xen_default()
    };
    migration.scan_workers = opts.shard_workers.max(1);
    let recorder = if opts.trace.is_some() {
        Recorder::new()
    } else {
        Recorder::disabled()
    };
    let outcome = run_scenario_recorded(
        &Scenario::quick(vm, migration, opts.warmup, opts.tail),
        recorder,
    )
    .expect("scenario failed");
    if let Some(path) = &opts.trace {
        write_trace(path, &outcome.report.telemetry);
    }
    outcome
}

/// Writes `telemetry` as a Chrome trace-event file at `path` (openable in
/// Perfetto / `chrome://tracing`) plus a JSONL flight log next to it
/// (`.json` swapped for `.jsonl`, or `.jsonl` appended).
pub fn write_trace(path: &str, telemetry: &RunTelemetry) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create trace directory");
        }
    }
    std::fs::write(path, export::chrome_trace_to_string(telemetry)).expect("write Chrome trace");
    let jsonl = match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.jsonl"),
        None => format!("{path}.jsonl"),
    };
    std::fs::write(&jsonl, export::jsonl_to_string(telemetry)).expect("write JSONL flight log");
}
