//! Figure 12 (+ Table 3): Category-1 workloads with different Young sizes.
//!
//! xml, derby and compiler with maximum Young generations of 1.5 GiB,
//! 1 GiB and 0.5 GiB (75%, 50% and 25% of VM memory). The larger the Young
//! generation, the worse vanilla Xen does and the better JAVMM does.

use crate::figs::fig10::render_panels;
use crate::opts::FigOpts;
use simkit::units::MIB;
use workloads::catalog;

/// Generates Figure 12 with Table 3.
pub fn run(opts: &FigOpts) -> String {
    let entries = vec![
        (catalog::xml(), Some(1536 * MIB)),
        (catalog::derby(), Some(1024 * MIB)),
        (catalog::compiler(), Some(512 * MIB)),
    ];
    render_panels(
        "Figure 12 + Table 3: Category-1 sweep over Young generation size",
        &entries,
        opts,
        "paper: JAVMM cuts time by 91%/82%/69% for xml/derby/compiler, \
         traffic by up to 93%; Xen's downtime grows with the Young size \
         (up to 13s for xml) while JAVMM stays ~1.2s.\n",
    )
}
