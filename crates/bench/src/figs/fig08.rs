//! Figures 8 and 9: migration progress of a compiler VM, Xen vs JAVMM.
//!
//! Figure 8 plots each iteration as a box (width = duration, area =
//! traffic); Figure 9 stacks the memory *processed* per iteration into
//! transferred / skipped-already-dirtied / skipped-Young-generation.

use crate::opts::FigOpts;
use crate::render::{gb, heading, mb, table};
use migrate::report::MigrationReport;
use workloads::catalog;

fn progress_rows(r: &MigrationReport) -> Vec<Vec<String>> {
    r.iterations
        .iter()
        .map(|it| {
            let (sent, skip_dirty, skip_young) = it.processed_bytes();
            vec![
                it.index.to_string(),
                format!("{:.2}", it.duration.as_secs_f64()),
                mb(sent),
                mb(skip_dirty),
                mb(skip_young),
            ]
        })
        .collect()
}

/// Generates both figures. The two runs are independent co-simulations
/// and execute concurrently when the harness allows it.
pub fn run(opts: &FigOpts) -> String {
    let spec = catalog::compiler();
    let mut outcomes = crate::runner::par_map(opts.run_parallel(), &[false, true], |&assisted| {
        super::run_one(&spec, None, assisted, 1, opts)
    })
    .into_iter();
    let (xen, javmm) = (
        outcomes.next().expect("xen run"),
        outcomes.next().expect("javmm run"),
    );

    let headers = [
        "iter",
        "duration(s)",
        "sent(MB)",
        "skip:dirtied(MB)",
        "skip:young(MB)",
    ];
    let mut s = heading("Figures 8a+9a: Xen migrating the compiler VM");
    s.push_str(&table(&headers, &progress_rows(&xen.report)));
    s.push_str(&format!(
        "total: {:.1}s, {} GB\npaper:  58s, 6.1GB, forced stop\n",
        xen.report.total_duration.as_secs_f64(),
        gb(xen.report.total_bytes),
    ));

    s.push_str(&heading("Figures 8b+9b: JAVMM migrating the compiler VM"));
    s.push_str(&table(&headers, &progress_rows(&javmm.report)));
    s.push_str(&format!(
        "total: {:.1}s, {} GB; second-last iteration waits for safepoint \
         ({:.2}s) + enforced GC ({:.2}s)\npaper:  17s, 1.6GB, 11 iterations, \
         0.7s safepoint wait, 0.1s GC\n",
        javmm.report.total_duration.as_secs_f64(),
        gb(javmm.report.total_bytes),
        javmm.report.downtime.safepoint_wait.as_secs_f64(),
        javmm.report.downtime.enforced_gc.as_secs_f64(),
    ));
    s
}
