//! Figure 1: live migration of a 2 GB Xen VM running derby.
//!
//! The paper's motivating figure: per-iteration duration alongside the
//! transfer and dirtying rates (pages/second). The database dirties memory
//! faster than the link can carry it, so the dirty set never shrinks,
//! iterations stay long, and migration is forced to stop after generating
//! excessive traffic.

use crate::opts::FigOpts;
use crate::render::{gb, heading, table};
use workloads::catalog;

/// Generates the figure data.
pub fn run(opts: &FigOpts) -> String {
    let out = super::run_one(&catalog::derby(), None, false, 1, opts);
    let r = &out.report;

    let rows: Vec<Vec<String>> = r
        .iterations
        .iter()
        .map(|it| {
            vec![
                it.index.to_string(),
                format!("{:.2}", it.duration.as_secs_f64()),
                format!("{:.0}", it.transfer_rate_pps()),
                format!("{:.0}", it.dirtying_rate_pps()),
                format!("{:.0}", it.bytes_sent as f64 / 1e6),
            ]
        })
        .collect();

    let mut s = heading("Figure 1: vanilla Xen migration of a 2GB derby VM");
    s.push_str(&table(
        &[
            "iter",
            "duration(s)",
            "xfer(pages/s)",
            "dirty(pages/s)",
            "sent(MB)",
        ],
        &rows,
    ));
    s.push_str(&format!(
        "\ntotal: {:.1}s, {} GB traffic, {} iterations, downtime {:.2}s, \
         throughput before {:.2} ops/s vs during-migration degradation visible\n",
        r.total_duration.as_secs_f64(),
        gb(r.total_bytes),
        r.iteration_count(),
        r.downtime.vm_downtime().as_secs_f64(),
        out.mean_ops_before,
    ));
    s.push_str("paper: 66s, 7GB, ~30 iterations, 8s downtime, >20% throughput degradation\n");
    s
}
