//! Tables 1-3 of the paper.
//!
//! Table 1 is the workload catalog. Tables 2 and 3 (experimental settings
//! with observed heap sizes) are emitted alongside Figures 10 and 12, which
//! produce the observations; standalone variants here run the warmup only.

use crate::opts::FigOpts;
use crate::render::{heading, mb, table};
use javmm::orchestrator::{run_scenario, Scenario};
use javmm::vm::JavaVmConfig;
use migrate::config::MigrationConfig;
use simkit::units::MIB;
use workloads::catalog;
use workloads::spec::WorkloadSpec;

/// Table 1: the workload descriptions.
pub fn table1() -> String {
    let rows: Vec<Vec<String>> = catalog::all()
        .iter()
        .map(|w| {
            vec![
                w.name.to_string(),
                w.description.to_string(),
                format!("{}", w.category.number()),
            ]
        })
        .collect();
    let mut s = heading("Table 1: SPECjvm2008 workloads");
    s.push_str(&table(&["workload", "description", "category"], &rows));
    s
}

fn observed_rows(entries: &[(WorkloadSpec, u64)], opts: &FigOpts) -> Vec<Vec<String>> {
    crate::runner::par_map(opts.run_parallel(), entries, |(w, young_max)| {
        let mut vm = JavaVmConfig::paper(w.clone(), false, 1);
        vm.young_max = Some(*young_max);
        let scenario = Scenario::quick(
            vm,
            MigrationConfig::xen_default(),
            opts.warmup,
            simkit::SimDuration::from_secs(1),
        );
        let out = run_scenario(&scenario).expect("scenario failed");
        vec![
            w.name.to_string(),
            mb(*young_max),
            mb(out.observed.young),
            mb(out.observed.old),
        ]
    })
}

/// Table 2: settings/observations for the category representatives.
pub fn table2(opts: &FigOpts) -> String {
    let entries = vec![
        (catalog::derby(), 1024 * MIB),
        (catalog::crypto(), 1024 * MIB),
        (catalog::scimark(), 1024 * MIB),
    ];
    let mut s = heading("Table 2: workloads with different heap-usage characteristics");
    s.push_str(&table(
        &["workload", "max young(MB)", "young(MB)", "old(MB)"],
        &observed_rows(&entries, opts),
    ));
    s.push_str("paper: derby 1024/259, crypto 456/18, scimark 128/486 (MB)\n");
    s
}

/// Table 3: settings/observations for the Young-size sweep.
pub fn table3(opts: &FigOpts) -> String {
    let entries = vec![
        (catalog::xml(), 1536 * MIB),
        (catalog::derby(), 1024 * MIB),
        (catalog::compiler(), 512 * MIB),
    ];
    let mut s = heading("Table 3: Category-1 workloads with different max Young sizes");
    s.push_str(&table(
        &["workload", "max young(MB)", "young(MB)", "old(MB)"],
        &observed_rows(&entries, opts),
    ));
    s.push_str("paper: xml 1536/28, derby 1024/259, compiler 512/86 (MB)\n");
    s
}
