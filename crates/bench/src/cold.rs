//! `bench cold` — the cold-page assist benchmark (`BENCH_cold.json`).
//!
//! Runs a cold-heavy roster: one cacheapp-hosting guest per point on a
//! `--cold-fraction` ladder (0.0 → 0.8 of the cache held by a long-tail
//! resident set). Every guest migrates twice from an identically seeded
//! warm state — once with the cold assist off (plain assisted pre-copy,
//! the baseline) and once with defer + delta enabled — and the harness
//! reduces both runs into the savings ratios the CI digest gate watches:
//! total sent bytes, last-iteration bytes, and the XBZRLE wire discount.
//!
//! The JSON layout matches [`migrate::digest::compare_cold_bench`]:
//! `savings.total_bytes_ratio`, `savings.last_iter_bytes_ratio`,
//! `delta.saved_bytes_ratio` and `harness.verified` are gate inputs, so
//! their paths are part of the schema contract (`javmm-bench-cold-v1`).

use std::fmt::Write as _;

use javmm::vm::{JavaVm, JavaVmConfig};
use migrate::config::MigrationConfig;
use migrate::precopy::PrecopyEngine;
use migrate::report::MigrationReport;
use migrate::ColdAssistConfig;
use simkit::units::{Bandwidth, MIB};
use simkit::{DetRng, SimClock, SimDuration};
use workloads::cacheapp::{CacheApp, CacheAppConfig};
use workloads::catalog;

/// Roster name stamped into the JSON; `compare_cold_bench` refuses to diff
/// documents whose rosters differ.
pub const COLD_ROSTER: &str = "cacheapp-cold-ladder";

/// The `--cold-fraction` ladder the roster spans.
pub const COLD_LADDER: [f64; 5] = [0.0, 0.2, 0.4, 0.6, 0.8];

/// One guest on the cold roster.
#[derive(Debug, Clone)]
pub struct ColdVmSpec {
    /// Row label, e.g. `cold40`.
    pub name: String,
    /// Fraction of the cache held by the long-tail resident set.
    pub cold_fraction: f64,
    /// Deterministic seed shared by the baseline and assist runs.
    pub seed: u64,
}

/// The default roster: the full ladder, one seed per point.
pub fn roster(ladder: &[f64]) -> Vec<ColdVmSpec> {
    ladder
        .iter()
        .enumerate()
        .map(|(i, &cold_fraction)| ColdVmSpec {
            name: format!("cold{:02}", (cold_fraction * 100.0).round() as u32),
            cold_fraction,
            seed: 21 + i as u64,
        })
        .collect()
}

/// Both migrations of one roster guest, reduced to the gate inputs.
#[derive(Debug, Clone, Copy)]
pub struct ColdRunRow {
    /// Long-tail fraction of the cache for this guest.
    pub cold_fraction: f64,
    /// Total bytes sent with the cold assist off.
    pub baseline_bytes: u64,
    /// Stop-and-copy bytes with the cold assist off.
    pub baseline_last_iter_bytes: u64,
    /// Pre-copy iterations with the cold assist off.
    pub baseline_iterations: u32,
    /// Total bytes sent with defer + delta enabled.
    pub assist_bytes: u64,
    /// Stop-and-copy bytes with defer + delta enabled.
    pub assist_last_iter_bytes: u64,
    /// Pre-copy iterations with defer + delta enabled.
    pub assist_iterations: u32,
    /// Pages the classifier routed into the cold bulk stream.
    pub deferred_sent_pages: u64,
    /// XBZRLE cache hits on the assist run.
    pub delta_hits: u64,
    /// Re-send consultations that found no cached prior version.
    pub delta_misses: u64,
    /// Consultations whose encoded delta lost to the full page.
    pub delta_fallbacks: u64,
    /// Cache inserts that evicted another page (capacity pressure).
    pub delta_overflows: u64,
    /// Bytes that went on the wire as deltas (headers included).
    pub delta_wire_bytes: u64,
    /// Bytes those sends would have cost at full size.
    pub delta_full_bytes: u64,
    /// Destination digests matched page-for-page on *both* runs.
    pub verified: bool,
}

impl ColdRunRow {
    fn row(spec: &ColdVmSpec, baseline: &MigrationReport, assist: &MigrationReport) -> Self {
        let cold = assist.cold.unwrap_or_default();
        Self {
            cold_fraction: spec.cold_fraction,
            baseline_bytes: baseline.total_bytes,
            baseline_last_iter_bytes: baseline.last_iteration().bytes_sent,
            baseline_iterations: baseline.iteration_count(),
            assist_bytes: assist.total_bytes,
            assist_last_iter_bytes: assist.last_iteration().bytes_sent,
            assist_iterations: assist.iteration_count(),
            deferred_sent_pages: cold.deferred_sent_pages,
            delta_hits: cold.delta_hits,
            delta_misses: cold.delta_misses,
            delta_fallbacks: cold.delta_fallbacks,
            delta_overflows: cold.delta_overflows,
            delta_wire_bytes: cold.delta_wire_bytes,
            delta_full_bytes: cold.delta_full_bytes,
            verified: baseline.verification.is_correct()
                && assist.verification.is_correct()
                && !baseline.outcome.is_degraded()
                && !assist.outcome.is_degraded(),
        }
    }
}

/// The whole roster, reduced.
#[derive(Debug, Clone)]
pub struct ColdBenchResult {
    /// Per-guest rows, ladder order.
    pub rows: Vec<(ColdVmSpec, ColdRunRow)>,
    /// Delta page-cache capacity the assist runs used.
    pub delta_cache_pages: u64,
}

impl ColdBenchResult {
    /// `1 - assist/baseline` over the summed total bytes.
    pub fn total_bytes_ratio(&self) -> f64 {
        saved(
            self.rows.iter().map(|(_, r)| r.assist_bytes).sum(),
            self.rows.iter().map(|(_, r)| r.baseline_bytes).sum(),
        )
    }

    /// `1 - assist/baseline` over the summed stop-and-copy bytes.
    pub fn last_iter_bytes_ratio(&self) -> f64 {
        saved(
            self.rows
                .iter()
                .map(|(_, r)| r.assist_last_iter_bytes)
                .sum(),
            self.rows
                .iter()
                .map(|(_, r)| r.baseline_last_iter_bytes)
                .sum(),
        )
    }

    /// `1 - wire/full` over every delta-encoded send on the roster.
    pub fn delta_saved_bytes_ratio(&self) -> f64 {
        saved(
            self.rows.iter().map(|(_, r)| r.delta_wire_bytes).sum(),
            self.rows.iter().map(|(_, r)| r.delta_full_bytes).sum(),
        )
    }

    /// Every run on the roster verified page-for-page and kept the
    /// assisted protocol.
    pub fn verified(&self) -> bool {
        self.rows.iter().all(|(_, r)| r.verified)
    }
}

fn saved(new: u64, old: u64) -> f64 {
    if old == 0 {
        0.0
    } else {
        1.0 - new as f64 / old as f64
    }
}

/// Builds one roster guest: a quiet Java service plus a cache server whose
/// long tail carries `spec.cold_fraction` of the cache. `skip_fraction`
/// stays at 0.1 so the skip-over tail never overlaps the cold band.
fn launch_vm(spec: &ColdVmSpec) -> JavaVm {
    let mut config = JavaVmConfig::paper(catalog::mpeg(), true, spec.seed);
    config.young_max = Some(256 * MIB);
    let mut vm = JavaVm::launch(config);
    let cache = CacheApp::launch(
        vm.kernel_handle(),
        CacheAppConfig {
            cache_bytes: 512 * MIB,
            skip_fraction: 0.1,
            write_rate: 30e6,
            ops_per_sec: 10_000.0,
            miss_penalty: 0.3,
            refill_secs: 30.0,
            cold_fraction: spec.cold_fraction,
        },
        true,
        DetRng::new(spec.seed.wrapping_mul(31) + 11),
    );
    vm.add_app(Box::new(cache));
    vm
}

/// The roster's uplink: a quarter-gigabit share of a contended evacuation
/// trunk. The cold assist is built for exactly this regime — on the
/// paper's dedicated gigabit testbed link the guest converges before
/// re-sends accumulate, so there is nothing for defer or delta to save;
/// on a constrained share the re-dirtied working set is re-shipped every
/// iteration and the assist's discount compounds.
pub const COLD_UPLINK_MBYTES_PER_SEC: f64 = 32.0;

/// Default delta page-cache capacity for the roster: sized to cover the
/// whole guest (QEMU's recommended ceiling for XBZRLE caches), so in the
/// clean run eviction pressure stays at zero and the CI drill's one-entry
/// cache is the only configuration that thrashes.
pub const COLD_DELTA_CACHE_PAGES: u64 = 524_288;

fn run_once(spec: &ColdVmSpec, cold: ColdAssistConfig, warmup: SimDuration) -> MigrationReport {
    let mut vm = launch_vm(spec);
    let mut clock = SimClock::new();
    vm.run_for(&mut clock, warmup, SimDuration::from_millis(2));
    let mut config = MigrationConfig::javmm_default();
    config.bandwidth = Bandwidth::from_mbytes_per_sec(COLD_UPLINK_MBYTES_PER_SEC);
    config.cold = cold;
    PrecopyEngine::new(config)
        .migrate(&mut vm, &mut clock)
        .expect("cold roster migration failed")
}

/// Runs the full roster (baseline + assist per guest).
///
/// `narrate` receives one human line per finished guest.
pub fn run_roster(
    ladder: &[f64],
    delta_cache_pages: u64,
    warmup: SimDuration,
    mut narrate: impl FnMut(&str),
) -> ColdBenchResult {
    let mut rows = Vec::new();
    for spec in roster(ladder) {
        let baseline = run_once(&spec, ColdAssistConfig::off(), warmup);
        let assist_cfg = ColdAssistConfig {
            delta_cache_pages: delta_cache_pages as usize,
            ..ColdAssistConfig::full()
        };
        let assist = run_once(&spec, assist_cfg, warmup);
        let row = ColdRunRow::row(&spec, &baseline, &assist);
        narrate(&format!(
            "{}: {} -> {} total bytes ({:+.1}%), stop-and-copy {} -> {} ({:+.1}%), \
             {} deferred sends, {} delta hits{}",
            spec.name,
            row.baseline_bytes,
            row.assist_bytes,
            -100.0 * saved(row.assist_bytes, row.baseline_bytes),
            row.baseline_last_iter_bytes,
            row.assist_last_iter_bytes,
            -100.0 * saved(row.assist_last_iter_bytes, row.baseline_last_iter_bytes),
            row.deferred_sent_pages,
            row.delta_hits,
            if row.verified { "" } else { " [VERIFY FAILED]" },
        ));
        rows.push((spec, row));
    }
    ColdBenchResult {
        rows,
        delta_cache_pages,
    }
}

/// Renders the `javmm-bench-cold-v1` document.
pub fn to_json(result: &ColdBenchResult) -> String {
    let mut o = String::new();
    o.push_str("{\n");
    o.push_str("  \"schema\": \"javmm-bench-cold-v1\",\n");
    let _ = writeln!(o, "  \"roster\": \"{COLD_ROSTER}\",");
    let _ = writeln!(o, "  \"delta_cache_pages\": {},", result.delta_cache_pages);
    o.push_str("  \"savings\": {\n");
    let _ = writeln!(
        o,
        "    \"total_bytes_ratio\": {:.6},",
        result.total_bytes_ratio()
    );
    let _ = writeln!(
        o,
        "    \"last_iter_bytes_ratio\": {:.6}",
        result.last_iter_bytes_ratio()
    );
    o.push_str("  },\n");
    o.push_str("  \"delta\": {\n");
    let _ = writeln!(
        o,
        "    \"saved_bytes_ratio\": {:.6}",
        result.delta_saved_bytes_ratio()
    );
    o.push_str("  },\n");
    o.push_str("  \"harness\": {\n");
    let _ = writeln!(o, "    \"verified\": {}", result.verified());
    o.push_str("  },\n");
    o.push_str("  \"vms\": [\n");
    let n = result.rows.len();
    for (i, (spec, r)) in result.rows.iter().enumerate() {
        o.push_str("    {\n");
        let _ = writeln!(o, "      \"name\": \"{}\",", spec.name);
        let _ = writeln!(o, "      \"seed\": {},", spec.seed);
        let _ = writeln!(o, "      \"cold_fraction\": {:.2},", r.cold_fraction);
        let _ = writeln!(o, "      \"baseline_bytes\": {},", r.baseline_bytes);
        let _ = writeln!(
            o,
            "      \"baseline_last_iter_bytes\": {},",
            r.baseline_last_iter_bytes
        );
        let _ = writeln!(
            o,
            "      \"baseline_iterations\": {},",
            r.baseline_iterations
        );
        let _ = writeln!(o, "      \"assist_bytes\": {},", r.assist_bytes);
        let _ = writeln!(
            o,
            "      \"assist_last_iter_bytes\": {},",
            r.assist_last_iter_bytes
        );
        let _ = writeln!(o, "      \"assist_iterations\": {},", r.assist_iterations);
        let _ = writeln!(
            o,
            "      \"deferred_sent_pages\": {},",
            r.deferred_sent_pages
        );
        let _ = writeln!(o, "      \"delta_hits\": {},", r.delta_hits);
        let _ = writeln!(o, "      \"delta_misses\": {},", r.delta_misses);
        let _ = writeln!(o, "      \"delta_fallbacks\": {},", r.delta_fallbacks);
        let _ = writeln!(o, "      \"delta_overflows\": {},", r.delta_overflows);
        let _ = writeln!(o, "      \"delta_wire_bytes\": {},", r.delta_wire_bytes);
        let _ = writeln!(o, "      \"delta_full_bytes\": {},", r.delta_full_bytes);
        let _ = writeln!(o, "      \"verified\": {}", r.verified);
        o.push_str(if i + 1 == n { "    }\n" } else { "    },\n" });
    }
    o.push_str("  ]\n");
    o.push_str("}\n");
    o
}

/// Human summary table for stderr.
pub fn render_table(result: &ColdBenchResult) -> String {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "{:<8} {:>6} {:>14} {:>14} {:>8} {:>14} {:>14} {:>8}",
        "vm", "cold", "base bytes", "assist bytes", "saved", "base s&c", "assist s&c", "saved"
    );
    for (spec, r) in &result.rows {
        let _ = writeln!(
            o,
            "{:<8} {:>6.2} {:>14} {:>14} {:>7.1}% {:>14} {:>14} {:>7.1}%",
            spec.name,
            r.cold_fraction,
            r.baseline_bytes,
            r.assist_bytes,
            100.0 * saved(r.assist_bytes, r.baseline_bytes),
            r.baseline_last_iter_bytes,
            r.assist_last_iter_bytes,
            100.0 * saved(r.assist_last_iter_bytes, r.baseline_last_iter_bytes),
        );
    }
    let _ = writeln!(
        o,
        "roster: total saved {:.1}%, last-iteration saved {:.1}%, \
         delta wire discount {:.1}%, verified: {}",
        100.0 * result.total_bytes_ratio(),
        100.0 * result.last_iter_bytes_ratio(),
        100.0 * result.delta_saved_bytes_ratio(),
        result.verified()
    );
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_roster_names_and_seeds() {
        let r = roster(&COLD_LADDER);
        assert_eq!(r.len(), 5);
        assert_eq!(r[0].name, "cold00");
        assert_eq!(r[4].name, "cold80");
        assert_eq!(r[0].seed, 21);
        assert!((r[3].cold_fraction - 0.6).abs() < 1e-12);
    }

    #[test]
    fn one_point_saves_bytes_and_verifies() {
        // A single mid-ladder point, short warmup: the assist run must
        // verify page-for-page and not cost *more* wire than the baseline.
        let result = run_roster(&[0.6], 16384, SimDuration::from_secs(10), |_| {});
        assert_eq!(result.rows.len(), 1);
        let (_, row) = &result.rows[0];
        assert!(row.verified, "destination digests must match");
        assert!(
            row.assist_bytes <= row.baseline_bytes,
            "cold assist must not inflate total bytes: {} vs {}",
            row.assist_bytes,
            row.baseline_bytes
        );
        assert!(row.deferred_sent_pages > 0, "cold stream never drained");
    }
}
