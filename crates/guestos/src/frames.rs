//! The guest kernel's page-frame allocator.
//!
//! Hands out frames from the VM's free pool in a deliberately *scattered*
//! order. Real kernels fragment physical memory quickly, which is precisely
//! why a VA-contiguous skip-over area maps to non-contiguous PFNs and why
//! the LKM must walk page tables instead of assuming identity mappings.
//! A deterministic stride permutation reproduces that scattering without
//! randomness.

use vmem::Pfn;

/// A deterministic, scattering page-frame allocator.
///
/// # Examples
///
/// ```
/// use guestos::frames::FrameAllocator;
///
/// let mut fa = FrameAllocator::new(100, 200); // frames [100, 200)
/// let frames = fa.alloc(10).unwrap();
/// assert_eq!(frames.len(), 10);
/// assert!(frames.iter().all(|p| (100..200).contains(&p.0)));
/// // Scattered: not simply consecutive.
/// assert!(frames.windows(2).any(|w| w[1].0 != w[0].0 + 1));
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    /// Free frames, popped from the back.
    free: Vec<Pfn>,
    total: u64,
}

impl FrameAllocator {
    /// Creates an allocator over the frame range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start < end, "empty frame pool [{start}, {end})");
        let n = end - start;
        let stride = pick_stride(n);
        // Visit the pool with a coprime stride so successive allocations are
        // spread across the range; reverse so pop() yields index 0 first.
        let mut free: Vec<Pfn> = (0..n).map(|i| Pfn(start + (i * stride) % n)).collect();
        free.reverse();
        Self { free, total: n }
    }

    /// Allocates `n` frames, or `None` if the pool has fewer than `n` free.
    pub fn alloc(&mut self, n: u64) -> Option<Vec<Pfn>> {
        if (self.free.len() as u64) < n {
            return None;
        }
        Some(
            (0..n)
                .map(|_| self.free.pop().expect("length checked"))
                .collect(),
        )
    }

    /// Returns frames to the pool.
    ///
    /// Frames are pushed to the back of the free stack, so they are the next
    /// to be reused — matching the LIFO behaviour of real free lists that
    /// makes freed skip-over frames promptly reappear in other mappings.
    pub fn free(&mut self, frames: impl IntoIterator<Item = Pfn>) {
        self.free.extend(frames);
    }

    /// Returns the number of free frames.
    pub fn free_count(&self) -> u64 {
        self.free.len() as u64
    }

    /// Returns the total number of frames managed.
    pub fn total_count(&self) -> u64 {
        self.total
    }
}

/// Picks a stride coprime to `n` so the permutation covers every frame.
fn pick_stride(n: u64) -> u64 {
    if n == 1 {
        return 1;
    }
    // Prefer a large-ish prime; fall back to scanning for coprimality.
    for candidate in [104_729u64, 7919, 613, 101, 17, 3] {
        if candidate < n && gcd(candidate, n) == 1 {
            return candidate;
        }
    }
    let mut s = n / 2 + 1;
    while gcd(s, n) != 1 {
        s += 1;
    }
    s
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn allocates_every_frame_exactly_once() {
        let mut fa = FrameAllocator::new(10, 74);
        let frames = fa.alloc(64).unwrap();
        let set: BTreeSet<u64> = frames.iter().map(|p| p.0).collect();
        assert_eq!(set.len(), 64);
        assert_eq!(*set.iter().next().unwrap(), 10);
        assert_eq!(*set.iter().last().unwrap(), 73);
        assert!(fa.alloc(1).is_none(), "pool exhausted");
    }

    #[test]
    fn free_makes_frames_reusable() {
        let mut fa = FrameAllocator::new(0, 8);
        let a = fa.alloc(8).unwrap();
        assert!(fa.alloc(1).is_none());
        fa.free(a.iter().copied().take(3));
        assert_eq!(fa.free_count(), 3);
        let b = fa.alloc(3).unwrap();
        let expect: Vec<Pfn> = a[..3].iter().rev().copied().collect();
        assert_eq!(b, expect, "LIFO reuse");
    }

    #[test]
    fn scattering_is_not_consecutive() {
        let mut fa = FrameAllocator::new(0, 1000);
        let frames = fa.alloc(100).unwrap();
        let consecutive = frames.windows(2).filter(|w| w[1].0 == w[0].0 + 1).count();
        assert!(consecutive < 10, "allocation order too sequential");
    }

    #[test]
    fn single_frame_pool() {
        let mut fa = FrameAllocator::new(5, 6);
        assert_eq!(fa.alloc(1).unwrap(), vec![Pfn(5)]);
    }

    #[test]
    #[should_panic(expected = "empty frame pool")]
    fn empty_pool_rejected() {
        let _ = FrameAllocator::new(5, 5);
    }
}
