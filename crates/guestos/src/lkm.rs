//! The Loadable Kernel Module: coordinator of application-assisted migration.
//!
//! The LKM is the system-level component of the framework (§3.3). It:
//!
//! * relays messages between the migration daemon (event channel) and the
//!   assisting applications (netlink multicast), bridging the
//!   *communication gap*;
//! * translates application-supplied VA ranges into PFNs by page-table
//!   walks, bridging the *semantic gap*;
//! * owns the transfer bitmap and keeps it current through the first update
//!   (migration begin), immediate shrink updates, and the final update right
//!   before the last iteration (§3.3.4);
//! * caches the PFNs of skip-over pages so shrink notifications can be
//!   answered after the underlying frames were reclaimed;
//! * transitions through the five operating states of Figure 4 — including
//!   the [`LkmState::Degraded`] terminal of the degradation ladder — and
//!   handles stragglers with a reply deadline (§6).
//!
//! All coordination rides [`CoordMsg`] envelopes. The LKM gates daemon
//! messages by sequence number: retries (fresh seq) are re-handled
//! idempotently, transport duplicates and stale reorderings (seq at or
//! below the watermark) are counted and dropped. Application messages are
//! deduplicated per pid the same way; a message lost there is reconciled by
//! the final bitmap update or, past the reply deadline, by straggler
//! handling — never by hanging.

use crate::coord::{CoordMsg, CoordPayload};
use crate::evtchn::{channel_pair, LkmPort};
use crate::netlink::KernelNetlink;
use crate::process::{Pid, Process};
use simkit::{Recorder, SimDuration, SimTime, Subsystem};
use std::collections::BTreeMap;
use vmem::addr::subtract_ranges;
use vmem::{Bitmap, Pfn, PfnCache, TransferBitmap, VaRange};

pub use crate::evtchn::DaemonPort;

/// Tunable costs and policies of the LKM.
///
/// Construct via [`LkmConfig::builder`] for validated settings, or use
/// [`LkmConfig::default`] for the paper's calibration.
#[derive(Debug, Clone)]
pub struct LkmConfig {
    /// CPU time per page-table walk step (one page looked up).
    pub walk_cost_per_page: SimDuration,
    /// CPU time per transfer-bitmap bit flipped.
    pub bit_cost_per_page: SimDuration,
    /// Deadline for application replies to `PrepareSuspension`; stragglers
    /// past this deadline are forcibly un-skipped so migration is not
    /// delayed unboundedly (§6).
    pub reply_timeout: SimDuration,
    /// Use the §3.3.4 alternative final-update strategy: re-walk all
    /// skip-over areas instead of relying on shrink notifications. Slower
    /// final update, no intermediate bookkeeping.
    pub rewalk_final_update: bool,
    /// Number of worker threads the LKM uses for page-table walks and
    /// bitmap updates (§6: "investigating parallelization of transfer
    /// bitmap updates to handle large skip-over areas efficiently").
    pub walk_parallelism: u32,
}

impl Default for LkmConfig {
    fn default() -> Self {
        Self {
            walk_cost_per_page: SimDuration::from_nanos(90),
            bit_cost_per_page: SimDuration::from_nanos(30),
            reply_timeout: SimDuration::from_secs(5),
            rewalk_final_update: false,
            walk_parallelism: 1,
        }
    }
}

impl LkmConfig {
    /// Starts a validating builder seeded with the defaults.
    pub fn builder() -> LkmConfigBuilder {
        LkmConfigBuilder {
            cfg: LkmConfig::default(),
        }
    }
}

/// Why an [`LkmConfigBuilder`] rejected its settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LkmConfigError {
    /// `reply_timeout` must be positive; a zero deadline would declare
    /// every application a straggler on the first service tick.
    ZeroReplyTimeout,
    /// `walk_parallelism` must be at least one worker.
    ZeroParallelism,
}

impl core::fmt::Display for LkmConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LkmConfigError::ZeroReplyTimeout => write!(f, "reply_timeout must be positive"),
            LkmConfigError::ZeroParallelism => write!(f, "walk_parallelism must be >= 1"),
        }
    }
}

impl std::error::Error for LkmConfigError {}

/// Validating builder for [`LkmConfig`].
///
/// # Examples
///
/// ```
/// use guestos::lkm::LkmConfig;
/// use simkit::SimDuration;
///
/// let cfg = LkmConfig::builder()
///     .reply_timeout(SimDuration::from_millis(800))
///     .walk_parallelism(2)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.reply_timeout, SimDuration::from_millis(800));
///
/// assert!(LkmConfig::builder()
///     .reply_timeout(SimDuration::ZERO)
///     .build()
///     .is_err());
/// ```
#[derive(Debug, Clone)]
pub struct LkmConfigBuilder {
    cfg: LkmConfig,
}

impl LkmConfigBuilder {
    /// Sets the CPU cost per page-table walk step.
    pub fn walk_cost_per_page(mut self, cost: SimDuration) -> Self {
        self.cfg.walk_cost_per_page = cost;
        self
    }

    /// Sets the CPU cost per transfer-bitmap bit flipped.
    pub fn bit_cost_per_page(mut self, cost: SimDuration) -> Self {
        self.cfg.bit_cost_per_page = cost;
        self
    }

    /// Sets the straggler reply deadline.
    pub fn reply_timeout(mut self, timeout: SimDuration) -> Self {
        self.cfg.reply_timeout = timeout;
        self
    }

    /// Selects the §3.3.4 re-walk final-update strategy.
    pub fn rewalk_final_update(mut self, rewalk: bool) -> Self {
        self.cfg.rewalk_final_update = rewalk;
        self
    }

    /// Sets the walk/bitmap worker count.
    pub fn walk_parallelism(mut self, workers: u32) -> Self {
        self.cfg.walk_parallelism = workers;
        self
    }

    /// Validates and produces the config.
    pub fn build(self) -> Result<LkmConfig, LkmConfigError> {
        if self.cfg.reply_timeout.is_zero() {
            return Err(LkmConfigError::ZeroReplyTimeout);
        }
        if self.cfg.walk_parallelism == 0 {
            return Err(LkmConfigError::ZeroParallelism);
        }
        Ok(self.cfg)
    }
}

/// The LKM's operating state (Figure 4, plus the degraded terminal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LkmState {
    /// Loaded and ready for a migration.
    Initialized,
    /// Migration in progress; first bitmap update done/ongoing.
    MigrationStarted,
    /// Waiting for applications to prepare for suspension.
    EnteringLastIter,
    /// Final bitmap update done; daemon told to pause the VM.
    SuspensionReady,
    /// Assistance aborted: every transfer-bitmap exclusion has been
    /// cleared and the migration completes as vanilla pre-copy. Left only
    /// by `VmResumed`.
    Degraded,
}

impl LkmState {
    /// Stable upper-case name used in telemetry state-transition events.
    pub fn name(self) -> &'static str {
        match self {
            LkmState::Initialized => "INITIALIZED",
            LkmState::MigrationStarted => "MIGRATION_STARTED",
            LkmState::EnteringLastIter => "ENTERING_LAST_ITER",
            LkmState::SuspensionReady => "SUSPENSION_READY",
            LkmState::Degraded => "DEGRADED",
        }
    }

    /// Histogram name for time spent dwelling in this state before leaving
    /// it (recorded on every outgoing transition).
    pub fn dwell_metric(self) -> &'static str {
        match self {
            LkmState::Initialized => "dwell_initialized_ns",
            LkmState::MigrationStarted => "dwell_migration_started_ns",
            LkmState::EnteringLastIter => "dwell_entering_last_iter_ns",
            LkmState::SuspensionReady => "dwell_suspension_ready_ns",
            LkmState::Degraded => "dwell_degraded_ns",
        }
    }
}

/// Counters and timings the LKM accumulates across one migration.
#[derive(Debug, Clone, Default)]
pub struct LkmStats {
    /// Pages whose transfer bits were cleared in the first update.
    pub first_update_pages: u64,
    /// CPU time of the first update (walks + bit flips).
    pub first_update_duration: SimDuration,
    /// Pages cleared by the final update (expansion).
    pub final_expand_pages: u64,
    /// Pages set by the final update (shrink + must-send).
    pub final_set_pages: u64,
    /// CPU time of the final update.
    pub final_update_duration: SimDuration,
    /// Number of shrink notifications processed.
    pub shrink_events: u64,
    /// Pages un-skipped by shrink notifications.
    pub shrink_pages: u64,
    /// Pages marked cold in the cold bitmap (cold-assist migrations only).
    pub cold_map_pages: u64,
    /// Applications that missed the suspension-prep deadline.
    pub stragglers: u32,
    /// Peak PFN-cache footprint in bytes.
    pub peak_cache_bytes: u64,
    /// Duplicate or stale coordination messages discarded by seq gating.
    pub dup_msgs: u64,
}

#[derive(Debug, Default)]
struct AppRecord {
    /// Remembered (page-aligned) skip-over areas.
    areas: Vec<VaRange>,
    cache: PfnCache,
    suspension_ready: bool,
    straggler: bool,
}

/// The Loadable Kernel Module.
pub struct Lkm {
    config: LkmConfig,
    state: LkmState,
    npages: u64,
    transfer: TransferBitmap,
    /// PFNs applications reported as live-but-cold. `None` until the daemon
    /// asks for a cold map ([`CoordPayload::QueryColdMap`]), so migrations
    /// without the cold assist never allocate or touch it.
    cold: Option<Bitmap>,
    apps: BTreeMap<Pid, AppRecord>,
    netlink: KernelNetlink,
    port: LkmPort,
    prepare_deadline: Option<SimTime>,
    pending_final_update: SimDuration,
    /// Highest daemon seq handled; retries arrive above it, duplicates and
    /// stale reorderings at or below it.
    last_daemon_seq: u64,
    /// Per-application seq watermarks for duplicate suppression.
    app_seq_seen: BTreeMap<Pid, u64>,
    stats: LkmStats,
    telemetry: Recorder,
    /// When the current state was entered; feeds the per-state dwell-time
    /// histograms.
    state_since: SimTime,
}

impl Lkm {
    /// Loads the LKM: creates the transfer bitmap and the event channel,
    /// returning the daemon-side endpoint.
    pub fn load(npages: u64, netlink: KernelNetlink, config: LkmConfig) -> (Self, DaemonPort) {
        let (daemon_port, lkm_port) = channel_pair();
        (
            Self {
                config,
                state: LkmState::Initialized,
                npages,
                transfer: TransferBitmap::new(npages),
                cold: None,
                apps: BTreeMap::new(),
                netlink,
                port: lkm_port,
                prepare_deadline: None,
                pending_final_update: SimDuration::ZERO,
                last_daemon_seq: 0,
                app_seq_seen: BTreeMap::new(),
                stats: LkmStats::default(),
                telemetry: Recorder::disabled(),
                state_since: SimTime::ZERO,
            },
            daemon_port,
        )
    }

    /// Attaches a telemetry recorder; every state transition, bitmap-update
    /// span and walk counter of subsequent migrations lands in it.
    pub fn attach_telemetry(&mut self, recorder: Recorder) {
        self.telemetry = recorder;
    }

    /// Returns the current operating state.
    pub fn state(&self) -> LkmState {
        self.state
    }

    /// Moves to `to`, emitting a telemetry state-transition event and a
    /// dwell-time histogram sample for the state being left.
    fn set_state(&mut self, now: SimTime, to: LkmState) {
        let from = self.state;
        self.state = to;
        self.telemetry.hist_dur(
            Subsystem::Lkm,
            from.dwell_metric(),
            now.saturating_since(self.state_since),
        );
        self.state_since = now;
        self.telemetry.instant(
            now,
            Subsystem::Lkm,
            "state_transition",
            vec![("from", from.name().into()), ("to", to.name().into())],
        );
    }

    /// Returns whether a page should be transferred when dirty.
    pub fn should_transfer(&self, pfn: Pfn) -> bool {
        self.transfer.should_transfer(pfn)
    }

    /// Returns a reference to the transfer bitmap (shared with the daemon
    /// when migration begins, §3.3.3).
    pub fn transfer_bitmap(&self) -> &TransferBitmap {
        &self.transfer
    }

    /// Returns the cold bitmap, if the daemon asked for one and at least
    /// one application has replied. Pages marked here are live-but-cold:
    /// the engine may defer or delta-encode them, never skip them.
    pub fn cold_bitmap(&self) -> Option<&Bitmap> {
        self.cold.as_ref()
    }

    /// Returns the stats accumulated for the current/most recent migration.
    pub fn stats(&self) -> &LkmStats {
        &self.stats
    }

    /// Returns the memory footprint of the LKM's data structures: transfer
    /// bitmap plus all PFN caches (the paper reports ≤1 MiB total).
    pub fn memory_footprint(&self) -> u64 {
        self.transfer.byte_size()
            + self.cold.as_ref().map_or(0, Bitmap::byte_size)
            + self.apps.values().map(|a| a.cache.byte_size()).sum::<u64>()
    }

    /// Drains and processes all pending daemon and application messages.
    ///
    /// Call once per simulation tick with the kernel's process table, which
    /// the LKM needs for page-table walks.
    pub fn service(&mut self, now: SimTime, procs: &mut BTreeMap<Pid, Process>) {
        for msg in self.port.recv(now) {
            self.on_daemon_msg(now, msg);
        }
        for (pid, msg) in self.netlink.recv(now) {
            self.on_app_msg(now, pid, msg, procs);
        }
        self.check_deadline(now, procs);
        self.maybe_finish_final_update(now);
    }

    fn on_daemon_msg(&mut self, now: SimTime, msg: CoordMsg) {
        let fresh = msg.seq > self.last_daemon_seq;
        if fresh {
            self.last_daemon_seq = msg.seq;
        } else {
            self.stats.dup_msgs += 1;
        }
        match msg.payload {
            CoordPayload::MigrationBegin => {
                // Always (re-)acknowledge: the daemon retries with backoff
                // until it sees the ack, and re-acking is free.
                self.port.send(now, CoordPayload::BeginAck);
                if fresh && self.state == LkmState::Initialized {
                    self.set_state(now, LkmState::MigrationStarted);
                    self.stats = LkmStats::default();
                    self.pending_final_update = SimDuration::ZERO;
                    self.cold = None;
                    for rec in self.apps.values_mut() {
                        rec.suspension_ready = false;
                        rec.straggler = false;
                    }
                    // Track every current subscriber: an assistant that goes
                    // fully silent must surface as a straggler at the reply
                    // deadline, not be silently un-waited.
                    for pid in self.netlink.subscriber_pids() {
                        self.apps.entry(pid).or_default();
                    }
                    self.netlink.multicast(now, CoordPayload::QuerySkipOver);
                } else if fresh && self.state == LkmState::MigrationStarted {
                    // Daemon retry (our ack was lost). Re-querying is
                    // idempotent: already-cleared bits stay cleared.
                    self.netlink.multicast(now, CoordPayload::QuerySkipOver);
                }
            }
            CoordPayload::EnteringLastIter => match self.state {
                LkmState::MigrationStarted if fresh => {
                    self.set_state(now, LkmState::EnteringLastIter);
                    self.prepare_deadline = Some(now + self.config.reply_timeout);
                    self.netlink.multicast(now, CoordPayload::PrepareSuspension);
                }
                LkmState::EnteringLastIter if fresh => {
                    // Retry: re-prompt the applications but keep the original
                    // straggler deadline so retries cannot extend it forever.
                    self.netlink.multicast(now, CoordPayload::PrepareSuspension);
                }
                LkmState::SuspensionReady => {
                    // The daemon did not see our ready notification: repeat.
                    self.send_ready(now);
                }
                _ => {}
            },
            CoordPayload::QueryColdMap => {
                // Idempotent: re-querying costs one multicast and replies
                // only re-set already-set cold bits, so daemon retries need
                // no special casing beyond the seq gate.
                let tracking = matches!(
                    self.state,
                    LkmState::MigrationStarted | LkmState::EnteringLastIter
                );
                if fresh && tracking {
                    self.netlink.multicast(now, CoordPayload::QueryColdRegions);
                }
            }
            CoordPayload::AbortAssist => {
                if fresh && self.state != LkmState::Degraded {
                    self.abort_assist(now);
                }
            }
            CoordPayload::VmResumed => {
                if fresh {
                    self.netlink.multicast(now, CoordPayload::VmResumed);
                    self.reset_after_migration(now);
                }
            }
            other => {
                self.telemetry.instant(
                    now,
                    Subsystem::Lkm,
                    "protocol_violation",
                    vec![("payload", other.name().into())],
                );
            }
        }
    }

    fn on_app_msg(
        &mut self,
        now: SimTime,
        pid: Pid,
        msg: CoordMsg,
        procs: &mut BTreeMap<Pid, Process>,
    ) {
        // Seq gate: transport duplicates and stale reorderings are dropped.
        // A stale message carries information the final bitmap update (or
        // straggler handling) reconciles anyway, so dropping is safe; a
        // duplicate must not double-apply shrink stats.
        let seen = self.app_seq_seen.entry(pid).or_insert(0);
        if msg.seq <= *seen {
            self.stats.dup_msgs += 1;
            return;
        }
        *seen = msg.seq;
        match msg.payload {
            CoordPayload::SkipOverAreas(areas) => {
                if self.state == LkmState::MigrationStarted {
                    self.first_update(now, pid, &areas, procs);
                }
            }
            CoordPayload::AreaShrunk { left } => {
                let tracking = matches!(
                    self.state,
                    LkmState::MigrationStarted
                        | LkmState::EnteringLastIter
                        | LkmState::SuspensionReady
                );
                if tracking && !self.config.rewalk_final_update {
                    self.shrink_update(now, pid, &left);
                }
            }
            CoordPayload::SuspensionReady { areas, must_send } => {
                if self.state == LkmState::EnteringLastIter {
                    self.final_update_for(now, pid, &areas, &must_send, procs);
                }
            }
            CoordPayload::ColdRegions(areas) => {
                let tracking = matches!(
                    self.state,
                    LkmState::MigrationStarted | LkmState::EnteringLastIter
                );
                if tracking {
                    self.cold_update(now, pid, &areas, procs);
                }
            }
            other => {
                self.telemetry.instant(
                    now,
                    Subsystem::Lkm,
                    "protocol_violation",
                    vec![("payload", other.name().into()), ("pid", pid.0.into())],
                );
            }
        }
    }

    /// First transfer-bitmap update: clear the bits of every page found in
    /// the application's skip-over areas, caching the PFNs (§3.3.4).
    fn first_update(
        &mut self,
        now: SimTime,
        pid: Pid,
        areas: &[VaRange],
        procs: &mut BTreeMap<Pid, Process>,
    ) {
        let Some(proc) = procs.get_mut(&pid) else {
            return;
        };
        let rec = self.apps.entry(pid).or_default();
        let mut walked = 0u64;
        let mut cleared = 0u64;
        for area in areas {
            let aligned = area.align_inward();
            if aligned.is_empty() {
                continue;
            }
            for (vpn, pfn) in proc.page_table.walk_range(aligned) {
                walked += 1;
                if self.transfer.clear(pfn) {
                    cleared += 1;
                }
                rec.cache.insert(vpn, pfn);
            }
            rec.areas.push(aligned);
        }
        let cost = self.parallel_cost(walked, cleared);
        self.stats.first_update_pages += cleared;
        self.stats.first_update_duration += cost;
        self.stats.peak_cache_bytes = self.stats.peak_cache_bytes.max(self.cache_bytes());
        self.telemetry
            .counter_add(Subsystem::Lkm, "pages_walked", walked);
        self.telemetry
            .counter_add(Subsystem::Lkm, "bits_cleared", cleared);
        // Walk sizes as an ordered series (cadence 0: update-driven) — the
        // LKM-side feed of the workload observatory.
        self.telemetry
            .series_push(Subsystem::Lkm, "walk_pages", 0, 128, now, walked as f64);
        self.telemetry.record_span(
            now,
            Subsystem::Lkm,
            "first_bitmap_update",
            cost,
            vec![
                ("pid", pid.0.into()),
                ("walked", walked.into()),
                ("cleared", cleared.into()),
            ],
        );
    }

    /// Cold-map update: translate an application's cold VA ranges into PFNs
    /// and set their bits in the cold bitmap. Unlike the transfer bitmap the
    /// cold map never suppresses a transfer — the engine only reads it to
    /// reschedule or delta-encode pages — so a stale entry is a lost
    /// optimisation, not a correctness hazard, and no shrink bookkeeping or
    /// PFN caching is needed.
    fn cold_update(
        &mut self,
        now: SimTime,
        pid: Pid,
        areas: &[VaRange],
        procs: &mut BTreeMap<Pid, Process>,
    ) {
        let Some(proc) = procs.get_mut(&pid) else {
            return;
        };
        let npages = self.npages;
        let cold = self.cold.get_or_insert_with(|| Bitmap::new(npages));
        let mut walked = 0u64;
        let mut marked = 0u64;
        for area in areas {
            let aligned = area.align_inward();
            if aligned.is_empty() {
                continue;
            }
            for (_vpn, pfn) in proc.page_table.walk_range(aligned) {
                walked += 1;
                if cold.set(pfn) {
                    marked += 1;
                }
            }
        }
        let cost = self.parallel_cost(walked, marked);
        self.stats.cold_map_pages += marked;
        self.telemetry
            .counter_add(Subsystem::Lkm, "cold_pages_walked", walked);
        self.telemetry
            .counter_add(Subsystem::Lkm, "cold_bits_set", marked);
        self.telemetry.record_span(
            now,
            Subsystem::Lkm,
            "cold_map_update",
            cost,
            vec![
                ("pid", pid.0.into()),
                ("walked", walked.into()),
                ("marked", marked.into()),
            ],
        );
    }

    /// Immediate shrink update: the PFNs of pages leaving an area are fetched
    /// from the PFN cache (not the page tables — the frames may already be
    /// reclaimed) and their transfer bits are set (§3.3.4).
    fn shrink_update(&mut self, now: SimTime, pid: Pid, left: &[VaRange]) {
        let Some(rec) = self.apps.get_mut(&pid) else {
            return;
        };
        self.stats.shrink_events += 1;
        let mut set = 0u64;
        for range in left {
            for pfn in rec.cache.take_range(*range) {
                if self.transfer.set(pfn) {
                    set += 1;
                }
            }
        }
        rec.areas = subtract_ranges(&rec.areas, left)
            .into_iter()
            .map(|r| r.align_inward())
            .filter(|r| !r.is_empty())
            .collect();
        self.stats.shrink_pages += set;
        self.telemetry.counter_add(Subsystem::Lkm, "bits_set", set);
        self.telemetry.record_span(
            now,
            Subsystem::Lkm,
            "shrink_update",
            self.config.bit_cost_per_page * set,
            vec![("pid", pid.0.into()), ("pages", set.into())],
        );
    }

    /// Final transfer-bitmap update for one suspension-ready application:
    /// reconcile expanded and shrunk space, then force transfer of the
    /// `must_send` ranges (the From space holding enforced-GC survivors).
    fn final_update_for(
        &mut self,
        now: SimTime,
        pid: Pid,
        new_areas: &[VaRange],
        must_send: &[VaRange],
        procs: &mut BTreeMap<Pid, Process>,
    ) {
        let Some(proc) = procs.get_mut(&pid) else {
            return;
        };
        let rec = self.apps.entry(pid).or_default();
        let new_aligned: Vec<VaRange> = new_areas
            .iter()
            .map(|r| r.align_inward())
            .filter(|r| !r.is_empty())
            .collect();
        let mut walked = 0u64;
        let mut flips = 0u64;

        if self.config.rewalk_final_update {
            // Alternative strategy (§3.3.4): forget the incremental state,
            // un-skip everything previously cleared, and re-walk the current
            // areas from scratch. Costs a full walk of old + new areas.
            for pfn in rec.cache_drain() {
                if self.transfer.set(pfn) {
                    flips += 1;
                }
            }
            for area in &new_aligned {
                for (vpn, pfn) in proc.page_table.walk_range(*area) {
                    walked += 1;
                    if self.transfer.clear(pfn) {
                        flips += 1;
                    }
                    rec.cache.insert(vpn, pfn);
                }
            }
        } else {
            // Expanded space: pages joining the areas get their bits cleared
            // now (deferred from during migration, §3.3.4).
            let expanded = subtract_ranges(&new_aligned, &rec.areas);
            for range in &expanded {
                for (vpn, pfn) in proc.page_table.walk_range(*range) {
                    walked += 1;
                    if self.transfer.clear(pfn) {
                        flips += 1;
                        self.stats.final_expand_pages += 1;
                    }
                    rec.cache.insert(vpn, pfn);
                }
            }
            // Shrunk space: pages that left since the last notification.
            let shrunk = subtract_ranges(&rec.areas, &new_aligned);
            for range in &shrunk {
                for pfn in rec.cache.take_range(*range) {
                    if self.transfer.set(pfn) {
                        flips += 1;
                        self.stats.final_set_pages += 1;
                    }
                }
            }
        }

        // Must-send ranges "leave" the areas: their live contents (e.g. the
        // occupied From space) must go out in the last iteration.
        for range in must_send {
            for pfn in rec.cache.take_range(*range) {
                if self.transfer.set(pfn) {
                    flips += 1;
                    self.stats.final_set_pages += 1;
                }
            }
        }

        rec.areas = new_aligned;
        rec.suspension_ready = true;
        let cost = self.parallel_cost(walked, flips);
        self.pending_final_update += cost;
        self.stats.peak_cache_bytes = self.stats.peak_cache_bytes.max(self.cache_bytes());
        self.telemetry
            .counter_add(Subsystem::Lkm, "pages_walked", walked);
        self.telemetry
            .series_push(Subsystem::Lkm, "walk_pages", 0, 128, now, walked as f64);
        self.telemetry.record_span(
            now,
            Subsystem::Lkm,
            "final_update_walk",
            cost,
            vec![
                ("pid", pid.0.into()),
                ("walked", walked.into()),
                ("flips", flips.into()),
            ],
        );
    }

    /// Forcibly un-skips the pages of applications that missed the reply
    /// deadline, so their (possibly live) contents are transferred and
    /// migration can proceed (§6 straggler handling).
    fn check_deadline(&mut self, now: SimTime, _procs: &mut BTreeMap<Pid, Process>) {
        if self.state != LkmState::EnteringLastIter {
            return;
        }
        let Some(deadline) = self.prepare_deadline else {
            return;
        };
        if now < deadline {
            return;
        }
        let mut flips = 0u64;
        for (&pid, rec) in self.apps.iter_mut() {
            if !rec.suspension_ready {
                for pfn in rec.cache_drain() {
                    if self.transfer.set(pfn) {
                        flips += 1;
                    }
                }
                rec.areas.clear();
                rec.suspension_ready = true;
                rec.straggler = true;
                self.stats.stragglers += 1;
                self.telemetry.instant(
                    now,
                    Subsystem::Lkm,
                    "straggler_forced",
                    vec![("pid", pid.0.into())],
                );
            }
        }
        self.pending_final_update += self.config.bit_cost_per_page * flips;
    }

    /// Once every known application is suspension-ready, report readiness to
    /// the daemon with the measured final-update duration.
    fn maybe_finish_final_update(&mut self, now: SimTime) {
        if self.state != LkmState::EnteringLastIter {
            return;
        }
        let all_ready = self.apps.values().all(|r| r.suspension_ready);
        // Applications that never reported areas have no record; they are
        // not waited for (they never subscribed intent to assist).
        if all_ready {
            self.set_state(now, LkmState::SuspensionReady);
            self.stats.final_update_duration = self.pending_final_update;
            // The final update's work finished "just now": back-date the
            // span so it covers the accumulated walk + flip cost.
            let start = SimTime::from_nanos(
                now.as_nanos()
                    .saturating_sub(self.pending_final_update.as_nanos()),
            );
            self.telemetry.record_span(
                start,
                Subsystem::Lkm,
                "final_bitmap_update",
                self.pending_final_update,
                vec![
                    ("expand_pages", self.stats.final_expand_pages.into()),
                    ("set_pages", self.stats.final_set_pages.into()),
                    ("stragglers", self.stats.stragglers.into()),
                ],
            );
            self.telemetry.instant(
                now,
                Subsystem::Lkm,
                "ready_to_suspend",
                vec![
                    ("final_update", self.pending_final_update.into()),
                    ("stragglers", self.stats.stragglers.into()),
                ],
            );
            self.send_ready(now);
            self.prepare_deadline = None;
        }
    }

    /// (Re-)sends the `ReadyToSuspend` notification with the recorded
    /// final-update stats; idempotent, used for daemon retries.
    fn send_ready(&mut self, now: SimTime) {
        self.port.send(
            now,
            CoordPayload::ReadyToSuspend {
                final_update: self.stats.final_update_duration,
                stragglers: self.stats.stragglers,
            },
        );
    }

    /// Abandons assistance (the degradation ladder's last rung): clears
    /// every transfer-bitmap exclusion so all memory is eligible for
    /// transfer, tells applications to release held threads, and enters
    /// [`LkmState::Degraded`] until `VmResumed`.
    fn abort_assist(&mut self, now: SimTime) {
        let restored = self.transfer.skip_count();
        self.transfer.reset();
        self.cold = None;
        for rec in self.apps.values_mut() {
            rec.cache.clear();
            rec.areas.clear();
            rec.suspension_ready = true;
        }
        self.prepare_deadline = None;
        self.pending_final_update = SimDuration::ZERO;
        self.set_state(now, LkmState::Degraded);
        self.telemetry.instant(
            now,
            Subsystem::Lkm,
            "assist_aborted",
            vec![("restored_pages", restored.into())],
        );
        self.netlink.multicast(now, CoordPayload::AbortAssist);
    }

    fn reset_after_migration(&mut self, now: SimTime) {
        self.set_state(now, LkmState::Initialized);
        self.transfer.reset();
        self.cold = None;
        for rec in self.apps.values_mut() {
            rec.areas.clear();
            rec.cache.clear();
            rec.suspension_ready = false;
            rec.straggler = false;
        }
        self.prepare_deadline = None;
        self.pending_final_update = SimDuration::ZERO;
    }

    fn cache_bytes(&self) -> u64 {
        self.apps.values().map(|a| a.cache.byte_size()).sum()
    }

    /// CPU time of a walk + bit-flip batch, divided across the configured
    /// worker threads (with a 10% coordination overhead per extra worker).
    fn parallel_cost(&self, walked: u64, flipped: u64) -> SimDuration {
        let serial =
            self.config.walk_cost_per_page * walked + self.config.bit_cost_per_page * flipped;
        let workers = self.config.walk_parallelism.max(1) as f64;
        serial.mul_f64((1.0 + 0.1 * (workers - 1.0)) / workers)
    }
}

impl AppRecord {
    /// Drains the PFN cache, returning every cached PFN.
    fn cache_drain(&mut self) -> Vec<Pfn> {
        // take_range over the full VA space empties the cache.
        let all = VaRange::new(vmem::Vaddr(0), vmem::Vaddr(!(vmem::PAGE_SIZE - 1)));
        self.cache.take_range(all)
    }
}

impl core::fmt::Debug for Lkm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Lkm")
            .field("state", &self.state)
            .field("apps", &self.apps.len())
            .field("skip_pages", &self.transfer.skip_count())
            .finish()
    }
}
