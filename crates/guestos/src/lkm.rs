//! The Loadable Kernel Module: coordinator of application-assisted migration.
//!
//! The LKM is the system-level component of the framework (§3.3). It:
//!
//! * relays messages between the migration daemon (event channel) and the
//!   assisting applications (netlink multicast), bridging the
//!   *communication gap*;
//! * translates application-supplied VA ranges into PFNs by page-table
//!   walks, bridging the *semantic gap*;
//! * owns the transfer bitmap and keeps it current through the first update
//!   (migration begin), immediate shrink updates, and the final update right
//!   before the last iteration (§3.3.4);
//! * caches the PFNs of skip-over pages so shrink notifications can be
//!   answered after the underlying frames were reclaimed;
//! * transitions through the five operating states of Figure 4 and handles
//!   stragglers with a reply deadline (§6).

use crate::evtchn::{channel_pair, LkmPort};
use crate::messages::{AppToLkm, DaemonToLkm, LkmToApp, LkmToDaemon};
use crate::netlink::KernelNetlink;
use crate::process::{Pid, Process};
use simkit::{Recorder, SimDuration, SimTime, Subsystem};
use std::collections::BTreeMap;
use vmem::addr::subtract_ranges;
use vmem::{Pfn, PfnCache, TransferBitmap, VaRange};

pub use crate::evtchn::DaemonPort;

/// Tunable costs and policies of the LKM.
#[derive(Debug, Clone)]
pub struct LkmConfig {
    /// CPU time per page-table walk step (one page looked up).
    pub walk_cost_per_page: SimDuration,
    /// CPU time per transfer-bitmap bit flipped.
    pub bit_cost_per_page: SimDuration,
    /// Deadline for application replies to `PrepareSuspension`; stragglers
    /// past this deadline are forcibly un-skipped so migration is not
    /// delayed unboundedly (§6).
    pub reply_timeout: SimDuration,
    /// Use the §3.3.4 alternative final-update strategy: re-walk all
    /// skip-over areas instead of relying on shrink notifications. Slower
    /// final update, no intermediate bookkeeping.
    pub rewalk_final_update: bool,
    /// Number of worker threads the LKM uses for page-table walks and
    /// bitmap updates (§6: "investigating parallelization of transfer
    /// bitmap updates to handle large skip-over areas efficiently").
    pub walk_parallelism: u32,
}

impl Default for LkmConfig {
    fn default() -> Self {
        Self {
            walk_cost_per_page: SimDuration::from_nanos(90),
            bit_cost_per_page: SimDuration::from_nanos(30),
            reply_timeout: SimDuration::from_secs(5),
            rewalk_final_update: false,
            walk_parallelism: 1,
        }
    }
}

/// The LKM's operating state (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LkmState {
    /// Loaded and ready for a migration.
    Initialized,
    /// Migration in progress; first bitmap update done/ongoing.
    MigrationStarted,
    /// Waiting for applications to prepare for suspension.
    EnteringLastIter,
    /// Final bitmap update done; daemon told to pause the VM.
    SuspensionReady,
}

impl LkmState {
    /// Stable upper-case name used in telemetry state-transition events.
    pub fn name(self) -> &'static str {
        match self {
            LkmState::Initialized => "INITIALIZED",
            LkmState::MigrationStarted => "MIGRATION_STARTED",
            LkmState::EnteringLastIter => "ENTERING_LAST_ITER",
            LkmState::SuspensionReady => "SUSPENSION_READY",
        }
    }
}

/// Counters and timings the LKM accumulates across one migration.
#[derive(Debug, Clone, Default)]
pub struct LkmStats {
    /// Pages whose transfer bits were cleared in the first update.
    pub first_update_pages: u64,
    /// CPU time of the first update (walks + bit flips).
    pub first_update_duration: SimDuration,
    /// Pages cleared by the final update (expansion).
    pub final_expand_pages: u64,
    /// Pages set by the final update (shrink + must-send).
    pub final_set_pages: u64,
    /// CPU time of the final update.
    pub final_update_duration: SimDuration,
    /// Number of shrink notifications processed.
    pub shrink_events: u64,
    /// Pages un-skipped by shrink notifications.
    pub shrink_pages: u64,
    /// Applications that missed the suspension-prep deadline.
    pub stragglers: u32,
    /// Peak PFN-cache footprint in bytes.
    pub peak_cache_bytes: u64,
}

#[derive(Debug, Default)]
struct AppRecord {
    /// Remembered (page-aligned) skip-over areas.
    areas: Vec<VaRange>,
    cache: PfnCache,
    suspension_ready: bool,
    straggler: bool,
}

/// The Loadable Kernel Module.
pub struct Lkm {
    config: LkmConfig,
    state: LkmState,
    transfer: TransferBitmap,
    apps: BTreeMap<Pid, AppRecord>,
    netlink: KernelNetlink,
    port: LkmPort,
    prepare_deadline: Option<SimTime>,
    pending_final_update: SimDuration,
    stats: LkmStats,
    telemetry: Recorder,
}

impl Lkm {
    /// Loads the LKM: creates the transfer bitmap and the event channel,
    /// returning the daemon-side endpoint.
    pub fn load(npages: u64, netlink: KernelNetlink, config: LkmConfig) -> (Self, DaemonPort) {
        let (daemon_port, lkm_port) = channel_pair();
        (
            Self {
                config,
                state: LkmState::Initialized,
                transfer: TransferBitmap::new(npages),
                apps: BTreeMap::new(),
                netlink,
                port: lkm_port,
                prepare_deadline: None,
                pending_final_update: SimDuration::ZERO,
                stats: LkmStats::default(),
                telemetry: Recorder::disabled(),
            },
            daemon_port,
        )
    }

    /// Attaches a telemetry recorder; every state transition, bitmap-update
    /// span and walk counter of subsequent migrations lands in it.
    pub fn attach_telemetry(&mut self, recorder: Recorder) {
        self.telemetry = recorder;
    }

    /// Returns the current operating state.
    pub fn state(&self) -> LkmState {
        self.state
    }

    /// Moves to `to`, emitting a telemetry state-transition event.
    fn set_state(&mut self, now: SimTime, to: LkmState) {
        let from = self.state;
        self.state = to;
        self.telemetry.instant(
            now,
            Subsystem::Lkm,
            "state_transition",
            vec![("from", from.name().into()), ("to", to.name().into())],
        );
    }

    /// Returns whether a page should be transferred when dirty.
    pub fn should_transfer(&self, pfn: Pfn) -> bool {
        self.transfer.should_transfer(pfn)
    }

    /// Returns a reference to the transfer bitmap (shared with the daemon
    /// when migration begins, §3.3.3).
    pub fn transfer_bitmap(&self) -> &TransferBitmap {
        &self.transfer
    }

    /// Returns the stats accumulated for the current/most recent migration.
    pub fn stats(&self) -> &LkmStats {
        &self.stats
    }

    /// Returns the memory footprint of the LKM's data structures: transfer
    /// bitmap plus all PFN caches (the paper reports ≤1 MiB total).
    pub fn memory_footprint(&self) -> u64 {
        self.transfer.byte_size() + self.apps.values().map(|a| a.cache.byte_size()).sum::<u64>()
    }

    /// Drains and processes all pending daemon and application messages.
    ///
    /// Call once per simulation tick with the kernel's process table, which
    /// the LKM needs for page-table walks.
    pub fn service(&mut self, now: SimTime, procs: &mut BTreeMap<Pid, Process>) {
        for msg in self.port.recv(now) {
            self.on_daemon_msg(now, msg);
        }
        for (pid, msg) in self.netlink.recv(now) {
            self.on_app_msg(now, pid, msg, procs);
        }
        self.check_deadline(now, procs);
        self.maybe_finish_final_update(now);
    }

    fn on_daemon_msg(&mut self, now: SimTime, msg: DaemonToLkm) {
        match msg {
            DaemonToLkm::MigrationBegin => {
                self.set_state(now, LkmState::MigrationStarted);
                self.stats = LkmStats::default();
                self.pending_final_update = SimDuration::ZERO;
                for rec in self.apps.values_mut() {
                    rec.suspension_ready = false;
                    rec.straggler = false;
                }
                self.netlink.multicast(now, LkmToApp::QuerySkipOver);
            }
            DaemonToLkm::EnteringLastIter => {
                self.set_state(now, LkmState::EnteringLastIter);
                self.prepare_deadline = Some(now + self.config.reply_timeout);
                self.netlink.multicast(now, LkmToApp::PrepareSuspension);
            }
            DaemonToLkm::VmResumed => {
                self.netlink.multicast(now, LkmToApp::VmResumed);
                self.reset_after_migration(now);
            }
        }
    }

    fn on_app_msg(
        &mut self,
        now: SimTime,
        pid: Pid,
        msg: AppToLkm,
        procs: &mut BTreeMap<Pid, Process>,
    ) {
        match msg {
            AppToLkm::SkipOverAreas(areas) => {
                if self.state == LkmState::MigrationStarted {
                    self.first_update(now, pid, &areas, procs);
                }
            }
            AppToLkm::AreaShrunk { left } => {
                if self.state != LkmState::Initialized && !self.config.rewalk_final_update {
                    self.shrink_update(now, pid, &left);
                }
            }
            AppToLkm::SuspensionReady { areas, must_send } => {
                if self.state == LkmState::EnteringLastIter {
                    self.final_update_for(now, pid, &areas, &must_send, procs);
                }
            }
        }
    }

    /// First transfer-bitmap update: clear the bits of every page found in
    /// the application's skip-over areas, caching the PFNs (§3.3.4).
    fn first_update(
        &mut self,
        now: SimTime,
        pid: Pid,
        areas: &[VaRange],
        procs: &mut BTreeMap<Pid, Process>,
    ) {
        let Some(proc) = procs.get_mut(&pid) else {
            return;
        };
        let rec = self.apps.entry(pid).or_default();
        let mut walked = 0u64;
        let mut cleared = 0u64;
        for area in areas {
            let aligned = area.align_inward();
            if aligned.is_empty() {
                continue;
            }
            for (vpn, pfn) in proc.page_table.walk_range(aligned) {
                walked += 1;
                if self.transfer.clear(pfn) {
                    cleared += 1;
                }
                rec.cache.insert(vpn, pfn);
            }
            rec.areas.push(aligned);
        }
        let cost = self.parallel_cost(walked, cleared);
        self.stats.first_update_pages += cleared;
        self.stats.first_update_duration += cost;
        self.stats.peak_cache_bytes = self.stats.peak_cache_bytes.max(self.cache_bytes());
        self.telemetry
            .counter_add(Subsystem::Lkm, "pages_walked", walked);
        self.telemetry
            .counter_add(Subsystem::Lkm, "bits_cleared", cleared);
        self.telemetry.record_span(
            now,
            Subsystem::Lkm,
            "first_bitmap_update",
            cost,
            vec![
                ("pid", pid.0.into()),
                ("walked", walked.into()),
                ("cleared", cleared.into()),
            ],
        );
    }

    /// Immediate shrink update: the PFNs of pages leaving an area are fetched
    /// from the PFN cache (not the page tables — the frames may already be
    /// reclaimed) and their transfer bits are set (§3.3.4).
    fn shrink_update(&mut self, now: SimTime, pid: Pid, left: &[VaRange]) {
        let Some(rec) = self.apps.get_mut(&pid) else {
            return;
        };
        self.stats.shrink_events += 1;
        let mut set = 0u64;
        for range in left {
            for pfn in rec.cache.take_range(*range) {
                if self.transfer.set(pfn) {
                    set += 1;
                }
            }
        }
        rec.areas = subtract_ranges(&rec.areas, left)
            .into_iter()
            .map(|r| r.align_inward())
            .filter(|r| !r.is_empty())
            .collect();
        self.stats.shrink_pages += set;
        self.telemetry.counter_add(Subsystem::Lkm, "bits_set", set);
        self.telemetry.record_span(
            now,
            Subsystem::Lkm,
            "shrink_update",
            self.config.bit_cost_per_page * set,
            vec![("pid", pid.0.into()), ("pages", set.into())],
        );
    }

    /// Final transfer-bitmap update for one suspension-ready application:
    /// reconcile expanded and shrunk space, then force transfer of the
    /// `must_send` ranges (the From space holding enforced-GC survivors).
    fn final_update_for(
        &mut self,
        now: SimTime,
        pid: Pid,
        new_areas: &[VaRange],
        must_send: &[VaRange],
        procs: &mut BTreeMap<Pid, Process>,
    ) {
        let Some(proc) = procs.get_mut(&pid) else {
            return;
        };
        let rec = self.apps.entry(pid).or_default();
        let new_aligned: Vec<VaRange> = new_areas
            .iter()
            .map(|r| r.align_inward())
            .filter(|r| !r.is_empty())
            .collect();
        let mut walked = 0u64;
        let mut flips = 0u64;

        if self.config.rewalk_final_update {
            // Alternative strategy (§3.3.4): forget the incremental state,
            // un-skip everything previously cleared, and re-walk the current
            // areas from scratch. Costs a full walk of old + new areas.
            for pfn in rec.cache_drain() {
                if self.transfer.set(pfn) {
                    flips += 1;
                }
            }
            for area in &new_aligned {
                for (vpn, pfn) in proc.page_table.walk_range(*area) {
                    walked += 1;
                    if self.transfer.clear(pfn) {
                        flips += 1;
                    }
                    rec.cache.insert(vpn, pfn);
                }
            }
        } else {
            // Expanded space: pages joining the areas get their bits cleared
            // now (deferred from during migration, §3.3.4).
            let expanded = subtract_ranges(&new_aligned, &rec.areas);
            for range in &expanded {
                for (vpn, pfn) in proc.page_table.walk_range(*range) {
                    walked += 1;
                    if self.transfer.clear(pfn) {
                        flips += 1;
                        self.stats.final_expand_pages += 1;
                    }
                    rec.cache.insert(vpn, pfn);
                }
            }
            // Shrunk space: pages that left since the last notification.
            let shrunk = subtract_ranges(&rec.areas, &new_aligned);
            for range in &shrunk {
                for pfn in rec.cache.take_range(*range) {
                    if self.transfer.set(pfn) {
                        flips += 1;
                        self.stats.final_set_pages += 1;
                    }
                }
            }
        }

        // Must-send ranges "leave" the areas: their live contents (e.g. the
        // occupied From space) must go out in the last iteration.
        for range in must_send {
            for pfn in rec.cache.take_range(*range) {
                if self.transfer.set(pfn) {
                    flips += 1;
                    self.stats.final_set_pages += 1;
                }
            }
        }

        rec.areas = new_aligned;
        rec.suspension_ready = true;
        let cost = self.parallel_cost(walked, flips);
        self.pending_final_update += cost;
        self.stats.peak_cache_bytes = self.stats.peak_cache_bytes.max(self.cache_bytes());
        self.telemetry
            .counter_add(Subsystem::Lkm, "pages_walked", walked);
        self.telemetry.record_span(
            now,
            Subsystem::Lkm,
            "final_update_walk",
            cost,
            vec![
                ("pid", pid.0.into()),
                ("walked", walked.into()),
                ("flips", flips.into()),
            ],
        );
    }

    /// Forcibly un-skips the pages of applications that missed the reply
    /// deadline, so their (possibly live) contents are transferred and
    /// migration can proceed (§6 straggler handling).
    fn check_deadline(&mut self, now: SimTime, _procs: &mut BTreeMap<Pid, Process>) {
        if self.state != LkmState::EnteringLastIter {
            return;
        }
        let Some(deadline) = self.prepare_deadline else {
            return;
        };
        if now < deadline {
            return;
        }
        let mut flips = 0u64;
        for (&pid, rec) in self.apps.iter_mut() {
            if !rec.suspension_ready {
                for pfn in rec.cache_drain() {
                    if self.transfer.set(pfn) {
                        flips += 1;
                    }
                }
                rec.areas.clear();
                rec.suspension_ready = true;
                rec.straggler = true;
                self.stats.stragglers += 1;
                self.telemetry.instant(
                    now,
                    Subsystem::Lkm,
                    "straggler_forced",
                    vec![("pid", pid.0.into())],
                );
            }
        }
        self.pending_final_update += self.config.bit_cost_per_page * flips;
    }

    /// Once every known application is suspension-ready, report readiness to
    /// the daemon with the measured final-update duration.
    fn maybe_finish_final_update(&mut self, now: SimTime) {
        if self.state != LkmState::EnteringLastIter {
            return;
        }
        let all_ready = self.apps.values().all(|r| r.suspension_ready);
        // Applications that never reported areas have no record; they are
        // not waited for (they never subscribed intent to assist).
        if all_ready {
            self.set_state(now, LkmState::SuspensionReady);
            self.stats.final_update_duration = self.pending_final_update;
            // The final update's work finished "just now": back-date the
            // span so it covers the accumulated walk + flip cost.
            let start = SimTime::from_nanos(
                now.as_nanos()
                    .saturating_sub(self.pending_final_update.as_nanos()),
            );
            self.telemetry.record_span(
                start,
                Subsystem::Lkm,
                "final_bitmap_update",
                self.pending_final_update,
                vec![
                    ("expand_pages", self.stats.final_expand_pages.into()),
                    ("set_pages", self.stats.final_set_pages.into()),
                    ("stragglers", self.stats.stragglers.into()),
                ],
            );
            self.telemetry.instant(
                now,
                Subsystem::Lkm,
                "ready_to_suspend",
                vec![
                    ("final_update", self.pending_final_update.into()),
                    ("stragglers", self.stats.stragglers.into()),
                ],
            );
            self.port.send(
                now,
                LkmToDaemon::ReadyToSuspend {
                    final_update: self.pending_final_update,
                    stragglers: self.stats.stragglers,
                },
            );
            self.prepare_deadline = None;
        }
    }

    fn reset_after_migration(&mut self, now: SimTime) {
        self.set_state(now, LkmState::Initialized);
        self.transfer.reset();
        for rec in self.apps.values_mut() {
            rec.areas.clear();
            rec.cache.clear();
            rec.suspension_ready = false;
        }
        self.prepare_deadline = None;
        self.pending_final_update = SimDuration::ZERO;
    }

    fn cache_bytes(&self) -> u64 {
        self.apps.values().map(|a| a.cache.byte_size()).sum()
    }

    /// CPU time of a walk + bit-flip batch, divided across the configured
    /// worker threads (with a 10% coordination overhead per extra worker).
    fn parallel_cost(&self, walked: u64, flipped: u64) -> SimDuration {
        let serial =
            self.config.walk_cost_per_page * walked + self.config.bit_cost_per_page * flipped;
        let workers = self.config.walk_parallelism.max(1) as f64;
        serial.mul_f64((1.0 + 0.1 * (workers - 1.0)) / workers)
    }
}

impl AppRecord {
    /// Drains the PFN cache, returning every cached PFN.
    fn cache_drain(&mut self) -> Vec<Pfn> {
        // take_range over the full VA space empties the cache.
        let all = VaRange::new(vmem::Vaddr(0), vmem::Vaddr(!(vmem::PAGE_SIZE - 1)));
        self.cache.take_range(all)
    }
}

impl core::fmt::Debug for Lkm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Lkm")
            .field("state", &self.state)
            .field("apps", &self.apps.len())
            .field("skip_pages", &self.transfer.skip_count())
            .finish()
    }
}
