#![warn(missing_docs)]
//! `guestos` — the simulated guest kernel and the migration-assist LKM.
//!
//! Implements the guest half of the paper's generic framework for
//! application-assisted live migration (§3):
//!
//! * [`kernel::GuestKernel`] — processes, page-frame allocation (scattered,
//!   like real physical memory), guest memory writes with log-dirty fault
//!   reporting, and background OS churn;
//! * [`netlink`] — the asynchronous multicast channel between the LKM and
//!   applications;
//! * [`evtchn`] — the Xen event channel between the migration daemon and
//!   the LKM;
//! * [`lkm::Lkm`] — the Loadable Kernel Module: state machine, transfer
//!   bitmap ownership, first/shrink/final bitmap updates, PFN caching, and
//!   straggler timeouts;
//! * [`coord`] — the versioned [`coord::CoordMsg`] envelope every hop
//!   carries (seq numbers, deadlines, source lane);
//! * [`app::GuestApp`] — the contract assisting applications fulfil.

pub mod app;
pub mod coord;
pub mod evtchn;
pub mod frames;
pub mod kernel;
pub mod lkm;
pub mod netlink;
pub mod process;
pub mod procfs;

pub use app::GuestApp;
pub use coord::{CoordMsg, CoordPayload, Lane, COORD_VERSION};
pub use kernel::{GuestKernel, GuestOsConfig, WriteOutcome};
pub use lkm::{DaemonPort, Lkm, LkmConfig, LkmConfigBuilder, LkmConfigError, LkmState, LkmStats};
pub use netlink::{NetlinkBus, NetlinkSocket};
pub use process::{Pid, Process};
pub use procfs::{parse_ranges, ProcSkipOverEntry, ProcWriteError};
