//! A simulated Xen event channel between the migration daemon and the LKM.
//!
//! A special event channel port is created with the guest VM (§3.3.1);
//! through it the migration daemon in domain 0 and the LKM exchange
//! notifications throughout the migration. Like the netlink bus, delivery
//! is asynchronous with a small latency.

use crate::messages::{DaemonToLkm, LkmToDaemon};
use simkit::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Default one-way latency of an event-channel notification.
pub const EVTCHN_LATENCY: SimDuration = SimDuration::from_micros(20);

#[derive(Debug)]
struct ChannelCore {
    latency: SimDuration,
    to_lkm: VecDeque<(SimTime, DaemonToLkm)>,
    to_daemon: VecDeque<(SimTime, LkmToDaemon)>,
}

/// Creates a connected (daemon-side, LKM-side) endpoint pair.
///
/// # Examples
///
/// ```
/// use guestos::evtchn::{channel_pair, EVTCHN_LATENCY};
/// use guestos::messages::DaemonToLkm;
/// use simkit::SimTime;
///
/// let (daemon, lkm) = channel_pair();
/// daemon.send(SimTime::ZERO, DaemonToLkm::MigrationBegin);
/// let later = SimTime::ZERO + EVTCHN_LATENCY;
/// assert_eq!(lkm.recv(later), vec![DaemonToLkm::MigrationBegin]);
/// ```
pub fn channel_pair() -> (DaemonPort, LkmPort) {
    channel_pair_with_latency(EVTCHN_LATENCY)
}

/// Creates a pair with a custom one-way latency.
pub fn channel_pair_with_latency(latency: SimDuration) -> (DaemonPort, LkmPort) {
    let core = Rc::new(RefCell::new(ChannelCore {
        latency,
        to_lkm: VecDeque::new(),
        to_daemon: VecDeque::new(),
    }));
    (
        DaemonPort {
            core: Rc::clone(&core),
        },
        LkmPort { core },
    )
}

/// The domain-0 (migration daemon) endpoint.
#[derive(Debug, Clone)]
pub struct DaemonPort {
    core: Rc<RefCell<ChannelCore>>,
}

impl DaemonPort {
    /// Sends a notification to the LKM.
    pub fn send(&self, now: SimTime, msg: DaemonToLkm) {
        let mut core = self.core.borrow_mut();
        let ready = now + core.latency;
        core.to_lkm.push_back((ready, msg));
    }

    /// Receives all LKM notifications that have arrived by `now`.
    pub fn recv(&self, now: SimTime) -> Vec<LkmToDaemon> {
        drain_ready(&mut self.core.borrow_mut().to_daemon, now)
    }
}

/// The guest (LKM) endpoint.
#[derive(Debug, Clone)]
pub struct LkmPort {
    core: Rc<RefCell<ChannelCore>>,
}

impl LkmPort {
    /// Sends a notification to the daemon.
    pub fn send(&self, now: SimTime, msg: LkmToDaemon) {
        let mut core = self.core.borrow_mut();
        let ready = now + core.latency;
        core.to_daemon.push_back((ready, msg));
    }

    /// Receives all daemon notifications that have arrived by `now`.
    pub fn recv(&self, now: SimTime) -> Vec<DaemonToLkm> {
        drain_ready(&mut self.core.borrow_mut().to_lkm, now)
    }
}

fn drain_ready<T>(queue: &mut VecDeque<(SimTime, T)>, now: SimTime) -> Vec<T> {
    let mut out = Vec::new();
    while let Some(&(ready, _)) = queue.front() {
        if ready <= now {
            out.push(queue.pop_front().expect("front checked").1);
        } else {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn bidirectional_delivery() {
        let (daemon, lkm) = channel_pair();
        daemon.send(t(0), DaemonToLkm::MigrationBegin);
        assert!(lkm.recv(t(0)).is_empty(), "latency not yet elapsed");
        assert_eq!(lkm.recv(t(20)), vec![DaemonToLkm::MigrationBegin]);
        lkm.send(
            t(30),
            LkmToDaemon::ReadyToSuspend {
                final_update: SimDuration::from_micros(250),
                stragglers: 0,
            },
        );
        assert_eq!(daemon.recv(t(50)).len(), 1);
    }

    #[test]
    fn order_preserved() {
        let (daemon, lkm) = channel_pair_with_latency(SimDuration::ZERO);
        daemon.send(t(0), DaemonToLkm::MigrationBegin);
        daemon.send(t(0), DaemonToLkm::EnteringLastIter);
        assert_eq!(
            lkm.recv(t(0)),
            vec![DaemonToLkm::MigrationBegin, DaemonToLkm::EnteringLastIter]
        );
    }
}
