//! A simulated Xen event channel between the migration daemon and the LKM.
//!
//! A special event channel port is created with the guest VM (§3.3.1);
//! through it the migration daemon in domain 0 and the LKM exchange
//! notifications throughout the migration. Like the netlink bus, delivery
//! is asynchronous with a small latency.
//!
//! The channel carries [`CoordMsg`] envelopes: each endpoint stamps a
//! monotonically increasing per-direction sequence number and the
//! [`Lane::Evtchn`] lane at send time. Fault injection (see
//! [`simkit::faults`]) can drop, delay or duplicate messages on this hop;
//! delayed messages are kept ready-time-sorted so reordering is observable
//! at the receiver, while the fault-free path degenerates to plain FIFO.

use crate::coord::{CoordMsg, Lane};
use simkit::faults::{insert_by_ready, LaneFaultState, MessageFate};
use simkit::{DetRng, LaneFaults, Recorder, SimDuration, SimTime, Subsystem};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Default one-way latency of an event-channel notification.
pub const EVTCHN_LATENCY: SimDuration = SimDuration::from_micros(20);

#[derive(Debug)]
struct ChannelCore {
    latency: SimDuration,
    to_lkm: VecDeque<(SimTime, CoordMsg)>,
    to_daemon: VecDeque<(SimTime, CoordMsg)>,
    daemon_seq: u64,
    lkm_seq: u64,
    faults: Option<LaneFaultState>,
    telemetry: Recorder,
}

impl ChannelCore {
    /// Stamps, applies fault fate, and enqueues one message.
    fn deliver(&mut self, now: SimTime, mut msg: CoordMsg, to_lkm: bool) {
        msg.lane = Lane::Evtchn;
        msg.seq = if to_lkm {
            self.daemon_seq += 1;
            self.daemon_seq
        } else {
            self.lkm_seq += 1;
            self.lkm_seq
        };
        let mut ready = now + self.latency;
        let mut copies = 1;
        if let Some(faults) = &mut self.faults {
            match faults.fate() {
                MessageFate::Deliver => {}
                MessageFate::Drop => return,
                MessageFate::Delay(extra) => ready += extra,
                MessageFate::Duplicate => copies = 2,
            }
        }
        let queue = if to_lkm {
            &mut self.to_lkm
        } else {
            &mut self.to_daemon
        };
        for _ in 0..copies {
            self.telemetry.hist_dur(
                Subsystem::Net,
                "evtchn_delivery_ns",
                ready.saturating_since(now),
            );
            insert_by_ready(queue, ready, msg.clone());
        }
    }
}

/// Creates a connected (daemon-side, LKM-side) endpoint pair.
///
/// # Examples
///
/// ```
/// use guestos::coord::CoordPayload;
/// use guestos::evtchn::{channel_pair, EVTCHN_LATENCY};
/// use simkit::SimTime;
///
/// let (daemon, lkm) = channel_pair();
/// daemon.send(SimTime::ZERO, CoordPayload::MigrationBegin);
/// let later = SimTime::ZERO + EVTCHN_LATENCY;
/// let got = lkm.recv(later);
/// assert_eq!(got.len(), 1);
/// assert_eq!(got[0].payload, CoordPayload::MigrationBegin);
/// assert_eq!(got[0].seq, 1);
/// ```
pub fn channel_pair() -> (DaemonPort, LkmPort) {
    channel_pair_with_latency(EVTCHN_LATENCY)
}

/// Creates a pair with a custom one-way latency.
pub fn channel_pair_with_latency(latency: SimDuration) -> (DaemonPort, LkmPort) {
    let core = Rc::new(RefCell::new(ChannelCore {
        latency,
        to_lkm: VecDeque::new(),
        to_daemon: VecDeque::new(),
        daemon_seq: 0,
        lkm_seq: 0,
        faults: None,
        telemetry: Recorder::disabled(),
    }));
    (
        DaemonPort {
            core: Rc::clone(&core),
        },
        LkmPort { core },
    )
}

/// The domain-0 (migration daemon) endpoint.
#[derive(Debug, Clone)]
pub struct DaemonPort {
    core: Rc<RefCell<ChannelCore>>,
}

impl DaemonPort {
    /// Sends a notification to the LKM.
    pub fn send(&self, now: SimTime, msg: impl Into<CoordMsg>) {
        self.core.borrow_mut().deliver(now, msg.into(), true);
    }

    /// Receives all LKM notifications that have arrived by `now`.
    pub fn recv(&self, now: SimTime) -> Vec<CoordMsg> {
        drain_ready(&mut self.core.borrow_mut().to_daemon, now)
    }

    /// Arms fault injection on this hop (both directions share one fate
    /// stream so a plan replays identically regardless of traffic mix).
    pub fn install_faults(&self, faults: LaneFaults, rng: DetRng) {
        self.core.borrow_mut().faults = Some(LaneFaultState::new(faults, rng));
    }

    /// Attaches a flight recorder: each enqueued copy records its
    /// send-to-ready delivery latency (including injected delay) into the
    /// `net/evtchn_delivery_ns` histogram.
    pub fn attach_telemetry(&self, recorder: Recorder) {
        self.core.borrow_mut().telemetry = recorder;
    }
}

/// The guest (LKM) endpoint.
#[derive(Debug, Clone)]
pub struct LkmPort {
    core: Rc<RefCell<ChannelCore>>,
}

impl LkmPort {
    /// Sends a notification to the daemon.
    pub fn send(&self, now: SimTime, msg: impl Into<CoordMsg>) {
        self.core.borrow_mut().deliver(now, msg.into(), false);
    }

    /// Receives all daemon notifications that have arrived by `now`.
    pub fn recv(&self, now: SimTime) -> Vec<CoordMsg> {
        drain_ready(&mut self.core.borrow_mut().to_lkm, now)
    }
}

fn drain_ready(queue: &mut VecDeque<(SimTime, CoordMsg)>, now: SimTime) -> Vec<CoordMsg> {
    let mut out = Vec::new();
    while let Some(&(ready, _)) = queue.front() {
        if ready <= now {
            out.push(queue.pop_front().expect("front checked").1);
        } else {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::CoordPayload;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn bidirectional_delivery() {
        let (daemon, lkm) = channel_pair();
        daemon.send(t(0), CoordPayload::MigrationBegin);
        assert!(lkm.recv(t(0)).is_empty(), "latency not yet elapsed");
        let got = lkm.recv(t(20));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, CoordPayload::MigrationBegin);
        assert_eq!(got[0].lane, Lane::Evtchn);
        lkm.send(
            t(30),
            CoordPayload::ReadyToSuspend {
                final_update: SimDuration::from_micros(250),
                stragglers: 0,
            },
        );
        assert_eq!(daemon.recv(t(50)).len(), 1);
    }

    #[test]
    fn order_and_seq_preserved() {
        let (daemon, lkm) = channel_pair_with_latency(SimDuration::ZERO);
        daemon.send(t(0), CoordPayload::MigrationBegin);
        daemon.send(t(0), CoordPayload::EnteringLastIter);
        let got = lkm.recv(t(0));
        assert_eq!(
            got.iter().map(|m| m.payload.clone()).collect::<Vec<_>>(),
            vec![CoordPayload::MigrationBegin, CoordPayload::EnteringLastIter]
        );
        assert_eq!(got.iter().map(|m| m.seq).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn drop_fault_loses_messages() {
        let (daemon, lkm) = channel_pair_with_latency(SimDuration::ZERO);
        daemon.install_faults(
            LaneFaults {
                drop: 1.0,
                ..LaneFaults::NONE
            },
            DetRng::new(1),
        );
        daemon.send(t(0), CoordPayload::MigrationBegin);
        assert!(lkm.recv(t(10)).is_empty());
    }

    #[test]
    fn duplicate_fault_shares_seq() {
        let (daemon, lkm) = channel_pair_with_latency(SimDuration::ZERO);
        daemon.install_faults(
            LaneFaults {
                duplicate: 1.0,
                ..LaneFaults::NONE
            },
            DetRng::new(1),
        );
        daemon.send(t(0), CoordPayload::MigrationBegin);
        let got = lkm.recv(t(10));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq, got[1].seq);
    }

    #[test]
    fn delay_fault_reorders_behind_later_sends() {
        let (daemon, lkm) = channel_pair_with_latency(SimDuration::ZERO);
        // First message delayed; second sent fault-free afterwards.
        daemon.install_faults(
            LaneFaults {
                delay: 1.0,
                delay_max: SimDuration::from_millis(10),
                ..LaneFaults::NONE
            },
            DetRng::new(3),
        );
        daemon.send(t(0), CoordPayload::MigrationBegin);
        daemon.install_faults(LaneFaults::NONE, DetRng::new(0));
        daemon.send(t(1), CoordPayload::EnteringLastIter);
        let got = lkm.recv(t(20_000));
        assert_eq!(got.len(), 2);
        // The delayed MigrationBegin (seq 1) arrives after seq 2.
        assert_eq!(got[0].seq, 2);
        assert_eq!(got[1].seq, 1);
    }
}
