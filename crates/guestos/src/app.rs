//! The contract an assisting application fulfils.
//!
//! The gray boxes of the paper's Figure 4 describe what an application must
//! do to assist in migration: report skip-over areas when queried, notify
//! the LKM immediately when an area shrinks, make skip-over contents
//! recoverable-or-unneeded when asked to prepare for suspension, and recover
//! or forget those contents once the VM resumes. In JAVMM all of this is
//! done by the JVM TI agent on behalf of Java applications; the §6 cache
//! extension does it inside a cache server.
//!
//! Concrete applications own a [`crate::netlink::NetlinkSocket`] and
//! exchange [`crate::coord::CoordMsg`] envelopes with the LKM from inside their
//! [`GuestApp::advance`]; the orchestrator only needs this object-safe
//! trait to drive them.

use crate::kernel::GuestKernel;
use crate::process::Pid;
use simkit::{SimDuration, SimTime};

/// A guest application driven by the co-simulation.
pub trait GuestApp {
    /// The application's process id.
    fn pid(&self) -> Pid;

    /// Advances the application's execution by `dt` of guest time.
    ///
    /// The application performs its workload (dirtying guest memory through
    /// `kernel`), drains its netlink socket, and sends any protocol replies.
    /// `dt` already excludes time the VM was suspended; application-internal
    /// pauses (GC safepoints, cache locks) are the app's own business.
    fn advance(&mut self, now: SimTime, dt: SimDuration, kernel: &mut GuestKernel);

    /// Returns how many work operations the application has completed so
    /// far (the paper's analyzer samples this once a second from outside).
    fn ops_completed(&self) -> u64;
}
