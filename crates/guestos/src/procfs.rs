//! The LKM's `/proc` entry for skip-over area registration.
//!
//! §3.3.2: applications "specify each skip-over area by a VA range, and
//! pass the VA range to the LKM via a /proc entry". Queries and
//! notifications ride netlink; the bulk registration of areas is a textual
//! write to `/proc/javmm/skip_over`, one area per line:
//!
//! ```text
//! 0x7f4000000000-0x7f4040000000
//! 0x7f5000000000-0x7f5004000000
//! ```
//!
//! The parser is strict — a kernel interface must reject garbage rather
//! than guess — and the accepted ranges are handed to the LKM exactly as a
//! netlink `SkipOverAreas` reply would be.

use crate::coord::CoordPayload;
use crate::netlink::NetlinkSocket;
use simkit::SimTime;
use vmem::{VaRange, Vaddr};

/// Errors a `/proc` write can produce (mapped to `-EINVAL` in a real LKM).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcWriteError {
    /// A line was not of the form `0xSTART-0xEND`.
    Malformed {
        /// The offending 0-based line number.
        line: usize,
    },
    /// A hex address failed to parse.
    BadAddress {
        /// The offending 0-based line number.
        line: usize,
    },
    /// `end` was not strictly greater than `start`.
    EmptyRange {
        /// The offending 0-based line number.
        line: usize,
    },
}

/// Parses the textual `/proc` format into VA ranges.
///
/// # Examples
///
/// ```
/// use guestos::procfs::parse_ranges;
///
/// let ranges = parse_ranges("0x1000-0x3000\n0x8000-0x9000\n").unwrap();
/// assert_eq!(ranges.len(), 2);
/// assert!(parse_ranges("garbage").is_err());
/// ```
pub fn parse_ranges(text: &str) -> Result<Vec<VaRange>, ProcWriteError> {
    let mut out = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (start, end) = line
            .split_once('-')
            .ok_or(ProcWriteError::Malformed { line: line_no })?;
        let parse = |s: &str| -> Result<u64, ProcWriteError> {
            let s = s.trim();
            let hex = s
                .strip_prefix("0x")
                .or_else(|| s.strip_prefix("0X"))
                .ok_or(ProcWriteError::Malformed { line: line_no })?;
            u64::from_str_radix(hex, 16).map_err(|_| ProcWriteError::BadAddress { line: line_no })
        };
        let start = parse(start)?;
        let end = parse(end)?;
        if end <= start {
            return Err(ProcWriteError::EmptyRange { line: line_no });
        }
        out.push(VaRange::new(Vaddr(start), Vaddr(end)));
    }
    Ok(out)
}

/// Renders ranges in the `/proc` text format (what an application writes).
pub fn format_ranges(ranges: &[VaRange]) -> String {
    let mut s = String::new();
    for r in ranges {
        s.push_str(&format!("{:#x}-{:#x}\n", r.start().0, r.end().0));
    }
    s
}

/// Writes skip-over areas through the `/proc` path using a borrowed
/// netlink identity (for applications that keep their socket for the
/// notification traffic).
pub fn write_skip_over(
    sock: &NetlinkSocket,
    now: SimTime,
    ranges: &[VaRange],
) -> Result<usize, ProcWriteError> {
    let text = format_ranges(ranges);
    let parsed = parse_ranges(&text)?;
    let n = parsed.len();
    sock.send(now, CoordPayload::SkipOverAreas(parsed));
    Ok(n)
}

/// An application's handle to `/proc/javmm/skip_over`.
///
/// The handle validates the written text and forwards the parsed areas to
/// the LKM attributed to the writing process — exactly the effect of a
/// netlink `SkipOverAreas` report, which is how the LKM treats it.
#[derive(Debug)]
pub struct ProcSkipOverEntry {
    sock: NetlinkSocket,
}

impl ProcSkipOverEntry {
    /// Opens the entry for the process owning `sock`.
    pub fn open(sock: NetlinkSocket) -> Self {
        Self { sock }
    }

    /// Writes `text` to the entry, registering the parsed skip-over areas.
    ///
    /// Returns the number of areas registered.
    pub fn write(&self, now: SimTime, text: &str) -> Result<usize, ProcWriteError> {
        let ranges = parse_ranges(text)?;
        let n = ranges.len();
        self.sock.send(now, CoordPayload::SkipOverAreas(ranges));
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_style_ranges() {
        // Figure 3's example area.
        let ranges = parse_ranges("0x3b00-0x8aff\n").unwrap();
        assert_eq!(ranges, vec![VaRange::new(Vaddr(0x3b00), Vaddr(0x8aff))]);
    }

    #[test]
    fn skips_blank_lines_and_whitespace() {
        let ranges = parse_ranges("\n  0x1000 - 0x2000  \n\n0X3000-0X4000\n").unwrap();
        assert_eq!(ranges.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            parse_ranges("hello world"),
            Err(ProcWriteError::Malformed { line: 0 })
        );
        assert_eq!(
            parse_ranges("0x1000-0xZZZZ"),
            Err(ProcWriteError::BadAddress { line: 0 })
        );
        assert_eq!(
            parse_ranges("1000-2000"),
            Err(ProcWriteError::Malformed { line: 0 }),
            "decimal without 0x is rejected"
        );
        assert_eq!(
            parse_ranges("0x2000-0x1000"),
            Err(ProcWriteError::EmptyRange { line: 0 })
        );
        assert_eq!(
            parse_ranges("0x1000-0x2000\nbroken"),
            Err(ProcWriteError::Malformed { line: 1 })
        );
    }

    #[test]
    fn format_and_parse_roundtrip() {
        let ranges = vec![
            VaRange::new(Vaddr(0x7f40_0000_0000), Vaddr(0x7f40_4000_0000)),
            VaRange::new(Vaddr(0x1000), Vaddr(0x2000)),
        ];
        assert_eq!(parse_ranges(&format_ranges(&ranges)).unwrap(), ranges);
    }
}
