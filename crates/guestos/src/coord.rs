//! The coordination-plane envelope: one versioned message type for every
//! hop of the assisted-migration protocol.
//!
//! Historically each direction had its own enum (`DaemonToLkm`,
//! `LkmToDaemon`, `LkmToApp`, `AppToLkm`), which made cross-cutting
//! concerns — sequence numbers for duplicate/stale detection, deadlines,
//! fault injection, telemetry — impossible to express once. [`CoordMsg`]
//! replaces the four with a single envelope: a protocol version, a
//! per-direction sequence number stamped by the transport at send time, an
//! optional sender deadline, the source [`Lane`], and a [`CoordPayload`]
//! covering the full vocabulary of Figure 4 plus the abort handshake of the
//! degradation ladder. Senders pass a [`CoordPayload`] (or a ready-made
//! `CoordMsg`) anywhere an `impl Into<CoordMsg>` is accepted; receivers
//! match on [`CoordMsg::payload`].

use simkit::{SimDuration, SimTime};
use vmem::VaRange;

/// Wire version of the coordination protocol.
pub const COORD_VERSION: u8 = 1;

/// The transport a coordination message rides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Daemon ↔ LKM over the Xen event channel.
    Evtchn,
    /// LKM ↔ applications over the netlink multicast group.
    Netlink,
}

/// The unified coordination message envelope.
///
/// `seq` and `lane` are stamped by the transport when the message is sent;
/// constructing a `CoordMsg` by hand (or via the compat `From` impls)
/// leaves them at neutral defaults. `deadline` is the sender's intent — "I
/// will stop waiting for the effect of this message at `deadline`" — and is
/// purely informational: receivers keep their own timeout policies so that
/// stamping a deadline never changes protocol timing.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordMsg {
    /// Protocol version ([`COORD_VERSION`]).
    pub version: u8,
    /// Per-direction sequence number, stamped at send. Duplicates injected
    /// by the transport share the original's seq so receivers can detect
    /// them; retries sent by the caller get fresh numbers.
    pub seq: u64,
    /// Sender's give-up instant, if it has one.
    pub deadline: Option<SimTime>,
    /// Source transport, stamped at send.
    pub lane: Lane,
    /// The actual protocol message.
    pub payload: CoordPayload,
}

impl CoordMsg {
    /// Wraps a payload in a fresh envelope (seq/lane are stamped at send).
    pub fn new(payload: CoordPayload) -> Self {
        Self {
            version: COORD_VERSION,
            seq: 0,
            deadline: None,
            lane: Lane::Evtchn,
            payload,
        }
    }

    /// Sets the sender deadline.
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl From<CoordPayload> for CoordMsg {
    fn from(payload: CoordPayload) -> Self {
        CoordMsg::new(payload)
    }
}

/// Every message of the coordination protocol, all hops.
///
/// The [`Lane`] and direction a payload is valid on is part of the protocol
/// (documented per variant); receivers treat out-of-place payloads as
/// protocol violations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordPayload {
    // ---- daemon → LKM (evtchn) ----
    /// Migration has begun; the LKM should query applications and perform
    /// the first transfer-bitmap update.
    MigrationBegin,
    /// The daemon wants to pause the VM and enter the last iteration; the
    /// LKM should ask applications to prepare for suspension.
    EnteringLastIter,
    /// Abandon assistance: clear every transfer-bitmap exclusion and stop
    /// coordinating — the migration continues as vanilla pre-copy. Also
    /// multicast by the LKM to applications so they release held threads.
    AbortAssist,
    /// The VM has resumed at the destination (daemon → LKM on evtchn, and
    /// relayed LKM → applications on netlink).
    VmResumed,
    /// The daemon's cold-page assist is enabled: the LKM should query
    /// applications for their cold-region maps and build the cold bitmap.
    /// Only sent when the engine's cold assist is configured on — a
    /// zero-config migration never emits this payload.
    QueryColdMap,

    // ---- LKM → daemon (evtchn) ----
    /// Acknowledges [`CoordPayload::MigrationBegin`]; lets the daemon
    /// distinguish a live LKM from a dead coordination channel.
    BeginAck,
    /// All applications are suspension-ready and the final transfer-bitmap
    /// update is complete; the daemon may pause the VM.
    ReadyToSuspend {
        /// Time the final bitmap update took (the paper measures ≤300 µs).
        final_update: SimDuration,
        /// Applications that missed the reply deadline and were forcibly
        /// un-skipped (§6 straggler handling).
        stragglers: u32,
    },

    // ---- LKM → applications (netlink multicast) ----
    /// "Migration has begun — report your skip-over areas."
    QuerySkipOver,
    /// "Prepare for VM suspension, then report your current skip-over
    /// areas." For JAVMM the preparation is the enforced minor GC.
    PrepareSuspension,
    /// "Report your cold regions" — live-but-rarely-written VA ranges the
    /// engine may defer or delta-compress. Only multicast after a
    /// [`CoordPayload::QueryColdMap`] from the daemon.
    QueryColdRegions,

    // ---- applications → LKM (netlink) ----
    /// Reply to [`CoordPayload::QuerySkipOver`]: the application's
    /// skip-over areas as raw (possibly unaligned) VA ranges.
    SkipOverAreas(Vec<VaRange>),
    /// Unsolicited notification that VA ranges left a skip-over area (the
    /// area shrank); must be sent immediately per §3.3.4.
    AreaShrunk {
        /// The VA ranges that left the area.
        left: Vec<VaRange>,
    },
    /// Reply to [`CoordPayload::PrepareSuspension`]: the application
    /// finished preparing (e.g. the enforced GC completed) and reports its
    /// current areas.
    SuspensionReady {
        /// Current skip-over areas (used for the final bitmap update's
        /// expansion/shrink reconciliation).
        areas: Vec<VaRange>,
        /// Sub-ranges inside `areas` whose contents must nevertheless be
        /// transferred in the last iteration. For JAVMM this is the
        /// occupied From space holding the data that survived the enforced
        /// GC; the LKM treats these pages as "leaving" the area and sets
        /// their transfer bits.
        must_send: Vec<VaRange>,
    },
    /// Reply to [`CoordPayload::QueryColdRegions`]: VA ranges the
    /// application believes are live but cold (written rarely enough that
    /// deferring or delta-compressing them is profitable). Unlike skip-over
    /// areas these pages *must* reach the destination; coldness only
    /// changes how they ride the link.
    ColdRegions(Vec<VaRange>),
}

impl CoordPayload {
    /// Stable payload name for telemetry and protocol-violation reports.
    pub fn name(&self) -> &'static str {
        match self {
            CoordPayload::MigrationBegin => "migration_begin",
            CoordPayload::EnteringLastIter => "entering_last_iter",
            CoordPayload::AbortAssist => "abort_assist",
            CoordPayload::VmResumed => "vm_resumed",
            CoordPayload::QueryColdMap => "query_cold_map",
            CoordPayload::BeginAck => "begin_ack",
            CoordPayload::ReadyToSuspend { .. } => "ready_to_suspend",
            CoordPayload::QuerySkipOver => "query_skip_over",
            CoordPayload::PrepareSuspension => "prepare_suspension",
            CoordPayload::QueryColdRegions => "query_cold_regions",
            CoordPayload::SkipOverAreas(_) => "skip_over_areas",
            CoordPayload::AreaShrunk { .. } => "area_shrunk",
            CoordPayload::SuspensionReady { .. } => "suspension_ready",
            CoordPayload::ColdRegions(_) => "cold_regions",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_envelope_roundtrip() {
        let m: CoordMsg = CoordPayload::ReadyToSuspend {
            final_update: SimDuration::from_micros(250),
            stragglers: 1,
        }
        .into();
        assert_eq!(m.version, COORD_VERSION);
        assert_eq!(
            m.payload,
            CoordPayload::ReadyToSuspend {
                final_update: SimDuration::from_micros(250),
                stragglers: 1,
            }
        );
    }

    #[test]
    fn deadline_builder_sets_deadline() {
        let t = SimTime::from_nanos(99);
        let m = CoordMsg::new(CoordPayload::EnteringLastIter).with_deadline(t);
        assert_eq!(m.deadline, Some(t));
    }

    #[test]
    fn payload_names_are_distinct() {
        let names = [
            CoordPayload::MigrationBegin.name(),
            CoordPayload::EnteringLastIter.name(),
            CoordPayload::AbortAssist.name(),
            CoordPayload::VmResumed.name(),
            CoordPayload::BeginAck.name(),
            CoordPayload::QuerySkipOver.name(),
            CoordPayload::PrepareSuspension.name(),
            CoordPayload::QueryColdMap.name(),
            CoordPayload::QueryColdRegions.name(),
            CoordPayload::ColdRegions(vec![]).name(),
        ];
        let set: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
