//! A simulated netlink multicast socket family.
//!
//! The LKM talks to applications over a netlink multicast group because
//! netlink is bi-directional, asynchronous, and capable of multicasting
//! (§3.3.1). The simulation preserves all three properties: messages are
//! queued with a delivery latency and become visible to receivers only once
//! the clock passes their ready time, and a kernel-side multicast fans out
//! to every subscribed socket.
//!
//! Messages are [`CoordMsg`] envelopes stamped with [`Lane::Netlink`] and a
//! per-direction sequence number. Two independent fault mechanisms exist:
//! the legacy loss model ([`NetlinkBus::inject_loss`], modelling `ENOBUFS`
//! under memory pressure) and the structured [`simkit::faults`] lane
//! (drop/delay/duplicate) armed via [`NetlinkBus::install_faults`].

use crate::process::Pid;
use simkit::faults::{insert_by_ready, LaneFaultState, MessageFate};
use simkit::{DetRng, LaneFaults, Recorder, SimDuration, SimTime, Subsystem};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use crate::coord::{CoordMsg, Lane};

/// Default one-way latency of a netlink message (kernel↔user round trips
/// are tens of microseconds on commodity hardware).
pub const NETLINK_LATENCY: SimDuration = SimDuration::from_micros(50);

#[derive(Debug)]
struct BusCore {
    latency: SimDuration,
    to_apps: BTreeMap<u32, VecDeque<(SimTime, CoordMsg)>>,
    to_kernel: VecDeque<(SimTime, Pid, CoordMsg)>,
    sock_pid: BTreeMap<u32, Pid>,
    next_sock: u32,
    kernel_seq: u64,
    app_seq: u64,
    /// Legacy fault injection: probability of silently dropping a message.
    loss: Option<(f64, DetRng)>,
    dropped: u64,
    /// Structured fault injection (drop/delay/duplicate) for the plan-driven
    /// harness; independent of `loss`.
    faults: Option<LaneFaultState>,
    telemetry: Recorder,
}

impl BusCore {
    /// Returns `true` when legacy loss injection drops this message.
    fn drops(&mut self) -> bool {
        match &mut self.loss {
            Some((p, rng)) => {
                let p = *p;
                if rng.chance(p) {
                    self.dropped += 1;
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }

    /// Applies the structured fault lane to one stamped message copy.
    /// Returns the delivery plan: (ready time, number of copies).
    fn fate(&mut self, ready: SimTime) -> Option<(SimTime, u32)> {
        match &mut self.faults {
            None => Some((ready, 1)),
            Some(state) => match state.fate() {
                MessageFate::Deliver => Some((ready, 1)),
                MessageFate::Drop => None,
                MessageFate::Delay(extra) => Some((ready + extra, 1)),
                MessageFate::Duplicate => Some((ready, 2)),
            },
        }
    }
}

/// The netlink bus: created by the LKM on load, subscribed to by apps.
///
/// # Examples
///
/// ```
/// use guestos::coord::CoordPayload;
/// use guestos::netlink::NetlinkBus;
/// use guestos::process::Pid;
/// use simkit::SimTime;
///
/// let bus = NetlinkBus::new();
/// let sock = bus.subscribe(Pid(10));
/// let kernel = bus.kernel_end();
/// kernel.multicast(SimTime::ZERO, CoordPayload::QuerySkipOver);
/// // Not yet delivered: latency has not elapsed.
/// assert!(sock.recv(SimTime::ZERO).is_empty());
/// let later = SimTime::from_nanos(1_000_000);
/// let got = sock.recv(later);
/// assert_eq!(got.len(), 1);
/// assert_eq!(got[0].payload, CoordPayload::QuerySkipOver);
/// ```
#[derive(Debug, Clone)]
pub struct NetlinkBus {
    core: Rc<RefCell<BusCore>>,
}

impl NetlinkBus {
    /// Creates a bus with the default latency.
    pub fn new() -> Self {
        Self::with_latency(NETLINK_LATENCY)
    }

    /// Creates a bus with a custom one-way latency.
    pub fn with_latency(latency: SimDuration) -> Self {
        Self {
            core: Rc::new(RefCell::new(BusCore {
                latency,
                to_apps: BTreeMap::new(),
                to_kernel: VecDeque::new(),
                sock_pid: BTreeMap::new(),
                next_sock: 0,
                kernel_seq: 0,
                app_seq: 0,
                loss: None,
                dropped: 0,
                faults: None,
                telemetry: Recorder::disabled(),
            })),
        }
    }

    /// Enables legacy loss injection: every message (either direction) is
    /// independently dropped with probability `loss`.
    ///
    /// Real netlink is lossy under memory pressure (`ENOBUFS`); the
    /// framework must degrade to straggler handling rather than hang.
    pub fn inject_loss(&self, loss: f64, rng: DetRng) {
        self.core.borrow_mut().loss = Some((loss.clamp(0.0, 1.0), rng));
    }

    /// Arms structured fault injection (drop/delay/duplicate) on this hop.
    pub fn install_faults(&self, faults: LaneFaults, rng: DetRng) {
        self.core.borrow_mut().faults = Some(LaneFaultState::new(faults, rng));
    }

    /// Messages dropped by legacy loss injection so far.
    pub fn dropped_count(&self) -> u64 {
        self.core.borrow().dropped
    }

    /// Attaches a flight recorder: every delivered copy (either direction)
    /// records its send-to-ready latency into the
    /// `net/netlink_delivery_ns` histogram.
    pub fn attach_telemetry(&self, recorder: Recorder) {
        self.core.borrow_mut().telemetry = recorder;
    }

    /// Subscribes a process to the multicast group, returning its socket.
    pub fn subscribe(&self, pid: Pid) -> NetlinkSocket {
        let mut core = self.core.borrow_mut();
        let sock = core.next_sock;
        core.next_sock += 1;
        core.to_apps.insert(sock, VecDeque::new());
        core.sock_pid.insert(sock, pid);
        NetlinkSocket {
            core: Rc::clone(&self.core),
            sock,
            pid,
        }
    }

    /// Returns the kernel-side endpoint used by the LKM.
    pub fn kernel_end(&self) -> KernelNetlink {
        KernelNetlink {
            core: Rc::clone(&self.core),
        }
    }

    /// Returns the number of subscribed sockets.
    pub fn subscriber_count(&self) -> usize {
        self.core.borrow().to_apps.len()
    }

    /// Returns the pids of all subscribed sockets (sorted by socket id).
    pub fn subscriber_pids(&self) -> Vec<Pid> {
        self.core.borrow().sock_pid.values().copied().collect()
    }
}

impl Default for NetlinkBus {
    fn default() -> Self {
        Self::new()
    }
}

/// An application's netlink socket.
#[derive(Debug)]
pub struct NetlinkSocket {
    core: Rc<RefCell<BusCore>>,
    sock: u32,
    pid: Pid,
}

impl NetlinkSocket {
    /// Returns the owning process.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Receives all messages that have arrived by `now`.
    pub fn recv(&self, now: SimTime) -> Vec<CoordMsg> {
        let mut core = self.core.borrow_mut();
        let queue = core
            .to_apps
            .get_mut(&self.sock)
            .expect("socket unsubscribed");
        let mut out = Vec::new();
        while let Some(&(ready, _)) = queue.front() {
            if ready <= now {
                out.push(queue.pop_front().expect("front checked").1);
            } else {
                break;
            }
        }
        out
    }

    /// Sends a message to the kernel.
    pub fn send(&self, now: SimTime, msg: impl Into<CoordMsg>) {
        let mut core = self.core.borrow_mut();
        if core.drops() {
            return;
        }
        let mut msg = msg.into();
        msg.lane = Lane::Netlink;
        core.app_seq += 1;
        msg.seq = core.app_seq;
        let ready = now + core.latency;
        if let Some((ready, copies)) = core.fate(ready) {
            for _ in 0..copies {
                core.telemetry.hist_dur(
                    Subsystem::Net,
                    "netlink_delivery_ns",
                    ready.saturating_since(now),
                );
                let at = core.to_kernel.partition_point(|&(r, _, _)| r <= ready);
                core.to_kernel.insert(at, (ready, self.pid, msg.clone()));
            }
        }
    }
}

impl Drop for NetlinkSocket {
    fn drop(&mut self) {
        // Unsubscribe so multicasts stop queueing for a dead socket.
        let mut core = self.core.borrow_mut();
        core.to_apps.remove(&self.sock);
        core.sock_pid.remove(&self.sock);
    }
}

/// The kernel-side (LKM) endpoint of the bus.
#[derive(Debug, Clone)]
pub struct KernelNetlink {
    core: Rc<RefCell<BusCore>>,
}

impl KernelNetlink {
    /// Multicasts `msg` to every subscribed socket; under fault injection
    /// each receiver's copy is dropped/delayed/duplicated independently.
    pub fn multicast(&self, now: SimTime, msg: impl Into<CoordMsg>) {
        let mut core = self.core.borrow_mut();
        let mut msg = msg.into();
        msg.lane = Lane::Netlink;
        core.kernel_seq += 1;
        msg.seq = core.kernel_seq;
        let base_ready = now + core.latency;
        let socks: Vec<u32> = core.to_apps.keys().copied().collect();
        for sock in socks {
            if core.drops() {
                continue;
            }
            let Some((ready, copies)) = core.fate(base_ready) else {
                continue;
            };
            for _ in 0..copies {
                core.telemetry.hist_dur(
                    Subsystem::Net,
                    "netlink_delivery_ns",
                    ready.saturating_since(now),
                );
            }
            let queue = core.to_apps.get_mut(&sock).expect("sock key just listed");
            for _ in 0..copies {
                insert_by_ready(queue, ready, msg.clone());
            }
        }
    }

    /// Receives all application messages that have arrived by `now`.
    pub fn recv(&self, now: SimTime) -> Vec<(Pid, CoordMsg)> {
        let mut core = self.core.borrow_mut();
        let mut out = Vec::new();
        while let Some(&(ready, _, _)) = core.to_kernel.front() {
            if ready <= now {
                let (_, pid, msg) = core.to_kernel.pop_front().expect("front checked");
                out.push((pid, msg));
            } else {
                break;
            }
        }
        out
    }

    /// Returns the number of subscribed application sockets.
    pub fn subscriber_count(&self) -> usize {
        self.core.borrow().to_apps.len()
    }

    /// Returns the pids of all subscribed sockets (sorted by socket id).
    pub fn subscriber_pids(&self) -> Vec<Pid> {
        self.core.borrow().sock_pid.values().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::CoordPayload;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn payloads(msgs: Vec<CoordMsg>) -> Vec<CoordPayload> {
        msgs.into_iter().map(|m| m.payload).collect()
    }

    #[test]
    fn multicast_reaches_all_subscribers() {
        let bus = NetlinkBus::new();
        let a = bus.subscribe(Pid(1));
        let b = bus.subscribe(Pid(2));
        bus.kernel_end()
            .multicast(t(0), CoordPayload::QuerySkipOver);
        assert_eq!(payloads(a.recv(t(1))), vec![CoordPayload::QuerySkipOver]);
        assert_eq!(payloads(b.recv(t(1))), vec![CoordPayload::QuerySkipOver]);
        assert!(a.recv(t(2)).is_empty(), "message consumed");
    }

    #[test]
    fn latency_delays_delivery() {
        let bus = NetlinkBus::with_latency(SimDuration::from_millis(5));
        let sock = bus.subscribe(Pid(1));
        bus.kernel_end().multicast(t(0), CoordPayload::VmResumed);
        assert!(sock.recv(t(4)).is_empty());
        assert_eq!(sock.recv(t(5)).len(), 1);
    }

    #[test]
    fn app_to_kernel_is_tagged_with_pid() {
        let bus = NetlinkBus::new();
        let sock = bus.subscribe(Pid(42));
        let kernel = bus.kernel_end();
        sock.send(t(0), CoordPayload::SkipOverAreas(vec![]));
        let got = kernel.recv(t(1));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, Pid(42));
        assert_eq!(got[0].1.lane, Lane::Netlink);
        assert_eq!(got[0].1.seq, 1);
    }

    #[test]
    fn dropped_socket_unsubscribes() {
        let bus = NetlinkBus::new();
        let sock = bus.subscribe(Pid(1));
        assert_eq!(bus.subscriber_count(), 1);
        assert_eq!(bus.subscriber_pids(), vec![Pid(1)]);
        drop(sock);
        assert_eq!(bus.subscriber_count(), 0);
        // Multicasting to nobody is fine.
        bus.kernel_end()
            .multicast(t(0), CoordPayload::QuerySkipOver);
    }

    #[test]
    fn messages_preserve_fifo_order() {
        let bus = NetlinkBus::new();
        let sock = bus.subscribe(Pid(1));
        let kernel = bus.kernel_end();
        kernel.multicast(t(0), CoordPayload::QuerySkipOver);
        kernel.multicast(t(0), CoordPayload::PrepareSuspension);
        assert_eq!(
            payloads(sock.recv(t(1))),
            vec![CoordPayload::QuerySkipOver, CoordPayload::PrepareSuspension]
        );
    }

    #[test]
    fn structured_drop_fault_loses_multicast_copies() {
        let bus = NetlinkBus::with_latency(SimDuration::ZERO);
        let sock = bus.subscribe(Pid(1));
        bus.install_faults(
            LaneFaults {
                drop: 1.0,
                ..LaneFaults::NONE
            },
            DetRng::new(9),
        );
        bus.kernel_end()
            .multicast(t(0), CoordPayload::QuerySkipOver);
        assert!(sock.recv(t(10)).is_empty());
    }

    #[test]
    fn structured_duplicate_fault_repeats_seq() {
        let bus = NetlinkBus::with_latency(SimDuration::ZERO);
        let sock = bus.subscribe(Pid(1));
        bus.install_faults(
            LaneFaults {
                duplicate: 1.0,
                ..LaneFaults::NONE
            },
            DetRng::new(9),
        );
        bus.kernel_end()
            .multicast(t(0), CoordPayload::PrepareSuspension);
        let got = sock.recv(t(10));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq, got[1].seq);
    }
}
