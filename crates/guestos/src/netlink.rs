//! A simulated netlink multicast socket family.
//!
//! The LKM talks to applications over a netlink multicast group because
//! netlink is bi-directional, asynchronous, and capable of multicasting
//! (§3.3.1). The simulation preserves all three properties: messages are
//! queued with a delivery latency and become visible to receivers only once
//! the clock passes their ready time, and a kernel-side multicast fans out
//! to every subscribed socket.

use crate::process::Pid;
use simkit::{DetRng, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use crate::messages::{AppToLkm, LkmToApp};

/// Default one-way latency of a netlink message (kernel↔user round trips
/// are tens of microseconds on commodity hardware).
pub const NETLINK_LATENCY: SimDuration = SimDuration::from_micros(50);

#[derive(Debug)]
struct BusCore {
    latency: SimDuration,
    to_apps: BTreeMap<u32, VecDeque<(SimTime, LkmToApp)>>,
    to_kernel: VecDeque<(SimTime, Pid, AppToLkm)>,
    sock_pid: BTreeMap<u32, Pid>,
    next_sock: u32,
    /// Fault injection: probability of silently dropping a message.
    loss: Option<(f64, DetRng)>,
    dropped: u64,
}

impl BusCore {
    /// Returns `true` when fault injection decides to drop this message.
    fn drops(&mut self) -> bool {
        match &mut self.loss {
            Some((p, rng)) => {
                let p = *p;
                if rng.chance(p) {
                    self.dropped += 1;
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }
}

/// The netlink bus: created by the LKM on load, subscribed to by apps.
///
/// # Examples
///
/// ```
/// use guestos::netlink::NetlinkBus;
/// use guestos::messages::{AppToLkm, LkmToApp};
/// use guestos::process::Pid;
/// use simkit::SimTime;
///
/// let bus = NetlinkBus::new();
/// let sock = bus.subscribe(Pid(10));
/// let kernel = bus.kernel_end();
/// kernel.multicast(SimTime::ZERO, LkmToApp::QuerySkipOver);
/// // Not yet delivered: latency has not elapsed.
/// assert!(sock.recv(SimTime::ZERO).is_empty());
/// let later = SimTime::from_nanos(1_000_000);
/// assert_eq!(sock.recv(later), vec![LkmToApp::QuerySkipOver]);
/// ```
#[derive(Debug, Clone)]
pub struct NetlinkBus {
    core: Rc<RefCell<BusCore>>,
}

impl NetlinkBus {
    /// Creates a bus with the default latency.
    pub fn new() -> Self {
        Self::with_latency(NETLINK_LATENCY)
    }

    /// Creates a bus with a custom one-way latency.
    pub fn with_latency(latency: SimDuration) -> Self {
        Self {
            core: Rc::new(RefCell::new(BusCore {
                latency,
                to_apps: BTreeMap::new(),
                to_kernel: VecDeque::new(),
                sock_pid: BTreeMap::new(),
                next_sock: 0,
                loss: None,
                dropped: 0,
            })),
        }
    }

    /// Enables fault injection: every message (either direction) is
    /// independently dropped with probability `loss`.
    ///
    /// Real netlink is lossy under memory pressure (`ENOBUFS`); the
    /// framework must degrade to straggler handling rather than hang.
    pub fn inject_loss(&self, loss: f64, rng: DetRng) {
        self.core.borrow_mut().loss = Some((loss.clamp(0.0, 1.0), rng));
    }

    /// Messages dropped by fault injection so far.
    pub fn dropped_count(&self) -> u64 {
        self.core.borrow().dropped
    }

    /// Subscribes a process to the multicast group, returning its socket.
    pub fn subscribe(&self, pid: Pid) -> NetlinkSocket {
        let mut core = self.core.borrow_mut();
        let sock = core.next_sock;
        core.next_sock += 1;
        core.to_apps.insert(sock, VecDeque::new());
        core.sock_pid.insert(sock, pid);
        NetlinkSocket {
            core: Rc::clone(&self.core),
            sock,
            pid,
        }
    }

    /// Returns the kernel-side endpoint used by the LKM.
    pub fn kernel_end(&self) -> KernelNetlink {
        KernelNetlink {
            core: Rc::clone(&self.core),
        }
    }

    /// Returns the number of subscribed sockets.
    pub fn subscriber_count(&self) -> usize {
        self.core.borrow().to_apps.len()
    }
}

impl Default for NetlinkBus {
    fn default() -> Self {
        Self::new()
    }
}

/// An application's netlink socket.
#[derive(Debug)]
pub struct NetlinkSocket {
    core: Rc<RefCell<BusCore>>,
    sock: u32,
    pid: Pid,
}

impl NetlinkSocket {
    /// Returns the owning process.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Receives all messages that have arrived by `now`.
    pub fn recv(&self, now: SimTime) -> Vec<LkmToApp> {
        let mut core = self.core.borrow_mut();
        let queue = core
            .to_apps
            .get_mut(&self.sock)
            .expect("socket unsubscribed");
        let mut out = Vec::new();
        while let Some(&(ready, _)) = queue.front() {
            if ready <= now {
                out.push(queue.pop_front().expect("front checked").1);
            } else {
                break;
            }
        }
        out
    }

    /// Sends a message to the kernel.
    pub fn send(&self, now: SimTime, msg: AppToLkm) {
        let mut core = self.core.borrow_mut();
        if core.drops() {
            return;
        }
        let ready = now + core.latency;
        core.to_kernel.push_back((ready, self.pid, msg));
    }
}

impl Drop for NetlinkSocket {
    fn drop(&mut self) {
        // Unsubscribe so multicasts stop queueing for a dead socket.
        let mut core = self.core.borrow_mut();
        core.to_apps.remove(&self.sock);
        core.sock_pid.remove(&self.sock);
    }
}

/// The kernel-side (LKM) endpoint of the bus.
#[derive(Debug, Clone)]
pub struct KernelNetlink {
    core: Rc<RefCell<BusCore>>,
}

impl KernelNetlink {
    /// Multicasts `msg` to every subscribed socket; under fault injection
    /// each receiver's copy is dropped independently.
    pub fn multicast(&self, now: SimTime, msg: LkmToApp) {
        let mut core = self.core.borrow_mut();
        let ready = now + core.latency;
        let socks: Vec<u32> = core.to_apps.keys().copied().collect();
        for sock in socks {
            if core.drops() {
                continue;
            }
            core.to_apps
                .get_mut(&sock)
                .expect("sock key just listed")
                .push_back((ready, msg.clone()));
        }
    }

    /// Receives all application messages that have arrived by `now`.
    pub fn recv(&self, now: SimTime) -> Vec<(Pid, AppToLkm)> {
        let mut core = self.core.borrow_mut();
        let mut out = Vec::new();
        while let Some(&(ready, _, _)) = core.to_kernel.front() {
            if ready <= now {
                let (_, pid, msg) = core.to_kernel.pop_front().expect("front checked");
                out.push((pid, msg));
            } else {
                break;
            }
        }
        out
    }

    /// Returns the number of subscribed application sockets.
    pub fn subscriber_count(&self) -> usize {
        self.core.borrow().to_apps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn multicast_reaches_all_subscribers() {
        let bus = NetlinkBus::new();
        let a = bus.subscribe(Pid(1));
        let b = bus.subscribe(Pid(2));
        bus.kernel_end().multicast(t(0), LkmToApp::QuerySkipOver);
        assert_eq!(a.recv(t(1)), vec![LkmToApp::QuerySkipOver]);
        assert_eq!(b.recv(t(1)), vec![LkmToApp::QuerySkipOver]);
        assert!(a.recv(t(2)).is_empty(), "message consumed");
    }

    #[test]
    fn latency_delays_delivery() {
        let bus = NetlinkBus::with_latency(SimDuration::from_millis(5));
        let sock = bus.subscribe(Pid(1));
        bus.kernel_end().multicast(t(0), LkmToApp::VmResumed);
        assert!(sock.recv(t(4)).is_empty());
        assert_eq!(sock.recv(t(5)).len(), 1);
    }

    #[test]
    fn app_to_kernel_is_tagged_with_pid() {
        let bus = NetlinkBus::new();
        let sock = bus.subscribe(Pid(42));
        let kernel = bus.kernel_end();
        sock.send(t(0), AppToLkm::SkipOverAreas(vec![]));
        let got = kernel.recv(t(1));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, Pid(42));
    }

    #[test]
    fn dropped_socket_unsubscribes() {
        let bus = NetlinkBus::new();
        let sock = bus.subscribe(Pid(1));
        assert_eq!(bus.subscriber_count(), 1);
        drop(sock);
        assert_eq!(bus.subscriber_count(), 0);
        // Multicasting to nobody is fine.
        bus.kernel_end().multicast(t(0), LkmToApp::QuerySkipOver);
    }

    #[test]
    fn messages_preserve_fifo_order() {
        let bus = NetlinkBus::new();
        let sock = bus.subscribe(Pid(1));
        let kernel = bus.kernel_end();
        kernel.multicast(t(0), LkmToApp::QuerySkipOver);
        kernel.multicast(t(0), LkmToApp::PrepareSuspension);
        assert_eq!(
            sock.recv(t(1)),
            vec![LkmToApp::QuerySkipOver, LkmToApp::PrepareSuspension]
        );
    }
}
