//! Message vocabulary of the application-assisted migration protocol.
//!
//! Three parties talk (Figure 4 of the paper): the migration daemon in
//! domain 0, the LKM in the guest kernel, and the assisting applications.
//! The daemon↔LKM leg rides a Xen event channel; the LKM↔application leg
//! rides a netlink multicast group.

use simkit::SimDuration;
use vmem::VaRange;

/// Daemon → LKM notifications over the event channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaemonToLkm {
    /// Migration has begun; the LKM should query applications and perform
    /// the first transfer-bitmap update.
    MigrationBegin,
    /// The daemon wants to pause the VM and enter the last iteration; the
    /// LKM should ask applications to prepare for suspension.
    EnteringLastIter,
    /// The VM has resumed at the destination.
    VmResumed,
}

/// LKM → daemon notifications over the event channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LkmToDaemon {
    /// All applications are suspension-ready and the final transfer-bitmap
    /// update is complete; the daemon may pause the VM.
    ReadyToSuspend {
        /// Time the final bitmap update took (the paper measures ≤300 µs).
        final_update: SimDuration,
        /// Applications that missed the reply deadline and were forcibly
        /// un-skipped (§6 straggler handling).
        stragglers: u32,
    },
}

/// LKM → application multicast messages over netlink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LkmToApp {
    /// "Migration has begun — report your skip-over areas."
    QuerySkipOver,
    /// "Prepare for VM suspension, then report your current skip-over
    /// areas." For JAVMM the preparation is the enforced minor GC.
    PrepareSuspension,
    /// "The VM has resumed at the destination."
    VmResumed,
}

/// Application → LKM messages over netlink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppToLkm {
    /// Reply to [`LkmToApp::QuerySkipOver`]: the application's skip-over
    /// areas as raw (possibly unaligned) VA ranges.
    SkipOverAreas(Vec<VaRange>),
    /// Unsolicited notification that VA ranges left a skip-over area (the
    /// area shrank); must be sent immediately per §3.3.4.
    AreaShrunk {
        /// The VA ranges that left the area.
        left: Vec<VaRange>,
    },
    /// Reply to [`LkmToApp::PrepareSuspension`]: the application finished
    /// preparing (e.g. the enforced GC completed) and reports its current
    /// areas.
    SuspensionReady {
        /// Current skip-over areas (used for the final bitmap update's
        /// expansion/shrink reconciliation).
        areas: Vec<VaRange>,
        /// Sub-ranges inside `areas` whose contents must nevertheless be
        /// transferred in the last iteration. For JAVMM this is the occupied
        /// From space holding the data that survived the enforced GC; the
        /// LKM treats these pages as "leaving" the area and sets their
        /// transfer bits.
        must_send: Vec<VaRange>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmem::Vaddr;

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let m = AppToLkm::SkipOverAreas(vec![VaRange::new(Vaddr(0), Vaddr(4096))]);
        assert_eq!(m.clone(), m);
        let d = DaemonToLkm::MigrationBegin;
        assert_ne!(
            format!("{d:?}"),
            format!("{:?}", DaemonToLkm::EnteringLastIter)
        );
    }
}
