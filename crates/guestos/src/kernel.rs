//! The simulated guest kernel: memory, processes, frames, LKM hosting.
//!
//! `GuestKernel` is the container the rest of the stack builds on. It boots
//! a VM image (kernel text/data and a page cache get written once so they
//! are real content to migrate), hands out page frames to processes through
//! a scattering allocator, hosts the netlink bus and the LKM, and models the
//! slow background dirtying every live OS exhibits.

use crate::frames::FrameAllocator;
use crate::lkm::{DaemonPort, Lkm, LkmConfig};
use crate::netlink::{NetlinkBus, NetlinkSocket};
use crate::process::{Pid, Process};
use simkit::{DetRng, SimDuration, SimTime};
use std::collections::BTreeMap;
use vmem::{Bitmap, GuestMemory, PageClass, Pfn, VaRange, Vaddr, VmSpec, PAGE_SIZE};

/// Static configuration of the guest OS image.
#[derive(Debug, Clone)]
pub struct GuestOsConfig {
    /// VM dimensions.
    pub spec: VmSpec,
    /// Resident kernel image + data, written at boot.
    pub kernel_bytes: u64,
    /// Page-cache contents, written at boot.
    pub pagecache_bytes: u64,
    /// Background kernel-page dirtying rate (bytes/second).
    pub kernel_dirty_rate: f64,
    /// Background page-cache dirtying rate (bytes/second).
    pub pagecache_dirty_rate: f64,
}

impl GuestOsConfig {
    /// A Linux-3.1-era guest matching the paper's testbed: 2 GiB VM with a
    /// modest resident kernel and page cache, and a few MB/s of background
    /// churn (logging, timers, flushers).
    pub fn paper_guest() -> Self {
        Self {
            spec: VmSpec::paper_testbed(),
            kernel_bytes: 96 * 1024 * 1024,
            pagecache_bytes: 160 * 1024 * 1024,
            kernel_dirty_rate: 1.5e6,
            pagecache_dirty_rate: 1.0e6,
        }
    }

    /// Like [`GuestOsConfig::paper_guest`] but for an arbitrary memory size.
    pub fn sized(mem_bytes: u64) -> Self {
        Self {
            spec: VmSpec::new(mem_bytes, 4),
            ..Self::paper_guest()
        }
    }
}

/// Outcome of a ranged guest write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Pages written.
    pub pages: u64,
    /// Log-dirty faults taken (first touches while migration logs writes).
    pub faults: u64,
}

impl WriteOutcome {
    /// Accumulates another outcome.
    pub fn merge(&mut self, other: WriteOutcome) {
        self.pages += other.pages;
        self.faults += other.faults;
    }
}

/// The guest kernel of one VM.
pub struct GuestKernel {
    config: GuestOsConfig,
    memory: GuestMemory,
    frames: FrameAllocator,
    free_map: Bitmap,
    procs: BTreeMap<Pid, Process>,
    next_pid: u32,
    netlink: NetlinkBus,
    lkm: Option<Lkm>,
    kernel_pfns: Vec<Pfn>,
    pagecache_pfns: Vec<Pfn>,
    noise_carry: f64,
    rng: DetRng,
}

impl GuestKernel {
    /// Boots a guest: writes the kernel image and page cache, sets up the
    /// frame allocator over the remaining memory.
    pub fn boot(config: GuestOsConfig, rng: DetRng) -> Self {
        let npages = config.spec.page_count();
        let mut memory = GuestMemory::new(config.spec.mem_bytes);
        let kernel_pages = config.kernel_bytes.div_ceil(PAGE_SIZE);
        let cache_pages = config.pagecache_bytes.div_ceil(PAGE_SIZE);
        assert!(
            kernel_pages + cache_pages < npages,
            "kernel + page cache exceed VM memory"
        );

        let kernel_pfns: Vec<Pfn> = (0..kernel_pages).map(Pfn).collect();
        let pagecache_pfns: Vec<Pfn> = (kernel_pages..kernel_pages + cache_pages)
            .map(Pfn)
            .collect();
        for &pfn in &kernel_pfns {
            memory.write(pfn, PageClass::Kernel);
        }
        for &pfn in &pagecache_pfns {
            memory.write(pfn, PageClass::PageCache);
        }

        let pool_start = kernel_pages + cache_pages;
        let mut free_map = Bitmap::new(npages);
        for p in pool_start..npages {
            free_map.set(Pfn(p));
        }

        Self {
            frames: FrameAllocator::new(pool_start, npages),
            free_map,
            memory,
            procs: BTreeMap::new(),
            next_pid: 1,
            netlink: NetlinkBus::new(),
            lkm: None,
            kernel_pfns,
            pagecache_pfns,
            noise_carry: 0.0,
            config,
            rng,
        }
    }

    /// Returns the VM spec.
    pub fn spec(&self) -> VmSpec {
        self.config.spec
    }

    /// Immutable access to guest memory.
    pub fn memory(&self) -> &GuestMemory {
        &self.memory
    }

    /// Mutable access to guest memory (hypervisor-side operations).
    pub fn memory_mut(&mut self) -> &mut GuestMemory {
        &mut self.memory
    }

    /// Returns whether `pfn` is currently in the kernel's free pool.
    pub fn is_free_frame(&self, pfn: Pfn) -> bool {
        self.free_map.get(pfn)
    }

    /// Returns the number of free frames.
    pub fn free_frames(&self) -> u64 {
        self.frames.free_count()
    }

    /// Spawns a process with an empty address space.
    pub fn spawn(&mut self, name: impl Into<String>) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(pid, Process::new(pid, name));
        pid
    }

    /// Returns a process by pid.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Loads the LKM, returning the daemon-side event channel endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the LKM is already loaded.
    pub fn load_lkm(&mut self, config: LkmConfig) -> DaemonPort {
        assert!(self.lkm.is_none(), "LKM already loaded");
        let (lkm, port) = Lkm::load(self.memory.page_count(), self.netlink.kernel_end(), config);
        self.lkm = Some(lkm);
        port
    }

    /// Returns the loaded LKM, if any.
    pub fn lkm(&self) -> Option<&Lkm> {
        self.lkm.as_ref()
    }

    /// Attaches a telemetry recorder to the loaded LKM (no-op when no LKM
    /// is loaded) and to the netlink bus: state transitions, bitmap-update
    /// spans, walk counters and netlink delivery-latency histograms of
    /// subsequent migrations are recorded into it.
    pub fn attach_telemetry(&mut self, recorder: simkit::Recorder) {
        self.netlink.attach_telemetry(recorder.clone());
        if let Some(lkm) = &mut self.lkm {
            lkm.attach_telemetry(recorder);
        }
    }

    /// Subscribes an application to the LKM's netlink multicast group.
    pub fn subscribe_netlink(&self, pid: Pid) -> NetlinkSocket {
        self.netlink.subscribe(pid)
    }

    /// Enables netlink fault injection (each message dropped independently
    /// with probability `loss`); see [`NetlinkBus::inject_loss`].
    pub fn inject_netlink_loss(&self, loss: f64, rng: DetRng) {
        self.netlink.inject_loss(loss, rng);
    }

    /// Arms structured fault injection (drop/delay/duplicate) on the
    /// netlink hop; see [`NetlinkBus::install_faults`].
    pub fn install_netlink_faults(&self, faults: simkit::LaneFaults, rng: DetRng) {
        self.netlink.install_faults(faults, rng);
    }

    /// Netlink messages dropped by fault injection so far.
    pub fn netlink_dropped(&self) -> u64 {
        self.netlink.dropped_count()
    }

    /// Services the LKM: processes queued daemon and application messages.
    pub fn service_lkm(&mut self, now: SimTime) {
        if let Some(lkm) = &mut self.lkm {
            lkm.service(now, &mut self.procs);
        }
    }

    /// Allocates `npages` frames and maps them at `va_start` in `pid`'s
    /// address space, tagging them `class` without dirtying them.
    ///
    /// Returns the mapped VA range, or `None` if memory is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `pid` does not exist or `va_start` is not page-aligned.
    pub fn alloc_map(
        &mut self,
        pid: Pid,
        va_start: Vaddr,
        npages: u64,
        class: PageClass,
    ) -> Option<VaRange> {
        assert!(va_start.is_page_aligned(), "va_start must be page-aligned");
        let frames = self.frames.alloc(npages)?;
        let proc = self.procs.get_mut(&pid).expect("unknown pid");
        for (i, &pfn) in frames.iter().enumerate() {
            let va = Vaddr(va_start.0 + i as u64 * PAGE_SIZE);
            let prev = proc.page_table.map(va, pfn);
            assert!(prev.is_none(), "double map at {va:?}");
            self.free_map.clear(pfn);
            self.memory.set_class(pfn, class);
        }
        Some(VaRange::from_len(va_start, npages * PAGE_SIZE))
    }

    /// Unmaps `range` (aligned inward) from `pid` and frees the frames.
    ///
    /// Returns the number of frames freed.
    ///
    /// # Panics
    ///
    /// Panics if `pid` does not exist.
    pub fn unmap_free(&mut self, pid: Pid, range: VaRange) -> u64 {
        let proc = self.procs.get_mut(&pid).expect("unknown pid");
        let mut freed = Vec::new();
        for vpn in range.align_inward().vpns() {
            if let Some(pfn) = proc.page_table.unmap(Vaddr(vpn * PAGE_SIZE)) {
                self.free_map.set(pfn);
                freed.push(pfn);
            }
        }
        let n = freed.len() as u64;
        self.frames.free(freed);
        n
    }

    /// Writes every page overlapping `range` in `pid`'s address space.
    ///
    /// Partial pages at the ends count as whole-page writes (a store dirties
    /// its page regardless of size). Unmapped pages are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `pid` does not exist.
    pub fn write_range(&mut self, pid: Pid, range: VaRange, class: PageClass) -> WriteOutcome {
        let proc = self.procs.get(&pid).expect("unknown pid");
        let mut out = WriteOutcome::default();
        let outer = range.align_outward();
        for vpn in outer.start().vpn()..outer.end().vpn() {
            if let Some(pfn) = proc.page_table.translate(Vaddr(vpn * PAGE_SIZE)) {
                out.pages += 1;
                if self.memory.write(pfn, class) {
                    out.faults += 1;
                }
            }
        }
        out
    }

    /// Translates a VA in `pid`'s address space.
    pub fn translate(&self, pid: Pid, va: Vaddr) -> Option<Pfn> {
        self.procs.get(&pid)?.page_table.translate(va)
    }

    /// Runs background OS activity for `dt`: the kernel and page cache dirty
    /// pages at their configured rates.
    ///
    /// Returns the write outcome so the caller can charge log-dirty faults.
    pub fn tick_noise(&mut self, _now: SimTime, dt: SimDuration) -> WriteOutcome {
        let bytes =
            (self.config.kernel_dirty_rate + self.config.pagecache_dirty_rate) * dt.as_secs_f64();
        let pages_f = bytes / PAGE_SIZE as f64 + self.noise_carry;
        let pages = pages_f as u64;
        self.noise_carry = pages_f - pages as f64;

        let mut out = WriteOutcome::default();
        let k_share = self.config.kernel_dirty_rate
            / (self.config.kernel_dirty_rate + self.config.pagecache_dirty_rate).max(1.0);
        for i in 0..pages {
            let use_kernel = (i as f64 / pages.max(1) as f64) < k_share;
            let (pool, class) = if use_kernel && !self.kernel_pfns.is_empty() {
                (&self.kernel_pfns, PageClass::Kernel)
            } else if !self.pagecache_pfns.is_empty() {
                (&self.pagecache_pfns, PageClass::PageCache)
            } else {
                continue;
            };
            let pfn = pool[self.rng.below(pool.len() as u64) as usize];
            out.pages += 1;
            if self.memory.write(pfn, class) {
                out.faults += 1;
            }
        }
        out
    }
}

impl core::fmt::Debug for GuestKernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("GuestKernel")
            .field("spec", &self.config.spec)
            .field("procs", &self.procs.len())
            .field("free_frames", &self.frames.free_count())
            .field("lkm", &self.lkm.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_guest() -> GuestKernel {
        let config = GuestOsConfig {
            spec: VmSpec::new(64 * 1024 * 1024, 1),
            kernel_bytes: 4 * 1024 * 1024,
            pagecache_bytes: 4 * 1024 * 1024,
            kernel_dirty_rate: 1e6,
            pagecache_dirty_rate: 1e6,
        };
        GuestKernel::boot(config, DetRng::new(1))
    }

    #[test]
    fn boot_writes_kernel_and_cache() {
        let g = small_guest();
        assert_eq!(g.memory().page(Pfn(0)).class, PageClass::Kernel);
        assert_eq!(g.memory().page(Pfn(0)).version, 1);
        let cache_first = Pfn(4 * 1024 * 1024 / PAGE_SIZE);
        assert_eq!(g.memory().page(cache_first).class, PageClass::PageCache);
        // The pool excludes the booted regions.
        assert_eq!(g.free_frames(), (64 - 8) * 1024 * 1024 / PAGE_SIZE);
    }

    #[test]
    fn alloc_map_write_unmap_cycle() {
        let mut g = small_guest();
        let pid = g.spawn("java");
        let range = g
            .alloc_map(pid, Vaddr(0x10_0000), 16, PageClass::HeapYoung)
            .unwrap();
        assert_eq!(range.page_count(), 16);
        let pfn = g.translate(pid, Vaddr(0x10_0000)).unwrap();
        assert!(!g.is_free_frame(pfn));
        let out = g.write_range(pid, range, PageClass::HeapYoung);
        assert_eq!(out.pages, 16);
        assert_eq!(g.memory().page(pfn).version, 1);

        let freed = g.unmap_free(pid, range);
        assert_eq!(freed, 16);
        assert!(g.is_free_frame(pfn));
        assert_eq!(g.translate(pid, Vaddr(0x10_0000)), None);
    }

    #[test]
    fn write_range_counts_partial_pages() {
        let mut g = small_guest();
        let pid = g.spawn("app");
        g.alloc_map(pid, Vaddr(0x20_0000), 4, PageClass::Anon)
            .unwrap();
        // A 1-byte-past-boundary range touches two pages.
        let r = VaRange::new(Vaddr(0x20_0800), Vaddr(0x20_1001));
        let out = g.write_range(pid, r, PageClass::Anon);
        assert_eq!(out.pages, 2);
    }

    #[test]
    fn faults_reported_when_logging() {
        let mut g = small_guest();
        let pid = g.spawn("app");
        let r = g.alloc_map(pid, Vaddr(0), 8, PageClass::Anon).unwrap();
        g.memory_mut().dirty_log_mut().enable();
        let first = g.write_range(pid, r, PageClass::Anon);
        assert_eq!(first.faults, 8);
        let second = g.write_range(pid, r, PageClass::Anon);
        assert_eq!(second.faults, 0);
    }

    #[test]
    fn noise_dirties_at_configured_rate() {
        let mut g = small_guest();
        g.memory_mut().dirty_log_mut().enable();
        let mut total = 0;
        for _ in 0..100 {
            total += g
                .tick_noise(SimTime::ZERO, SimDuration::from_millis(10))
                .pages;
        }
        // 2 MB/s for 1 s = ~512 pages of 4 KiB.
        assert!((450..=580).contains(&total), "noise pages = {total}");
    }

    #[test]
    fn exhausting_frames_returns_none() {
        let mut g = small_guest();
        let pid = g.spawn("hog");
        let free = g.free_frames();
        assert!(g
            .alloc_map(pid, Vaddr(0), free + 1, PageClass::Anon)
            .is_none());
        assert!(g.alloc_map(pid, Vaddr(0), free, PageClass::Anon).is_some());
        assert_eq!(g.free_frames(), 0);
    }

    #[test]
    #[should_panic(expected = "double map")]
    fn double_map_panics() {
        let mut g = small_guest();
        let pid = g.spawn("app");
        g.alloc_map(pid, Vaddr(0), 1, PageClass::Anon).unwrap();
        let _ = g.alloc_map(pid, Vaddr(0), 1, PageClass::Anon);
    }
}
