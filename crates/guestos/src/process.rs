//! Guest processes and their address spaces.

use core::fmt;
use vmem::PageTable;

/// A guest process identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A guest process: a name and an address space.
///
/// The simulation only models what migration needs — the page table that
/// maps the process's virtual pages to guest page frames.
#[derive(Debug)]
pub struct Process {
    /// The process identifier.
    pub pid: Pid,
    /// Human-readable name (e.g. `"java"`).
    pub name: String,
    /// The process's page table.
    pub page_table: PageTable,
}

impl Process {
    /// Creates a process with an empty address space.
    pub fn new(pid: Pid, name: impl Into<String>) -> Self {
        Self {
            pid,
            name: name.into(),
            page_table: PageTable::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmem::{Pfn, Vaddr};

    #[test]
    fn process_has_empty_table() {
        let p = Process::new(Pid(1), "java");
        assert_eq!(p.page_table.mapped_count(), 0);
        assert_eq!(p.name, "java");
    }

    #[test]
    fn pid_formatting() {
        assert_eq!(format!("{:?}", Pid(7)), "pid:7");
        assert_eq!(Pid(7).to_string(), "7");
    }

    #[test]
    fn table_is_per_process() {
        let mut a = Process::new(Pid(1), "a");
        let b = Process::new(Pid(2), "b");
        a.page_table.map(Vaddr(0x1000), Pfn(5));
        assert_eq!(b.page_table.translate(Vaddr(0x1000)), None);
    }
}
