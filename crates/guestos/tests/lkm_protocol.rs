//! End-to-end tests of the LKM coordination protocol (Figure 4).
//!
//! These tests drive the protocol by hand — playing both the migration
//! daemon (event channel side) and an assisting application (netlink side) —
//! and check every transfer-bitmap rule of §3.3.4.

use guestos::coord::{CoordMsg, CoordPayload};
use guestos::kernel::{GuestKernel, GuestOsConfig};
use guestos::lkm::{LkmConfig, LkmState};
use simkit::{DetRng, SimDuration, SimTime};
use vmem::{PageClass, VaRange, Vaddr, VmSpec, PAGE_SIZE};

fn t(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

fn payloads(msgs: Vec<CoordMsg>) -> Vec<CoordPayload> {
    msgs.into_iter().map(|m| m.payload).collect()
}

fn guest() -> GuestKernel {
    let config = GuestOsConfig {
        spec: VmSpec::new(64 * 1024 * 1024, 1),
        kernel_bytes: 2 * 1024 * 1024,
        pagecache_bytes: 2 * 1024 * 1024,
        kernel_dirty_rate: 0.0,
        pagecache_dirty_rate: 0.0,
    };
    GuestKernel::boot(config, DetRng::new(7))
}

/// Shorthand: a VA range covering pages [start, start+n) of the app space.
fn pages(start: u64, n: u64) -> VaRange {
    VaRange::new(Vaddr(start * PAGE_SIZE), Vaddr((start + n) * PAGE_SIZE))
}

#[test]
fn full_protocol_happy_path() {
    let mut g = guest();
    let pid = g.spawn("app");
    let area = g
        .alloc_map(pid, Vaddr(0x100 * PAGE_SIZE), 32, PageClass::Anon)
        .unwrap();
    let daemon = g.load_lkm(LkmConfig::default());
    let sock = g.subscribe_netlink(pid);

    // Migration begins.
    daemon.send(t(0), CoordPayload::MigrationBegin);
    g.service_lkm(t(1));
    assert_eq!(g.lkm().unwrap().state(), LkmState::MigrationStarted);
    assert_eq!(payloads(sock.recv(t(2))), vec![CoordPayload::QuerySkipOver]);
    // The LKM acknowledges MigrationBegin on the event channel.
    assert_eq!(payloads(daemon.recv(t(2))), vec![CoordPayload::BeginAck]);

    // App reports its skip-over area; first bitmap update clears 32 bits.
    sock.send(t(2), CoordPayload::SkipOverAreas(vec![area]));
    g.service_lkm(t(3));
    let lkm = g.lkm().unwrap();
    assert_eq!(lkm.stats().first_update_pages, 32);
    assert_eq!(lkm.transfer_bitmap().skip_count(), 32);
    let skipped_pfn = g.translate(pid, area.start()).unwrap();
    assert!(!g.lkm().unwrap().should_transfer(skipped_pfn));

    // Entering last iteration: app is asked to prepare.
    daemon.send(t(10), CoordPayload::EnteringLastIter);
    g.service_lkm(t(11));
    assert_eq!(
        payloads(sock.recv(t(12))),
        vec![CoordPayload::PrepareSuspension]
    );
    assert_eq!(g.lkm().unwrap().state(), LkmState::EnteringLastIter);

    // App prepares (say, collects garbage) and reports ready, flagging the
    // first 4 pages as must-send (live survivors).
    let survivors = pages(0x100, 4);
    sock.send(
        t(12),
        CoordPayload::SuspensionReady {
            areas: vec![area],
            must_send: vec![survivors],
        },
    );
    g.service_lkm(t(13));
    let lkm = g.lkm().unwrap();
    assert_eq!(lkm.state(), LkmState::SuspensionReady);
    assert_eq!(lkm.stats().final_set_pages, 4);
    assert!(lkm.should_transfer(skipped_pfn), "survivor must transfer");
    let garbage_pfn = g.translate(pid, Vaddr((0x100 + 10) * PAGE_SIZE)).unwrap();
    assert!(!g.lkm().unwrap().should_transfer(garbage_pfn));

    // Daemon learns it may suspend, with the final-update duration.
    let msgs = daemon.recv(t(14));
    assert_eq!(msgs.len(), 1);
    let CoordPayload::ReadyToSuspend {
        final_update,
        stragglers,
    } = &msgs[0].payload
    else {
        panic!("expected ReadyToSuspend, got {:?}", msgs[0].payload);
    };
    assert_eq!(*stragglers, 0);
    assert!(
        *final_update < SimDuration::from_micros(300),
        "final update took {final_update}"
    );

    // VM resumes: LKM resets for the next migration.
    daemon.send(t(20), CoordPayload::VmResumed);
    g.service_lkm(t(21));
    let lkm = g.lkm().unwrap();
    assert_eq!(lkm.state(), LkmState::Initialized);
    assert_eq!(lkm.transfer_bitmap().skip_count(), 0, "bitmap reset");
    assert_eq!(payloads(sock.recv(t(22))), vec![CoordPayload::VmResumed]);
}

#[test]
fn shrink_is_applied_immediately_and_expansion_deferred() {
    let mut g = guest();
    let pid = g.spawn("app");
    let area = g
        .alloc_map(pid, Vaddr(0x200 * PAGE_SIZE), 16, PageClass::Anon)
        .unwrap();
    let daemon = g.load_lkm(LkmConfig::default());
    let sock = g.subscribe_netlink(pid);

    daemon.send(t(0), CoordPayload::MigrationBegin);
    g.service_lkm(t(1));
    sock.recv(t(2));
    sock.send(t(2), CoordPayload::SkipOverAreas(vec![area]));
    g.service_lkm(t(3));
    assert_eq!(g.lkm().unwrap().transfer_bitmap().skip_count(), 16);

    // The area shrinks by its last 6 pages; the app frees them.
    let leaving = pages(0x200 + 10, 6);
    let leaving_pfns: Vec<_> = (10..16)
        .map(|i| g.translate(pid, Vaddr((0x200 + i) * PAGE_SIZE)).unwrap())
        .collect();
    g.unmap_free(pid, leaving);
    sock.send(
        t(3),
        CoordPayload::AreaShrunk {
            left: vec![leaving],
        },
    );
    g.service_lkm(t(4));
    let lkm = g.lkm().unwrap();
    assert_eq!(lkm.stats().shrink_pages, 6);
    assert_eq!(lkm.transfer_bitmap().skip_count(), 10);
    for pfn in leaving_pfns {
        assert!(
            lkm.should_transfer(pfn),
            "freed frame must regain its transfer bit even though the page \
             table no longer maps it"
        );
    }

    // The area then expands by 8 pages; no notification is required and the
    // bitmap must NOT change until the final update.
    let expansion = g
        .alloc_map(pid, Vaddr((0x200 + 16) * PAGE_SIZE), 8, PageClass::Anon)
        .unwrap();
    g.service_lkm(t(5));
    assert_eq!(g.lkm().unwrap().transfer_bitmap().skip_count(), 10);

    // Final update reconciles the expansion. The reported grown area spans
    // [0x200, 0x218) but pages [0x20a, 0x210) were freed and stay unmapped,
    // so the walk finds 8 newly mapped expansion pages (6 of which reuse
    // the frames freed by the shrink).
    daemon.send(t(6), CoordPayload::EnteringLastIter);
    g.service_lkm(t(7));
    sock.recv(t(8));
    let grown = VaRange::new(Vaddr(0x200 * PAGE_SIZE), expansion.end());
    sock.send(
        t(8),
        CoordPayload::SuspensionReady {
            areas: vec![grown],
            must_send: vec![],
        },
    );
    g.service_lkm(t(9));
    let lkm = g.lkm().unwrap();
    assert_eq!(lkm.stats().final_expand_pages, 8);
    // Skip set: the original 10 still-skipped pages + 8 expansion pages.
    assert_eq!(lkm.transfer_bitmap().skip_count(), 18);
}

#[test]
fn straggler_is_unskipped_after_timeout() {
    let mut g = guest();
    let pid_good = g.spawn("good");
    let pid_bad = g.spawn("bad");
    let area_good = g
        .alloc_map(pid_good, Vaddr(0x100 * PAGE_SIZE), 8, PageClass::Anon)
        .unwrap();
    let area_bad = g
        .alloc_map(pid_bad, Vaddr(0x500 * PAGE_SIZE), 8, PageClass::Anon)
        .unwrap();
    let daemon = g.load_lkm(LkmConfig {
        reply_timeout: SimDuration::from_millis(100),
        ..LkmConfig::default()
    });
    let sock_good = g.subscribe_netlink(pid_good);
    let sock_bad = g.subscribe_netlink(pid_bad);

    daemon.send(t(0), CoordPayload::MigrationBegin);
    g.service_lkm(t(1));
    sock_good.recv(t(2));
    sock_bad.recv(t(2));
    sock_good.send(t(2), CoordPayload::SkipOverAreas(vec![area_good]));
    sock_bad.send(t(2), CoordPayload::SkipOverAreas(vec![area_bad]));
    g.service_lkm(t(3));
    assert_eq!(g.lkm().unwrap().transfer_bitmap().skip_count(), 16);

    daemon.send(t(10), CoordPayload::EnteringLastIter);
    g.service_lkm(t(11));
    // Only the good app replies.
    sock_good.send(
        t(12),
        CoordPayload::SuspensionReady {
            areas: vec![area_good],
            must_send: vec![],
        },
    );
    g.service_lkm(t(13));
    assert_eq!(
        g.lkm().unwrap().state(),
        LkmState::EnteringLastIter,
        "must wait for the second app"
    );

    // After the deadline the bad app is forcibly un-skipped.
    g.service_lkm(t(120));
    let lkm = g.lkm().unwrap();
    assert_eq!(lkm.state(), LkmState::SuspensionReady);
    assert_eq!(lkm.stats().stragglers, 1);
    assert_eq!(
        lkm.transfer_bitmap().skip_count(),
        8,
        "only the cooperative app's pages stay skipped"
    );
    // BeginAck (from MigrationBegin) followed by the straggler-flagged
    // ready notification.
    let msgs = daemon.recv(t(121));
    assert_eq!(msgs.len(), 2);
    assert_eq!(msgs[0].payload, CoordPayload::BeginAck);
    let CoordPayload::ReadyToSuspend { stragglers, .. } = &msgs[1].payload else {
        panic!("expected ReadyToSuspend, got {:?}", msgs[1].payload);
    };
    assert_eq!(*stragglers, 1);
}

#[test]
fn rewalk_final_update_recomputes_from_page_tables() {
    let mut g = guest();
    let pid = g.spawn("app");
    let area = g
        .alloc_map(pid, Vaddr(0x300 * PAGE_SIZE), 16, PageClass::Anon)
        .unwrap();
    let daemon = g.load_lkm(LkmConfig {
        rewalk_final_update: true,
        ..LkmConfig::default()
    });
    let sock = g.subscribe_netlink(pid);

    daemon.send(t(0), CoordPayload::MigrationBegin);
    g.service_lkm(t(1));
    sock.recv(t(2));
    sock.send(t(2), CoordPayload::SkipOverAreas(vec![area]));
    g.service_lkm(t(3));
    assert_eq!(g.lkm().unwrap().transfer_bitmap().skip_count(), 16);

    // Shrink notifications are ignored under the rewalk strategy.
    g.unmap_free(pid, pages(0x300 + 12, 4));
    sock.send(
        t(3),
        CoordPayload::AreaShrunk {
            left: vec![pages(0x300 + 12, 4)],
        },
    );
    g.service_lkm(t(4));
    assert_eq!(
        g.lkm().unwrap().transfer_bitmap().skip_count(),
        16,
        "no intermediate updates under rewalk strategy"
    );

    // Final update re-walks: 12 pages still mapped get skipped, the 4
    // freed frames regain their transfer bits.
    daemon.send(t(5), CoordPayload::EnteringLastIter);
    g.service_lkm(t(6));
    sock.recv(t(7));
    sock.send(
        t(7),
        CoordPayload::SuspensionReady {
            areas: vec![pages(0x300, 12)],
            must_send: vec![],
        },
    );
    g.service_lkm(t(8));
    assert_eq!(g.lkm().unwrap().transfer_bitmap().skip_count(), 12);
    assert_eq!(g.lkm().unwrap().state(), LkmState::SuspensionReady);
}

#[test]
fn lkm_memory_footprint_is_small() {
    let mut g = GuestKernel::boot(
        GuestOsConfig {
            spec: VmSpec::new(2 * 1024 * 1024 * 1024, 4),
            kernel_bytes: 64 * 1024 * 1024,
            pagecache_bytes: 64 * 1024 * 1024,
            kernel_dirty_rate: 0.0,
            pagecache_dirty_rate: 0.0,
        },
        DetRng::new(1),
    );
    let pid = g.spawn("java");
    // A 1 GiB skip-over area, like derby's Young generation.
    let npages = 1024 * 1024 * 1024 / PAGE_SIZE;
    let area = g
        .alloc_map(pid, Vaddr(0x7f00_0000_0000), npages, PageClass::HeapYoung)
        .unwrap();
    let daemon = g.load_lkm(LkmConfig::default());
    let sock = g.subscribe_netlink(pid);
    daemon.send(t(0), CoordPayload::MigrationBegin);
    g.service_lkm(t(1));
    sock.recv(t(2));
    sock.send(t(2), CoordPayload::SkipOverAreas(vec![area]));
    g.service_lkm(t(3));
    let lkm = g.lkm().unwrap();
    assert_eq!(lkm.stats().first_update_pages, npages);
    // Paper: transfer bitmap 32 KiB/GiB of VM + PFN cache 1 MiB/GiB of
    // skip-over area. 2 GiB VM + 1 GiB area = 64 KiB + 1 MiB ≈ 1.06 MiB.
    let footprint = lkm.memory_footprint();
    assert!(
        footprint <= 1_200_000,
        "LKM footprint {footprint} bytes exceeds ~1 MiB"
    );
}

#[test]
fn proc_entry_registers_skip_over_areas() {
    use guestos::procfs::{format_ranges, ProcSkipOverEntry};

    let mut g = guest();
    let pid = g.spawn("app");
    let area = g
        .alloc_map(pid, Vaddr(0x700 * PAGE_SIZE), 16, PageClass::Anon)
        .unwrap();
    let daemon = g.load_lkm(LkmConfig::default());
    let proc_entry = ProcSkipOverEntry::open(g.subscribe_netlink(pid));

    daemon.send(t(0), CoordPayload::MigrationBegin);
    g.service_lkm(t(1));
    // The application writes its areas to /proc instead of replying on
    // netlink (§3.3.2).
    let n = proc_entry
        .write(t(2), &format_ranges(&[area]))
        .expect("valid write");
    assert_eq!(n, 1);
    g.service_lkm(t(3));
    assert_eq!(g.lkm().unwrap().transfer_bitmap().skip_count(), 16);

    // Malformed writes are rejected without touching the bitmap.
    assert!(proc_entry.write(t(4), "not-a-range").is_err());
    g.service_lkm(t(5));
    assert_eq!(g.lkm().unwrap().transfer_bitmap().skip_count(), 16);
}
