//! Property tests of the LKM five-state machine under coordination chaos.
//!
//! Random message scripts are pushed through the real transports while
//! fault injection drops, delays (reorders) and duplicates envelopes on
//! both lanes. The invariants:
//!
//! * every state transition the LKM records is an edge of the legal
//!   five-state relation — chaos may stall progress but can never invent
//!   a transition;
//! * the machine never wedges: once the lanes are healed, a bounded
//!   number of retried (idempotent) daemon messages always drives the
//!   protocol to `SuspensionReady`, resetting through `Initialized` when
//!   the chaos left the LKM `Degraded`;
//! * duplicate and stale envelopes are absorbed by the sequence gate:
//!   they are counted, never re-applied.

use guestos::coord::CoordPayload;
use guestos::kernel::{GuestKernel, GuestOsConfig};
use guestos::lkm::{LkmConfig, LkmState};
use proptest::prelude::*;
use simkit::telemetry::{Recorder, Subsystem, Value};
use simkit::{DetRng, LaneFaults, SimDuration, SimTime};
use vmem::{PageClass, VaRange, Vaddr, VmSpec, PAGE_SIZE};

const TICK: SimDuration = SimDuration::from_millis(10);

fn t(step: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(step * 10)
}

fn guest() -> GuestKernel {
    GuestKernel::boot(
        GuestOsConfig {
            spec: VmSpec::new(64 * 1024 * 1024, 1),
            kernel_bytes: 1024 * 1024,
            pagecache_bytes: 1024 * 1024,
            kernel_dirty_rate: 0.0,
            pagecache_dirty_rate: 0.0,
        },
        DetRng::new(9),
    )
}

/// The legal transition relation of the five-state machine. `VmResumed`
/// resets to `Initialized` from anywhere (including `Initialized` itself);
/// `AbortAssist` degrades from any live state; everything else is the
/// forward protocol path.
fn legal(from: LkmState, to: LkmState) -> bool {
    use LkmState::*;
    matches!(
        (from, to),
        (Initialized, MigrationStarted)
            | (MigrationStarted, EnteringLastIter)
            | (EnteringLastIter, SuspensionReady)
            | (
                Initialized | MigrationStarted | EnteringLastIter | SuspensionReady,
                Degraded
            )
            | (_, Initialized)
    )
}

fn field_str<'e>(fields: &'e [(&'static str, Value)], key: &str) -> &'e str {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .expect("string field present")
}

fn state_by_name(name: &str) -> LkmState {
    use LkmState::*;
    [
        Initialized,
        MigrationStarted,
        EnteringLastIter,
        SuspensionReady,
        Degraded,
    ]
    .into_iter()
    .find(|s| s.name() == name)
    .expect("known state name")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary scripts over faulty lanes: only legal transitions are
    /// ever recorded, and healing the lanes always completes the protocol
    /// within a bounded number of retries.
    #[test]
    fn chaos_never_invents_transitions_or_wedges(
        seed in 0u64..1_000,
        drop in 0.0f64..0.8,
        delay in 0.0f64..0.8,
        duplicate in 0.0f64..0.8,
        steps in prop::collection::vec(0u8..8, 1..40),
    ) {
        let mut g = guest();
        let pid = g.spawn("app");
        let base = 0x300u64;
        let area = g
            .alloc_map(pid, Vaddr(base * PAGE_SIZE), 8, PageClass::Anon)
            .expect("fits");
        // A short straggler deadline keeps the healed runway bounded.
        let daemon = g.load_lkm(
            LkmConfig::builder()
                .reply_timeout(SimDuration::from_millis(100))
                .build()
                .expect("valid config"),
        );
        let sock = g.subscribe_netlink(pid);
        let recorder = Recorder::new();
        g.attach_telemetry(recorder.clone());

        let lane = LaneFaults {
            drop,
            delay,
            delay_max: SimDuration::from_millis(5),
            duplicate,
        };
        daemon.install_faults(lane, DetRng::new(seed ^ 0x5eed));
        g.install_netlink_faults(lane, DetRng::new(seed ^ 0x7a1e));

        let mut step = 0u64;
        let tick = |g: &mut GuestKernel, step: &mut u64| {
            *step += 1;
            g.service_lkm(t(*step));
            t(*step)
        };

        // Chaos phase: a random script over both lanes.
        for op in steps {
            let now = t(step) + TICK / 2;
            sock.recv(now);
            daemon.recv(now);
            match op {
                0 => daemon.send(now, CoordPayload::MigrationBegin),
                1 => daemon.send(now, CoordPayload::EnteringLastIter),
                2 => daemon.send(now, CoordPayload::AbortAssist),
                3 => daemon.send(now, CoordPayload::VmResumed),
                4 => sock.send(now, CoordPayload::SkipOverAreas(vec![area])),
                5 => sock.send(
                    now,
                    CoordPayload::AreaShrunk {
                        left: vec![VaRange::new(
                            Vaddr(base * PAGE_SIZE),
                            Vaddr((base + 1) * PAGE_SIZE),
                        )],
                    },
                ),
                6 => sock.send(
                    now,
                    CoordPayload::SuspensionReady {
                        areas: vec![area],
                        must_send: vec![],
                    },
                ),
                _ => {}
            }
            tick(&mut g, &mut step);
        }

        // Heal both lanes: an all-zero lane is delivered verbatim and
        // draws no randomness. Delayed chaos stragglers stay queued and
        // must be absorbed as stale envelopes.
        daemon.install_faults(LaneFaults::NONE, DetRng::new(0));
        g.install_netlink_faults(LaneFaults::NONE, DetRng::new(0));

        // Recovery phase: retried idempotent messages must terminate the
        // protocol in a bounded number of rounds.
        let mut reached_ready = false;
        for _ in 0..60 {
            let state = g.lkm().expect("loaded").state();
            let now = t(step) + TICK / 2;
            sock.recv(now);
            daemon.recv(now);
            match state {
                LkmState::SuspensionReady => {
                    reached_ready = true;
                    break;
                }
                LkmState::Initialized => daemon.send(now, CoordPayload::MigrationBegin),
                LkmState::MigrationStarted => {
                    daemon.send(now, CoordPayload::EnteringLastIter)
                }
                LkmState::EnteringLastIter => sock.send(
                    now,
                    CoordPayload::SuspensionReady {
                        areas: vec![area],
                        must_send: vec![],
                    },
                ),
                LkmState::Degraded => daemon.send(now, CoordPayload::VmResumed),
            }
            tick(&mut g, &mut step);
        }
        prop_assert!(
            reached_ready,
            "LKM wedged in {:?} after healing",
            g.lkm().expect("loaded").state()
        );

        // Every transition the LKM recorded must be a legal edge.
        let snapshot = recorder.snapshot();
        for ev in snapshot.events_named(Subsystem::Lkm, "state_transition") {
            let from = state_by_name(field_str(&ev.fields, "from"));
            let to = state_by_name(field_str(&ev.fields, "to"));
            prop_assert!(legal(from, to), "illegal transition {from:?} -> {to:?}");
        }
    }

    /// Full duplication of every envelope (same seq, so receivers can tell)
    /// is harmless: the protocol completes exactly as fault-free and the
    /// duplicates are all counted by the sequence gate.
    #[test]
    fn duplicated_envelopes_are_absorbed(seed in 0u64..1_000) {
        let run = |duplicate: f64| {
            let mut g = guest();
            let pid = g.spawn("app");
            let base = 0x400u64;
            let area = g
                .alloc_map(pid, Vaddr(base * PAGE_SIZE), 8, PageClass::Anon)
                .expect("fits");
            let daemon = g.load_lkm(LkmConfig::default());
            let sock = g.subscribe_netlink(pid);
            let lane = LaneFaults {
                duplicate,
                ..LaneFaults::NONE
            };
            if duplicate > 0.0 {
                daemon.install_faults(lane, DetRng::new(seed));
                g.install_netlink_faults(lane, DetRng::new(seed ^ 1));
            }

            daemon.send(t(0), CoordPayload::MigrationBegin);
            g.service_lkm(t(1));
            sock.recv(t(1));
            sock.send(t(1), CoordPayload::SkipOverAreas(vec![area]));
            g.service_lkm(t(2));
            daemon.send(t(2), CoordPayload::EnteringLastIter);
            g.service_lkm(t(3));
            sock.recv(t(3));
            sock.send(
                t(3),
                CoordPayload::SuspensionReady {
                    areas: vec![area],
                    must_send: vec![],
                },
            );
            g.service_lkm(t(4));
            let lkm = g.lkm().expect("loaded");
            (
                lkm.state(),
                lkm.transfer_bitmap().skip_count(),
                lkm.stats().dup_msgs,
            )
        };

        let (clean_state, clean_skips, clean_dups) = run(0.0);
        let (dup_state, dup_skips, dup_dups) = run(1.0);
        prop_assert_eq!(clean_state, LkmState::SuspensionReady);
        prop_assert_eq!(clean_dups, 0);
        prop_assert_eq!(dup_state, LkmState::SuspensionReady);
        prop_assert_eq!(dup_skips, clean_skips, "duplicates must not re-apply");
        prop_assert!(dup_dups > 0, "every envelope was duplicated");
    }
}
