//! Property-based tests of the LKM's transfer-bitmap maintenance.
//!
//! The central safety property: at any point of the protocol, the set of
//! skip-marked pages is exactly the set of currently-cached PFNs of the
//! registered skip-over areas — no page outside an area is ever skip-marked,
//! and a VmResumed reset always restores the all-transfer default.

use guestos::kernel::{GuestKernel, GuestOsConfig};
use guestos::lkm::LkmConfig;
use guestos::CoordPayload;
use proptest::prelude::*;
use simkit::{DetRng, SimDuration, SimTime};
use vmem::{PageClass, VaRange, Vaddr, VmSpec, PAGE_SIZE};

fn t(step: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(step * 10)
}

fn guest() -> GuestKernel {
    GuestKernel::boot(
        GuestOsConfig {
            spec: VmSpec::new(128 * 1024 * 1024, 1),
            kernel_bytes: 1024 * 1024,
            pagecache_bytes: 1024 * 1024,
            kernel_dirty_rate: 0.0,
            pagecache_dirty_rate: 0.0,
        },
        DetRng::new(3),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random area shape + random shrink cuts: the skip set always equals
    /// the mapped pages of the remaining area, and freed pages always get
    /// their transfer bits back.
    #[test]
    fn skip_set_tracks_area_through_shrinks(
        area_pages in 1u64..64,
        cuts in prop::collection::vec((0u64..64, 1u64..16), 0..6),
    ) {
        let mut g = guest();
        let pid = g.spawn("app");
        let base = 0x100u64;
        let area = g
            .alloc_map(pid, Vaddr(base * PAGE_SIZE), area_pages, PageClass::Anon)
            .expect("fits");
        let daemon = g.load_lkm(LkmConfig::default());
        let sock = g.subscribe_netlink(pid);

        fn tick(step: &mut u64, g: &mut GuestKernel) -> SimTime {
            *step += 1;
            g.service_lkm(t(*step));
            t(*step)
        }
        let mut step = 0u64;

        daemon.send(t(0), CoordPayload::MigrationBegin);
        let now = tick(&mut step, &mut g);
        sock.recv(now);
        sock.send(now, CoordPayload::SkipOverAreas(vec![area]));
        tick(&mut step, &mut g);
        prop_assert_eq!(g.lkm().unwrap().transfer_bitmap().skip_count(), area_pages);

        // Track which pages remain in the area.
        let mut in_area: Vec<bool> = vec![true; area_pages as usize];
        for (start, len) in cuts {
            let start = start % area_pages;
            let end = (start + len).min(area_pages);
            let cut = VaRange::new(
                Vaddr((base + start) * PAGE_SIZE),
                Vaddr((base + end) * PAGE_SIZE),
            );
            // Free the frames, then notify the shrink (deallocation order).
            g.unmap_free(pid, cut);
            let now = tick(&mut step, &mut g);
            sock.send(now, CoordPayload::AreaShrunk { left: vec![cut] });
            tick(&mut step, &mut g);
            for i in start..end {
                in_area[i as usize] = false;
            }
            let expect: u64 = in_area.iter().filter(|&&x| x).count() as u64;
            prop_assert_eq!(
                g.lkm().unwrap().transfer_bitmap().skip_count(),
                expect,
                "after cutting [{}, {})", start, end
            );
        }

        // Finish the protocol: every still-skipped page must belong to the
        // remaining area; the reset clears everything.
        daemon.send(t(step + 1), CoordPayload::EnteringLastIter);
        tick(&mut step, &mut g);
        tick(&mut step, &mut g);
        let remaining: Vec<VaRange> = in_area
            .iter()
            .enumerate()
            .filter(|(_, &x)| x)
            .map(|(i, _)| {
                VaRange::new(
                    Vaddr((base + i as u64) * PAGE_SIZE),
                    Vaddr((base + i as u64 + 1) * PAGE_SIZE),
                )
            })
            .collect();
        let now = tick(&mut step, &mut g);
        sock.send(
            now,
            CoordPayload::SuspensionReady {
                areas: remaining,
                must_send: vec![],
            },
        );
        tick(&mut step, &mut g);
        tick(&mut step, &mut g);
        let expect: u64 = in_area.iter().filter(|&&x| x).count() as u64;
        prop_assert_eq!(g.lkm().unwrap().transfer_bitmap().skip_count(), expect);

        daemon.send(t(step + 1), CoordPayload::VmResumed);
        tick(&mut step, &mut g);
        tick(&mut step, &mut g);
        prop_assert_eq!(g.lkm().unwrap().transfer_bitmap().skip_count(), 0);
    }

    /// must_send ranges always end up transfer-marked, no matter how they
    /// slice the area.
    #[test]
    fn must_send_always_unskips(
        area_pages in 4u64..64,
        live_start in 0u64..64,
        live_len in 1u64..32,
    ) {
        let live_start = live_start % area_pages;
        let live_end = (live_start + live_len).min(area_pages);
        let mut g = guest();
        let pid = g.spawn("app");
        let base = 0x200u64;
        let area = g
            .alloc_map(pid, Vaddr(base * PAGE_SIZE), area_pages, PageClass::Anon)
            .expect("fits");
        let daemon = g.load_lkm(LkmConfig::default());
        let sock = g.subscribe_netlink(pid);

        daemon.send(t(0), CoordPayload::MigrationBegin);
        g.service_lkm(t(1));
        sock.recv(t(1));
        sock.send(t(1), CoordPayload::SkipOverAreas(vec![area]));
        g.service_lkm(t(2));
        daemon.send(t(2), CoordPayload::EnteringLastIter);
        g.service_lkm(t(3));
        sock.recv(t(3));
        let live = VaRange::new(
            Vaddr((base + live_start) * PAGE_SIZE),
            Vaddr((base + live_end) * PAGE_SIZE),
        );
        sock.send(
            t(3),
            CoordPayload::SuspensionReady {
                areas: vec![area],
                must_send: vec![live],
            },
        );
        g.service_lkm(t(4));

        let lkm = g.lkm().unwrap();
        for i in 0..area_pages {
            let pfn = g
                .translate(pid, Vaddr((base + i) * PAGE_SIZE))
                .expect("mapped");
            let should = (live_start..live_end).contains(&i);
            prop_assert_eq!(
                lkm.should_transfer(pfn),
                should,
                "page {} (live range [{}, {}))", i, live_start, live_end
            );
        }
    }
}
