//! Property-based tests for the vmem substrate.

use proptest::prelude::*;
use vmem::addr::{Pfn, VaRange, Vaddr, PAGE_SIZE};
use vmem::bitmap::Bitmap;
use vmem::pagetable::PageTable;
use vmem::pfncache::PfnCache;
use vmem::transfer::{TransferCode, TransferMap};

proptest! {
    /// A bitmap built from an arbitrary set of indices reports exactly that
    /// set back, regardless of insertion order and duplicates.
    #[test]
    fn bitmap_matches_reference_set(
        len in 1u64..2048,
        ops in prop::collection::vec((0u64..2048, any::<bool>()), 0..256),
    ) {
        let mut bm = Bitmap::new(len);
        let mut reference = std::collections::BTreeSet::new();
        for (idx, set) in ops {
            let idx = idx % len;
            if set {
                bm.set(Pfn(idx));
                reference.insert(idx);
            } else {
                bm.clear(Pfn(idx));
                reference.remove(&idx);
            }
        }
        prop_assert_eq!(bm.count_set(), reference.len() as u64);
        let got: Vec<u64> = bm.iter_set().map(|p| p.0).collect();
        let want: Vec<u64> = reference.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// union/subtract obey set algebra against a reference implementation.
    #[test]
    fn bitmap_set_algebra(
        len in 1u64..512,
        a_bits in prop::collection::btree_set(0u64..512, 0..64),
        b_bits in prop::collection::btree_set(0u64..512, 0..64),
    ) {
        let mut a = Bitmap::new(len);
        let mut b = Bitmap::new(len);
        let a_set: std::collections::BTreeSet<u64> =
            a_bits.into_iter().map(|x| x % len).collect();
        let b_set: std::collections::BTreeSet<u64> =
            b_bits.into_iter().map(|x| x % len).collect();
        for &x in &a_set { a.set(Pfn(x)); }
        for &x in &b_set { b.set(Pfn(x)); }

        let mut u = a.clone();
        u.union_with(&b);
        let want_union: Vec<u64> = a_set.union(&b_set).copied().collect();
        prop_assert_eq!(u.iter_set().map(|p| p.0).collect::<Vec<_>>(), want_union);

        let mut d = a.clone();
        d.subtract(&b);
        let want_diff: Vec<u64> = a_set.difference(&b_set).copied().collect();
        prop_assert_eq!(d.iter_set().map(|p| p.0).collect::<Vec<_>>(), want_diff);
    }

    /// Inward alignment always produces a page-aligned sub-range of the
    /// original, and it is idempotent.
    #[test]
    fn align_inward_is_contracting_and_idempotent(
        start in 0u64..(1 << 30),
        len in 0u64..(1 << 22),
    ) {
        let r = VaRange::new(Vaddr(start), Vaddr(start + len));
        let a = r.align_inward();
        prop_assert!(a.start().is_page_aligned());
        prop_assert!(a.end().is_page_aligned());
        prop_assert!(r.contains_range(&a));
        prop_assert_eq!(a.align_inward(), a);
    }

    /// difference() + intersect() partition the original range exactly.
    #[test]
    fn range_difference_partitions(
        s1 in 0u64..10_000, l1 in 0u64..10_000,
        s2 in 0u64..10_000, l2 in 0u64..10_000,
    ) {
        let a = VaRange::new(Vaddr(s1), Vaddr(s1 + l1));
        let b = VaRange::new(Vaddr(s2), Vaddr(s2 + l2));
        let inter = a.intersect(&b);
        let parts = a.difference(&b);
        let covered: u64 = parts.iter().map(|p| p.len()).sum::<u64>() + inter.len();
        prop_assert_eq!(covered, a.len());
        for p in &parts {
            prop_assert!(p.intersect(&b).is_empty());
        }
    }

    /// Page-table walks find exactly the mapped pages of the queried range.
    #[test]
    fn walk_range_finds_mapped_pages(
        mapped in prop::collection::btree_map(0u64..256, 0u64..100_000, 0..128),
        q_start in 0u64..256,
        q_len in 0u64..256,
    ) {
        let mut pt = PageTable::new();
        for (&vpn, &pfn) in &mapped {
            pt.map(Vaddr(vpn * PAGE_SIZE), Pfn(pfn));
        }
        let range = VaRange::new(
            Vaddr(q_start * PAGE_SIZE),
            Vaddr((q_start + q_len) * PAGE_SIZE),
        );
        let found = pt.walk_range(range);
        let want: Vec<(u64, Pfn)> = mapped
            .range(q_start..q_start + q_len)
            .map(|(&vpn, &pfn)| (vpn, Pfn(pfn)))
            .collect();
        prop_assert_eq!(found, want);
        prop_assert_eq!(pt.walk_count(), q_len);
    }

    /// The PFN cache returns each inserted PFN exactly once across any
    /// sequence of take_range calls.
    #[test]
    fn pfn_cache_takes_each_pfn_once(
        vpns in prop::collection::btree_set(0u64..512, 1..64),
        cuts in prop::collection::vec((0u64..512, 0u64..64), 1..16),
    ) {
        let mut cache = PfnCache::new();
        for &vpn in &vpns {
            cache.insert(vpn, Pfn(vpn + 10_000));
        }
        let mut taken = Vec::new();
        for (start, len) in cuts {
            let r = VaRange::new(
                Vaddr(start * PAGE_SIZE),
                Vaddr((start + len) * PAGE_SIZE),
            );
            taken.extend(cache.take_range(r));
        }
        let mut seen = std::collections::BTreeSet::new();
        for pfn in &taken {
            prop_assert!(seen.insert(pfn.0), "pfn {} returned twice", pfn.0);
            prop_assert!(vpns.contains(&(pfn.0 - 10_000)));
        }
        prop_assert_eq!(taken.len() + cache.len(), vpns.len());
    }

    /// TransferMap get/set round-trips for arbitrary lanes without
    /// disturbing neighbours.
    #[test]
    fn transfer_map_roundtrip(
        npages in 1u64..512,
        writes in prop::collection::vec((0u64..512, 0u8..4), 0..128),
    ) {
        let mut tm = TransferMap::new(npages);
        let mut reference = vec![TransferCode::Plain; npages as usize];
        for (idx, code) in writes {
            let idx = idx % npages;
            let code = match code {
                0 => TransferCode::Skip,
                1 => TransferCode::Plain,
                2 => TransferCode::CompressFast,
                _ => TransferCode::CompressStrong,
            };
            tm.set(Pfn(idx), code);
            reference[idx as usize] = code;
        }
        for i in 0..npages {
            prop_assert_eq!(tm.get(Pfn(i)), reference[i as usize]);
        }
    }
}

mod radix_equivalence {
    use proptest::prelude::*;
    use vmem::addr::{Pfn, VaRange, Vaddr, PAGE_SIZE};
    use vmem::pagetable::PageTable;
    use vmem::radix::RadixTable;

    proptest! {
        /// The radix table and the map-based table agree on every
        /// operation's result for arbitrary map/unmap sequences.
        #[test]
        fn radix_matches_map_table(
            ops in prop::collection::vec(
                (0u64..4096, 0u64..100_000, any::<bool>()),
                0..256,
            ),
            q_start in 0u64..4096,
            q_len in 0u64..512,
        ) {
            let mut a = PageTable::new();
            let mut b = RadixTable::new();
            for (vpn, pfn, do_map) in ops {
                let va = Vaddr(vpn * PAGE_SIZE);
                if do_map {
                    prop_assert_eq!(a.map(va, Pfn(pfn)), b.map(va, Pfn(pfn)));
                } else {
                    prop_assert_eq!(a.unmap(va), b.unmap(va));
                }
            }
            prop_assert_eq!(a.mapped_count(), b.mapped_count());
            let range = VaRange::new(
                Vaddr(q_start * PAGE_SIZE),
                Vaddr((q_start + q_len) * PAGE_SIZE),
            );
            let from_a = a.walk_range(range);
            let (from_b, steps) = b.walk_range(range);
            prop_assert_eq!(from_a, from_b);
            // A radix walk takes at most 4 visits per page.
            prop_assert!(steps <= q_len * 4);
        }
    }
}
