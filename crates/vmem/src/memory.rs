//! The VM's pseudo-physical memory.
//!
//! [`GuestMemory`] owns per-page metadata and the hypervisor's
//! [`DirtyLog`]. Every guest write flows through [`GuestMemory::write`],
//! which bumps the page version, marks the dirty log, and reports whether
//! the write took a log-dirty fault so the caller can charge the fault cost
//! to the guest's execution time.

use crate::addr::{Pfn, PAGE_SIZE};
use crate::dirty::DirtyLog;
use crate::page::{PageClass, PageInfo};

/// The memory of one VM.
///
/// # Examples
///
/// ```
/// use vmem::addr::Pfn;
/// use vmem::memory::GuestMemory;
/// use vmem::page::PageClass;
///
/// let mut mem = GuestMemory::new(4 * 1024 * 1024); // 4 MiB, 1024 pages
/// assert_eq!(mem.page_count(), 1024);
/// mem.write(Pfn(10), PageClass::Anon);
/// assert_eq!(mem.page(Pfn(10)).version, 1);
/// ```
#[derive(Debug, Clone)]
pub struct GuestMemory {
    pages: Vec<PageInfo>,
    dirty: DirtyLog,
}

impl GuestMemory {
    /// Creates a VM memory of `bytes` bytes (rounded up to whole pages).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn new(bytes: u64) -> Self {
        assert!(bytes > 0, "VM memory must be non-empty");
        let npages = bytes.div_ceil(PAGE_SIZE);
        Self {
            pages: vec![PageInfo::default(); npages as usize],
            dirty: DirtyLog::new(npages),
        }
    }

    /// Returns the number of pages.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Returns the memory size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.page_count() * PAGE_SIZE
    }

    /// Returns the metadata of a page.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is out of range.
    pub fn page(&self, pfn: Pfn) -> PageInfo {
        self.pages[self.check(pfn)]
    }

    /// Records a guest write to `pfn`, tagging the page with `class`.
    ///
    /// Returns `true` when the write took a log-dirty fault (first write to
    /// the page since the dirty log was last cleaned).
    pub fn write(&mut self, pfn: Pfn, class: PageClass) -> bool {
        let idx = self.check(pfn);
        self.pages[idx].version += 1;
        self.pages[idx].class = class;
        self.dirty.mark(pfn)
    }

    /// Re-tags a page's class without dirtying it (e.g. when an allocator
    /// hands a region to a new owner before any write happens).
    pub fn set_class(&mut self, pfn: Pfn, class: PageClass) {
        let idx = self.check(pfn);
        self.pages[idx].class = class;
    }

    /// Immutable access to the hypervisor dirty log.
    pub fn dirty_log(&self) -> &DirtyLog {
        &self.dirty
    }

    /// Mutable access to the hypervisor dirty log.
    pub fn dirty_log_mut(&mut self) -> &mut DirtyLog {
        &mut self.dirty
    }

    fn check(&self, pfn: Pfn) -> usize {
        assert!(
            (pfn.0 as usize) < self.pages.len(),
            "{pfn:?} out of range ({} pages)",
            self.pages.len()
        );
        pfn.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_up_to_pages() {
        let mem = GuestMemory::new(PAGE_SIZE + 1);
        assert_eq!(mem.page_count(), 2);
    }

    #[test]
    fn write_bumps_version_and_class() {
        let mut mem = GuestMemory::new(PAGE_SIZE * 8);
        mem.write(Pfn(3), PageClass::HeapYoung);
        mem.write(Pfn(3), PageClass::HeapYoung);
        let p = mem.page(Pfn(3));
        assert_eq!(p.version, 2);
        assert_eq!(p.class, PageClass::HeapYoung);
    }

    #[test]
    fn writes_fault_only_when_logging() {
        let mut mem = GuestMemory::new(PAGE_SIZE * 8);
        assert!(!mem.write(Pfn(0), PageClass::Anon), "logging off: no fault");
        mem.dirty_log_mut().enable();
        assert!(
            mem.write(Pfn(0), PageClass::Anon),
            "first logged write faults"
        );
        assert!(!mem.write(Pfn(0), PageClass::Anon));
        assert_eq!(mem.dirty_log().dirty_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_bounds_checked() {
        let mem = GuestMemory::new(PAGE_SIZE);
        let _ = mem.page(Pfn(1));
    }

    #[test]
    fn set_class_does_not_dirty() {
        let mut mem = GuestMemory::new(PAGE_SIZE * 4);
        mem.dirty_log_mut().enable();
        mem.set_class(Pfn(2), PageClass::Code);
        assert_eq!(mem.page(Pfn(2)).class, PageClass::Code);
        assert_eq!(mem.page(Pfn(2)).version, 0);
        assert_eq!(mem.dirty_log().dirty_count(), 0);
    }
}
