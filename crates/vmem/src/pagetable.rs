//! Per-process page tables: the VA→PFN mapping the kernel module walks.
//!
//! Applications report skip-over areas as VA ranges; only the guest kernel
//! can turn those into the PFNs the migration daemon understands. The LKM
//! performs page-table walks for this translation (§3.3.2). We model the
//! table as a sorted map from virtual page number to PFN plus an explicit
//! walk counter, so the cost of the final-update strategies (§3.3.4) can be
//! measured.

use crate::addr::{Pfn, VaRange, Vaddr};
use std::collections::BTreeMap;

/// A simulated page table for one address space.
///
/// # Examples
///
/// ```
/// use vmem::addr::{Pfn, Vaddr};
/// use vmem::pagetable::PageTable;
///
/// let mut pt = PageTable::new();
/// pt.map(Vaddr(0x4000), Pfn(99));
/// assert_eq!(pt.translate(Vaddr(0x4123)), Some(Pfn(99)));
/// assert_eq!(pt.translate(Vaddr(0x5000)), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: BTreeMap<u64, Pfn>,
    walks: u64,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps the page containing `va` to `pfn`, replacing any prior mapping.
    ///
    /// Returns the previous PFN if the page was already mapped (a remap, the
    /// case (2) of §3.3.4 the paper assumes absent in skip-over areas).
    pub fn map(&mut self, va: Vaddr, pfn: Pfn) -> Option<Pfn> {
        self.entries.insert(va.vpn(), pfn)
    }

    /// Removes the mapping of the page containing `va`.
    pub fn unmap(&mut self, va: Vaddr) -> Option<Pfn> {
        self.entries.remove(&va.vpn())
    }

    /// Looks up the PFN backing `va` without charging a walk.
    pub fn translate(&self, va: Vaddr) -> Option<Pfn> {
        self.entries.get(&va.vpn()).copied()
    }

    /// Walks the table for every page of `range` (aligned inward), charging
    /// one walk per page and returning `(vpn, pfn)` for the mapped ones.
    ///
    /// Unmapped pages are skipped silently: a skip-over area may legitimately
    /// contain not-yet-faulted-in virtual pages, which simply have no frame
    /// to skip.
    pub fn walk_range(&mut self, range: VaRange) -> Vec<(u64, Pfn)> {
        let aligned = range.align_inward();
        let mut out = Vec::new();
        for vpn in aligned.start().vpn()..aligned.end().vpn() {
            self.walks += 1;
            if let Some(&pfn) = self.entries.get(&vpn) {
                out.push((vpn, pfn));
            }
        }
        out
    }

    /// Returns the number of mapped pages.
    pub fn mapped_count(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Returns how many page-walk steps have been charged so far.
    pub fn walk_count(&self) -> u64 {
        self.walks
    }

    /// Resets the walk counter (e.g. between migration phases).
    pub fn reset_walk_count(&mut self) {
        self.walks = 0;
    }

    /// Returns all mapped `(vpn, pfn)` pairs in VA order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Pfn)> + '_ {
        self.entries.iter().map(|(&vpn, &pfn)| (vpn, pfn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;

    #[test]
    fn map_translate_unmap() {
        let mut pt = PageTable::new();
        assert_eq!(pt.map(Vaddr(0x1000), Pfn(7)), None);
        assert_eq!(pt.translate(Vaddr(0x1fff)), Some(Pfn(7)));
        assert_eq!(
            pt.map(Vaddr(0x1000), Pfn(8)),
            Some(Pfn(7)),
            "remap returns old"
        );
        assert_eq!(pt.unmap(Vaddr(0x1000)), Some(Pfn(8)));
        assert_eq!(pt.translate(Vaddr(0x1000)), None);
    }

    #[test]
    fn walk_range_counts_every_page() {
        let mut pt = PageTable::new();
        for i in 0..10u64 {
            pt.map(Vaddr(i * PAGE_SIZE), Pfn(100 + i));
        }
        // Walk 4 pages, 2 of which we unmap first.
        pt.unmap(Vaddr(2 * PAGE_SIZE));
        pt.unmap(Vaddr(3 * PAGE_SIZE));
        let found = pt.walk_range(VaRange::new(Vaddr(PAGE_SIZE), Vaddr(5 * PAGE_SIZE)));
        assert_eq!(found.len(), 2);
        assert_eq!(pt.walk_count(), 4, "walk charged for holes too");
    }

    #[test]
    fn walk_range_aligns_inward() {
        let mut pt = PageTable::new();
        pt.map(Vaddr(0x4000), Pfn(1));
        pt.map(Vaddr(0x5000), Pfn(2));
        // Partial first and last pages are excluded.
        let found = pt.walk_range(VaRange::new(Vaddr(0x3b00), Vaddr(0x5b00)));
        assert_eq!(found, vec![(4, Pfn(1))]);
    }

    #[test]
    fn iter_is_va_ordered() {
        let mut pt = PageTable::new();
        pt.map(Vaddr(0x9000), Pfn(3));
        pt.map(Vaddr(0x1000), Pfn(1));
        let vpns: Vec<u64> = pt.iter().map(|(vpn, _)| vpn).collect();
        assert_eq!(vpns, vec![1, 9]);
    }
}
