#![warn(missing_docs)]
//! `vmem` — the guest memory substrate of the JAVMM reproduction.
//!
//! Models everything the migration machinery needs from a VM's memory:
//!
//! * pseudo-physical pages with content versions ([`memory::GuestMemory`],
//!   [`page::PageInfo`]) — versions make migration correctness exactly
//!   checkable at the destination;
//! * the hypervisor's log-dirty mode ([`dirty::DirtyLog`]) with first-touch
//!   fault reporting, the mechanism behind pre-copy and its overhead;
//! * the framework's transfer bitmap ([`transfer::TransferBitmap`]) and its
//!   widened per-page-compression variant ([`transfer::TransferMap`], §6);
//! * per-process page tables ([`pagetable::PageTable`]) for the VA→PFN
//!   semantic-gap bridging of §3.3.2, with walk-cost accounting;
//! * the PFN cache ([`pfncache::PfnCache`]) that answers skip-over-area
//!   shrink notifications after frames were reclaimed (§3.3.4).

pub mod addr;
pub mod bitmap;
pub mod dirty;
pub mod layout;
pub mod memory;
pub mod page;
pub mod pagetable;
pub mod pfncache;
pub mod radix;
pub mod transfer;

pub use addr::{Pfn, VaRange, Vaddr, PAGE_SIZE};
pub use bitmap::Bitmap;
pub use dirty::DirtyLog;
pub use layout::VmSpec;
pub use memory::GuestMemory;
pub use page::{PageClass, PageInfo};
pub use pagetable::PageTable;
pub use pfncache::PfnCache;
pub use radix::RadixTable;
pub use transfer::{TransferBitmap, TransferCode, TransferMap};
