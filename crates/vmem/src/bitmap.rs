//! A dense bitmap over page frame numbers.
//!
//! Both the hypervisor's dirty bitmap and the framework's transfer bitmap are
//! one bit per VM memory page; at 4 KiB pages that is 32 KiB of bitmap per
//! GiB of VM memory, which the paper calls out as a negligible overhead.

use crate::addr::Pfn;

/// A fixed-size bitmap indexed by PFN.
///
/// # Examples
///
/// ```
/// use vmem::addr::Pfn;
/// use vmem::bitmap::Bitmap;
///
/// let mut bm = Bitmap::new(128);
/// bm.set(Pfn(5));
/// assert!(bm.get(Pfn(5)));
/// assert_eq!(bm.count_set(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: u64,
}

impl Bitmap {
    /// Creates a bitmap of `len` bits, all cleared.
    pub fn new(len: u64) -> Self {
        Self {
            words: vec![0; len.div_ceil(64) as usize],
            len,
        }
    }

    /// Creates a bitmap of `len` bits, all set.
    pub fn new_all_set(len: u64) -> Self {
        let mut bm = Self::new(len);
        bm.set_all();
        bm
    }

    /// Returns the number of bits.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` when the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the size of the bitmap's backing store in bytes.
    pub fn byte_size(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    /// Borrows the backing `u64` words, least-significant bit first.
    ///
    /// Bits past `len()` in the final word are always zero, so word-wise
    /// consumers need no tail special-casing on reads.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns the number of backing words (`len().div_ceil(64)`).
    #[inline]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    #[inline]
    fn index(&self, pfn: Pfn) -> (usize, u64) {
        assert!(pfn.0 < self.len, "{pfn:?} out of range (len {})", self.len);
        ((pfn.0 / 64) as usize, 1u64 << (pfn.0 % 64))
    }

    /// Returns the bit for `pfn`.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is out of range.
    #[inline]
    pub fn get(&self, pfn: Pfn) -> bool {
        let (w, mask) = self.index(pfn);
        self.words[w] & mask != 0
    }

    /// Sets the bit for `pfn`; returns `true` if it was previously clear.
    #[inline]
    pub fn set(&mut self, pfn: Pfn) -> bool {
        let (w, mask) = self.index(pfn);
        let was_clear = self.words[w] & mask == 0;
        self.words[w] |= mask;
        was_clear
    }

    /// Clears the bit for `pfn`; returns `true` if it was previously set.
    #[inline]
    pub fn clear(&mut self, pfn: Pfn) -> bool {
        let (w, mask) = self.index(pfn);
        let was_set = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was_set
    }

    /// Sets every bit.
    pub fn set_all(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.mask_tail();
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Returns the number of set bits.
    pub fn count_set(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Returns `true` if no bit is set.
    pub fn all_clear(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns the first set bit at or after `from`, if any.
    ///
    /// Lets a scanner resume where it left off without re-walking the
    /// bitmap — the migration daemon's per-quantum page scan uses this.
    pub fn next_set_at(&self, from: u64) -> Option<Pfn> {
        if from >= self.len {
            return None;
        }
        let mut word_idx = (from / 64) as usize;
        let mut word = self.words[word_idx] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                let bit = word.trailing_zeros() as u64;
                let pfn = word_idx as u64 * 64 + bit;
                return (pfn < self.len).then_some(Pfn(pfn));
            }
            word_idx += 1;
            if word_idx >= self.words.len() {
                return None;
            }
            word = self.words[word_idx];
        }
    }

    /// Iterates over set PFNs in ascending order.
    pub fn iter_set(&self) -> SetBits<'_> {
        SetBits {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Copies all bits from `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Swaps contents with `other` in O(1).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn swap(&mut self, other: &mut Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        core::mem::swap(&mut self.words, &mut other.words);
    }

    /// Sets `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Sets `self &= !other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn subtract(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Sets `self &= other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn intersect_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Flips every bit (`self = !self`).
    pub fn invert(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Returns `popcount(self & other)` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn count_and(&self, other: &Bitmap) -> u64 {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as u64)
            .sum()
    }

    /// Returns `popcount(self & !other)` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn count_and_not(&self, other: &Bitmap) -> u64 {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as u64)
            .sum()
    }

    /// Returns `popcount(self & other)` restricted to the backing words in
    /// `range` — the shard-local slice of [`Bitmap::count_and`]. Summing the
    /// results over a partition of `0..word_count()` equals the whole-map
    /// count, which is what lets the scan pipeline split the work across
    /// workers without changing the answer.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or `range` exceeds the word count.
    pub fn count_and_in(&self, other: &Bitmap, range: core::ops::Range<usize>) -> u64 {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words[range.clone()]
            .iter()
            .zip(&other.words[range])
            .map(|(a, b)| (a & b).count_ones() as u64)
            .sum()
    }

    /// Returns `popcount(self & !other)` restricted to the backing words in
    /// `range` — the shard-local slice of [`Bitmap::count_and_not`].
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or `range` exceeds the word count.
    pub fn count_and_not_in(&self, other: &Bitmap, range: core::ops::Range<usize>) -> u64 {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words[range.clone()]
            .iter()
            .zip(&other.words[range])
            .map(|(a, b)| (a & !b).count_ones() as u64)
            .sum()
    }

    /// Calls `f(word_index, word)` for every *non-zero* backing word, in
    /// ascending index order. The hot-path alternative to [`Bitmap::iter_set`]
    /// when the consumer wants to apply set algebra a word at a time.
    #[inline]
    pub fn for_each_set_word(&self, mut f: impl FnMut(usize, u64)) {
        for (idx, &w) in self.words.iter().enumerate() {
            if w != 0 {
                f(idx, w);
            }
        }
    }

    /// Iterates over the non-zero backing words as `(word_index, word)`
    /// pairs in ascending index order.
    pub fn iter_words(&self) -> SetWords<'_> {
        SetWords {
            words: &self.words,
            idx: 0,
        }
    }

    /// ORs `mask` into the word at `word_idx`; bits past `len()` are
    /// discarded so the tail invariant holds.
    ///
    /// # Panics
    ///
    /// Panics if `word_idx` is out of range.
    #[inline]
    pub fn set_bits_in_word(&mut self, word_idx: usize, mask: u64) {
        self.words[word_idx] |= mask;
        if word_idx + 1 == self.words.len() {
            self.mask_tail();
        }
    }

    /// Clears every bit of `mask` in the word at `word_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `word_idx` is out of range.
    #[inline]
    pub fn clear_bits_in_word(&mut self, word_idx: usize, mask: u64) {
        self.words[word_idx] &= !mask;
    }

    /// Clears any set bits beyond `len` (the tail of the last word).
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl core::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Bitmap({} set / {} bits)", self.count_set(), self.len)
    }
}

/// Iterator over the non-zero words of a [`Bitmap`].
pub struct SetWords<'a> {
    words: &'a [u64],
    idx: usize,
}

impl Iterator for SetWords<'_> {
    type Item = (usize, u64);

    fn next(&mut self) -> Option<(usize, u64)> {
        while self.idx < self.words.len() {
            let idx = self.idx;
            self.idx += 1;
            let w = self.words[idx];
            if w != 0 {
                return Some((idx, w));
            }
        }
        None
    }
}

/// Iterator over set bits of a [`Bitmap`].
pub struct SetBits<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = Pfn;

    fn next(&mut self) -> Option<Pfn> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as u64;
                self.current &= self.current - 1;
                return Some(Pfn(self.word_idx as u64 * 64 + bit));
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bm = Bitmap::new(100);
        assert!(!bm.get(Pfn(63)));
        assert!(bm.set(Pfn(63)));
        assert!(!bm.set(Pfn(63)), "second set reports already-set");
        assert!(bm.get(Pfn(63)));
        assert!(bm.clear(Pfn(63)));
        assert!(!bm.clear(Pfn(63)), "second clear reports already-clear");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let bm = Bitmap::new(10);
        let _ = bm.get(Pfn(10));
    }

    #[test]
    fn all_set_respects_length() {
        let bm = Bitmap::new_all_set(70);
        assert_eq!(bm.count_set(), 70);
        assert!(bm.get(Pfn(69)));
    }

    #[test]
    fn iter_set_crosses_words() {
        let mut bm = Bitmap::new(200);
        for p in [0u64, 1, 63, 64, 65, 127, 128, 199] {
            bm.set(Pfn(p));
        }
        let got: Vec<u64> = bm.iter_set().map(|p| p.0).collect();
        assert_eq!(got, vec![0, 1, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn iter_set_empty() {
        let bm = Bitmap::new(100);
        assert_eq!(bm.iter_set().count(), 0);
    }

    #[test]
    fn next_set_at_scans_incrementally() {
        let mut bm = Bitmap::new(200);
        for p in [3u64, 64, 130, 199] {
            bm.set(Pfn(p));
        }
        assert_eq!(bm.next_set_at(0), Some(Pfn(3)));
        assert_eq!(bm.next_set_at(3), Some(Pfn(3)), "inclusive start");
        assert_eq!(bm.next_set_at(4), Some(Pfn(64)));
        assert_eq!(bm.next_set_at(65), Some(Pfn(130)));
        assert_eq!(bm.next_set_at(131), Some(Pfn(199)));
        assert_eq!(bm.next_set_at(200), None, "past the end");
        assert_eq!(Bitmap::new(100).next_set_at(0), None);
    }

    #[test]
    fn union_and_subtract() {
        let mut a = Bitmap::new(128);
        let mut b = Bitmap::new(128);
        a.set(Pfn(1));
        a.set(Pfn(2));
        b.set(Pfn(2));
        b.set(Pfn(3));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count_set(), 3);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter_set().map(|p| p.0).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn byte_size_per_gib() {
        // 1 GiB of 4 KiB pages = 262144 pages -> 32 KiB of bitmap (paper §3.3.3).
        let bm = Bitmap::new(262_144);
        assert_eq!(bm.byte_size(), 32 * 1024);
    }

    #[test]
    fn intersect_count_and_invert() {
        let mut a = Bitmap::new(130);
        let mut b = Bitmap::new(130);
        for p in [0u64, 63, 64, 100, 129] {
            a.set(Pfn(p));
        }
        for p in [63u64, 100, 128] {
            b.set(Pfn(p));
        }
        assert_eq!(a.count_and(&b), 2, "63 and 100");
        assert_eq!(a.count_and_not(&b), 3, "0, 64, 129");
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter_set().map(|p| p.0).collect::<Vec<_>>(), vec![63, 100]);
        let mut inv = b.clone();
        inv.invert();
        assert_eq!(inv.count_set(), 130 - 3);
        assert!(!inv.get(Pfn(63)) && inv.get(Pfn(0)) && inv.get(Pfn(129)));
    }

    #[test]
    fn tail_word_lengths_not_divisible_by_64() {
        for len in [1u64, 63, 65, 70, 127, 130, 191] {
            let mut bm = Bitmap::new(len);
            bm.set_all();
            assert_eq!(bm.count_set(), len, "set_all at len {len}");
            assert_eq!(bm.next_set_at(len - 1), Some(Pfn(len - 1)));
            assert_eq!(bm.next_set_at(len), None, "beyond the tail at len {len}");
            assert_eq!(
                bm.next_set_at(len + 1000),
                None,
                "far beyond the tail at len {len}"
            );
            // The tail invariant: no stray bits past `len` in the last word.
            let rem = len % 64;
            if rem != 0 {
                assert_eq!(bm.words().last().unwrap() >> rem, 0, "tail at len {len}");
            }
            let mut inv = bm.clone();
            inv.invert();
            assert!(inv.all_clear(), "invert of all-set is empty at len {len}");
            assert_eq!(bm.count_and(&bm), len);
            assert_eq!(bm.count_and_not(&bm), 0);
        }
    }

    #[test]
    fn word_views_and_word_edits() {
        let mut bm = Bitmap::new(100);
        bm.set(Pfn(3));
        bm.set(Pfn(64));
        assert_eq!(bm.word_count(), 2);
        assert_eq!(bm.words()[0], 1 << 3);
        assert_eq!(bm.words()[1], 1);
        let collected: Vec<(usize, u64)> = bm.iter_words().collect();
        assert_eq!(collected, vec![(0, 1 << 3), (1, 1)]);
        let mut visited = Vec::new();
        bm.for_each_set_word(|i, w| visited.push((i, w)));
        assert_eq!(visited, collected);

        bm.clear_bits_in_word(0, 1 << 3);
        assert!(!bm.get(Pfn(3)));
        bm.set_bits_in_word(1, u64::MAX);
        // Bits past len (100) must have been discarded by the tail mask.
        assert_eq!(bm.count_set(), 100 - 64);
        assert!(bm.get(Pfn(99)));
        assert_eq!(bm.next_set_at(100), None);
    }

    #[test]
    fn swap_is_cheap_and_correct() {
        let mut a = Bitmap::new(64);
        let mut b = Bitmap::new(64);
        a.set(Pfn(1));
        b.set(Pfn(2));
        a.swap(&mut b);
        assert!(a.get(Pfn(2)) && !a.get(Pfn(1)));
        assert!(b.get(Pfn(1)) && !b.get(Pfn(2)));
    }
}
