//! The hypervisor's log-dirty machinery.
//!
//! During live migration the hypervisor write-protects guest memory and logs
//! the first write to each page since the log was last read. Reading the log
//! atomically clears it (`read_and_clear`, Xen's `XEN_DOMCTL_SHADOW_OP_CLEAN`)
//! or leaves it intact (`peek`, `..._OP_PEEK`). The *first* write to a
//! clean-logged page takes a shadow-paging fault, which is the mechanistic
//! source of the >20% application slowdown the paper measures under vanilla
//! migration; [`DirtyLog::mark`] reports those first touches so the guest
//! model can charge the fault cost.

use crate::addr::Pfn;
use crate::bitmap::Bitmap;

/// Log-dirty state for one VM.
///
/// # Examples
///
/// ```
/// use vmem::addr::Pfn;
/// use vmem::dirty::DirtyLog;
///
/// let mut log = DirtyLog::new(64);
/// log.enable();
/// assert!(log.mark(Pfn(3)), "first touch faults");
/// assert!(!log.mark(Pfn(3)), "second touch is free");
/// let snap = log.read_and_clear();
/// assert_eq!(snap.count_set(), 1);
/// assert!(log.mark(Pfn(3)), "faults again after clean");
/// ```
#[derive(Debug, Clone)]
pub struct DirtyLog {
    enabled: bool,
    dirty: Bitmap,
    /// Total log-dirty faults taken since `enable`.
    faults: u64,
}

impl DirtyLog {
    /// Creates a disabled log for a VM of `npages` pages.
    pub fn new(npages: u64) -> Self {
        Self {
            enabled: false,
            dirty: Bitmap::new(npages),
            faults: 0,
        }
    }

    /// Turns on dirty logging with an empty log.
    pub fn enable(&mut self) {
        self.enabled = true;
        self.dirty.clear_all();
        self.faults = 0;
    }

    /// Turns off dirty logging.
    pub fn disable(&mut self) {
        self.enabled = false;
        self.dirty.clear_all();
    }

    /// Returns `true` while logging is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a guest write to `pfn`.
    ///
    /// Returns `true` when this write is the first since the page was last
    /// cleaned — i.e. when the guest takes a log-dirty fault.
    pub fn mark(&mut self, pfn: Pfn) -> bool {
        if !self.enabled {
            return false;
        }
        let first = self.dirty.set(pfn);
        if first {
            self.faults += 1;
        }
        first
    }

    /// Returns whether `pfn` is currently logged dirty.
    pub fn is_dirty(&self, pfn: Pfn) -> bool {
        self.dirty.get(pfn)
    }

    /// Returns a snapshot of the log and clears it (Xen `OP_CLEAN`).
    pub fn read_and_clear(&mut self) -> Bitmap {
        let mut snap = Bitmap::new(self.dirty.len());
        snap.swap(&mut self.dirty);
        snap
    }

    /// Returns a snapshot without clearing (Xen `OP_PEEK`).
    pub fn peek(&self) -> Bitmap {
        self.dirty.clone()
    }

    /// Borrows the live dirty bitmap without cloning it.
    ///
    /// The word-granular scan pipeline reads the log through this view a
    /// `u64` word at a time; [`DirtyLog::peek`] remains for callers that
    /// need an owned snapshot.
    #[inline]
    pub fn peek_ref(&self) -> &Bitmap {
        &self.dirty
    }

    /// Returns the number of pages currently logged dirty.
    pub fn dirty_count(&self) -> u64 {
        self.dirty.count_set()
    }

    /// Returns the number of log-dirty faults taken since `enable`.
    pub fn fault_count(&self) -> u64 {
        self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_ignores_writes() {
        let mut log = DirtyLog::new(16);
        assert!(!log.mark(Pfn(1)));
        assert_eq!(log.dirty_count(), 0);
    }

    #[test]
    fn read_and_clear_resets() {
        let mut log = DirtyLog::new(16);
        log.enable();
        log.mark(Pfn(1));
        log.mark(Pfn(5));
        let snap = log.read_and_clear();
        assert_eq!(snap.count_set(), 2);
        assert_eq!(log.dirty_count(), 0);
        assert!(!log.is_dirty(Pfn(1)));
    }

    #[test]
    fn peek_preserves() {
        let mut log = DirtyLog::new(16);
        log.enable();
        log.mark(Pfn(2));
        let snap = log.peek();
        assert_eq!(snap.count_set(), 1);
        assert_eq!(log.dirty_count(), 1);
    }

    #[test]
    fn peek_ref_tracks_live_state_without_cloning() {
        let mut log = DirtyLog::new(70);
        log.enable();
        log.mark(Pfn(2));
        log.mark(Pfn(69));
        assert_eq!(log.peek_ref().count_set(), 2);
        assert_eq!(log.peek_ref().words()[1], 1 << 5);
        log.read_and_clear();
        assert!(log.peek_ref().all_clear(), "view follows the live log");
    }

    #[test]
    fn fault_accounting() {
        let mut log = DirtyLog::new(16);
        log.enable();
        log.mark(Pfn(1));
        log.mark(Pfn(1));
        log.mark(Pfn(2));
        assert_eq!(log.fault_count(), 2);
        log.read_and_clear();
        log.mark(Pfn(1));
        assert_eq!(log.fault_count(), 3, "clean re-arms the fault");
    }

    #[test]
    fn enable_clears_stale_state() {
        let mut log = DirtyLog::new(16);
        log.enable();
        log.mark(Pfn(3));
        log.disable();
        log.enable();
        assert_eq!(log.dirty_count(), 0);
        assert_eq!(log.fault_count(), 0);
    }
}
