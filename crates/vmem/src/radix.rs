//! A 4-level radix page table, matching x86-64 structure.
//!
//! [`crate::pagetable::PageTable`] models translation with a sorted map —
//! compact and fast for the simulation's hot paths. This module provides a
//! structurally faithful alternative: a 4-level radix tree with 512-entry
//! nodes (9 bits per level, as on x86-64), so walk costs and table memory
//! overheads can be studied directly. The two implementations are checked
//! against each other property-wise in `tests/props.rs`.

use crate::addr::{Pfn, VaRange, Vaddr};

/// Entries per node: 9 bits per level.
const FANOUT: usize = 512;
/// Number of levels (PML4 → PDPT → PD → PT).
const LEVELS: u32 = 4;

#[derive(Debug)]
enum Node {
    /// An interior node (levels 1-3).
    Interior(Box<[Option<Node>; FANOUT]>),
    /// A leaf node holding PTEs.
    Leaf(Box<[Option<Pfn>; FANOUT]>),
}

impl Node {
    fn new_interior() -> Self {
        Node::Interior(Box::new([const { None }; FANOUT]))
    }

    fn new_leaf() -> Self {
        Node::Leaf(Box::new([const { None }; FANOUT]))
    }
}

/// A structurally faithful 4-level page table.
///
/// # Examples
///
/// ```
/// use vmem::addr::{Pfn, Vaddr};
/// use vmem::radix::RadixTable;
///
/// let mut pt = RadixTable::new();
/// pt.map(Vaddr(0x7f00_dead_b000), Pfn(42));
/// let (pfn, steps) = pt.translate_counted(Vaddr(0x7f00_dead_bfff));
/// assert_eq!(pfn, Some(Pfn(42)));
/// assert_eq!(steps, 4, "one step per level");
/// ```
#[derive(Debug)]
pub struct RadixTable {
    root: Node,
    mapped: u64,
    nodes: u64,
}

impl RadixTable {
    /// Creates an empty table (one root node).
    pub fn new() -> Self {
        Self {
            root: Node::new_interior(),
            mapped: 0,
            nodes: 1,
        }
    }

    /// The 9-bit index of `vpn` at `level` (level 0 = leaf).
    fn index_at(vpn: u64, level: u32) -> usize {
        ((vpn >> (9 * level)) & 0x1ff) as usize
    }

    /// Maps the page containing `va` to `pfn`; returns the previous mapping.
    pub fn map(&mut self, va: Vaddr, pfn: Pfn) -> Option<Pfn> {
        let vpn = va.vpn();
        let mut node = &mut self.root;
        for level in (1..LEVELS).rev() {
            let idx = Self::index_at(vpn, level);
            let Node::Interior(slots) = node else {
                unreachable!("interior levels hold interior nodes");
            };
            if slots[idx].is_none() {
                slots[idx] = Some(if level == 1 {
                    Node::new_leaf()
                } else {
                    Node::new_interior()
                });
                self.nodes += 1;
            }
            node = slots[idx].as_mut().expect("just filled");
        }
        let Node::Leaf(ptes) = node else {
            unreachable!("level 0 is a leaf");
        };
        let prev = ptes[Self::index_at(vpn, 0)].replace(pfn);
        if prev.is_none() {
            self.mapped += 1;
        }
        prev
    }

    /// Unmaps the page containing `va`; returns the previous mapping.
    ///
    /// Empty nodes are not reclaimed (as in most kernels, which defer it).
    pub fn unmap(&mut self, va: Vaddr) -> Option<Pfn> {
        let vpn = va.vpn();
        let mut node = &mut self.root;
        for level in (1..LEVELS).rev() {
            let idx = Self::index_at(vpn, level);
            let Node::Interior(slots) = node else {
                unreachable!();
            };
            node = slots[idx].as_mut()?;
        }
        let Node::Leaf(ptes) = node else {
            unreachable!();
        };
        let prev = ptes[Self::index_at(vpn, 0)].take();
        if prev.is_some() {
            self.mapped -= 1;
        }
        prev
    }

    /// Translates `va`, returning the PFN and the number of node visits
    /// (4 on a complete walk, fewer when an upper level is absent).
    pub fn translate_counted(&self, va: Vaddr) -> (Option<Pfn>, u32) {
        let vpn = va.vpn();
        let mut node = &self.root;
        let mut steps = 0;
        for level in (1..LEVELS).rev() {
            steps += 1;
            let idx = Self::index_at(vpn, level);
            let Node::Interior(slots) = node else {
                unreachable!();
            };
            match &slots[idx] {
                Some(next) => node = next,
                None => return (None, steps),
            }
        }
        steps += 1;
        let Node::Leaf(ptes) = node else {
            unreachable!();
        };
        (ptes[Self::index_at(vpn, 0)], steps)
    }

    /// Translates `va` without counting.
    pub fn translate(&self, va: Vaddr) -> Option<Pfn> {
        self.translate_counted(va).0
    }

    /// Walks every page of `range` (aligned inward), returning the mapped
    /// `(vpn, pfn)` pairs and the total node visits.
    pub fn walk_range(&self, range: VaRange) -> (Vec<(u64, Pfn)>, u64) {
        let aligned = range.align_inward();
        let mut out = Vec::new();
        let mut steps = 0u64;
        for vpn in aligned.start().vpn()..aligned.end().vpn() {
            let (pfn, s) = self.translate_counted(Vaddr(vpn << 12));
            steps += s as u64;
            if let Some(pfn) = pfn {
                out.push((vpn, pfn));
            }
        }
        (out, steps)
    }

    /// Number of mapped pages.
    pub fn mapped_count(&self) -> u64 {
        self.mapped
    }

    /// Number of table nodes allocated (each models one 4 KiB table page).
    pub fn node_count(&self) -> u64 {
        self.nodes
    }

    /// Modelled memory footprint of the table structure itself.
    pub fn table_bytes(&self) -> u64 {
        self.nodes * crate::addr::PAGE_SIZE
    }
}

impl Default for RadixTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;

    #[test]
    fn map_translate_unmap_roundtrip() {
        let mut pt = RadixTable::new();
        assert_eq!(pt.map(Vaddr(0x1000), Pfn(7)), None);
        assert_eq!(pt.translate(Vaddr(0x1fff)), Some(Pfn(7)));
        assert_eq!(pt.map(Vaddr(0x1000), Pfn(8)), Some(Pfn(7)));
        assert_eq!(pt.unmap(Vaddr(0x1000)), Some(Pfn(8)));
        assert_eq!(pt.translate(Vaddr(0x1000)), None);
        assert_eq!(pt.mapped_count(), 0);
    }

    #[test]
    fn missing_upper_levels_shorten_the_walk() {
        let pt = RadixTable::new();
        let (pfn, steps) = pt.translate_counted(Vaddr(0x7f00_0000_0000));
        assert_eq!(pfn, None);
        assert_eq!(steps, 1, "PML4 miss ends the walk");
    }

    #[test]
    fn distant_addresses_allocate_separate_subtrees() {
        let mut pt = RadixTable::new();
        pt.map(Vaddr(0x0000_1000), Pfn(1));
        let n1 = pt.node_count();
        pt.map(Vaddr(0x7f00_0000_0000), Pfn(2));
        assert!(pt.node_count() > n1, "a new subtree was built");
        // Neighbouring page shares the whole path.
        let n2 = pt.node_count();
        pt.map(Vaddr(0x7f00_0000_1000), Pfn(3));
        assert_eq!(pt.node_count(), n2);
    }

    #[test]
    fn walk_range_counts_node_visits() {
        let mut pt = RadixTable::new();
        for i in 0..8u64 {
            pt.map(Vaddr(i * PAGE_SIZE), Pfn(100 + i));
        }
        let (found, steps) = pt.walk_range(VaRange::new(Vaddr(0), Vaddr(8 * PAGE_SIZE)));
        assert_eq!(found.len(), 8);
        assert_eq!(steps, 8 * 4, "complete walks take 4 visits each");
    }

    #[test]
    fn table_overhead_is_counted_in_pages() {
        let mut pt = RadixTable::new();
        pt.map(Vaddr(0x1000), Pfn(1));
        // Root + 2 interiors + 1 leaf.
        assert_eq!(pt.node_count(), 4);
        assert_eq!(pt.table_bytes(), 4 * PAGE_SIZE);
    }
}
