//! Per-page metadata: content versions and content classes.
//!
//! The simulation does not store 4 KiB page bodies. Each page carries a
//! monotonically increasing *version* — bumped on every guest write — and a
//! *class* describing what kind of data lives there. Migration correctness
//! is then checkable exactly: the destination must hold the source's final
//! version for every page the protocol promises to transfer, and the class
//! drives the compressibility model of the §6 compression extension.

/// What kind of content a page holds.
///
/// Classes matter for two things: background dirtying behaviour (kernel
/// pages churn slowly; Eden pages churn violently) and compression ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageClass {
    /// Never-written, zero-filled memory.
    #[default]
    Zero,
    /// Guest kernel text/data.
    Kernel,
    /// Page-cache contents.
    PageCache,
    /// Ordinary process anonymous memory.
    Anon,
    /// JIT code cache.
    Code,
    /// Java heap, Young generation.
    HeapYoung,
    /// Java heap, Old generation.
    HeapOld,
    /// JVM metadata (metaspace, interned strings).
    JvmMeta,
    /// Application cache contents (e.g. memcached values, §6 extension).
    AppCache,
}

impl PageClass {
    /// All page classes, for table-driven accounting.
    pub const ALL: [PageClass; 9] = [
        PageClass::Zero,
        PageClass::Kernel,
        PageClass::PageCache,
        PageClass::Anon,
        PageClass::Code,
        PageClass::HeapYoung,
        PageClass::HeapOld,
        PageClass::JvmMeta,
        PageClass::AppCache,
    ];

    /// A stable dense index for per-class counters.
    pub fn index(self) -> usize {
        match self {
            PageClass::Zero => 0,
            PageClass::Kernel => 1,
            PageClass::PageCache => 2,
            PageClass::Anon => 3,
            PageClass::Code => 4,
            PageClass::HeapYoung => 5,
            PageClass::HeapOld => 6,
            PageClass::JvmMeta => 7,
            PageClass::AppCache => 8,
        }
    }

    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PageClass::Zero => "zero",
            PageClass::Kernel => "kernel",
            PageClass::PageCache => "pagecache",
            PageClass::Anon => "anon",
            PageClass::Code => "code",
            PageClass::HeapYoung => "heap-young",
            PageClass::HeapOld => "heap-old",
            PageClass::JvmMeta => "jvm-meta",
            PageClass::AppCache => "app-cache",
        }
    }

    /// A representative compression ratio (compressed/original) for the
    /// page's content, used by the §6 selective-compression extension.
    ///
    /// Values follow common observations: zero pages collapse entirely,
    /// text-like data compresses well, pointer-dense heap data moderately,
    /// code poorly.
    pub fn compression_ratio(self) -> f64 {
        match self {
            PageClass::Zero => 0.01,
            PageClass::Kernel => 0.55,
            PageClass::PageCache => 0.45,
            PageClass::Anon => 0.50,
            PageClass::Code => 0.75,
            PageClass::HeapYoung => 0.40,
            PageClass::HeapOld => 0.45,
            PageClass::JvmMeta => 0.35,
            PageClass::AppCache => 0.60,
        }
    }
}

/// Metadata for one guest page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageInfo {
    /// Content version; 0 means never written.
    pub version: u64,
    /// Current content class.
    pub class: PageClass,
}

impl PageInfo {
    /// Returns `true` when the page has never been written.
    pub fn is_pristine(&self) -> bool {
        self.version == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_pristine_zero() {
        let p = PageInfo::default();
        assert!(p.is_pristine());
        assert_eq!(p.class, PageClass::Zero);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; PageClass::ALL.len()];
        for class in PageClass::ALL {
            let i = class.index();
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
            assert!(!class.label().is_empty());
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ratios_are_sane() {
        for class in PageClass::ALL {
            let r = class.compression_ratio();
            assert!((0.0..=1.0).contains(&r), "{class:?} ratio {r}");
        }
        assert!(PageClass::Zero.compression_ratio() < PageClass::Code.compression_ratio());
    }
}
