//! The LKM's PFN cache for skip-over area shrinkage (§3.3.4).
//!
//! When a skip-over area shrinks because memory was deallocated, the PFNs
//! leaving the area are reclaimed and can no longer be found by walking the
//! page tables. The LKM therefore caches each PFN at the moment it clears
//! the page's transfer bit, keyed by virtual page number; a later "VA range
//! left the area" notification is answered from this cache. The paper sizes
//! the cache at 4 bytes per entry — 1 MiB per GiB of skip-over area, a 0.1%
//! overhead — which [`PfnCache::byte_size`] models.

use crate::addr::{Pfn, VaRange};
use std::collections::BTreeMap;

/// Cache of `(vpn → pfn)` for pages whose transfer bits were cleared.
///
/// # Examples
///
/// ```
/// use vmem::addr::{Pfn, VaRange, Vaddr};
/// use vmem::pfncache::PfnCache;
///
/// let mut cache = PfnCache::new();
/// cache.insert(4, Pfn(100));
/// cache.insert(5, Pfn(101));
/// let gone = cache.take_range(VaRange::new(Vaddr(0x4000), Vaddr(0x5000)));
/// assert_eq!(gone, vec![Pfn(100)]);
/// assert_eq!(cache.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PfnCache {
    entries: BTreeMap<u64, Pfn>,
}

impl PfnCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `vpn` of a skip-over area is backed by `pfn`.
    pub fn insert(&mut self, vpn: u64, pfn: Pfn) {
        self.entries.insert(vpn, pfn);
    }

    /// Looks up the cached PFN for `vpn` without removing it.
    pub fn get(&self, vpn: u64) -> Option<Pfn> {
        self.entries.get(&vpn).copied()
    }

    /// Removes and returns the PFNs cached for the pages of `range`
    /// (aligned inward), in VA order.
    ///
    /// This is the shrink path: the returned PFNs must have their transfer
    /// bits set again, and the cache forgets them.
    pub fn take_range(&mut self, range: VaRange) -> Vec<Pfn> {
        let aligned = range.align_inward();
        if aligned.is_empty() {
            return Vec::new();
        }
        let vpns: Vec<u64> = self
            .entries
            .range(aligned.start().vpn()..aligned.end().vpn())
            .map(|(&vpn, _)| vpn)
            .collect();
        vpns.iter()
            .map(|vpn| self.entries.remove(vpn).expect("vpn just enumerated"))
            .collect()
    }

    /// Removes every entry, returning the count dropped.
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Returns the number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the cache's modelled memory footprint: 4 bytes per entry,
    /// matching the paper's accounting.
    pub fn byte_size(&self) -> u64 {
        self.entries.len() as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Vaddr, PAGE_SIZE};

    #[test]
    fn take_range_removes_only_covered() {
        let mut cache = PfnCache::new();
        for vpn in 0..10 {
            cache.insert(vpn, Pfn(1000 + vpn));
        }
        let taken = cache.take_range(VaRange::new(Vaddr(3 * PAGE_SIZE), Vaddr(6 * PAGE_SIZE)));
        assert_eq!(taken, vec![Pfn(1003), Pfn(1004), Pfn(1005)]);
        assert_eq!(cache.len(), 7);
        assert!(cache.get(3).is_none());
        assert_eq!(cache.get(6), Some(Pfn(1006)));
    }

    #[test]
    fn take_range_on_empty_is_empty() {
        let mut cache = PfnCache::new();
        assert!(cache
            .take_range(VaRange::new(Vaddr(0), Vaddr(PAGE_SIZE)))
            .is_empty());
    }

    #[test]
    fn unaligned_shrink_range_is_conservative() {
        let mut cache = PfnCache::new();
        cache.insert(4, Pfn(40));
        cache.insert(5, Pfn(50));
        // A shrink range covering only part of page 5 must not evict it.
        let taken = cache.take_range(VaRange::new(Vaddr(0x4000), Vaddr(0x5800)));
        assert_eq!(taken, vec![Pfn(40)]);
        assert_eq!(cache.get(5), Some(Pfn(50)));
    }

    #[test]
    fn byte_size_matches_paper_model() {
        let mut cache = PfnCache::new();
        // 1 GiB of skip-over area = 262144 pages -> 1 MiB of cache.
        for vpn in 0..262_144 {
            cache.insert(vpn, Pfn(vpn));
        }
        assert_eq!(cache.byte_size(), 1024 * 1024);
    }

    #[test]
    fn clear_empties() {
        let mut cache = PfnCache::new();
        cache.insert(1, Pfn(1));
        assert_eq!(cache.clear(), 1);
        assert!(cache.is_empty());
    }
}
