//! Addresses: guest-virtual addresses, page frame numbers, and ranges.
//!
//! The migration daemon thinks in *page frame numbers* (PFNs) — indices into
//! the VM's pseudo-physical memory — while applications think in *virtual
//! addresses* (VAs). Bridging that semantic gap with page-table walks is one
//! of the three responsibilities of the paper's guest kernel module.

use core::fmt;

/// Size of a guest memory page in bytes (4 KiB, as in the paper).
pub const PAGE_SIZE: u64 = 4096;

/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// A page frame number: the index of a page in the VM's contiguous
/// pseudo-physical memory space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pfn(pub u64);

impl Pfn {
    /// Returns the byte address of the start of this frame.
    pub const fn base(self) -> u64 {
        self.0 << PAGE_SHIFT
    }
}

impl fmt::Debug for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

/// A guest-virtual address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vaddr(pub u64);

impl Vaddr {
    /// Returns the virtual page number containing this address.
    pub const fn vpn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Returns the offset of this address within its page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Returns `true` when the address is page-aligned.
    pub const fn is_page_aligned(self) -> bool {
        self.page_offset() == 0
    }

    /// Rounds up to the next page boundary (identity on aligned addresses).
    pub const fn align_up(self) -> Vaddr {
        Vaddr((self.0 + PAGE_SIZE - 1) & !(PAGE_SIZE - 1))
    }

    /// Rounds down to the containing page boundary.
    pub const fn align_down(self) -> Vaddr {
        Vaddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// Returns the address advanced by `bytes`.
    pub const fn add(self, bytes: u64) -> Vaddr {
        Vaddr(self.0 + bytes)
    }
}

impl fmt::Debug for Vaddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

/// A half-open range of virtual addresses `[start, end)`.
///
/// Applications report skip-over areas as VA ranges; the kernel module aligns
/// them *inward* (start up, end down) so that every page covered is covered
/// in its entirety, per §3.3.2 of the paper.
///
/// # Examples
///
/// ```
/// use vmem::addr::{VaRange, Vaddr, PAGE_SIZE};
///
/// let raw = VaRange::new(Vaddr(0x3b00), Vaddr(0x8b00));
/// let aligned = raw.align_inward();
/// assert_eq!(aligned.start(), Vaddr(0x4000));
/// assert_eq!(aligned.end(), Vaddr(0x8000));
/// assert_eq!(aligned.page_count(), (0x8000 - 0x4000) / PAGE_SIZE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VaRange {
    start: Vaddr,
    end: Vaddr,
}

impl VaRange {
    /// Creates a range; an inverted range collapses to empty at `start`.
    pub fn new(start: Vaddr, end: Vaddr) -> Self {
        if end < start {
            Self { start, end: start }
        } else {
            Self { start, end }
        }
    }

    /// Creates a range from a start address and a length in bytes.
    pub fn from_len(start: Vaddr, len: u64) -> Self {
        Self::new(start, Vaddr(start.0 + len))
    }

    /// An empty range at address zero.
    pub const fn empty() -> Self {
        Self {
            start: Vaddr(0),
            end: Vaddr(0),
        }
    }

    /// Returns the inclusive lower bound.
    pub fn start(&self) -> Vaddr {
        self.start
    }

    /// Returns the exclusive upper bound.
    pub fn end(&self) -> Vaddr {
        self.end
    }

    /// Returns the length in bytes.
    pub fn len(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// Returns `true` when the range covers no addresses.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns `true` when `va` lies inside the range.
    pub fn contains(&self, va: Vaddr) -> bool {
        self.start <= va && va < self.end
    }

    /// Returns `true` when `other` lies entirely inside this range.
    pub fn contains_range(&self, other: &VaRange) -> bool {
        other.is_empty() || (self.start <= other.start && other.end <= self.end)
    }

    /// Returns the overlap of two ranges, or an empty range.
    pub fn intersect(&self, other: &VaRange) -> VaRange {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        VaRange::new(start, end)
    }

    /// Shrinks both ends inward to page boundaries.
    ///
    /// This is the paper's alignment rule: the start VA rounds *up* and the
    /// end VA rounds *down*, so any page included is included in its
    /// entirety and the migration daemon may skip it wholesale.
    pub fn align_inward(&self) -> VaRange {
        let start = self.start.align_up();
        let end = self.end.align_down();
        VaRange::new(start, end)
    }

    /// Expands both ends outward to page boundaries.
    pub fn align_outward(&self) -> VaRange {
        VaRange::new(self.start.align_down(), self.end.align_up())
    }

    /// Returns the number of whole pages in a page-aligned range.
    ///
    /// # Panics
    ///
    /// Panics if the range is not page-aligned.
    pub fn page_count(&self) -> u64 {
        assert!(
            self.start.is_page_aligned() && self.end.is_page_aligned(),
            "page_count on unaligned range {self:?}"
        );
        self.len() / PAGE_SIZE
    }

    /// Iterates over the virtual page numbers covered by the aligned range.
    pub fn vpns(&self) -> impl Iterator<Item = u64> {
        let r = self.align_inward();
        r.start.vpn()..r.end.vpn()
    }

    /// Returns the parts of `self` not covered by `other` (zero, one or two
    /// sub-ranges).
    pub fn difference(&self, other: &VaRange) -> Vec<VaRange> {
        let mut out = Vec::new();
        let inter = self.intersect(other);
        if inter.is_empty() {
            if !self.is_empty() {
                out.push(*self);
            }
            return out;
        }
        if self.start < inter.start {
            out.push(VaRange::new(self.start, inter.start));
        }
        if inter.end < self.end {
            out.push(VaRange::new(inter.end, self.end));
        }
        out
    }
}

impl fmt::Debug for VaRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:[{:#x}..{:#x})", self.start.0, self.end.0)
    }
}

/// Subtracts every range in `cuts` from every range in `base`.
///
/// Returns the surviving sub-ranges in order. Used by the kernel module to
/// compute the expanded and shrunk spaces of skip-over areas during the
/// final transfer-bitmap update (§3.3.4).
///
/// # Examples
///
/// ```
/// use vmem::addr::{subtract_ranges, VaRange, Vaddr};
///
/// let base = vec![VaRange::new(Vaddr(0), Vaddr(100))];
/// let cuts = vec![VaRange::new(Vaddr(20), Vaddr(30)), VaRange::new(Vaddr(50), Vaddr(60))];
/// let out = subtract_ranges(&base, &cuts);
/// assert_eq!(out, vec![
///     VaRange::new(Vaddr(0), Vaddr(20)),
///     VaRange::new(Vaddr(30), Vaddr(50)),
///     VaRange::new(Vaddr(60), Vaddr(100)),
/// ]);
/// ```
pub fn subtract_ranges(base: &[VaRange], cuts: &[VaRange]) -> Vec<VaRange> {
    let mut current: Vec<VaRange> = base.iter().copied().filter(|r| !r.is_empty()).collect();
    for cut in cuts {
        current = current.iter().flat_map(|r| r.difference(cut)).collect();
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vaddr_alignment() {
        assert_eq!(Vaddr(0x3b00).align_up(), Vaddr(0x4000));
        assert_eq!(Vaddr(0x3b00).align_down(), Vaddr(0x3000));
        assert_eq!(Vaddr(0x4000).align_up(), Vaddr(0x4000));
        assert!(Vaddr(0x4000).is_page_aligned());
        assert_eq!(Vaddr(0x4001).page_offset(), 1);
        assert_eq!(Vaddr(0x4001).vpn(), 4);
    }

    #[test]
    fn paper_alignment_example() {
        // Figure 3 uses a skip-over area 0x3b00-0x8aff; the pages fully
        // covered are 0x4000-0x7fff.
        let area = VaRange::new(Vaddr(0x3b00), Vaddr(0x8b00));
        let aligned = area.align_inward();
        assert_eq!(aligned, VaRange::new(Vaddr(0x4000), Vaddr(0x8000)));
        assert_eq!(aligned.page_count(), 4);
    }

    #[test]
    fn inverted_range_is_empty() {
        let r = VaRange::new(Vaddr(100), Vaddr(50));
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn tiny_range_aligns_to_empty() {
        let r = VaRange::new(Vaddr(0x4100), Vaddr(0x4200)).align_inward();
        assert!(r.is_empty());
    }

    #[test]
    fn contains_and_intersect() {
        let a = VaRange::new(Vaddr(0x1000), Vaddr(0x5000));
        let b = VaRange::new(Vaddr(0x3000), Vaddr(0x9000));
        assert!(a.contains(Vaddr(0x1000)));
        assert!(!a.contains(Vaddr(0x5000)));
        assert_eq!(a.intersect(&b), VaRange::new(Vaddr(0x3000), Vaddr(0x5000)));
        assert!(a.contains_range(&VaRange::new(Vaddr(0x2000), Vaddr(0x3000))));
        assert!(!a.contains_range(&b));
    }

    #[test]
    fn difference_splits() {
        let a = VaRange::new(Vaddr(0x1000), Vaddr(0x9000));
        let hole = VaRange::new(Vaddr(0x3000), Vaddr(0x5000));
        let parts = a.difference(&hole);
        assert_eq!(
            parts,
            vec![
                VaRange::new(Vaddr(0x1000), Vaddr(0x3000)),
                VaRange::new(Vaddr(0x5000), Vaddr(0x9000)),
            ]
        );
        // Disjoint difference returns self.
        let disjoint = VaRange::new(Vaddr(0xa000), Vaddr(0xb000));
        assert_eq!(a.difference(&disjoint), vec![a]);
        // Fully covered difference is empty.
        assert!(a.difference(&a).is_empty());
    }

    #[test]
    fn subtract_ranges_handles_overlapping_cuts() {
        let base = vec![
            VaRange::new(Vaddr(0), Vaddr(50)),
            VaRange::new(Vaddr(100), Vaddr(150)),
        ];
        let cuts = vec![
            VaRange::new(Vaddr(40), Vaddr(120)),
            VaRange::new(Vaddr(10), Vaddr(20)),
        ];
        let out = subtract_ranges(&base, &cuts);
        assert_eq!(
            out,
            vec![
                VaRange::new(Vaddr(0), Vaddr(10)),
                VaRange::new(Vaddr(20), Vaddr(40)),
                VaRange::new(Vaddr(120), Vaddr(150)),
            ]
        );
        assert!(subtract_ranges(&base, &base).is_empty());
        assert_eq!(subtract_ranges(&base, &[]), base);
    }

    #[test]
    fn vpn_iteration() {
        let r = VaRange::new(Vaddr(0x4000), Vaddr(0x7000));
        let vpns: Vec<u64> = r.vpns().collect();
        assert_eq!(vpns, vec![4, 5, 6]);
    }
}
