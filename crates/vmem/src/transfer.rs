//! The transfer bitmap: the framework's channel of application intent.
//!
//! One bit per VM memory page, owned by the guest kernel module and shared
//! with the migration daemon when migration begins (§3.3.3). A *set* bit
//! means "transfer this page if it is dirty"; a *cleared* bit means "skip
//! this page even if it is dirty". The bitmap is initialised with all bits
//! set so that, absent application input, migration degenerates to vanilla
//! pre-copy.
//!
//! The §6 compression extension widens each entry to a small code selecting
//! a per-page compression method; [`TransferMap`] implements that variant.

use crate::addr::Pfn;
use crate::bitmap::Bitmap;

/// The one-bit-per-page transfer bitmap of §3.3.3.
///
/// # Examples
///
/// ```
/// use vmem::addr::Pfn;
/// use vmem::transfer::TransferBitmap;
///
/// let mut tb = TransferBitmap::new(32);
/// assert!(tb.should_transfer(Pfn(7)), "defaults to transfer");
/// tb.clear(Pfn(7));
/// assert!(!tb.should_transfer(Pfn(7)));
/// tb.set(Pfn(7));
/// assert!(tb.should_transfer(Pfn(7)));
/// ```
#[derive(Debug, Clone)]
pub struct TransferBitmap {
    bits: Bitmap,
}

impl TransferBitmap {
    /// Creates a bitmap for `npages` pages with every bit set.
    pub fn new(npages: u64) -> Self {
        Self {
            bits: Bitmap::new_all_set(npages),
        }
    }

    /// Returns whether the page should be transferred when dirty.
    pub fn should_transfer(&self, pfn: Pfn) -> bool {
        self.bits.get(pfn)
    }

    /// Borrows the underlying bitmap (set bit = transfer when dirty).
    ///
    /// This is the daemon's shared word-level view of application intent:
    /// the scan pipeline combines it with the dirty log and the iteration
    /// snapshot a `u64` word at a time instead of querying per PFN.
    #[inline]
    pub fn as_bitmap(&self) -> &Bitmap {
        &self.bits
    }

    /// Marks the page as requiring transfer; returns `true` if it was
    /// previously marked skip.
    pub fn set(&mut self, pfn: Pfn) -> bool {
        self.bits.set(pfn)
    }

    /// Marks the page as skippable; returns `true` if it was previously
    /// marked for transfer.
    pub fn clear(&mut self, pfn: Pfn) -> bool {
        self.bits.clear(pfn)
    }

    /// Resets every bit to the default transfer state.
    pub fn reset(&mut self) {
        self.bits.set_all();
    }

    /// Returns the number of pages currently marked skip.
    pub fn skip_count(&self) -> u64 {
        self.bits.len() - self.bits.count_set()
    }

    /// Returns the number of pages in the bitmap.
    pub fn len(&self) -> u64 {
        self.bits.len()
    }

    /// Returns `true` when the bitmap covers zero pages.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Returns the memory used by the bitmap in bytes.
    pub fn byte_size(&self) -> u64 {
        self.bits.byte_size()
    }
}

/// Per-page transfer decision for the widened (§6) map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum TransferCode {
    /// Skip this page even if dirty.
    Skip = 0,
    /// Transfer uncompressed.
    #[default]
    Plain = 1,
    /// Transfer with a cheap, fast compressor.
    CompressFast = 2,
    /// Transfer with a slower, stronger compressor.
    CompressStrong = 3,
}

impl TransferCode {
    /// Decodes a 2-bit value.
    fn from_bits(v: u8) -> Self {
        match v & 0b11 {
            0 => TransferCode::Skip,
            1 => TransferCode::Plain,
            2 => TransferCode::CompressFast,
            _ => TransferCode::CompressStrong,
        }
    }
}

/// A two-bit-per-page transfer map supporting per-page compression choice.
///
/// This is the paper's proposed extension: "the transfer bitmap can use
/// multiple bits per VM memory page to indicate the suitable compression
/// methods to apply before sending the page contents" (§6).
///
/// # Examples
///
/// ```
/// use vmem::addr::Pfn;
/// use vmem::transfer::{TransferCode, TransferMap};
///
/// let mut tm = TransferMap::new(16);
/// assert_eq!(tm.get(Pfn(3)), TransferCode::Plain);
/// tm.set(Pfn(3), TransferCode::CompressFast);
/// assert_eq!(tm.get(Pfn(3)), TransferCode::CompressFast);
/// ```
#[derive(Debug, Clone)]
pub struct TransferMap {
    /// Four 2-bit codes per byte.
    codes: Vec<u8>,
    npages: u64,
}

impl TransferMap {
    /// Creates a map for `npages` pages, all [`TransferCode::Plain`].
    pub fn new(npages: u64) -> Self {
        // Plain = 0b01 in every 2-bit lane.
        Self {
            codes: vec![0b01_01_01_01; npages.div_ceil(4) as usize],
            npages,
        }
    }

    fn index(&self, pfn: Pfn) -> (usize, u32) {
        assert!(
            pfn.0 < self.npages,
            "{pfn:?} out of range (len {})",
            self.npages
        );
        ((pfn.0 / 4) as usize, (pfn.0 % 4) as u32 * 2)
    }

    /// Returns the code for `pfn`.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is out of range.
    pub fn get(&self, pfn: Pfn) -> TransferCode {
        let (byte, shift) = self.index(pfn);
        TransferCode::from_bits(self.codes[byte] >> shift)
    }

    /// Sets the code for `pfn`.
    pub fn set(&mut self, pfn: Pfn, code: TransferCode) {
        let (byte, shift) = self.index(pfn);
        self.codes[byte] = (self.codes[byte] & !(0b11 << shift)) | ((code as u8) << shift);
    }

    /// Returns the number of pages.
    pub fn len(&self) -> u64 {
        self.npages
    }

    /// Returns `true` when the map covers zero pages.
    pub fn is_empty(&self) -> bool {
        self.npages == 0
    }

    /// Returns the memory used by the map in bytes.
    pub fn byte_size(&self) -> u64 {
        self.codes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_bitmap_defaults_set() {
        let tb = TransferBitmap::new(100);
        assert_eq!(tb.skip_count(), 0);
        assert!(tb.should_transfer(Pfn(99)));
    }

    #[test]
    fn clear_set_roundtrip() {
        let mut tb = TransferBitmap::new(100);
        assert!(tb.clear(Pfn(42)));
        assert!(!tb.clear(Pfn(42)));
        assert_eq!(tb.skip_count(), 1);
        assert!(tb.set(Pfn(42)));
        assert_eq!(tb.skip_count(), 0);
    }

    #[test]
    fn as_bitmap_mirrors_should_transfer() {
        let mut tb = TransferBitmap::new(70);
        tb.clear(Pfn(65));
        assert!(tb.as_bitmap().get(Pfn(0)));
        assert!(!tb.as_bitmap().get(Pfn(65)));
        assert_eq!(tb.as_bitmap().count_set(), 69);
        // Word view usable for set algebra: skip set = !transfer.
        let mut skip = tb.as_bitmap().clone();
        skip.invert();
        assert_eq!(skip.iter_set().map(|p| p.0).collect::<Vec<_>>(), vec![65]);
    }

    #[test]
    fn reset_restores_default() {
        let mut tb = TransferBitmap::new(10);
        tb.clear(Pfn(1));
        tb.clear(Pfn(2));
        tb.reset();
        assert_eq!(tb.skip_count(), 0);
    }

    #[test]
    fn bitmap_overhead_is_32kib_per_gib() {
        // 1 GiB of 4 KiB pages (paper §3.3.3).
        let tb = TransferBitmap::new(262_144);
        assert_eq!(tb.byte_size(), 32 * 1024);
    }

    #[test]
    fn transfer_map_packs_lanes_independently() {
        let mut tm = TransferMap::new(9);
        tm.set(Pfn(0), TransferCode::Skip);
        tm.set(Pfn(1), TransferCode::CompressStrong);
        tm.set(Pfn(2), TransferCode::CompressFast);
        assert_eq!(tm.get(Pfn(0)), TransferCode::Skip);
        assert_eq!(tm.get(Pfn(1)), TransferCode::CompressStrong);
        assert_eq!(tm.get(Pfn(2)), TransferCode::CompressFast);
        assert_eq!(tm.get(Pfn(3)), TransferCode::Plain, "neighbours untouched");
        assert_eq!(tm.get(Pfn(8)), TransferCode::Plain);
    }

    #[test]
    fn transfer_map_overhead_doubles_bitmap() {
        let tm = TransferMap::new(262_144);
        assert_eq!(tm.byte_size(), 64 * 1024);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn transfer_map_bounds() {
        let tm = TransferMap::new(4);
        let _ = tm.get(Pfn(4));
    }
}
