//! VM sizing and configuration.

use crate::addr::PAGE_SIZE;
use simkit::units::{GIB, MIB};

/// Static configuration of a guest VM, mirroring the paper's testbed
/// (2 GiB of memory, 4 vCPUs).
///
/// # Examples
///
/// ```
/// use vmem::layout::VmSpec;
///
/// let spec = VmSpec::paper_testbed();
/// assert_eq!(spec.mem_bytes, 2 * 1024 * 1024 * 1024);
/// assert_eq!(spec.page_count(), 524_288);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmSpec {
    /// Guest memory size in bytes.
    pub mem_bytes: u64,
    /// Number of virtual CPUs.
    pub vcpus: u32,
}

impl VmSpec {
    /// Creates a spec with the given memory size and vCPU count.
    ///
    /// # Panics
    ///
    /// Panics if memory is smaller than 64 MiB (too small to host a guest
    /// kernel plus a JVM) or `vcpus` is zero.
    pub fn new(mem_bytes: u64, vcpus: u32) -> Self {
        assert!(
            mem_bytes >= 64 * MIB,
            "VM memory must be at least 64 MiB, got {mem_bytes}"
        );
        assert!(vcpus > 0, "VM needs at least one vCPU");
        Self { mem_bytes, vcpus }
    }

    /// The paper's experimental configuration: 2 GiB, 4 vCPUs.
    pub fn paper_testbed() -> Self {
        Self::new(2 * GIB, 4)
    }

    /// Returns the number of 4 KiB pages of guest memory.
    pub fn page_count(&self) -> u64 {
        self.mem_bytes.div_ceil(PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_dimensions() {
        let spec = VmSpec::paper_testbed();
        assert_eq!(spec.vcpus, 4);
        assert_eq!(spec.page_count() * PAGE_SIZE, 2 * GIB);
    }

    #[test]
    #[should_panic(expected = "at least 64 MiB")]
    fn rejects_tiny_vm() {
        let _ = VmSpec::new(MIB, 1);
    }

    #[test]
    #[should_panic(expected = "at least one vCPU")]
    fn rejects_zero_vcpus() {
        let _ = VmSpec::new(GIB, 0);
    }
}
