//! The generational Java heap: spaces, allocation, and collection mechanics.
//!
//! Follows HotSpot's ParallelGC shape (§4.1): the Young generation is split
//! into Eden and two survivor spaces (From/To); most allocation bump-points
//! into Eden; a minor GC copies live Eden data to To, promotes data that
//! survived a previous collection from From to the Old generation, empties
//! Eden, and swaps the survivor roles. Post-GC ergonomics grow the committed
//! Young generation under allocation pressure (up to `-Xmn`) and shrink it
//! when idle — the shrink case is what triggers the TI agent's
//! "Young generation shrunk" notification in JAVMM.
//!
//! Live data is modelled in aggregate: the mutator's survival fractions
//! determine how many bytes each collection copies and promotes. What
//! migration observes — which pages are dirtied, when, and with what — is
//! identical to tracking individual objects.

use crate::config::{page_align_up, va, JvmConfig};
use crate::gc::{GcKind, GcLog, GcRecord};
use crate::mutator::MutatorProfile;
use guestos::kernel::{GuestKernel, WriteOutcome};
use guestos::process::Pid;
use simkit::{DetRng, SimDuration, SimTime};
use vmem::{PageClass, VaRange, Vaddr, PAGE_SIZE};

/// Fraction of the Old generation still live when a full GC runs.
const FULL_GC_LIVE_FRACTION: f64 = 0.6;

/// Granularity of Old-generation access tracking: one epoch slot per
/// 2 MiB region (512 pages). Coarse enough that the tracker is a few
/// hundred slots for a 1 GiB Old generation, fine enough that a hot
/// working set does not smear warmth over the whole generation.
const COLD_REGION_BYTES: u64 = 2 * 1024 * 1024;

/// A region that has gone this many GC epochs without a write is cold.
/// Two epochs ≈ two minor-GC intervals — long enough that transient
/// promotion bursts don't flap a region hot, short enough that the map
/// is populated within the warmup of every scenario in the tree.
const COLD_EPOCH_THRESHOLD: u64 = 2;

/// The heap of one JVM.
#[derive(Debug)]
pub struct JvmHeap {
    pid: Pid,
    config: JvmConfig,
    // Committed sizes in bytes (page-aligned).
    eden_committed: u64,
    survivor_committed: u64,
    old_committed: u64,
    // Usage.
    eden_used: u64,
    from_used: u64,
    old_used: u64,
    from_is_s0: bool,
    last_gc_at: Option<SimTime>,
    gc_log: GcLog,
    /// Access-tracking epoch: bumped on every minor GC (decay), so region
    /// warmth ages out in GC time, not wall time.
    epoch: u64,
    /// Last-write epoch per [`COLD_REGION_BYTES`] region of the Old
    /// generation, indexed from `va::OLD_BASE`. Pure bookkeeping: marking
    /// touches draws no randomness and issues no kernel calls, so tracking
    /// is always on and cannot perturb any existing run.
    region_epochs: Vec<u64>,
}

impl JvmHeap {
    /// Launches a JVM heap for process `pid`: maps and writes the code
    /// cache, metaspace and resident Old-generation data, and commits the
    /// initial Young generation.
    ///
    /// # Panics
    ///
    /// Panics if the guest cannot supply the initial frames.
    pub fn launch(kernel: &mut GuestKernel, pid: Pid, config: JvmConfig) -> Self {
        let (eden, survivor) = config.split_young(config.young_init);
        let mut heap = Self {
            pid,
            eden_committed: 0,
            survivor_committed: 0,
            old_committed: 0,
            eden_used: 0,
            from_used: 0,
            old_used: 0,
            from_is_s0: true,
            last_gc_at: None,
            gc_log: GcLog::new(),
            epoch: 0,
            region_epochs: Vec::new(),
            config,
        };

        // Non-heap regions: committed and written so they are real content.
        heap.commit(
            kernel,
            va::CODE_BASE,
            0,
            heap.config.codecache,
            PageClass::Code,
        );
        kernel.write_range(
            pid,
            VaRange::from_len(Vaddr(va::CODE_BASE), heap.config.codecache),
            PageClass::Code,
        );
        heap.commit(
            kernel,
            va::META_BASE,
            0,
            heap.config.metaspace,
            PageClass::JvmMeta,
        );
        kernel.write_range(
            pid,
            VaRange::from_len(Vaddr(va::META_BASE), heap.config.metaspace),
            PageClass::JvmMeta,
        );

        // Old generation: resident long-lived data written at launch.
        let resident = page_align_up(heap.config.old_resident);
        heap.commit(kernel, va::OLD_BASE, 0, resident, PageClass::HeapOld);
        heap.old_committed = resident;
        kernel.write_range(
            pid,
            VaRange::from_len(Vaddr(va::OLD_BASE), resident),
            PageClass::HeapOld,
        );
        heap.old_used = heap.config.old_resident;
        heap.touch_old(0, resident);

        // Young generation: committed but not yet written.
        heap.commit(kernel, va::EDEN_BASE, 0, eden, PageClass::HeapYoung);
        heap.commit(kernel, va::S0_BASE, 0, survivor, PageClass::HeapYoung);
        heap.commit(kernel, va::S1_BASE, 0, survivor, PageClass::HeapYoung);
        heap.eden_committed = eden;
        heap.survivor_committed = survivor;
        heap
    }

    /// Returns the owning process.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Returns the configuration.
    pub fn config(&self) -> &JvmConfig {
        &self.config
    }

    /// Bytes of Eden still available before the next GC.
    pub fn eden_headroom(&self) -> u64 {
        self.eden_committed - self.eden_used
    }

    /// Committed Young generation size (Eden + both survivors).
    pub fn young_committed(&self) -> u64 {
        self.eden_committed + 2 * self.survivor_committed
    }

    /// Bytes in use in the Young generation.
    pub fn young_used(&self) -> u64 {
        self.eden_used + self.from_used
    }

    /// Bytes in use in the Old generation.
    pub fn old_used(&self) -> u64 {
        self.old_used
    }

    /// Committed Old generation size.
    pub fn old_committed(&self) -> u64 {
        self.old_committed
    }

    /// The GC log.
    pub fn gc_log(&self) -> &GcLog {
        &self.gc_log
    }

    /// The committed Young-generation VA ranges: Eden, S0, S1.
    ///
    /// These are the skip-over areas the JAVMM agent reports.
    pub fn young_ranges(&self) -> Vec<VaRange> {
        vec![
            VaRange::from_len(Vaddr(va::EDEN_BASE), self.eden_committed),
            VaRange::from_len(Vaddr(va::S0_BASE), self.survivor_committed),
            VaRange::from_len(Vaddr(va::S1_BASE), self.survivor_committed),
        ]
    }

    /// The occupied portion of the From space (page-aligned outward): the
    /// live data that must be transferred in the last iteration.
    pub fn occupied_from_range(&self) -> VaRange {
        VaRange::from_len(
            Vaddr(self.base_of_from_space()),
            page_align_up(self.from_used),
        )
    }

    /// Allocates `bytes` in Eden, dirtying the pages covered.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds [`JvmHeap::eden_headroom`]; callers must
    /// split allocation around GCs.
    pub fn bump_eden(&mut self, kernel: &mut GuestKernel, bytes: u64) -> WriteOutcome {
        assert!(
            bytes <= self.eden_headroom(),
            "allocation of {bytes} exceeds Eden headroom {}",
            self.eden_headroom()
        );
        let range = VaRange::new(
            Vaddr(va::EDEN_BASE + self.eden_used),
            Vaddr(va::EDEN_BASE + self.eden_used + bytes),
        );
        self.eden_used += bytes;
        kernel.write_range(self.pid, range, PageClass::HeapYoung)
    }

    /// Rewrites `bytes` of the Old-generation working set (random pages in
    /// the first `ws_bytes` of the Old generation).
    pub fn write_old_ws(
        &mut self,
        kernel: &mut GuestKernel,
        rng: &mut DetRng,
        bytes: u64,
        ws_bytes: u64,
    ) -> WriteOutcome {
        let window = ws_bytes.min(self.old_used);
        let window_pages = window / PAGE_SIZE;
        if window_pages == 0 {
            return WriteOutcome::default();
        }
        let mut out = WriteOutcome::default();
        let pages = bytes.div_ceil(PAGE_SIZE);
        for _ in 0..pages {
            let page = rng.below(window_pages);
            let va = Vaddr(va::OLD_BASE + page * PAGE_SIZE);
            out.merge(kernel.write_range(self.pid, VaRange::from_len(va, 1), PageClass::HeapOld));
            self.touch_old(page * PAGE_SIZE, page * PAGE_SIZE + PAGE_SIZE);
        }
        out
    }

    /// Performs a minor collection (possibly enforced), returning the record
    /// and the pages the GC itself dirtied.
    ///
    /// On return, Eden and the (new) To space are empty and the (new) From
    /// space holds the surviving data — the post-collection state JAVMM
    /// resumes the VM in (§4.3).
    pub fn perform_minor_gc(
        &mut self,
        kernel: &mut GuestKernel,
        rng: &mut DetRng,
        profile: &MutatorProfile,
        now: SimTime,
        kind: GcKind,
    ) -> (GcRecord, WriteOutcome) {
        let eden_before = self.eden_used;
        let from_before = self.from_used;
        let young_committed = self.young_committed();

        // Decay first: every region's warmth ages by one epoch, and
        // anything this collection itself writes (promotion, compaction)
        // re-marks at the new epoch.
        self.epoch += 1;

        // Live data: Eden survivors go to To; From survivors are promoted.
        let jitter = rng.jitter(0.08);
        let eden_live = ((self.eden_used as f64) * profile.eden_survival * jitter) as u64;
        let promoted_from = ((self.from_used as f64) * profile.from_survival) as u64;
        let to_copied = eden_live.min(self.survivor_committed);
        let overflow = eden_live - to_copied;
        let promoted = promoted_from + overflow;

        let mut writes = WriteOutcome::default();
        // Copy into To.
        if to_copied > 0 {
            let range = VaRange::from_len(Vaddr(self.base_of_to_space()), to_copied);
            writes.merge(kernel.write_range(self.pid, range, PageClass::HeapYoung));
        }
        // Promote into the Old generation.
        let mut duration = self.config.gc_costs.minor_base
            + SimDuration::from_secs_f64(
                young_committed as f64 * self.config.gc_costs.scan_cost_per_byte
                    + (to_copied + promoted) as f64 * self.config.gc_costs.copy_cost_per_byte,
            );
        if promoted > 0 {
            writes.merge(self.append_old(kernel, promoted));
            if self.old_used > self.config.old_max {
                duration += self.perform_full_gc(kernel, &mut writes);
            }
        }

        let garbage = (eden_before + from_before).saturating_sub(eden_live + promoted_from);

        // Post-collection state: Eden empty, survivors swapped.
        self.eden_used = 0;
        self.from_is_s0 = !self.from_is_s0;
        self.from_used = to_copied;

        // Ergonomics: resize the committed Young generation. The enforced GC
        // skips resizing — JAVMM needs the post-collection state stable.
        let mut shrunk = Vec::new();
        if kind != GcKind::EnforcedMinor {
            shrunk = self.resize_young(kernel, now);
        }

        let record = GcRecord {
            kind,
            at: now,
            duration,
            young_committed,
            eden_used_before: eden_before,
            from_used_before: from_before,
            live_copied: to_copied,
            promoted,
            garbage_collected: garbage,
            shrunk,
        };
        self.last_gc_at = Some(now);
        self.gc_log.push(record.clone());
        (record, writes)
    }

    /// Compacts the Old generation in place; returns the added pause time.
    fn perform_full_gc(
        &mut self,
        kernel: &mut GuestKernel,
        writes: &mut WriteOutcome,
    ) -> SimDuration {
        let before = self.old_used;
        let live = (before as f64 * FULL_GC_LIVE_FRACTION) as u64;
        // Compaction rewrites the surviving prefix.
        writes.merge(kernel.write_range(
            self.pid,
            VaRange::from_len(Vaddr(va::OLD_BASE), page_align_up(live.max(PAGE_SIZE))),
            PageClass::HeapOld,
        ));
        self.touch_old(0, page_align_up(live.max(PAGE_SIZE)));
        self.old_used = live;
        self.config.gc_costs.full_base
            + SimDuration::from_secs_f64(before as f64 * self.config.gc_costs.full_cost_per_byte)
    }

    /// Appends promoted bytes to the Old generation, committing frames as
    /// needed, and dirties the pages written.
    fn append_old(&mut self, kernel: &mut GuestKernel, bytes: u64) -> WriteOutcome {
        let new_used = self.old_used + bytes;
        if new_used > self.old_committed {
            let target = page_align_up(new_used);
            let old = self.old_committed;
            self.commit(kernel, va::OLD_BASE, old, target, PageClass::HeapOld);
            self.old_committed = target;
        }
        let range = VaRange::new(
            Vaddr(va::OLD_BASE + self.old_used),
            Vaddr(va::OLD_BASE + new_used),
        );
        self.touch_old(self.old_used, new_used);
        self.old_used = new_used;
        kernel.write_range(self.pid, range, PageClass::HeapOld)
    }

    /// Grows or shrinks the committed Young generation based on allocation
    /// pressure; returns any VA ranges uncommitted (the shrink case).
    fn resize_young(&mut self, kernel: &mut GuestKernel, now: SimTime) -> Vec<VaRange> {
        let interval = match self.last_gc_at {
            Some(prev) => now.saturating_since(prev),
            None => return Vec::new(),
        };
        let committed = self.young_committed();
        if interval < self.config.grow_below_interval && committed < self.config.young_max {
            let target = (committed * 2).min(self.config.young_max);
            let (eden, survivor) = self.config.split_young(target);
            if eden > self.eden_committed {
                let old = self.eden_committed;
                self.commit(kernel, va::EDEN_BASE, old, eden, PageClass::HeapYoung);
                self.eden_committed = eden;
            }
            if survivor > self.survivor_committed {
                let old = self.survivor_committed;
                self.commit(kernel, va::S0_BASE, old, survivor, PageClass::HeapYoung);
                self.commit(kernel, va::S1_BASE, old, survivor, PageClass::HeapYoung);
                self.survivor_committed = survivor;
            }
            Vec::new()
        } else if interval > self.config.shrink_above_interval && committed > self.config.young_init
        {
            let target = (committed / 2).max(self.config.young_init);
            let (eden, survivor) = self.config.split_young(target);
            let survivor = survivor.max(page_align_up(self.from_used));
            let mut shrunk = Vec::new();
            if eden < self.eden_committed {
                let r = VaRange::new(
                    Vaddr(va::EDEN_BASE + eden),
                    Vaddr(va::EDEN_BASE + self.eden_committed),
                );
                kernel.unmap_free(self.pid, r);
                shrunk.push(r);
                self.eden_committed = eden;
            }
            if survivor < self.survivor_committed {
                for base in [va::S0_BASE, va::S1_BASE] {
                    let r = VaRange::new(
                        Vaddr(base + survivor),
                        Vaddr(base + self.survivor_committed),
                    );
                    kernel.unmap_free(self.pid, r);
                    shrunk.push(r);
                }
                self.survivor_committed = survivor;
            }
            shrunk
        } else {
            Vec::new()
        }
    }

    /// Commits `[current, target)` bytes of the region at `base`.
    fn commit(
        &self,
        kernel: &mut GuestKernel,
        base: u64,
        current: u64,
        target: u64,
        class: PageClass,
    ) {
        if target <= current {
            return;
        }
        let npages = (page_align_up(target) - page_align_up(current)) / PAGE_SIZE;
        if npages == 0 {
            return;
        }
        kernel
            .alloc_map(
                self.pid,
                Vaddr(base + page_align_up(current)),
                npages,
                class,
            )
            .expect("guest out of frames while committing JVM memory");
    }

    /// Marks the Old-generation byte offsets `[start, end)` as written in
    /// the current epoch.
    fn touch_old(&mut self, start: u64, end: u64) {
        if end <= start {
            return;
        }
        let first = (start / COLD_REGION_BYTES) as usize;
        let last = (end - 1) / COLD_REGION_BYTES;
        let last = last as usize;
        if self.region_epochs.len() <= last {
            self.region_epochs.resize(last + 1, self.epoch);
        }
        for slot in &mut self.region_epochs[first..=last] {
            *slot = self.epoch;
        }
    }

    /// The Old-generation regions that are live but cold: committed, below
    /// `old_used`, and unwritten for at least [`COLD_EPOCH_THRESHOLD`] GC
    /// epochs. Adjacent cold regions coalesce into one VA range; the tail
    /// range is clipped to the page-aligned end of the used Old generation.
    ///
    /// Reading the map is pure — no randomness, no kernel calls — so the
    /// agent can export it on any protocol cadence without perturbing the
    /// simulation.
    pub fn cold_ranges(&self) -> Vec<VaRange> {
        let used = page_align_up(self.old_used.max(1));
        let used_regions = used.div_ceil(COLD_REGION_BYTES) as usize;
        let n = used_regions.min(self.region_epochs.len());
        let mut out = Vec::new();
        let mut run_start: Option<u64> = None;
        for i in 0..=n {
            let cold =
                i < n && self.epoch.saturating_sub(self.region_epochs[i]) >= COLD_EPOCH_THRESHOLD;
            match (cold, run_start) {
                (true, None) => run_start = Some(i as u64 * COLD_REGION_BYTES),
                (false, Some(start)) => {
                    let end = (i as u64 * COLD_REGION_BYTES).min(used);
                    out.push(VaRange::new(
                        Vaddr(va::OLD_BASE + start),
                        Vaddr(va::OLD_BASE + end),
                    ));
                    run_start = None;
                }
                _ => {}
            }
        }
        out
    }

    fn base_of_from_space(&self) -> u64 {
        if self.from_is_s0 {
            va::S0_BASE
        } else {
            va::S1_BASE
        }
    }

    fn base_of_to_space(&self) -> u64 {
        if self.from_is_s0 {
            va::S1_BASE
        } else {
            va::S0_BASE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guestos::kernel::GuestOsConfig;
    use simkit::units::MIB;
    use vmem::VmSpec;

    fn setup(young_max: u64) -> (GuestKernel, JvmHeap) {
        let mut kernel = GuestKernel::boot(
            GuestOsConfig {
                spec: VmSpec::new(1024 * MIB, 2),
                kernel_bytes: 16 * MIB,
                pagecache_bytes: 16 * MIB,
                kernel_dirty_rate: 0.0,
                pagecache_dirty_rate: 0.0,
            },
            DetRng::new(3),
        );
        let pid = kernel.spawn("java");
        let heap = JvmHeap::launch(&mut kernel, pid, JvmConfig::with_young_max(young_max));
        (kernel, heap)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn launch_writes_nonheap_content() {
        let (kernel, heap) = setup(128 * MIB);
        let code_pfn = kernel.translate(heap.pid(), Vaddr(va::CODE_BASE)).unwrap();
        assert_eq!(kernel.memory().page(code_pfn).class, PageClass::Code);
        assert_eq!(kernel.memory().page(code_pfn).version, 1);
        let old_pfn = kernel.translate(heap.pid(), Vaddr(va::OLD_BASE)).unwrap();
        assert_eq!(kernel.memory().page(old_pfn).version, 1);
        // Young pages are committed but unwritten.
        let eden_pfn = kernel.translate(heap.pid(), Vaddr(va::EDEN_BASE)).unwrap();
        assert_eq!(kernel.memory().page(eden_pfn).version, 0);
        assert_eq!(kernel.memory().page(eden_pfn).class, PageClass::HeapYoung);
    }

    #[test]
    fn bump_eden_dirties_sequentially() {
        let (mut kernel, mut heap) = setup(128 * MIB);
        kernel.memory_mut().dirty_log_mut().enable();
        let out = heap.bump_eden(&mut kernel, 3 * MIB);
        assert_eq!(out.pages, 3 * MIB / PAGE_SIZE);
        assert_eq!(out.faults, out.pages);
        assert_eq!(heap.young_used(), 3 * MIB);
        // Second bump continues where the first left off.
        let pfn_before = kernel
            .translate(heap.pid(), Vaddr(va::EDEN_BASE + 3 * MIB))
            .unwrap();
        assert_eq!(kernel.memory().page(pfn_before).version, 0);
        heap.bump_eden(&mut kernel, MIB);
        assert_eq!(kernel.memory().page(pfn_before).version, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds Eden headroom")]
    fn overallocation_panics() {
        let (mut kernel, mut heap) = setup(128 * MIB);
        let headroom = heap.eden_headroom();
        heap.bump_eden(&mut kernel, headroom + 1);
    }

    #[test]
    fn minor_gc_empties_eden_and_swaps_survivors() {
        let (mut kernel, mut heap) = setup(128 * MIB);
        let mut rng = DetRng::new(9);
        let profile = MutatorProfile {
            eden_survival: 0.10,
            ..MutatorProfile::quiet()
        };
        let headroom = heap.eden_headroom();
        heap.bump_eden(&mut kernel, headroom);
        let from_before = heap.occupied_from_range();
        let (rec, writes) =
            heap.perform_minor_gc(&mut kernel, &mut rng, &profile, t(1), GcKind::Minor);
        assert_eq!(heap.eden_headroom(), heap.eden_committed);
        assert!(heap.from_used > 0, "survivors live in From");
        assert_ne!(
            heap.occupied_from_range().start(),
            from_before.start(),
            "survivor spaces swapped"
        );
        assert!(rec.garbage_collected > 0);
        let live_frac = rec.live_copied as f64 / rec.eden_used_before as f64;
        assert!(
            (0.08..0.13).contains(&live_frac),
            "live fraction {live_frac}"
        );
        assert!(writes.pages > 0, "GC copying dirties pages");
    }

    #[test]
    fn repeated_gcs_promote_and_grow_old() {
        let (mut kernel, mut heap) = setup(64 * MIB);
        let mut rng = DetRng::new(9);
        let profile = MutatorProfile {
            eden_survival: 0.10,
            from_survival: 0.5,
            ..MutatorProfile::quiet()
        };
        let old_before = heap.old_used();
        for i in 0..10 {
            let headroom = heap.eden_headroom();
            heap.bump_eden(&mut kernel, headroom);
            // GCs every 10 s: no growth pressure.
            heap.perform_minor_gc(
                &mut kernel,
                &mut rng,
                &profile,
                t(10 * (i + 1)),
                GcKind::Minor,
            );
        }
        assert!(heap.old_used() > old_before, "promotion grew the Old gen");
        assert_eq!(heap.gc_log().count(GcKind::Minor), 10);
    }

    #[test]
    fn allocation_pressure_grows_young_to_max() {
        let (mut kernel, mut heap) = setup(256 * MIB);
        let mut rng = DetRng::new(9);
        let profile = MutatorProfile::quiet();
        let mut now = SimTime::ZERO;
        for _ in 0..12 {
            now += SimDuration::from_millis(500); // GCs 0.5 s apart: pressure.
            let headroom = heap.eden_headroom();
            heap.bump_eden(&mut kernel, headroom);
            heap.perform_minor_gc(&mut kernel, &mut rng, &profile, now, GcKind::Minor);
        }
        assert_eq!(heap.young_committed(), 256 * MIB, "grown to -Xmn");
    }

    #[test]
    fn idle_heap_shrinks_and_reports_ranges() {
        let (mut kernel, mut heap) = setup(256 * MIB);
        let mut rng = DetRng::new(9);
        let profile = MutatorProfile::quiet();
        // Grow first.
        let mut now = SimTime::ZERO;
        for _ in 0..12 {
            now += SimDuration::from_millis(500);
            let headroom = heap.eden_headroom();
            heap.bump_eden(&mut kernel, headroom);
            heap.perform_minor_gc(&mut kernel, &mut rng, &profile, now, GcKind::Minor);
        }
        // Then idle: a GC 60 s later shrinks.
        now += SimDuration::from_secs(60);
        heap.bump_eden(&mut kernel, MIB);
        let (rec, _) = heap.perform_minor_gc(&mut kernel, &mut rng, &profile, now, GcKind::Minor);
        assert!(!rec.shrunk.is_empty(), "shrink must report ranges");
        assert!(heap.young_committed() < 256 * MIB);
        // The uncommitted pages are gone from the page table.
        for r in &rec.shrunk {
            assert_eq!(kernel.translate(heap.pid(), r.start()), None);
        }
    }

    #[test]
    fn enforced_gc_does_not_resize() {
        let (mut kernel, mut heap) = setup(256 * MIB);
        let mut rng = DetRng::new(9);
        let profile = MutatorProfile::quiet();
        let committed = heap.young_committed();
        heap.bump_eden(&mut kernel, MIB);
        let (rec, _) =
            heap.perform_minor_gc(&mut kernel, &mut rng, &profile, t(1), GcKind::EnforcedMinor);
        assert_eq!(heap.young_committed(), committed);
        assert!(rec.shrunk.is_empty());
        assert_eq!(rec.kind, GcKind::EnforcedMinor);
    }

    #[test]
    fn survivor_overflow_promotes() {
        let (mut kernel, mut heap) = setup(128 * MIB);
        let mut rng = DetRng::new(9);
        // 60% survival cannot fit in a 1/10th survivor space.
        let profile = MutatorProfile {
            eden_survival: 0.6,
            ..MutatorProfile::quiet()
        };
        let old_before = heap.old_used();
        let headroom = heap.eden_headroom();
        heap.bump_eden(&mut kernel, headroom);
        let (rec, _) = heap.perform_minor_gc(&mut kernel, &mut rng, &profile, t(1), GcKind::Minor);
        assert!(rec.promoted > 0, "overflow must promote");
        assert_eq!(heap.from_used, heap.survivor_committed);
        assert!(heap.old_used() > old_before);
    }

    #[test]
    fn old_exhaustion_triggers_full_gc() {
        let (mut kernel, mut heap) = setup(128 * MIB);
        heap.config.old_max = heap.old_used() + 8 * MIB;
        let mut rng = DetRng::new(9);
        let profile = MutatorProfile {
            eden_survival: 0.2,
            from_survival: 1.0,
            ..MutatorProfile::quiet()
        };
        let mut full_seen = false;
        let mut peak = heap.old_used();
        let mut dropped = false;
        for i in 0..20 {
            let headroom = heap.eden_headroom();
            heap.bump_eden(&mut kernel, headroom);
            let before = heap.old_used();
            let (rec, _) = heap.perform_minor_gc(
                &mut kernel,
                &mut rng,
                &profile,
                t(10 * (i + 1)),
                GcKind::Minor,
            );
            if rec.duration > heap.config.gc_costs.full_base {
                full_seen = true;
            }
            if heap.old_used() < before {
                dropped = true;
            }
            peak = peak.max(heap.old_used());
        }
        let _ = peak;
        assert!(full_seen, "a full GC should have been charged");
        assert!(dropped, "a full GC must reclaim Old-generation space");
    }

    #[test]
    fn cold_ranges_empty_until_epochs_decay() {
        let (mut kernel, mut heap) = setup(128 * MIB);
        let mut rng = DetRng::new(9);
        let profile = MutatorProfile::quiet();
        // Everything was just written at launch: nothing is cold yet.
        assert!(heap.cold_ranges().is_empty());
        // Age the heap two epochs with a tiny hot working set.
        for i in 0..2 {
            heap.bump_eden(&mut kernel, MIB);
            heap.write_old_ws(&mut kernel, &mut rng, 64 * 1024, 2 * 1024 * 1024);
            heap.perform_minor_gc(
                &mut kernel,
                &mut rng,
                &profile,
                t(10 * (i + 1)),
                GcKind::Minor,
            );
        }
        heap.write_old_ws(&mut kernel, &mut rng, 64 * 1024, 2 * 1024 * 1024);
        let cold = heap.cold_ranges();
        assert!(!cold.is_empty(), "the untouched Old tail must go cold");
        // The hot working-set window (first region) stays warm.
        assert!(
            cold.iter()
                .all(|r| r.start().0 >= va::OLD_BASE + 2 * 1024 * 1024),
            "hot window must not be reported cold: {cold:?}"
        );
        // Cold ranges lie inside the used Old generation.
        let used_end = va::OLD_BASE + page_align_up(heap.old_used());
        assert!(cold.iter().all(|r| r.end().0 <= used_end));
    }

    #[test]
    fn full_gc_rewarms_the_compacted_prefix() {
        let (mut kernel, mut heap) = setup(128 * MIB);
        let mut rng = DetRng::new(9);
        let profile = MutatorProfile::quiet();
        for i in 0..3 {
            heap.bump_eden(&mut kernel, MIB);
            heap.perform_minor_gc(
                &mut kernel,
                &mut rng,
                &profile,
                t(10 * (i + 1)),
                GcKind::Minor,
            );
        }
        assert!(!heap.cold_ranges().is_empty(), "aged heap has cold regions");
        let mut writes = WriteOutcome::default();
        heap.perform_full_gc(&mut kernel, &mut writes);
        // Compaction rewrote the surviving prefix in the current epoch.
        assert!(
            heap.cold_ranges().is_empty(),
            "compaction re-warms the prefix"
        );
    }

    #[test]
    fn gc_duration_scales_with_young_size() {
        let (mut kernel, mut heap) = setup(512 * MIB);
        let mut rng = DetRng::new(9);
        let profile = MutatorProfile::quiet();
        heap.bump_eden(&mut kernel, MIB);
        let (small, _) =
            heap.perform_minor_gc(&mut kernel, &mut rng, &profile, t(100), GcKind::Minor);
        // Grow to max.
        let mut now = t(100);
        for _ in 0..12 {
            now += SimDuration::from_millis(500);
            let headroom = heap.eden_headroom();
            heap.bump_eden(&mut kernel, headroom);
            heap.perform_minor_gc(&mut kernel, &mut rng, &profile, now, GcKind::Minor);
        }
        heap.bump_eden(&mut kernel, MIB);
        let (big, _) = heap.perform_minor_gc(
            &mut kernel,
            &mut rng,
            &profile,
            now + SimDuration::from_secs(1),
            GcKind::Minor,
        );
        assert!(
            big.duration > small.duration * 3,
            "scan cost must dominate: {} vs {}",
            big.duration,
            small.duration
        );
    }
}
