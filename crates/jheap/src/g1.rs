//! A garbage-first-like region-based collector (§6 future extension).
//!
//! G1 divides the heap into fixed-size regions; the Young generation is a
//! dynamic *set* of regions scattered across the heap arena, so its VA
//! ranges are non-contiguous. The paper singles this collector out as the
//! interesting porting target for JAVMM — the framework's skip-over areas
//! are already sets of VA ranges, so the TI agent simply reports one range
//! per region.
//!
//! The model keeps G1's properties that matter to migration:
//!
//! * allocation fills *Eden regions* picked non-contiguously from the arena;
//! * a minor (young) collection evacuates live data into freshly chosen
//!   *survivor regions* (dirtying them), promotes data surviving a second
//!   collection to the Old generation, and returns the collected regions to
//!   the free set — still committed, still full of garbage, still correctly
//!   skip-marked;
//! * ergonomics grow the young region budget under allocation pressure and
//!   shrink it (uncommitting regions → `AreaShrunk` notifications) when
//!   idle.

use crate::config::{page_align_up, va, JvmConfig};
use crate::gc::{GcKind, GcLog, GcRecord};
use crate::model::HeapModel;
use crate::mutator::MutatorProfile;
use guestos::kernel::{GuestKernel, WriteOutcome};
use guestos::process::Pid;
use simkit::{DetRng, SimDuration, SimTime};
use vmem::{PageClass, VaRange, Vaddr, PAGE_SIZE};

/// VA base of the G1 region arena.
pub const G1_BASE: u64 = 0x7f70_0000_0000;

/// Fraction of the Old generation still live when a full GC runs.
const FULL_GC_LIVE_FRACTION: f64 = 0.6;

/// Stride used to scatter region selection across the arena.
const REGION_STRIDE: usize = 97;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionState {
    /// Never committed.
    Untracked,
    /// Committed, unassigned (contents are stale garbage).
    Free,
    /// Part of Eden.
    Eden,
    /// Holds evacuated survivors.
    Survivor,
}

#[derive(Debug, Clone, Copy)]
struct Region {
    state: RegionState,
    used: u64,
}

/// The region-based heap.
#[derive(Debug)]
pub struct G1Heap {
    pid: Pid,
    config: JvmConfig,
    region_bytes: u64,
    regions: Vec<Region>,
    /// Region indices currently serving Eden, in fill order.
    eden: Vec<usize>,
    /// Region indices holding survivors.
    survivors: Vec<usize>,
    /// Young budget in regions (ergonomics-driven).
    target_regions: usize,
    /// Rotating hint for scattered region selection.
    pick_hint: usize,
    old_committed: u64,
    old_used: u64,
    last_gc_at: Option<SimTime>,
    gc_log: GcLog,
}

impl G1Heap {
    /// Launches a G1 heap: non-heap regions and resident Old data as in
    /// [`crate::heap::JvmHeap`], plus the region arena.
    ///
    /// # Panics
    ///
    /// Panics if `region_bytes` is not a positive multiple of the page size
    /// or the guest cannot supply the initial frames.
    pub fn launch(
        kernel: &mut GuestKernel,
        pid: Pid,
        config: JvmConfig,
        region_bytes: u64,
    ) -> Self {
        assert!(
            region_bytes >= PAGE_SIZE && region_bytes.is_multiple_of(PAGE_SIZE),
            "region size must be a positive multiple of the page size"
        );
        // Arena: enough regions for the maximum young budget plus survivor
        // headroom and fragmentation slack.
        let max_regions = (config.young_max / region_bytes).max(2) as usize;
        let arena = max_regions + max_regions / 4 + 2;

        // Non-heap content (same layout as the ParallelGC heap).
        commit(
            kernel,
            pid,
            va::CODE_BASE,
            config.codecache,
            PageClass::Code,
        );
        kernel.write_range(
            pid,
            VaRange::from_len(Vaddr(va::CODE_BASE), config.codecache),
            PageClass::Code,
        );
        commit(
            kernel,
            pid,
            va::META_BASE,
            config.metaspace,
            PageClass::JvmMeta,
        );
        kernel.write_range(
            pid,
            VaRange::from_len(Vaddr(va::META_BASE), config.metaspace),
            PageClass::JvmMeta,
        );
        let resident = page_align_up(config.old_resident);
        commit(kernel, pid, va::OLD_BASE, resident, PageClass::HeapOld);
        kernel.write_range(
            pid,
            VaRange::from_len(Vaddr(va::OLD_BASE), resident),
            PageClass::HeapOld,
        );

        let init_regions = ((config.young_init / region_bytes).max(1) as usize).min(max_regions);
        let mut heap = Self {
            pid,
            region_bytes,
            regions: vec![
                Region {
                    state: RegionState::Untracked,
                    used: 0,
                };
                arena
            ],
            eden: Vec::new(),
            survivors: Vec::new(),
            target_regions: init_regions,
            pick_hint: 0,
            old_committed: resident,
            old_used: config.old_resident,
            last_gc_at: None,
            gc_log: GcLog::new(),
            config,
        };
        let _ = heap.claim_region(kernel).expect("initial region");
        heap
    }

    /// The configured region size.
    pub fn region_bytes(&self) -> u64 {
        self.region_bytes
    }

    /// Number of regions currently assigned to the Young generation
    /// (Eden + survivors).
    pub fn young_region_count(&self) -> usize {
        self.eden.len() + self.survivors.len()
    }

    fn region_base(&self, idx: usize) -> u64 {
        G1_BASE + idx as u64 * self.region_bytes
    }

    fn region_range(&self, idx: usize) -> VaRange {
        VaRange::from_len(Vaddr(self.region_base(idx)), self.region_bytes)
    }

    /// Claims a region for Eden, committing it if never used; returns its
    /// index, or `None` when the young budget is exhausted.
    fn claim_region(&mut self, kernel: &mut GuestKernel) -> Option<usize> {
        if self.young_region_count() >= self.target_regions {
            return None;
        }
        let idx = self.pick_free(kernel)?;
        self.regions[idx] = Region {
            state: RegionState::Eden,
            used: 0,
        };
        self.eden.push(idx);
        Some(idx)
    }

    /// Finds (and commits, if needed) a free region. The search hint jumps
    /// by a large stride after every pick, so successive claims land in
    /// scattered, non-contiguous parts of the arena — like a fragmented G1
    /// heap.
    fn pick_free(&mut self, kernel: &mut GuestKernel) -> Option<usize> {
        let n = self.regions.len();
        for step in 0..n {
            let idx = (self.pick_hint + step) % n;
            match self.regions[idx].state {
                RegionState::Free => {
                    self.pick_hint = (idx + REGION_STRIDE) % n;
                    return Some(idx);
                }
                RegionState::Untracked => {
                    kernel.alloc_map(
                        self.pid,
                        Vaddr(self.region_base(idx)),
                        self.region_bytes / PAGE_SIZE,
                        PageClass::HeapYoung,
                    )?;
                    self.regions[idx].state = RegionState::Free;
                    self.pick_hint = (idx + REGION_STRIDE) % n;
                    return Some(idx);
                }
                _ => {}
            }
        }
        None
    }

    /// Appends promoted bytes to the Old generation.
    fn append_old(&mut self, kernel: &mut GuestKernel, bytes: u64) -> WriteOutcome {
        let new_used = self.old_used + bytes;
        if new_used > self.old_committed {
            let target = page_align_up(new_used);
            let delta_pages = (target - self.old_committed) / PAGE_SIZE;
            kernel
                .alloc_map(
                    self.pid,
                    Vaddr(va::OLD_BASE + self.old_committed),
                    delta_pages,
                    PageClass::HeapOld,
                )
                .expect("guest out of frames while growing the Old generation");
            self.old_committed = target;
        }
        let range = VaRange::new(
            Vaddr(va::OLD_BASE + self.old_used),
            Vaddr(va::OLD_BASE + new_used),
        );
        self.old_used = new_used;
        kernel.write_range(self.pid, range, PageClass::HeapOld)
    }

    fn perform_full_gc(
        &mut self,
        kernel: &mut GuestKernel,
        writes: &mut WriteOutcome,
    ) -> SimDuration {
        let before = self.old_used;
        let live = (before as f64 * FULL_GC_LIVE_FRACTION) as u64;
        writes.merge(kernel.write_range(
            self.pid,
            VaRange::from_len(Vaddr(va::OLD_BASE), page_align_up(live.max(PAGE_SIZE))),
            PageClass::HeapOld,
        ));
        self.old_used = live;
        self.config.gc_costs.full_base
            + SimDuration::from_secs_f64(before as f64 * self.config.gc_costs.full_cost_per_byte)
    }

    /// Post-GC ergonomics on the region budget; returns uncommitted ranges.
    fn resize_budget(&mut self, kernel: &mut GuestKernel, now: SimTime) -> Vec<VaRange> {
        let Some(prev) = self.last_gc_at else {
            return Vec::new();
        };
        let interval = now.saturating_since(prev);
        let max_regions = (self.config.young_max / self.region_bytes).max(2) as usize;
        let min_regions =
            ((self.config.young_init / self.region_bytes).max(1) as usize).min(max_regions);
        if interval < self.config.grow_below_interval && self.target_regions < max_regions {
            self.target_regions = (self.target_regions * 2).min(max_regions);
            Vec::new()
        } else if interval > self.config.shrink_above_interval && self.target_regions > min_regions
        {
            self.target_regions = (self.target_regions / 2).max(min_regions);
            // Uncommit free regions beyond the new budget.
            let mut shrunk = Vec::new();
            let committed_free: Vec<usize> = self
                .regions
                .iter()
                .enumerate()
                .filter(|(_, r)| r.state == RegionState::Free)
                .map(|(i, _)| i)
                .collect();
            let excess = committed_free.len().saturating_sub(
                self.target_regions
                    .saturating_sub(self.young_region_count()),
            );
            for &idx in committed_free.iter().take(excess) {
                let range = self.region_range(idx);
                kernel.unmap_free(self.pid, range);
                self.regions[idx].state = RegionState::Untracked;
                shrunk.push(range);
            }
            shrunk
        } else {
            Vec::new()
        }
    }
}

fn commit(kernel: &mut GuestKernel, pid: Pid, base: u64, bytes: u64, class: PageClass) {
    let pages = page_align_up(bytes) / PAGE_SIZE;
    kernel
        .alloc_map(pid, Vaddr(base), pages, class)
        .expect("guest out of frames while committing JVM memory");
}

impl HeapModel for G1Heap {
    fn pid(&self) -> Pid {
        self.pid
    }

    fn eden_headroom(&self) -> u64 {
        // Current region remainder plus every region still claimable.
        let in_current = self
            .eden
            .last()
            .map(|&i| self.region_bytes - self.regions[i].used)
            .unwrap_or(0);
        let claimable = self
            .target_regions
            .saturating_sub(self.young_region_count()) as u64;
        in_current + claimable * self.region_bytes
    }

    fn bump_eden(&mut self, kernel: &mut GuestKernel, bytes: u64) -> WriteOutcome {
        assert!(
            bytes <= self.eden_headroom(),
            "allocation of {bytes} exceeds Eden headroom {}",
            self.eden_headroom()
        );
        let mut remaining = bytes;
        let mut out = WriteOutcome::default();
        while remaining > 0 {
            let idx = match self.eden.last().copied() {
                Some(i) if self.regions[i].used < self.region_bytes => i,
                _ => self
                    .claim_region(kernel)
                    .expect("headroom checked: a region must be claimable"),
            };
            let room = self.region_bytes - self.regions[idx].used;
            let chunk = remaining.min(room);
            let start = self.region_base(idx) + self.regions[idx].used;
            out.merge(kernel.write_range(
                self.pid,
                VaRange::new(Vaddr(start), Vaddr(start + chunk)),
                PageClass::HeapYoung,
            ));
            self.regions[idx].used += chunk;
            remaining -= chunk;
        }
        out
    }

    fn write_old_ws(
        &mut self,
        kernel: &mut GuestKernel,
        rng: &mut DetRng,
        bytes: u64,
        ws_bytes: u64,
    ) -> WriteOutcome {
        let window_pages = ws_bytes.min(self.old_used) / PAGE_SIZE;
        if window_pages == 0 {
            return WriteOutcome::default();
        }
        let mut out = WriteOutcome::default();
        for _ in 0..bytes.div_ceil(PAGE_SIZE) {
            let page = rng.below(window_pages);
            out.merge(kernel.write_range(
                self.pid,
                VaRange::from_len(Vaddr(va::OLD_BASE + page * PAGE_SIZE), 1),
                PageClass::HeapOld,
            ));
        }
        out
    }

    fn perform_minor_gc(
        &mut self,
        kernel: &mut GuestKernel,
        rng: &mut DetRng,
        profile: &MutatorProfile,
        now: SimTime,
        kind: GcKind,
    ) -> (GcRecord, WriteOutcome) {
        let eden_before: u64 = self.eden.iter().map(|&i| self.regions[i].used).sum();
        let surv_before: u64 = self.survivors.iter().map(|&i| self.regions[i].used).sum();
        let young_committed = self.young_committed();

        let jitter = rng.jitter(0.08);
        let eden_live = ((eden_before as f64) * profile.eden_survival * jitter) as u64;
        let promoted = ((surv_before as f64) * profile.from_survival) as u64;

        let mut writes = WriteOutcome::default();
        // Free the collected regions first so evacuation can reuse them.
        for idx in self.eden.drain(..).chain(self.survivors.drain(..)) {
            self.regions[idx] = Region {
                state: RegionState::Free,
                used: 0,
            };
        }

        // Evacuate the live Eden data into fresh survivor regions.
        let mut remaining = eden_live;
        while remaining > 0 {
            let Some(idx) = self.pick_free(kernel) else {
                // Evacuation failure: promote the rest directly.
                writes.merge(self.append_old(kernel, remaining));
                remaining = 0;
                break;
            };
            let chunk = remaining.min(self.region_bytes);
            self.regions[idx] = Region {
                state: RegionState::Survivor,
                used: chunk,
            };
            self.survivors.push(idx);
            let start = self.region_base(idx);
            writes.merge(kernel.write_range(
                self.pid,
                VaRange::new(Vaddr(start), Vaddr(start + chunk)),
                PageClass::HeapYoung,
            ));
            remaining -= chunk;
        }
        let _ = remaining;

        let mut duration = self.config.gc_costs.minor_base
            + SimDuration::from_secs_f64(
                young_committed as f64 * self.config.gc_costs.scan_cost_per_byte
                    + (eden_live + promoted) as f64 * self.config.gc_costs.copy_cost_per_byte,
            );
        if promoted > 0 {
            writes.merge(self.append_old(kernel, promoted));
            if self.old_used > self.config.old_max {
                duration += self.perform_full_gc(kernel, &mut writes);
            }
        }

        let garbage = (eden_before + surv_before).saturating_sub(eden_live + promoted);
        let mut shrunk = Vec::new();
        if kind != GcKind::EnforcedMinor {
            shrunk = self.resize_budget(kernel, now);
        }
        // Keep one Eden region ready for the next allocation.
        let _ = self.claim_region(kernel);

        let record = GcRecord {
            kind,
            at: now,
            duration,
            young_committed,
            eden_used_before: eden_before,
            from_used_before: surv_before,
            live_copied: eden_live.min(self.survivors.len() as u64 * self.region_bytes),
            promoted,
            garbage_collected: garbage,
            shrunk,
        };
        self.last_gc_at = Some(now);
        self.gc_log.push(record.clone());
        (record, writes)
    }

    fn young_ranges(&self) -> Vec<VaRange> {
        // Every committed arena region is young-generation memory: Eden,
        // survivors, and recycled (free) regions full of stale garbage.
        self.regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.state != RegionState::Untracked)
            .map(|(i, _)| self.region_range(i))
            .collect()
    }

    fn must_send_ranges(&self) -> Vec<VaRange> {
        self.survivors
            .iter()
            .map(|&i| {
                VaRange::from_len(
                    Vaddr(self.region_base(i)),
                    page_align_up(self.regions[i].used.max(1)),
                )
            })
            .collect()
    }

    fn gc_log(&self) -> &GcLog {
        &self.gc_log
    }

    fn young_committed(&self) -> u64 {
        self.regions
            .iter()
            .filter(|r| r.state != RegionState::Untracked)
            .count() as u64
            * self.region_bytes
    }

    fn young_used(&self) -> u64 {
        self.eden
            .iter()
            .chain(self.survivors.iter())
            .map(|&i| self.regions[i].used)
            .sum()
    }

    fn old_used(&self) -> u64 {
        self.old_used
    }

    fn old_committed(&self) -> u64 {
        self.old_committed
    }

    fn codecache_bytes(&self) -> u64 {
        self.config.codecache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guestos::kernel::GuestOsConfig;
    use simkit::units::MIB;
    use vmem::VmSpec;

    fn setup() -> (GuestKernel, G1Heap) {
        let mut kernel = GuestKernel::boot(
            GuestOsConfig {
                spec: VmSpec::new(1024 * MIB, 2),
                kernel_bytes: 16 * MIB,
                pagecache_bytes: 16 * MIB,
                kernel_dirty_rate: 0.0,
                pagecache_dirty_rate: 0.0,
            },
            DetRng::new(3),
        );
        let pid = kernel.spawn("java-g1");
        let config = JvmConfig::with_young_max(256 * MIB);
        let heap = G1Heap::launch(&mut kernel, pid, config, 4 * MIB);
        (kernel, heap)
    }

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn young_ranges_are_non_contiguous_regions() {
        let (mut kernel, mut heap) = setup();
        // Fill several regions.
        heap.bump_eden(&mut kernel, 10 * MIB);
        let ranges = heap.young_ranges();
        assert!(
            ranges.len() >= 3,
            "expected several regions, got {}",
            ranges.len()
        );
        // Non-contiguity: at least one gap between consecutive ranges.
        let mut sorted: Vec<_> = ranges.iter().map(|r| r.start().0).collect();
        sorted.sort_unstable();
        let gaps = sorted
            .windows(2)
            .filter(|w| w[1] - w[0] > heap.region_bytes())
            .count();
        assert!(gaps > 0, "regions should be scattered across the arena");
    }

    #[test]
    fn gc_evacuates_into_survivor_regions() {
        let (mut kernel, mut heap) = setup();
        let mut rng = DetRng::new(5);
        let profile = MutatorProfile {
            eden_survival: 0.10,
            ..MutatorProfile::quiet()
        };
        let headroom = heap.eden_headroom();
        heap.bump_eden(&mut kernel, headroom);
        let used_before = heap.young_used();
        let (rec, writes) =
            heap.perform_minor_gc(&mut kernel, &mut rng, &profile, t(1), GcKind::Minor);
        assert_eq!(
            rec.garbage_collected + rec.live_copied + rec.promoted,
            used_before
        );
        assert!(!heap.must_send_ranges().is_empty(), "survivors exist");
        assert!(writes.pages > 0, "evacuation dirties survivor regions");
        // Eden is empty again (one fresh region claimed).
        assert!(heap.eden_headroom() > 0);
    }

    #[test]
    fn budget_grows_under_pressure() {
        let (mut kernel, mut heap) = setup();
        let mut rng = DetRng::new(5);
        let profile = MutatorProfile::quiet();
        let before = heap.target_regions;
        let mut now = SimTime::ZERO;
        for _ in 0..8 {
            now += SimDuration::from_millis(500);
            let headroom = heap.eden_headroom();
            heap.bump_eden(&mut kernel, headroom);
            heap.perform_minor_gc(&mut kernel, &mut rng, &profile, now, GcKind::Minor);
        }
        assert!(heap.target_regions > before);
        assert_eq!(
            heap.target_regions as u64 * heap.region_bytes(),
            heap.target_regions as u64 * 4 * MIB
        );
    }

    #[test]
    fn idle_budget_shrinks_and_uncommits() {
        let (mut kernel, mut heap) = setup();
        let mut rng = DetRng::new(5);
        let profile = MutatorProfile::quiet();
        let mut now = SimTime::ZERO;
        // Grow first.
        for _ in 0..8 {
            now += SimDuration::from_millis(500);
            let headroom = heap.eden_headroom();
            heap.bump_eden(&mut kernel, headroom);
            heap.perform_minor_gc(&mut kernel, &mut rng, &profile, now, GcKind::Minor);
        }
        let grown = heap.young_committed();
        // Then idle.
        now += SimDuration::from_secs(60);
        heap.bump_eden(&mut kernel, MIB);
        let (rec, _) = heap.perform_minor_gc(&mut kernel, &mut rng, &profile, now, GcKind::Minor);
        assert!(
            !rec.shrunk.is_empty(),
            "shrink must report uncommitted regions"
        );
        assert!(heap.young_committed() < grown);
        for r in &rec.shrunk {
            assert_eq!(kernel.translate(heap.pid(), r.start()), None);
        }
    }

    #[test]
    fn survivor_regions_rotate() {
        let (mut kernel, mut heap) = setup();
        let mut rng = DetRng::new(5);
        let profile = MutatorProfile {
            eden_survival: 0.2,
            from_survival: 0.3,
            ..MutatorProfile::quiet()
        };
        let mut prev: Vec<VaRange> = Vec::new();
        for i in 0..4 {
            let headroom = heap.eden_headroom();
            heap.bump_eden(&mut kernel, headroom);
            heap.perform_minor_gc(
                &mut kernel,
                &mut rng,
                &profile,
                t(10 * (i + 1)),
                GcKind::Minor,
            );
            let cur = heap.must_send_ranges();
            assert!(!cur.is_empty());
            if !prev.is_empty() {
                assert_ne!(prev, cur, "survivor regions should move");
            }
            prev = cur;
        }
    }
}
