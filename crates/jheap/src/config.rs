//! JVM configuration: heap geometry, GC cost model, virtual address layout.

use simkit::units::MIB;
use simkit::SimDuration;

/// Virtual address bases of the JVM's memory regions.
///
/// Chosen to mimic a 64-bit HotSpot layout: large, well-separated reserved
/// regions. Each region below is reserved at launch; pages are committed
/// (backed by frames) on demand.
pub mod va {
    /// JIT code cache.
    pub const CODE_BASE: u64 = 0x7f10_0000_0000;
    /// Metaspace (class metadata, interned strings).
    pub const META_BASE: u64 = 0x7f20_0000_0000;
    /// Old generation.
    pub const OLD_BASE: u64 = 0x7f30_0000_0000;
    /// Eden space.
    pub const EDEN_BASE: u64 = 0x7f40_0000_0000;
    /// Survivor space 0.
    pub const S0_BASE: u64 = 0x7f50_0000_0000;
    /// Survivor space 1.
    pub const S1_BASE: u64 = 0x7f60_0000_0000;
}

/// Cost model of garbage collection pauses.
///
/// Minor-GC duration is dominated by scanning the committed Young
/// generation and copying live data; the constants are calibrated so the
/// paper's measured pauses come out (derby's 1 GiB Young ≈ 0.9 s, Figure 5c).
#[derive(Debug, Clone, Copy)]
pub struct GcCostModel {
    /// Fixed pause overhead (safepoint bookkeeping, root scan).
    pub minor_base: SimDuration,
    /// Seconds per byte of committed Young generation scanned.
    pub scan_cost_per_byte: f64,
    /// Seconds per byte of live data copied.
    pub copy_cost_per_byte: f64,
    /// Fixed overhead of a full GC.
    pub full_base: SimDuration,
    /// Seconds per byte of Old generation processed in a full GC.
    pub full_cost_per_byte: f64,
}

impl Default for GcCostModel {
    fn default() -> Self {
        Self {
            minor_base: SimDuration::from_millis(25),
            scan_cost_per_byte: 0.78e-9,
            copy_cost_per_byte: 3.0e-9,
            full_base: SimDuration::from_millis(150),
            full_cost_per_byte: 8.0e-9,
        }
    }
}

/// Static JVM configuration.
#[derive(Debug, Clone)]
pub struct JvmConfig {
    /// Maximum Young generation size (`-Xmn` / `MaxNewSize`).
    pub young_max: u64,
    /// Initial committed Young generation size.
    pub young_init: u64,
    /// Maximum Old generation size.
    pub old_max: u64,
    /// Long-lived data resident in the Old generation at launch.
    pub old_resident: u64,
    /// JIT code cache size (committed and written at launch).
    pub codecache: u64,
    /// Metaspace size (committed and written at launch).
    pub metaspace: u64,
    /// Eden gets `survivor_ratio` shares for every 1 share per survivor
    /// space (HotSpot default 8 → Eden is 8/10 of Young).
    pub survivor_ratio: u64,
    /// Grow the Young generation after a GC when the inter-GC interval is
    /// below this target (allocation pressure), until `young_max`.
    pub grow_below_interval: SimDuration,
    /// Shrink the Young generation after a GC when the interval exceeds
    /// this (idle heap), down to `young_init`.
    pub shrink_above_interval: SimDuration,
    /// GC pause cost model.
    pub gc_costs: GcCostModel,
}

impl JvmConfig {
    /// A paper-like configuration: Young up to `young_max`, Old generation
    /// taking the rest of a 2 GiB VM's budget.
    pub fn with_young_max(young_max: u64) -> Self {
        Self {
            young_max,
            young_init: (64 * MIB).min(young_max),
            old_max: 1024 * MIB,
            old_resident: 32 * MIB,
            codecache: 48 * MIB,
            metaspace: 64 * MIB,
            survivor_ratio: 8,
            grow_below_interval: SimDuration::from_secs(4),
            shrink_above_interval: SimDuration::from_secs(30),
            gc_costs: GcCostModel::default(),
        }
    }

    /// Splits a committed Young size into `(eden, survivor)` byte sizes,
    /// page-aligned, with two survivor spaces of the returned size.
    pub fn split_young(&self, committed: u64) -> (u64, u64) {
        let shares = self.survivor_ratio + 2;
        let survivor = page_align_down(committed / shares);
        let eden = page_align_down(committed - 2 * survivor);
        (eden, survivor)
    }
}

/// Rounds `bytes` down to a whole number of pages (at least one page).
pub fn page_align_down(bytes: u64) -> u64 {
    let aligned = bytes & !(vmem::PAGE_SIZE - 1);
    aligned.max(vmem::PAGE_SIZE)
}

/// Rounds `bytes` up to a whole number of pages.
pub fn page_align_up(bytes: u64) -> u64 {
    bytes.div_ceil(vmem::PAGE_SIZE) * vmem::PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_young_shares() {
        let config = JvmConfig::with_young_max(1024 * MIB);
        let (eden, surv) = config.split_young(1000 * MIB);
        // 8:1:1 split, page aligned.
        assert!((799 * MIB..=801 * MIB).contains(&eden), "eden {eden}");
        assert!((99 * MIB..=101 * MIB).contains(&surv), "survivor {surv}");
        assert!(eden + 2 * surv <= 1000 * MIB);
        assert_eq!(eden % vmem::PAGE_SIZE, 0);
        assert_eq!(surv % vmem::PAGE_SIZE, 0);
    }

    #[test]
    fn young_init_capped_by_max() {
        let config = JvmConfig::with_young_max(16 * MIB);
        assert_eq!(config.young_init, 16 * MIB);
    }

    #[test]
    fn alignment_helpers() {
        assert_eq!(page_align_down(5000), 4096);
        assert_eq!(page_align_down(100), 4096, "never below one page");
        assert_eq!(page_align_up(5000), 8192);
        assert_eq!(page_align_up(4096), 4096);
    }

    #[test]
    fn gc_cost_model_matches_paper_scale() {
        // A 1 GiB Young generation with ~10 MB live should collect in
        // roughly 0.9 s (derby's enforced GC, §5.3).
        let m = GcCostModel::default();
        let secs = m.minor_base.as_secs_f64()
            + 1024.0 * 1024.0 * 1024.0 * m.scan_cost_per_byte
            + 10e6 * m.copy_cost_per_byte;
        assert!((0.8..1.0).contains(&secs), "derby-like GC = {secs}s");
    }
}
