//! The JVM TI agent: JAVMM's glue between HotSpot and the LKM (§4.3.1).
//!
//! The agent is loaded as the Java application starts, creates a netlink
//! socket, and fulfils the framework's application contract on behalf of
//! every Java application in the JVM:
//!
//! * `QuerySkipOver` → reply with the Young generation's committed VA
//!   ranges (Eden + both survivor spaces);
//! * `QueryColdRegions` → reply with the heap's live-but-cold Old-gen
//!   ranges (only ever asked when the daemon's cold assist is enabled);
//! * Young-generation shrink (a GC-end event) → immediate `AreaShrunk`;
//! * `PrepareSuspension` → request an enforced minor GC; when it finishes —
//!   with Java threads still paused at the safepoint — reply
//!   `SuspensionReady`, reporting the current Young ranges and the occupied
//!   From space as must-send;
//! * keep the threads held until `VmResumed` arrives, guaranteeing Eden and
//!   To stay empty through the stop-and-copy;
//! * on `AbortAssist` — the daemon degraded to vanilla pre-copy — drop any
//!   safepoint hold and stop assisting for the rest of the migration.
//!
//! For fault injection the agent can be *stalled* at any protocol state
//! ([`StallPoint`]): a stalled agent stops reacting from that state on,
//! modelling a hung, crashed, or misbehaving guest application. The daemon's
//! coordination timeouts must then degrade the migration gracefully.

use crate::model::HeapModel;
use guestos::coord::CoordPayload;
use guestos::netlink::NetlinkSocket;
use simkit::{SimTime, StallPoint};
use vmem::VaRange;

/// What the agent asks the JVM to do after a poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentDirective {
    /// Nothing to do.
    None,
    /// Perform a minor GC now (must not be silently ignored, §4.3.2).
    EnforceGc,
}

/// The JAVMM TI agent.
#[derive(Debug)]
pub struct JavmmAgent {
    sock: NetlinkSocket,
    holding: bool,
    aborted: bool,
    stall: Option<StallPoint>,
}

impl JavmmAgent {
    /// Loads the agent with its netlink socket.
    pub fn new(sock: NetlinkSocket) -> Self {
        Self {
            sock,
            holding: false,
            aborted: false,
            stall: None,
        }
    }

    /// Returns `true` while the agent is holding Java threads at the
    /// safepoint (between the enforced GC and VM resumption).
    pub fn is_holding(&self) -> bool {
        self.holding
    }

    /// Injects a stall: from the named protocol state on, the agent stops
    /// reacting (it still drains its socket, like a hung process whose
    /// kernel-side queue keeps filling).
    pub fn set_stall(&mut self, stall: Option<StallPoint>) {
        self.stall = stall;
    }

    /// How far through the assist pipeline the agent gets before hanging.
    /// `None` = no stall; a stalled agent is unresponsive from the named
    /// state *onward* (a hung process does not resume for later messages).
    fn stall_rank(&self) -> Option<u8> {
        self.stall.map(|s| match s {
            StallPoint::Initialized | StallPoint::Degraded => 0,
            StallPoint::MigrationStarted => 1,
            StallPoint::EnteringLastIter => 2,
            StallPoint::SuspensionReady => 3,
        })
    }

    fn stalled_before(&self, rank: u8) -> bool {
        self.stall_rank().is_some_and(|r| r <= rank)
    }

    /// A fully frozen agent: deaf to every message, including the abort.
    fn frozen(&self) -> bool {
        self.stalled_before(0)
    }

    /// Drains LKM messages and reacts; returns a directive for the JVM.
    pub fn poll(&mut self, now: SimTime, heap: &dyn HeapModel) -> AgentDirective {
        let mut directive = AgentDirective::None;
        for msg in self.sock.recv(now) {
            if self.frozen() {
                continue;
            }
            match msg.payload {
                CoordPayload::QuerySkipOver => {
                    if self.aborted || self.stalled_before(1) {
                        continue;
                    }
                    self.sock
                        .send(now, CoordPayload::SkipOverAreas(heap.young_ranges()));
                }
                CoordPayload::QueryColdRegions => {
                    if self.aborted || self.stalled_before(1) {
                        continue;
                    }
                    self.sock
                        .send(now, CoordPayload::ColdRegions(heap.cold_ranges()));
                }
                CoordPayload::PrepareSuspension => {
                    if self.aborted || self.stalled_before(2) {
                        continue;
                    }
                    directive = AgentDirective::EnforceGc;
                }
                CoordPayload::VmResumed => {
                    // Return control to the JVM, which releases the Java
                    // threads from the safepoint.
                    self.holding = false;
                    self.aborted = false;
                }
                CoordPayload::AbortAssist => {
                    // The daemon fell back to vanilla pre-copy: release any
                    // hold and ignore further assist requests until resume.
                    self.holding = false;
                    self.aborted = true;
                }
                _ => {}
            }
        }
        directive
    }

    /// GC-end callback: the Young generation shrank; notify the LKM of the
    /// VA ranges whose pages were freed (§4.3.2).
    pub fn on_young_shrunk(&mut self, now: SimTime, ranges: &[VaRange]) {
        if self.aborted || self.stalled_before(1) {
            return;
        }
        if !ranges.is_empty() {
            self.sock.send(
                now,
                CoordPayload::AreaShrunk {
                    left: ranges.to_vec(),
                },
            );
        }
    }

    /// GC-end callback for the enforced collection: report readiness without
    /// releasing the Java threads.
    pub fn on_enforced_gc_finished(&mut self, now: SimTime, heap: &dyn HeapModel) {
        if self.aborted {
            return;
        }
        self.holding = true;
        if self.stalled_before(3) {
            // The GC ran and threads are held, but the readiness report is
            // never sent — the daemon's straggler deadline must fire.
            return;
        }
        self.sock.send(
            now,
            CoordPayload::SuspensionReady {
                areas: heap.young_ranges(),
                must_send: heap.must_send_ranges(),
            },
        );
    }
}
