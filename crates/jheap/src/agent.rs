//! The JVM TI agent: JAVMM's glue between HotSpot and the LKM (§4.3.1).
//!
//! The agent is loaded as the Java application starts, creates a netlink
//! socket, and fulfils the framework's application contract on behalf of
//! every Java application in the JVM:
//!
//! * `QuerySkipOver` → reply with the Young generation's committed VA
//!   ranges (Eden + both survivor spaces);
//! * Young-generation shrink (a GC-end event) → immediate `AreaShrunk`;
//! * `PrepareSuspension` → request an enforced minor GC; when it finishes —
//!   with Java threads still paused at the safepoint — reply
//!   `SuspensionReady`, reporting the current Young ranges and the occupied
//!   From space as must-send;
//! * keep the threads held until `VmResumed` arrives, guaranteeing Eden and
//!   To stay empty through the stop-and-copy.

use crate::model::HeapModel;
use guestos::messages::{AppToLkm, LkmToApp};
use guestos::netlink::NetlinkSocket;
use simkit::SimTime;
use vmem::VaRange;

/// What the agent asks the JVM to do after a poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentDirective {
    /// Nothing to do.
    None,
    /// Perform a minor GC now (must not be silently ignored, §4.3.2).
    EnforceGc,
}

/// The JAVMM TI agent.
#[derive(Debug)]
pub struct JavmmAgent {
    sock: NetlinkSocket,
    holding: bool,
}

impl JavmmAgent {
    /// Loads the agent with its netlink socket.
    pub fn new(sock: NetlinkSocket) -> Self {
        Self {
            sock,
            holding: false,
        }
    }

    /// Returns `true` while the agent is holding Java threads at the
    /// safepoint (between the enforced GC and VM resumption).
    pub fn is_holding(&self) -> bool {
        self.holding
    }

    /// Drains LKM messages and reacts; returns a directive for the JVM.
    pub fn poll(&mut self, now: SimTime, heap: &dyn HeapModel) -> AgentDirective {
        let mut directive = AgentDirective::None;
        for msg in self.sock.recv(now) {
            match msg {
                LkmToApp::QuerySkipOver => {
                    self.sock
                        .send(now, AppToLkm::SkipOverAreas(heap.young_ranges()));
                }
                LkmToApp::PrepareSuspension => {
                    directive = AgentDirective::EnforceGc;
                }
                LkmToApp::VmResumed => {
                    // Return control to the JVM, which releases the Java
                    // threads from the safepoint.
                    self.holding = false;
                }
            }
        }
        directive
    }

    /// GC-end callback: the Young generation shrank; notify the LKM of the
    /// VA ranges whose pages were freed (§4.3.2).
    pub fn on_young_shrunk(&mut self, now: SimTime, ranges: &[VaRange]) {
        if !ranges.is_empty() {
            self.sock.send(
                now,
                AppToLkm::AreaShrunk {
                    left: ranges.to_vec(),
                },
            );
        }
    }

    /// GC-end callback for the enforced collection: report readiness without
    /// releasing the Java threads.
    pub fn on_enforced_gc_finished(&mut self, now: SimTime, heap: &dyn HeapModel) {
        self.holding = true;
        self.sock.send(
            now,
            AppToLkm::SuspensionReady {
                areas: heap.young_ranges(),
                must_send: heap.must_send_ranges(),
            },
        );
    }
}
