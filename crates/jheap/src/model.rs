//! The heap-model abstraction: what the JVM execution loop and the JAVMM
//! agent need from a collector.
//!
//! §6 of the paper: "We are particularly interested in porting JAVMM to run
//! with collectors that use non-contiguous VA ranges for the Young
//! generation... HotSpot's garbage-first garbage collector is one such
//! example." The framework already speaks in *sets* of VA ranges, so JAVMM
//! ports to any compacting, non-concurrent collector that can answer the
//! questions below — [`crate::heap::JvmHeap`] (ParallelGC-like, contiguous
//! spaces) and [`crate::g1::G1Heap`] (region-based, non-contiguous) both do.

use crate::gc::{GcKind, GcLog, GcRecord};
use crate::mutator::MutatorProfile;
use guestos::kernel::{GuestKernel, WriteOutcome};
use guestos::process::Pid;
use simkit::{DetRng, SimTime};
use vmem::VaRange;

/// A generational heap a [`crate::jvm::JvmProcess`] can run on.
pub trait HeapModel: core::fmt::Debug {
    /// The owning process.
    fn pid(&self) -> Pid;

    /// Bytes allocatable before the next minor GC.
    fn eden_headroom(&self) -> u64;

    /// Allocates `bytes` of Eden, dirtying the pages covered.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds [`HeapModel::eden_headroom`].
    fn bump_eden(&mut self, kernel: &mut GuestKernel, bytes: u64) -> WriteOutcome;

    /// Rewrites `bytes` of the Old-generation working set.
    fn write_old_ws(
        &mut self,
        kernel: &mut GuestKernel,
        rng: &mut DetRng,
        bytes: u64,
        ws_bytes: u64,
    ) -> WriteOutcome;

    /// Performs a minor collection of the given kind.
    fn perform_minor_gc(
        &mut self,
        kernel: &mut GuestKernel,
        rng: &mut DetRng,
        profile: &MutatorProfile,
        now: SimTime,
        kind: GcKind,
    ) -> (GcRecord, WriteOutcome);

    /// The Young generation's current VA ranges — the skip-over areas the
    /// agent reports. Contiguous collectors return a few large ranges;
    /// region-based collectors return one per region.
    fn young_ranges(&self) -> Vec<VaRange>;

    /// The ranges inside [`HeapModel::young_ranges`] holding the data that
    /// survived the last collection (must be transferred in the last
    /// iteration).
    fn must_send_ranges(&self) -> Vec<VaRange>;

    /// The GC log.
    fn gc_log(&self) -> &GcLog;

    /// Committed Young generation bytes.
    fn young_committed(&self) -> u64;

    /// Young generation bytes in use.
    fn young_used(&self) -> u64;

    /// Old generation bytes in use.
    fn old_used(&self) -> u64;

    /// Committed Old generation bytes.
    fn old_committed(&self) -> u64;

    /// Size of the JIT code cache (for background recompilation writes).
    fn codecache_bytes(&self) -> u64;

    /// The heap's live-but-cold VA ranges: committed, reachable data that
    /// has not been written for several GC epochs. The migration engine may
    /// defer these pages or delta-compress their re-dirtied versions; unlike
    /// [`HeapModel::young_ranges`] they must still reach the destination.
    ///
    /// Collectors without access tracking report none (the default), which
    /// degrades the cold assist to a no-op rather than a protocol error.
    fn cold_ranges(&self) -> Vec<VaRange> {
        Vec::new()
    }
}

impl HeapModel for crate::heap::JvmHeap {
    fn pid(&self) -> Pid {
        crate::heap::JvmHeap::pid(self)
    }

    fn eden_headroom(&self) -> u64 {
        crate::heap::JvmHeap::eden_headroom(self)
    }

    fn bump_eden(&mut self, kernel: &mut GuestKernel, bytes: u64) -> WriteOutcome {
        crate::heap::JvmHeap::bump_eden(self, kernel, bytes)
    }

    fn write_old_ws(
        &mut self,
        kernel: &mut GuestKernel,
        rng: &mut DetRng,
        bytes: u64,
        ws_bytes: u64,
    ) -> WriteOutcome {
        crate::heap::JvmHeap::write_old_ws(self, kernel, rng, bytes, ws_bytes)
    }

    fn perform_minor_gc(
        &mut self,
        kernel: &mut GuestKernel,
        rng: &mut DetRng,
        profile: &MutatorProfile,
        now: SimTime,
        kind: GcKind,
    ) -> (GcRecord, WriteOutcome) {
        crate::heap::JvmHeap::perform_minor_gc(self, kernel, rng, profile, now, kind)
    }

    fn young_ranges(&self) -> Vec<VaRange> {
        crate::heap::JvmHeap::young_ranges(self)
    }

    fn must_send_ranges(&self) -> Vec<VaRange> {
        vec![self.occupied_from_range()]
    }

    fn gc_log(&self) -> &GcLog {
        crate::heap::JvmHeap::gc_log(self)
    }

    fn young_committed(&self) -> u64 {
        crate::heap::JvmHeap::young_committed(self)
    }

    fn young_used(&self) -> u64 {
        crate::heap::JvmHeap::young_used(self)
    }

    fn old_used(&self) -> u64 {
        crate::heap::JvmHeap::old_used(self)
    }

    fn old_committed(&self) -> u64 {
        crate::heap::JvmHeap::old_committed(self)
    }

    fn codecache_bytes(&self) -> u64 {
        self.config().codecache
    }

    fn cold_ranges(&self) -> Vec<VaRange> {
        crate::heap::JvmHeap::cold_ranges(self)
    }
}
