//! The mutator: how an application exercises the Java heap.
//!
//! The evaluation depends only on a workload's heap-usage characteristics —
//! allocation rate, object lifetimes (survival fractions), Old-generation
//! working set, operation throughput (§4.2, §5.3). A [`Mutator`] supplies
//! those characteristics to the JVM; the `workloads` crate implements it for
//! each SPECjvm2008-like model.

use simkit::SimDuration;

/// The heap-usage characteristics a mutator exhibits right now.
#[derive(Debug, Clone, Copy)]
pub struct MutatorProfile {
    /// Young-generation (Eden) allocation rate, bytes/second.
    pub alloc_rate: f64,
    /// Old-generation working-set write rate, bytes/second.
    pub old_write_rate: f64,
    /// Size of the Old-generation working set being rewritten.
    pub old_ws_bytes: u64,
    /// Operations completed per second of un-paused execution.
    pub ops_per_sec: f64,
    /// Fraction of Eden bytes still live at a minor GC.
    pub eden_survival: f64,
    /// Fraction of the From space surviving a further minor GC (these are
    /// promoted to the Old generation).
    pub from_survival: f64,
    /// Upper bound on the time for all threads to reach a safepoint when a
    /// GC is requested asynchronously (the enforced GC); proportional to
    /// operation granularity. Compiler-like workloads take up to ~0.7 s.
    pub safepoint_max: SimDuration,
}

impl MutatorProfile {
    /// A quiet profile for tests: slow allocation, tiny survival.
    pub fn quiet() -> Self {
        Self {
            alloc_rate: 1e6,
            old_write_rate: 0.0,
            old_ws_bytes: 0,
            ops_per_sec: 100.0,
            eden_survival: 0.02,
            from_survival: 0.5,
            safepoint_max: SimDuration::from_millis(10),
        }
    }
}

/// A source of heap-usage behaviour, possibly time-varying.
pub trait Mutator {
    /// Returns the current profile.
    fn profile(&mut self) -> MutatorProfile;

    /// A short name for reports.
    fn name(&self) -> &str;

    /// Advances the mutator's internal clock by `dt` of *running* (not
    /// paused) guest time. Time-varying mutators switch phases here; the
    /// default is a no-op for steady workloads.
    fn advance_time(&mut self, dt: SimDuration) {
        let _ = dt;
    }
}

/// A workload phase: a profile held for a duration.
#[derive(Debug, Clone)]
pub struct Phase {
    /// How long the phase lasts (of running guest time).
    pub duration: SimDuration,
    /// The behaviour during the phase.
    pub profile: MutatorProfile,
}

/// A mutator cycling through phases — e.g. a batch job alternating
/// allocation-heavy parsing with compute-heavy number crunching.
#[derive(Debug, Clone)]
pub struct PhasedMutator {
    name: String,
    phases: Vec<Phase>,
    current: usize,
    in_phase: SimDuration,
}

impl PhasedMutator {
    /// Creates a phased mutator cycling through `phases`.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has zero duration.
    pub fn new(name: impl Into<String>, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert!(
            phases.iter().all(|p| !p.duration.is_zero()),
            "phases must have positive duration"
        );
        Self {
            name: name.into(),
            phases,
            current: 0,
            in_phase: SimDuration::ZERO,
        }
    }

    /// Index of the currently active phase.
    pub fn current_phase(&self) -> usize {
        self.current
    }
}

impl Mutator for PhasedMutator {
    fn profile(&mut self) -> MutatorProfile {
        self.phases[self.current].profile
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn advance_time(&mut self, dt: SimDuration) {
        self.in_phase += dt;
        while self.in_phase >= self.phases[self.current].duration {
            self.in_phase -= self.phases[self.current].duration;
            self.current = (self.current + 1) % self.phases.len();
        }
    }
}

/// A mutator with a constant profile.
#[derive(Debug, Clone)]
pub struct SteadyMutator {
    name: String,
    profile: MutatorProfile,
}

impl SteadyMutator {
    /// Creates a steady mutator.
    pub fn new(name: impl Into<String>, profile: MutatorProfile) -> Self {
        Self {
            name: name.into(),
            profile,
        }
    }
}

impl Mutator for SteadyMutator {
    fn profile(&mut self) -> MutatorProfile {
        self.profile
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_mutator_is_constant() {
        let mut m = SteadyMutator::new("t", MutatorProfile::quiet());
        let a = m.profile();
        m.advance_time(SimDuration::from_secs(100));
        let b = m.profile();
        assert_eq!(a.alloc_rate, b.alloc_rate);
        assert_eq!(m.name(), "t");
    }

    #[test]
    fn phased_mutator_cycles() {
        let slow = MutatorProfile::quiet();
        let fast = MutatorProfile {
            alloc_rate: 300e6,
            ..MutatorProfile::quiet()
        };
        let mut m = PhasedMutator::new(
            "bursty",
            vec![
                Phase {
                    duration: SimDuration::from_secs(2),
                    profile: slow,
                },
                Phase {
                    duration: SimDuration::from_secs(3),
                    profile: fast,
                },
            ],
        );
        assert_eq!(m.profile().alloc_rate, 1e6);
        m.advance_time(SimDuration::from_secs(2));
        assert_eq!(m.current_phase(), 1);
        assert_eq!(m.profile().alloc_rate, 300e6);
        // Wraps across multiple cycles at once: 13 s = phase 1's remaining
        // 3 s + two full 5 s cycles, landing back at phase 0.
        m.advance_time(SimDuration::from_secs(13));
        assert_eq!(m.current_phase(), 0);
        assert_eq!(m.profile().alloc_rate, 1e6);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        let _ = PhasedMutator::new("x", vec![]);
    }
}
