#![warn(missing_docs)]
//! `jheap` — a HotSpot-like generational Java heap simulator.
//!
//! Reproduces the heap behaviour JAVMM depends on (§4 of the paper):
//!
//! * a generational heap with Eden, two survivor spaces and an Old
//!   generation ([`heap::JvmHeap`]), bump allocation, copying minor GCs
//!   with promotion, full GCs, and ParallelGC-style ergonomics that grow
//!   the Young generation under allocation pressure;
//! * a mutator abstraction ([`mutator::Mutator`]) carrying each workload's
//!   allocation rate, survival fractions, Old-generation working set and
//!   throughput;
//! * the JVM execution state machine ([`jvm::JvmProcess`]) with safepoints,
//!   GC pauses, and log-dirty fault *time debt* (the source of migration's
//!   throughput penalty);
//! * the JAVMM TI agent ([`agent::JavmmAgent`]) implementing the protocol
//!   of Figure 7: report Young ranges, notify shrink, run the enforced GC,
//!   hold threads at the safepoint, report the occupied From space.

pub mod agent;
pub mod config;
pub mod g1;
pub mod gc;
pub mod heap;
pub mod jvm;
pub mod model;
pub mod mutator;

pub use agent::{AgentDirective, JavmmAgent};
pub use config::{GcCostModel, JvmConfig};
pub use g1::G1Heap;
pub use gc::{GcKind, GcLog, GcRecord};
pub use heap::JvmHeap;
pub use jvm::{JvmProcess, JvmStats};
pub use model::HeapModel;
pub use mutator::{Mutator, MutatorProfile, Phase, PhasedMutator, SteadyMutator};
