//! Garbage-collection records and the GC log.

use simkit::{SimDuration, SimTime};
use vmem::VaRange;

/// The kind of collection performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcKind {
    /// A minor (Young generation) collection triggered by Eden exhaustion.
    Minor,
    /// A minor collection enforced by the migration agent (§4.3).
    EnforcedMinor,
    /// A full collection of both generations.
    Full,
}

/// What one collection did.
#[derive(Debug, Clone)]
pub struct GcRecord {
    /// Collection kind.
    pub kind: GcKind,
    /// Pause start time.
    pub at: SimTime,
    /// Pause duration.
    pub duration: SimDuration,
    /// Committed Young generation size when the GC ran.
    pub young_committed: u64,
    /// Eden bytes in use before the collection.
    pub eden_used_before: u64,
    /// From-space bytes in use before the collection.
    pub from_used_before: u64,
    /// Live bytes copied into the To space.
    pub live_copied: u64,
    /// Bytes promoted to the Old generation.
    pub promoted: u64,
    /// Garbage reclaimed from the Young generation.
    pub garbage_collected: u64,
    /// VA ranges uncommitted from the Young generation by post-GC
    /// ergonomics (the shrink case the TI agent must report, §4.3.2).
    pub shrunk: Vec<VaRange>,
}

impl GcRecord {
    /// Young-generation bytes examined by this GC (Eden + From).
    pub fn young_used_before(&self) -> u64 {
        self.eden_used_before + self.from_used_before
    }
}

/// An append-only log of collections.
#[derive(Debug, Clone, Default)]
pub struct GcLog {
    records: Vec<GcRecord>,
}

impl GcLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, rec: GcRecord) {
        self.records.push(rec);
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[GcRecord] {
        &self.records
    }

    /// Number of collections of the given kind.
    pub fn count(&self, kind: GcKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }

    /// Mean duration of minor collections (including enforced), or zero.
    pub fn mean_minor_duration(&self) -> SimDuration {
        let minors: Vec<&GcRecord> = self
            .records
            .iter()
            .filter(|r| r.kind != GcKind::Full)
            .collect();
        if minors.is_empty() {
            return SimDuration::ZERO;
        }
        let total: SimDuration = minors.iter().map(|r| r.duration).sum();
        total / minors.len() as u64
    }

    /// Mean garbage collected per minor GC, and mean live data copied.
    pub fn mean_minor_garbage_live(&self) -> (f64, f64) {
        let minors: Vec<&GcRecord> = self
            .records
            .iter()
            .filter(|r| r.kind != GcKind::Full)
            .collect();
        if minors.is_empty() {
            return (0.0, 0.0);
        }
        let n = minors.len() as f64;
        let garbage: u64 = minors.iter().map(|r| r.garbage_collected).sum();
        let live: u64 = minors.iter().map(|r| r.live_copied + r.promoted).sum();
        (garbage as f64 / n, live as f64 / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: GcKind, dur_ms: u64, garbage: u64, live: u64) -> GcRecord {
        GcRecord {
            kind,
            at: SimTime::ZERO,
            duration: SimDuration::from_millis(dur_ms),
            young_committed: 0,
            eden_used_before: garbage + live,
            from_used_before: 0,
            live_copied: live,
            promoted: 0,
            garbage_collected: garbage,
            shrunk: vec![],
        }
    }

    #[test]
    fn log_counts_by_kind() {
        let mut log = GcLog::new();
        log.push(rec(GcKind::Minor, 100, 1000, 10));
        log.push(rec(GcKind::EnforcedMinor, 100, 1000, 10));
        log.push(rec(GcKind::Full, 500, 0, 0));
        assert_eq!(log.count(GcKind::Minor), 1);
        assert_eq!(log.count(GcKind::EnforcedMinor), 1);
        assert_eq!(log.count(GcKind::Full), 1);
    }

    #[test]
    fn means_exclude_full_gcs() {
        let mut log = GcLog::new();
        log.push(rec(GcKind::Minor, 100, 900, 100));
        log.push(rec(GcKind::Minor, 300, 1100, 300));
        log.push(rec(GcKind::Full, 10_000, 0, 0));
        assert_eq!(log.mean_minor_duration(), SimDuration::from_millis(200));
        let (g, l) = log.mean_minor_garbage_live();
        assert_eq!(g, 1000.0);
        assert_eq!(l, 200.0);
    }

    #[test]
    fn empty_log_means_are_zero() {
        let log = GcLog::new();
        assert_eq!(log.mean_minor_duration(), SimDuration::ZERO);
        assert_eq!(log.mean_minor_garbage_live(), (0.0, 0.0));
    }
}
