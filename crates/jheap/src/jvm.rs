//! The JVM process: execution state machine tying mutator, heap and agent.
//!
//! [`JvmProcess`] is a guest application ([`guestos::GuestApp`]): each
//! simulation quantum it runs its mutator (allocating into Eden, rewriting
//! the Old-generation working set, completing operations), pauses for minor
//! GCs when Eden fills, and — when the JAVMM agent is loaded — executes the
//! enforced GC and safepoint hold of the migration protocol.
//!
//! Log-dirty faults are charged as *time debt*: every first write to a page
//! while migration is logging costs a shadow-paging fault, which displaces
//! mutator work. This is the mechanism behind the >20% throughput drop the
//! paper measures for derby under vanilla migration.

use crate::agent::{AgentDirective, JavmmAgent};
use crate::config::JvmConfig;
use crate::g1::G1Heap;
use crate::gc::GcKind;
use crate::heap::JvmHeap;
use crate::model::HeapModel;
use crate::mutator::Mutator;
use guestos::app::GuestApp;
use guestos::kernel::{GuestKernel, WriteOutcome};
use guestos::process::Pid;
use simkit::telemetry::SpanId;
use simkit::{
    DetRng, GcOverrun, PhaseShift, Recorder, SimDuration, SimTime, StallPoint, Subsystem,
};
use vmem::{PageClass, VaRange, Vaddr, PAGE_SIZE};

/// Cost of one log-dirty (shadow paging) fault.
const FAULT_COST: SimDuration = SimDuration::from_micros(3);

/// Largest un-interrupted mutator slice.
const MAX_SLICE: SimDuration = SimDuration::from_millis(10);

/// Safepoint latency for an allocation-triggered (synchronous) GC.
const ALLOC_SAFEPOINT: SimDuration = SimDuration::from_millis(2);

/// JIT recompilation keeps touching the code cache at a trickle.
const CODE_WRITE_RATE: f64 = 0.2e6;

/// Cadence of the dirty-rate telemetry series: one sample per 500 ms of
/// guest time, an exact multiple of every driver tick in the tree so the
/// sample instants are identical whatever quantum the host steps with.
const DIRTY_SAMPLE_CADENCE: SimDuration = SimDuration::from_millis(500);

/// Ring capacity of the dirty-rate series (64 s of history at the cadence).
const DIRTY_SAMPLE_CAPACITY: usize = 128;

#[derive(Debug, Clone, Copy)]
enum ExecState {
    /// Mutator running.
    Running,
    /// Threads draining to a safepoint before a GC.
    ReachingSafepoint {
        remaining: SimDuration,
        enforced: bool,
    },
    /// Collection in progress.
    InGc {
        remaining: SimDuration,
        enforced: bool,
    },
    /// Enforced GC done; threads held at the safepoint until VM resumption.
    Held,
}

/// Aggregate execution statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct JvmStats {
    /// Total guest pages written by this process.
    pub pages_written: u64,
    /// Total log-dirty faults taken.
    pub faults: u64,
    /// Total time paused for GC.
    pub gc_pause: SimDuration,
    /// Total time lost to log-dirty fault handling.
    pub fault_time: SimDuration,
}

/// A JVM running one Java application.
pub struct JvmProcess {
    heap: Box<dyn HeapModel>,
    mutator: Box<dyn Mutator>,
    agent: Option<JavmmAgent>,
    rng: DetRng,
    state: ExecState,
    enforced_pending: bool,
    ops: f64,
    old_carry: f64,
    code_carry: f64,
    fault_debt: SimDuration,
    stats: JvmStats,
    pending_shrunk: Vec<VaRange>,
    telemetry: Recorder,
    hold_span: Option<SpanId>,
    hold_since: Option<SimTime>,
    gc_overrun: Option<GcOverrun>,
    phase_shift: Option<PhaseShift>,
    phase_shift_elapsed: SimDuration,
    phase_shift_fired: bool,
    dirty_sample: Option<(SimTime, u64)>,
}

impl JvmProcess {
    /// Launches a JVM in the guest.
    ///
    /// When `assisted` is true the JAVMM TI agent is loaded and subscribes
    /// to the LKM's netlink group; otherwise the JVM ignores migration
    /// entirely (the vanilla-Xen baseline).
    pub fn launch(
        kernel: &mut GuestKernel,
        config: JvmConfig,
        mutator: Box<dyn Mutator>,
        assisted: bool,
        rng: DetRng,
    ) -> Self {
        let pid = kernel.spawn(format!("java-{}", mutator.name()));
        let heap = Box::new(JvmHeap::launch(kernel, pid, config));
        Self::with_heap(kernel, heap, mutator, assisted, rng)
    }

    /// Like [`JvmProcess::launch`] but with the G1-like region-based
    /// collector (§6): the Young generation is a set of non-contiguous
    /// regions of `region_bytes` each.
    pub fn launch_g1(
        kernel: &mut GuestKernel,
        config: JvmConfig,
        region_bytes: u64,
        mutator: Box<dyn Mutator>,
        assisted: bool,
        rng: DetRng,
    ) -> Self {
        let pid = kernel.spawn(format!("java-g1-{}", mutator.name()));
        let heap = Box::new(G1Heap::launch(kernel, pid, config, region_bytes));
        Self::with_heap(kernel, heap, mutator, assisted, rng)
    }

    fn with_heap(
        kernel: &mut GuestKernel,
        heap: Box<dyn HeapModel>,
        mutator: Box<dyn Mutator>,
        assisted: bool,
        rng: DetRng,
    ) -> Self {
        let pid = heap.pid();
        let agent = assisted.then(|| JavmmAgent::new(kernel.subscribe_netlink(pid)));
        Self {
            heap,
            mutator,
            agent,
            rng,
            state: ExecState::Running,
            enforced_pending: false,
            ops: 0.0,
            old_carry: 0.0,
            code_carry: 0.0,
            fault_debt: SimDuration::ZERO,
            stats: JvmStats::default(),
            pending_shrunk: Vec::new(),
            telemetry: Recorder::disabled(),
            hold_span: None,
            hold_since: None,
            gc_overrun: None,
            phase_shift: None,
            phase_shift_elapsed: SimDuration::ZERO,
            phase_shift_fired: false,
            dirty_sample: None,
        }
    }

    /// Stalls the JAVMM agent at the given protocol state (fault injection).
    /// No-op on an unassisted JVM.
    pub fn set_agent_stall(&mut self, stall: Option<StallPoint>) {
        if let Some(agent) = &mut self.agent {
            agent.set_stall(stall);
        }
    }

    /// Makes every *enforced* minor GC overrun by the given extra pause
    /// (fault injection: a heap in a pathological state).
    pub fn set_gc_overrun(&mut self, overrun: Option<GcOverrun>) {
        self.gc_overrun = overrun;
    }

    /// Arms a one-shot workload phase shift (fault injection): after
    /// `shift.after` of mutator running time the phase clock jumps forward
    /// by `shift.jump` in a single step. Re-installing an identical shift
    /// is idempotent — a shift that already fired stays fired — so faults
    /// can be (re)applied at migration start without double-firing.
    pub fn set_phase_shift(&mut self, shift: Option<PhaseShift>) {
        if self.phase_shift != shift {
            self.phase_shift_elapsed = SimDuration::ZERO;
            self.phase_shift_fired = false;
        }
        self.phase_shift = shift;
    }

    /// Attaches a telemetry recorder: GC pauses become `Gc` spans,
    /// safepoint holds become `Jvm` spans, heap occupancy is sampled as
    /// gauges, log-dirty faults are counted and the page-dirtying rate is
    /// sampled into a bounded [`simkit::telemetry::SampleSeries`]. The
    /// dirty-rate baseline resets here, so the series starts at the
    /// attach instant (migration begin) in every run shape.
    pub fn attach_telemetry(&mut self, recorder: Recorder) {
        self.telemetry = recorder;
        self.dirty_sample = None;
    }

    /// The heap (for profiling and tests).
    pub fn heap(&self) -> &dyn HeapModel {
        self.heap.as_ref()
    }

    /// Execution statistics.
    pub fn stats(&self) -> JvmStats {
        self.stats
    }

    /// The mutator's current heap-usage profile — what a JVMTI agent
    /// would report if an external scheduler asked "how hard are you
    /// dirtying right now?". Phased mutators answer for the phase they
    /// are in at this instant.
    pub fn mutator_profile(&mut self) -> crate::mutator::MutatorProfile {
        self.mutator.profile()
    }

    /// Returns `true` while Java threads are held at the safepoint by the
    /// agent (suspension-ready, pre-resume).
    pub fn is_held(&self) -> bool {
        matches!(self.state, ExecState::Held)
    }

    /// Returns `true` if the JAVMM agent is loaded.
    pub fn is_assisted(&self) -> bool {
        self.agent.is_some()
    }

    fn charge(&mut self, out: WriteOutcome) {
        self.stats.pages_written += out.pages;
        self.stats.faults += out.faults;
        let penalty = FAULT_COST * out.faults;
        self.fault_debt += penalty;
        self.stats.fault_time += penalty;
        if out.faults > 0 {
            self.telemetry
                .counter_add(Subsystem::Jvm, "log_dirty_faults", out.faults);
        }
    }

    fn start_safepoint(&mut self, now: SimTime, enforced: bool) {
        let profile = self.mutator.profile();
        let wait = if enforced {
            // The enforced GC arrives asynchronously: threads finish their
            // current work before polling the safepoint.
            SimDuration::from_secs_f64(profile.safepoint_max.as_secs_f64() * self.rng.next_f64())
        } else {
            ALLOC_SAFEPOINT
        };
        self.telemetry.record_span(
            now,
            Subsystem::Jvm,
            "safepoint_reach",
            wait,
            vec![("enforced", enforced.into())],
        );
        self.telemetry
            .hist_dur(Subsystem::Jvm, "safepoint_reach_ns", wait);
        self.state = ExecState::ReachingSafepoint {
            remaining: wait,
            enforced,
        };
    }

    fn run_gc(&mut self, now: SimTime, kernel: &mut GuestKernel, enforced: bool) {
        let profile = self.mutator.profile();
        let kind = if enforced {
            GcKind::EnforcedMinor
        } else {
            GcKind::Minor
        };
        let (rec, writes) = self
            .heap
            .perform_minor_gc(kernel, &mut self.rng, &profile, now, kind);
        self.charge(writes);
        let duration = match (enforced, self.gc_overrun) {
            // Fault injection: the enforced collection overruns its budget.
            (true, Some(o)) => rec.duration + o.extra,
            _ => rec.duration,
        };
        self.telemetry.record_span(
            now,
            Subsystem::Gc,
            if enforced { "enforced_gc" } else { "minor_gc" },
            duration,
            vec![
                ("eden_used_before", rec.eden_used_before.into()),
                ("live_copied", rec.live_copied.into()),
                ("promoted", rec.promoted.into()),
                ("garbage_collected", rec.garbage_collected.into()),
            ],
        );
        self.telemetry.hist_dur(
            Subsystem::Gc,
            if enforced {
                "enforced_gc_pause_ns"
            } else {
                "minor_gc_pause_ns"
            },
            duration,
        );
        // Post-GC heap occupancy, sampled at the pause start instant.
        self.telemetry.gauge(
            now,
            Subsystem::Gc,
            "young_used_bytes",
            self.heap.young_used() as f64,
        );
        self.telemetry.gauge(
            now,
            Subsystem::Gc,
            "old_used_bytes",
            self.heap.old_used() as f64,
        );
        self.pending_shrunk = rec.shrunk.clone();
        self.state = ExecState::InGc {
            remaining: duration,
            enforced,
        };
    }

    fn finish_gc(&mut self, now: SimTime, enforced: bool) {
        if let Some(agent) = &mut self.agent {
            if !self.pending_shrunk.is_empty() {
                agent.on_young_shrunk(now, &self.pending_shrunk);
            }
            if enforced {
                agent.on_enforced_gc_finished(now, self.heap.as_ref());
                self.state = ExecState::Held;
                self.hold_span =
                    Some(
                        self.telemetry
                            .begin_span(now, Subsystem::Jvm, "safepoint_hold", vec![]),
                    );
                self.hold_since = Some(now);
                self.pending_shrunk.clear();
                return;
            }
        }
        self.pending_shrunk.clear();
        self.state = ExecState::Running;
    }

    /// Runs the mutator for `slice`, returning the time actually consumed.
    fn run_mutator(&mut self, kernel: &mut GuestKernel, slice: SimDuration) -> SimDuration {
        self.mutator.advance_time(slice);
        if let Some(shift) = self.phase_shift {
            if !self.phase_shift_fired {
                self.phase_shift_elapsed += slice;
                if self.phase_shift_elapsed >= shift.after {
                    // One-shot: the workload's phase clock jumps forward.
                    self.mutator.advance_time(shift.jump);
                    self.phase_shift_fired = true;
                }
            }
        }
        let profile = self.mutator.profile();
        let secs = slice.as_secs_f64();

        let headroom = self.heap.eden_headroom();
        let alloc = ((profile.alloc_rate * secs) as u64).min(headroom);
        if alloc > 0 {
            let out = self.heap.bump_eden(kernel, alloc);
            self.charge(out);
        }

        let old_f = profile.old_write_rate * secs + self.old_carry;
        let old_bytes = old_f as u64;
        self.old_carry = old_f - old_bytes as f64;
        if old_bytes > 0 {
            let out =
                self.heap
                    .write_old_ws(kernel, &mut self.rng, old_bytes, profile.old_ws_bytes);
            self.charge(out);
        }

        let code_f = CODE_WRITE_RATE * secs + self.code_carry;
        let code_pages = (code_f / PAGE_SIZE as f64) as u64;
        self.code_carry = code_f - code_pages as f64 * PAGE_SIZE as f64;
        for _ in 0..code_pages {
            let page = self.rng.below(self.heap.codecache_bytes() / PAGE_SIZE);
            let va = Vaddr(crate::config::va::CODE_BASE + page * PAGE_SIZE);
            let out =
                kernel.write_range(self.heap.pid(), VaRange::from_len(va, 1), PageClass::Code);
            self.charge(out);
        }

        self.ops += profile.ops_per_sec * secs;
        slice
    }
}

impl GuestApp for JvmProcess {
    fn pid(&self) -> Pid {
        self.heap.pid()
    }

    fn advance(&mut self, now: SimTime, dt: SimDuration, kernel: &mut GuestKernel) {
        // Feed the dirty-rate series: a pure read of the write counters,
        // sampled on a fixed guest-time cadence, so it cannot perturb the
        // simulation however often the host steps us.
        match self.dirty_sample {
            None => self.dirty_sample = Some((now, self.stats.pages_written)),
            Some((since, pages)) if now.saturating_since(since) >= DIRTY_SAMPLE_CADENCE => {
                let window = now.saturating_since(since);
                let rate = (self.stats.pages_written - pages) as f64 / window.as_secs_f64();
                self.telemetry.series_push(
                    Subsystem::Jvm,
                    "dirty_rate_pps",
                    DIRTY_SAMPLE_CADENCE.as_nanos(),
                    DIRTY_SAMPLE_CAPACITY,
                    now,
                    rate,
                );
                self.dirty_sample = Some((now, self.stats.pages_written));
            }
            Some(_) => {}
        }

        // Service the agent first: queries are answered promptly and an
        // enforced-GC request is picked up at the next quantum boundary.
        if let Some(agent) = &mut self.agent {
            if agent.poll(now, self.heap.as_ref()) == AgentDirective::EnforceGc {
                self.enforced_pending = true;
            }
            if matches!(self.state, ExecState::Held) && !agent.is_holding() {
                self.state = ExecState::Running;
                if let Some(id) = self.hold_span.take() {
                    self.telemetry.end_span(now, id, vec![]);
                }
                if let Some(since) = self.hold_since.take() {
                    self.telemetry.hist_dur(
                        Subsystem::Jvm,
                        "safepoint_hold_ns",
                        now.saturating_since(since),
                    );
                }
            }
        }

        let mut t = now;
        let end = now + dt;
        while t < end {
            let remaining = end - t;
            match self.state {
                ExecState::Running => {
                    if self.enforced_pending {
                        self.enforced_pending = false;
                        self.start_safepoint(t, true);
                        continue;
                    }
                    // Pay outstanding fault debt before doing new work.
                    if !self.fault_debt.is_zero() {
                        let pay = self.fault_debt.min(remaining);
                        self.fault_debt -= pay;
                        t += pay;
                        continue;
                    }
                    if self.heap.eden_headroom() < PAGE_SIZE {
                        self.start_safepoint(t, false);
                        continue;
                    }
                    let profile = self.mutator.profile();
                    let to_fill = if profile.alloc_rate > 0.0 {
                        SimDuration::from_secs_f64(
                            self.heap.eden_headroom() as f64 / profile.alloc_rate,
                        )
                    } else {
                        SimDuration::MAX
                    };
                    let slice = remaining
                        .min(MAX_SLICE)
                        .min(to_fill.max(SimDuration::from_micros(10)));
                    let used = self.run_mutator(kernel, slice);
                    t += used;
                }
                ExecState::ReachingSafepoint {
                    remaining: sp,
                    enforced,
                } => {
                    let step = sp.min(remaining);
                    t += step;
                    let left = sp - step;
                    if left.is_zero() {
                        self.run_gc(t, kernel, enforced);
                    } else {
                        self.state = ExecState::ReachingSafepoint {
                            remaining: left,
                            enforced,
                        };
                    }
                }
                ExecState::InGc {
                    remaining: gc,
                    enforced,
                } => {
                    let step = gc.min(remaining);
                    t += step;
                    self.stats.gc_pause += step;
                    let left = gc - step;
                    if left.is_zero() {
                        self.finish_gc(t, enforced);
                    } else {
                        self.state = ExecState::InGc {
                            remaining: left,
                            enforced,
                        };
                    }
                }
                ExecState::Held => {
                    // Threads held at the safepoint: time passes, no work.
                    t = end;
                }
            }
        }
    }

    fn ops_completed(&self) -> u64 {
        self.ops as u64
    }
}

impl core::fmt::Debug for JvmProcess {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("JvmProcess")
            .field("pid", &self.heap.pid())
            .field("workload", &self.mutator.name())
            .field("assisted", &self.agent.is_some())
            .field("state", &self.state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutator::{MutatorProfile, SteadyMutator};
    use guestos::kernel::GuestOsConfig;
    use simkit::units::MIB;
    use vmem::VmSpec;

    fn boot() -> GuestKernel {
        GuestKernel::boot(
            GuestOsConfig {
                spec: VmSpec::new(1024 * MIB, 2),
                kernel_bytes: 16 * MIB,
                pagecache_bytes: 16 * MIB,
                kernel_dirty_rate: 0.0,
                pagecache_dirty_rate: 0.0,
            },
            DetRng::new(5),
        )
    }

    fn run_for(
        jvm: &mut JvmProcess,
        kernel: &mut GuestKernel,
        start: SimTime,
        total: SimDuration,
    ) -> SimTime {
        let tick = SimDuration::from_millis(1);
        let mut now = start;
        let end = start + total;
        while now < end {
            jvm.advance(now, tick, kernel);
            now += tick;
        }
        now
    }

    #[test]
    fn allocation_triggers_gcs_and_ops_flow() {
        let mut kernel = boot();
        let profile = MutatorProfile {
            alloc_rate: 100e6,
            ops_per_sec: 50.0,
            ..MutatorProfile::quiet()
        };
        let mut jvm = JvmProcess::launch(
            &mut kernel,
            JvmConfig::with_young_max(128 * MIB),
            Box::new(SteadyMutator::new("t", profile)),
            false,
            DetRng::new(1),
        );
        run_for(
            &mut jvm,
            &mut kernel,
            SimTime::ZERO,
            SimDuration::from_secs(10),
        );
        let minors = jvm.heap().gc_log().count(GcKind::Minor);
        assert!(
            minors >= 2,
            "100 MB/s into a ≤128 MiB young gen must GC, got {minors}"
        );
        let ops = jvm.ops_completed();
        // 10 s at 50 ops/s minus GC pauses.
        assert!((300..=500).contains(&ops), "ops = {ops}");
    }

    #[test]
    fn young_generation_grows_under_pressure() {
        let mut kernel = boot();
        let profile = MutatorProfile {
            alloc_rate: 150e6,
            ..MutatorProfile::quiet()
        };
        let mut jvm = JvmProcess::launch(
            &mut kernel,
            JvmConfig::with_young_max(256 * MIB),
            Box::new(SteadyMutator::new("t", profile)),
            false,
            DetRng::new(1),
        );
        assert!(jvm.heap().young_committed() < 256 * MIB);
        run_for(
            &mut jvm,
            &mut kernel,
            SimTime::ZERO,
            SimDuration::from_secs(20),
        );
        assert_eq!(jvm.heap().young_committed(), 256 * MIB);
    }

    #[test]
    fn fault_debt_slows_throughput_under_logging() {
        let profile = MutatorProfile {
            alloc_rate: 200e6,
            ops_per_sec: 1000.0,
            ..MutatorProfile::quiet()
        };
        let run = |logging: bool| {
            let mut kernel = boot();
            let mut jvm = JvmProcess::launch(
                &mut kernel,
                JvmConfig::with_young_max(256 * MIB),
                Box::new(SteadyMutator::new("t", profile)),
                false,
                DetRng::new(1),
            );
            // Warm up so the young gen reaches steady state.
            let mut now = run_for(
                &mut jvm,
                &mut kernel,
                SimTime::ZERO,
                SimDuration::from_secs(15),
            );
            if logging {
                kernel.memory_mut().dirty_log_mut().enable();
            }
            let before = jvm.ops_completed();
            // A migration daemon cleans the dirty log every iteration, which
            // re-arms the log-dirty faults; emulate ~0.5 s iterations.
            for _ in 0..20 {
                let t0 = run_for(&mut jvm, &mut kernel, now, SimDuration::from_millis(500));
                now = t0;
                if logging {
                    kernel.memory_mut().dirty_log_mut().read_and_clear();
                }
            }
            jvm.ops_completed() - before
        };
        let clean = run(false);
        let logged = run(true);
        assert!(
            (logged as f64) < clean as f64 * 0.95,
            "log-dirty faults must cost throughput: {logged} vs {clean}"
        );
        assert!(
            (logged as f64) > clean as f64 * 0.5,
            "but not absurdly: {logged} vs {clean}"
        );
    }

    #[test]
    fn unassisted_jvm_has_no_agent() {
        let mut kernel = boot();
        let jvm = JvmProcess::launch(
            &mut kernel,
            JvmConfig::with_young_max(64 * MIB),
            Box::new(SteadyMutator::new("t", MutatorProfile::quiet())),
            false,
            DetRng::new(1),
        );
        assert!(!jvm.is_assisted());
        assert!(!jvm.is_held());
    }
}
