//! Property-based tests of the generational heap's invariants.

use guestos::kernel::{GuestKernel, GuestOsConfig};
use jheap::config::JvmConfig;
use jheap::gc::GcKind;
use jheap::heap::JvmHeap;
use jheap::mutator::MutatorProfile;
use proptest::prelude::*;
use simkit::units::MIB;
use simkit::{DetRng, SimDuration, SimTime};
use vmem::{VmSpec, PAGE_SIZE};

fn boot() -> GuestKernel {
    GuestKernel::boot(
        GuestOsConfig {
            spec: VmSpec::new(1024 * MIB, 2),
            kernel_bytes: 8 * MIB,
            pagecache_bytes: 8 * MIB,
            kernel_dirty_rate: 0.0,
            pagecache_dirty_rate: 0.0,
        },
        DetRng::new(77),
    )
}

/// One randomly-parameterised heap workout.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate a fraction of the current Eden headroom.
    Alloc(f64),
    /// Rewrite some Old-generation working set.
    OldWrite(u64),
    /// Collect, advancing time by the given millis since the last GC.
    Gc { after_ms: u64, enforced: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.01f64..1.0).prop_map(Op::Alloc),
        (1u64..64).prop_map(|mb| Op::OldWrite(mb * MIB)),
        ((1u64..8000), any::<bool>())
            .prop_map(|(after_ms, enforced)| Op::Gc { after_ms, enforced }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the op sequence, the heap's structural invariants hold and
    /// every GC's byte accounting balances exactly.
    #[test]
    fn heap_invariants_hold(
        survival in 0.0f64..0.9,
        from_survival in 0.0f64..1.0,
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut kernel = boot();
        let pid = kernel.spawn("java");
        let config = JvmConfig::with_young_max(256 * MIB);
        let young_max = config.young_max;
        let mut heap = JvmHeap::launch(&mut kernel, pid, config);
        let mut rng = DetRng::new(5);
        let profile = MutatorProfile {
            eden_survival: survival,
            from_survival,
            old_ws_bytes: 16 * MIB,
            ..MutatorProfile::quiet()
        };
        let mut now = SimTime::ZERO;

        for op in ops {
            match op {
                Op::Alloc(frac) => {
                    let bytes = (heap.eden_headroom() as f64 * frac) as u64;
                    if bytes > 0 {
                        heap.bump_eden(&mut kernel, bytes);
                    }
                }
                Op::OldWrite(bytes) => {
                    heap.write_old_ws(&mut kernel, &mut rng, bytes, 16 * MIB);
                }
                Op::Gc { after_ms, enforced } => {
                    now += SimDuration::from_millis(after_ms);
                    let kind = if enforced {
                        GcKind::EnforcedMinor
                    } else {
                        GcKind::Minor
                    };
                    let used_before = heap.young_used();
                    let (rec, _) =
                        heap.perform_minor_gc(&mut kernel, &mut rng, &profile, now, kind);
                    // Exact byte conservation: garbage + live + promoted
                    // equals what the Young generation held.
                    prop_assert_eq!(
                        rec.garbage_collected + rec.live_copied + rec.promoted,
                        used_before
                    );
                    // Eden is empty after any minor collection: the Young
                    // generation holds exactly the copied survivors.
                    prop_assert_eq!(heap.young_used(), rec.live_copied);
                    prop_assert!(rec.duration > SimDuration::ZERO);
                }
            }
            // Structural invariants after every op.
            prop_assert!(heap.young_committed() <= young_max + 2 * PAGE_SIZE);
            prop_assert!(heap.young_used() <= heap.young_committed());
            prop_assert!(heap.old_used() <= heap.old_committed());
            let from = heap.occupied_from_range();
            prop_assert!(from.start().is_page_aligned());
            for r in heap.young_ranges() {
                prop_assert!(r.start().is_page_aligned());
                prop_assert!(r.end().is_page_aligned());
            }
        }
    }

    /// The From space swaps sides on every GC, and the committed young
    /// ranges always translate to mapped frames.
    #[test]
    fn survivor_swap_and_mapping(gcs in 1usize..12, survival in 0.0f64..0.5) {
        let mut kernel = boot();
        let pid = kernel.spawn("java");
        let mut heap = JvmHeap::launch(&mut kernel, pid, JvmConfig::with_young_max(128 * MIB));
        let mut rng = DetRng::new(9);
        let profile = MutatorProfile {
            eden_survival: survival,
            ..MutatorProfile::quiet()
        };
        let mut now = SimTime::ZERO;
        let mut prev_base = heap.occupied_from_range().start();
        for _ in 0..gcs {
            let headroom = heap.eden_headroom();
            heap.bump_eden(&mut kernel, headroom);
            now += SimDuration::from_secs(10);
            heap.perform_minor_gc(&mut kernel, &mut rng, &profile, now, GcKind::Minor);
            let base = heap.occupied_from_range().start();
            prop_assert_ne!(base, prev_base, "survivor spaces must swap");
            prev_base = base;
            // Every committed young page is mapped.
            for r in heap.young_ranges() {
                if !r.is_empty() {
                    prop_assert!(kernel.translate(pid, r.start()).is_some());
                    let last = vmem::Vaddr(r.end().0 - PAGE_SIZE);
                    prop_assert!(kernel.translate(pid, last).is_some());
                }
            }
        }
    }

    /// Identical seeds and op sequences produce identical heaps.
    #[test]
    fn heap_is_deterministic(seed in 0u64..1000) {
        let run = || {
            let mut kernel = boot();
            let pid = kernel.spawn("java");
            let mut heap =
                JvmHeap::launch(&mut kernel, pid, JvmConfig::with_young_max(128 * MIB));
            let mut rng = DetRng::new(seed);
            let profile = MutatorProfile::quiet();
            let mut now = SimTime::ZERO;
            for _ in 0..5 {
                let headroom = heap.eden_headroom();
                heap.bump_eden(&mut kernel, headroom / 2 + 1);
                now += SimDuration::from_millis(700);
                heap.perform_minor_gc(&mut kernel, &mut rng, &profile, now, GcKind::Minor);
            }
            (heap.young_committed(), heap.old_used(), heap.young_used())
        };
        prop_assert_eq!(run(), run());
    }
}
