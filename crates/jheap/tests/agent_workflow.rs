//! The Figure 7 workflow, tested at the JVM level: query → report ranges →
//! prepare → enforced GC → suspension-ready with threads held → resume.

use guestos::app::GuestApp;
use guestos::kernel::{GuestKernel, GuestOsConfig};
use guestos::lkm::{LkmConfig, LkmState};
use guestos::CoordPayload;
use jheap::config::JvmConfig;
use jheap::gc::GcKind;
use jheap::jvm::JvmProcess;
use jheap::mutator::{MutatorProfile, SteadyMutator};
use simkit::units::MIB;
use simkit::{DetRng, SimDuration, SimTime};
use vmem::VmSpec;

fn setup() -> (GuestKernel, JvmProcess, guestos::lkm::DaemonPort) {
    let mut kernel = GuestKernel::boot(
        GuestOsConfig {
            spec: VmSpec::new(1024 * MIB, 2),
            kernel_bytes: 16 * MIB,
            pagecache_bytes: 16 * MIB,
            kernel_dirty_rate: 0.0,
            pagecache_dirty_rate: 0.0,
        },
        DetRng::new(1),
    );
    let port = kernel.load_lkm(LkmConfig::default());
    let profile = MutatorProfile {
        alloc_rate: 120e6,
        ..MutatorProfile::quiet()
    };
    let jvm = JvmProcess::launch(
        &mut kernel,
        JvmConfig::with_young_max(128 * MIB),
        Box::new(SteadyMutator::new("wf", profile)),
        true,
        DetRng::new(2),
    );
    (kernel, jvm, port)
}

fn run(kernel: &mut GuestKernel, jvm: &mut JvmProcess, from: SimTime, secs_ms: u64) -> SimTime {
    let mut now = from;
    for _ in 0..secs_ms {
        kernel.service_lkm(now);
        jvm.advance(now, SimDuration::from_millis(1), kernel);
        now += SimDuration::from_millis(1);
    }
    now
}

#[test]
fn enforced_gc_holds_threads_until_resume() {
    let (mut kernel, mut jvm, port) = setup();
    let mut now = run(&mut kernel, &mut jvm, SimTime::ZERO, 3000);

    // Migration begins: the agent answers the skip-over query.
    port.send(now, CoordPayload::MigrationBegin);
    now = run(&mut kernel, &mut jvm, now, 20);
    assert_eq!(kernel.lkm().unwrap().state(), LkmState::MigrationStarted);
    assert!(
        kernel.lkm().unwrap().transfer_bitmap().skip_count() > 10_000,
        "Young generation registered"
    );

    // Entering the last iteration: the agent runs the enforced GC and then
    // holds the Java threads at the safepoint.
    port.send(now, CoordPayload::EnteringLastIter);
    now = run(&mut kernel, &mut jvm, now, 3000);
    assert_eq!(kernel.lkm().unwrap().state(), LkmState::SuspensionReady);
    assert!(jvm.is_held(), "threads must stay at the safepoint");
    assert_eq!(jvm.heap().gc_log().count(GcKind::EnforcedMinor), 1);

    // While held, no operations complete and Eden stays empty.
    let ops_before = jvm.ops_completed();
    let young_used = jvm.heap().young_used();
    now = run(&mut kernel, &mut jvm, now, 500);
    assert_eq!(jvm.ops_completed(), ops_before, "held threads do no work");
    assert_eq!(
        jvm.heap().young_used(),
        young_used,
        "the post-collection state must not change before suspension"
    );

    // Resumption releases the safepoint and work continues.
    port.send(now, CoordPayload::VmResumed);
    now = run(&mut kernel, &mut jvm, now, 1000);
    let _ = now;
    assert!(!jvm.is_held());
    assert!(jvm.ops_completed() > ops_before, "work resumed");
    assert_eq!(kernel.lkm().unwrap().state(), LkmState::Initialized);
}

#[test]
fn unassisted_jvm_never_holds() {
    let mut kernel = GuestKernel::boot(
        GuestOsConfig {
            spec: VmSpec::new(512 * MIB, 1),
            kernel_bytes: 8 * MIB,
            pagecache_bytes: 8 * MIB,
            kernel_dirty_rate: 0.0,
            pagecache_dirty_rate: 0.0,
        },
        DetRng::new(1),
    );
    let port = kernel.load_lkm(LkmConfig {
        reply_timeout: SimDuration::from_millis(200),
        ..LkmConfig::default()
    });
    let mut jvm = JvmProcess::launch(
        &mut kernel,
        JvmConfig::with_young_max(64 * MIB),
        Box::new(SteadyMutator::new("plain", MutatorProfile::quiet())),
        false,
        DetRng::new(2),
    );
    let mut now = SimTime::ZERO;
    port.send(now, CoordPayload::MigrationBegin);
    now = run(&mut kernel, &mut jvm, now, 50);
    port.send(now, CoordPayload::EnteringLastIter);
    now = run(&mut kernel, &mut jvm, now, 500);
    let _ = now;
    // No agent subscribed: the LKM proceeds without waiting on anyone.
    assert_eq!(kernel.lkm().unwrap().state(), LkmState::SuspensionReady);
    assert!(!jvm.is_held());
    assert_eq!(kernel.lkm().unwrap().stats().stragglers, 0);
    assert_eq!(kernel.lkm().unwrap().transfer_bitmap().skip_count(), 0);
}
