//! Byte quantities and bandwidth.

use crate::time::SimDuration;
use core::fmt;

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Formats a byte count with a human-friendly unit.
///
/// # Examples
///
/// ```
/// use simkit::units::{fmt_bytes, MIB};
///
/// assert_eq!(fmt_bytes(512), "512B");
/// assert_eq!(fmt_bytes(3 * MIB / 2), "1.50MiB");
/// ```
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= GIB {
        format!("{:.2}GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2}MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.2}KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes}B")
    }
}

/// A data rate in bytes per second.
///
/// # Examples
///
/// ```
/// use simkit::units::Bandwidth;
/// use simkit::time::SimDuration;
///
/// let link = Bandwidth::from_mbytes_per_sec(100.0);
/// let t = link.time_to_send(50_000_000);
/// assert_eq!(t, SimDuration::from_millis(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is not finite and positive.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        assert!(
            bps.is_finite() && bps > 0.0,
            "bandwidth must be positive, got {bps}"
        );
        Self { bytes_per_sec: bps }
    }

    /// Creates a bandwidth from megabytes (10^6 bytes) per second.
    pub fn from_mbytes_per_sec(mbps: f64) -> Self {
        Self::from_bytes_per_sec(mbps * 1e6)
    }

    /// Creates a bandwidth from a nominal link speed in gigabits per second,
    /// derated by `efficiency` for protocol overhead.
    ///
    /// A gigabit Ethernet link with TCP framing typically delivers ~94% of
    /// line rate to the application, i.e. ~117 MB/s.
    pub fn from_gbit_per_sec(gbps: f64, efficiency: f64) -> Self {
        Self::from_bytes_per_sec(gbps * 1e9 / 8.0 * efficiency.clamp(0.01, 1.0))
    }

    /// The effective application-level throughput of the paper's testbed:
    /// gigabit Ethernet at 94% efficiency.
    pub fn gigabit_ethernet() -> Self {
        Self::from_gbit_per_sec(1.0, 0.94)
    }

    /// Returns the rate in bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }

    /// Returns the time needed to send `bytes` at this rate.
    pub fn time_to_send(self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Returns how many whole bytes fit in `dt` at this rate.
    pub fn bytes_in(self, dt: SimDuration) -> u64 {
        (self.bytes_per_sec * dt.as_secs_f64()) as u64
    }

    /// Scales the bandwidth by `factor` (e.g. for contention).
    pub fn scaled(self, factor: f64) -> Self {
        Self::from_bytes_per_sec(self.bytes_per_sec * factor)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}MB/s", self.bytes_per_sec / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_is_about_117_mb_s() {
        let bw = Bandwidth::gigabit_ethernet();
        assert!((bw.bytes_per_sec() - 117.5e6).abs() < 1e6, "{bw}");
    }

    #[test]
    fn send_time_and_bytes_in_are_inverse() {
        let bw = Bandwidth::from_mbytes_per_sec(10.0);
        let dt = bw.time_to_send(1_000_000);
        let back = bw.bytes_in(dt);
        assert!((back as i64 - 1_000_000i64).abs() <= 1);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::from_bytes_per_sec(0.0);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(0), "0B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(GIB), "1.00GiB");
    }
}
