//! Statistics helpers: running means, confidence intervals, time series.
//!
//! The paper repeats every experiment at least three times and reports means
//! with 90% confidence intervals; [`SampleStats`] reproduces that
//! methodology. [`TimeSeries`] implements the external throughput probe that
//! samples operations per second on a fixed wall-clock grid.

use crate::time::{SimDuration, SimTime};

/// Running sample statistics (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use simkit::stats::SampleStats;
///
/// let mut s = SampleStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.add(x);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SampleStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl SampleStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Returns the number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the sample mean, or zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Returns the smallest observation, or zero when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Returns the largest observation, or zero when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Returns the unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Returns the half-width of the 90% confidence interval of the mean.
    ///
    /// Uses Student's t critical values for small samples, matching how the
    /// paper reports its ≥3-run experiments.
    pub fn ci90_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let t = t_critical_90(self.count - 1);
        t * self.std_dev() / (self.count as f64).sqrt()
    }
}

/// Two-sided 90% Student's t critical value for `df` degrees of freedom.
fn t_critical_90(df: u64) -> f64 {
    // Table values for alpha = 0.10 two-sided.
    const TABLE: [f64; 30] = [
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
        1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
        1.703, 1.701, 1.699, 1.697,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        TABLE[(df - 1) as usize]
    } else {
        1.645
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
///
/// Uses the classic nearest-rank definition (`rank = ceil(p/100 * n)`), so
/// the result is always an observed sample — appropriate for the small
/// per-phase latency populations the telemetry span table summarises.
/// Returns `f64::NAN` for an empty slice: a percentile of nothing is not a
/// number, and `NAN` propagates loudly instead of masquerading as a real
/// zero-latency observation.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 100]`.
///
/// # Examples
///
/// ```
/// use simkit::stats::percentile_nearest_rank;
///
/// let sorted = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile_nearest_rank(&sorted, 50.0), 2.0);
/// assert_eq!(percentile_nearest_rank(&sorted, 95.0), 4.0);
/// assert!(percentile_nearest_rank(&[], 95.0).is_nan());
/// ```
pub fn percentile_nearest_rank(sorted: &[f64], p: f64) -> f64 {
    assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
    if sorted.is_empty() {
        return f64::NAN;
    }
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// A fixed-interval time series sampled on an external clock.
///
/// This mirrors the paper's analyzer, which reports the number of operations
/// completed once every second using a time source unaffected by VM pauses:
/// values accumulated while the VM is suspended land in the bucket covering
/// the suspension, producing the characteristic throughput gap.
///
/// # Examples
///
/// ```
/// use simkit::stats::TimeSeries;
/// use simkit::time::{SimDuration, SimTime};
///
/// let mut ts = TimeSeries::new(SimDuration::from_secs(1));
/// ts.record(SimTime::from_nanos(200_000_000), 5.0);
/// ts.record(SimTime::from_nanos(1_200_000_000), 7.0);
/// assert_eq!(ts.bucket_values(), vec![5.0, 7.0]);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    interval: SimDuration,
    buckets: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given sampling interval.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero.
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        Self {
            interval,
            buckets: Vec::new(),
        }
    }

    /// Adds `value` to the bucket containing instant `at`.
    pub fn record(&mut self, at: SimTime, value: f64) {
        let idx = (at.as_nanos() / self.interval.as_nanos()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += value;
    }

    /// Returns the sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Returns the accumulated value per bucket.
    pub fn bucket_values(&self) -> Vec<f64> {
        self.buckets.clone()
    }

    /// Returns `(bucket_start_seconds, value)` pairs.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let step = self.interval.as_secs_f64();
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * step, v))
            .collect()
    }

    /// Ensures buckets exist up to the one containing `until` so trailing
    /// idle periods appear as explicit zeros.
    pub fn extend_to(&mut self, until: SimTime) {
        let idx = (until.as_nanos() / self.interval.as_nanos()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
    }
}

/// A windowed rate meter: events per second over a sliding window.
#[derive(Debug, Clone)]
pub struct RateMeter {
    window: SimDuration,
    events: std::collections::VecDeque<(SimTime, f64)>,
    total: f64,
}

impl RateMeter {
    /// Creates a meter with the given averaging window.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "rate meter window must be positive");
        Self {
            window,
            events: std::collections::VecDeque::new(),
            total: 0.0,
        }
    }

    /// Records `amount` units at instant `at`.
    pub fn record(&mut self, at: SimTime, amount: f64) {
        self.events.push_back((at, amount));
        self.total += amount;
        self.evict(at);
    }

    /// Returns the average rate (units/second) over the window ending at `now`.
    pub fn rate(&mut self, now: SimTime) -> f64 {
        self.evict(now);
        self.total / self.window.as_secs_f64()
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now
            .saturating_since(SimTime::ZERO)
            .saturating_sub(self.window);
        while let Some(&(t, amount)) = self.events.front() {
            if t.saturating_since(SimTime::ZERO) < cutoff {
                self.events.pop_front();
                self.total -= amount;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_mean_and_stddev() {
        let mut s = SampleStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = SampleStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.ci90_half_width(), 0.0);
    }

    #[test]
    fn ci_uses_t_table_for_three_runs() {
        let mut s = SampleStats::new();
        for x in [10.0, 12.0, 14.0] {
            s.add(x);
        }
        // df = 2 -> t = 2.920; sd = 2; ci = 2.920 * 2 / sqrt(3).
        let expected = 2.920 * 2.0 / 3.0f64.sqrt();
        assert!((s.ci90_half_width() - expected).abs() < 1e-9);
    }

    #[test]
    fn t_critical_large_df_is_normal() {
        assert_eq!(t_critical_90(1000), 1.645);
    }

    #[test]
    fn percentile_nearest_rank_matches_definition() {
        let sorted = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile_nearest_rank(&sorted, 20.0), 10.0);
        assert_eq!(percentile_nearest_rank(&sorted, 50.0), 30.0);
        assert_eq!(percentile_nearest_rank(&sorted, 95.0), 50.0);
        assert_eq!(percentile_nearest_rank(&sorted, 100.0), 50.0);
    }

    #[test]
    fn percentile_nearest_rank_edge_cases() {
        // Empty: NaN, not a fake zero observation.
        assert!(percentile_nearest_rank(&[], 95.0).is_nan());
        assert!(percentile_nearest_rank(&[], 100.0).is_nan());
        // A single element is every percentile of itself.
        assert_eq!(percentile_nearest_rank(&[7.5], 0.1), 7.5);
        assert_eq!(percentile_nearest_rank(&[7.5], 95.0), 7.5);
        assert_eq!(percentile_nearest_rank(&[7.5], 100.0), 7.5);
        // p = 100 always returns the maximum.
        assert_eq!(percentile_nearest_rank(&[1.0, 2.0], 100.0), 2.0);
    }

    #[test]
    fn timeseries_buckets_by_interval() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.record(SimTime::from_nanos(100), 1.0);
        ts.record(SimTime::from_nanos(999_999_999), 2.0);
        ts.record(SimTime::from_nanos(1_000_000_000), 4.0);
        assert_eq!(ts.bucket_values(), vec![3.0, 4.0]);
        let pts = ts.points();
        assert_eq!(pts[1], (1.0, 4.0));
    }

    #[test]
    fn timeseries_extend_fills_zeros() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.record(SimTime::from_nanos(0), 1.0);
        ts.extend_to(SimTime::from_nanos(3_500_000_000));
        assert_eq!(ts.bucket_values(), vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn rate_meter_window_eviction() {
        let mut rm = RateMeter::new(SimDuration::from_secs(2));
        rm.record(SimTime::from_nanos(0), 100.0);
        rm.record(SimTime::from_nanos(1_000_000_000), 100.0);
        // Window covers both events: 200 units over 2 s = 100/s.
        assert!((rm.rate(SimTime::from_nanos(1_500_000_000)) - 100.0).abs() < 1e-9);
        // At t=2.5s the first event fell out of the window.
        assert!((rm.rate(SimTime::from_nanos(2_500_000_000)) - 50.0).abs() < 1e-9);
        // At t=3.5s both events fell out.
        assert!(rm.rate(SimTime::from_nanos(3_500_000_000)).abs() < 1e-9);
    }
}
