//! Simulated time: instants and durations with nanosecond resolution.
//!
//! All components of the simulation share a single notion of time, anchored
//! at the start of an experiment. Nanosecond `u64` arithmetic gives ~584
//! years of range, far beyond any migration run, while keeping every
//! computation exact and deterministic.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time.
///
/// # Examples
///
/// ```
/// use simkit::time::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// assert_eq!(d, SimDuration::from_secs(1) + SimDuration::from_millis(500));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: Self = Self(0);
    /// The maximum representable duration.
    pub const MAX: Self = Self(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative and non-finite inputs saturate to zero; values too large to
    /// represent saturate to [`SimDuration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Self::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            Self::MAX
        } else {
            Self(ns.round() as u64)
        }
    }

    /// Returns the duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole microseconds, truncating.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in whole milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration in whole seconds, truncating.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Adds two durations, saturating at [`SimDuration::MAX`].
    pub const fn saturating_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// Subtracts `rhs`, saturating at zero.
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by a fractional factor, saturating.
    pub fn mul_f64(self, factor: f64) -> Self {
        Self::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Self) -> Self {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Self) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = Self;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = Self;
    fn div(self, rhs: u64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, d| acc.saturating_add(d))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An instant of simulated time, measured from the start of the experiment.
///
/// # Examples
///
/// ```
/// use simkit::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.elapsed_since(SimTime::ZERO), SimDuration::from_secs(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The experiment epoch.
    pub const ZERO: Self = Self(0);

    /// Creates an instant `ns` nanoseconds after the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Returns nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn elapsed_since(self, earlier: Self) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("elapsed_since: earlier instant is in the future"),
        )
    }

    /// Returns the duration since `earlier`, or zero if `earlier` is later.
    pub const fn saturating_since(self, earlier: Self) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = Self;
    fn add(self, rhs: SimDuration) -> Self {
        Self(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = Self;
    fn sub(self, rhs: SimDuration) -> Self {
        Self(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: Self) -> SimDuration {
        self.elapsed_since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn duration_float_roundtrip() {
        let d = SimDuration::from_secs_f64(0.125);
        assert_eq!(d.as_nanos(), 125_000_000);
        assert_eq!(d.as_secs_f64(), 0.125);
    }

    #[test]
    fn duration_float_saturates() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(300);
        let b = SimDuration::from_millis(200);
        assert_eq!(a + b, SimDuration::from_millis(500));
        assert_eq!(a - b, SimDuration::from_millis(100));
        assert_eq!(a * 3, SimDuration::from_millis(900));
        assert_eq!(a / 3, SimDuration::from_millis(100));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO + SimDuration::from_secs(5);
        let t1 = t0 + SimDuration::from_millis(250);
        assert_eq!(t1 - t0, SimDuration::from_millis(250));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn elapsed_since_panics_on_future() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(1);
        let _ = t0.elapsed_since(t1);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
