//! The simulation clock shared by every component of an experiment.

use crate::time::{SimDuration, SimTime};

/// A monotonically advancing simulated clock.
///
/// The co-simulation driver owns the clock and advances it in small quanta;
/// everything else reads it. Keeping a single clock per experiment is what
/// makes runs deterministic and lets an "external" throughput analyzer
/// observe VM pauses, as the paper's probe does.
///
/// # Examples
///
/// ```
/// use simkit::clock::SimClock;
/// use simkit::time::SimDuration;
///
/// let mut clock = SimClock::new();
/// clock.advance(SimDuration::from_millis(3));
/// assert_eq!(clock.now().as_nanos(), 3_000_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Creates a clock at the experiment epoch.
    pub fn new() -> Self {
        Self { now: SimTime::ZERO }
    }

    /// Returns the current instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `dt` and returns the new instant.
    pub fn advance(&mut self, dt: SimDuration) -> SimTime {
        self.now += dt;
        self.now
    }

    /// Advances the clock to `target` if it lies in the future.
    ///
    /// Returns the time actually advanced, which is zero when `target` is in
    /// the past. Advancing to a past instant is a no-op rather than an error
    /// so that independent components can each "catch the clock up" to the
    /// completion time of overlapping activities.
    pub fn advance_to(&mut self, target: SimTime) -> SimDuration {
        let dt = target.saturating_since(self.now);
        self.now += dt;
        dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_epoch() {
        assert_eq!(SimClock::new().now(), SimTime::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let mut c = SimClock::new();
        c.advance(SimDuration::from_secs(1));
        c.advance(SimDuration::from_millis(500));
        assert_eq!(c.now().as_secs_f64(), 1.5);
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut c = SimClock::new();
        c.advance(SimDuration::from_secs(2));
        let moved = c.advance_to(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(moved, SimDuration::ZERO);
        assert_eq!(c.now().as_secs_f64(), 2.0);
        let moved = c.advance_to(SimTime::ZERO + SimDuration::from_secs(3));
        assert_eq!(moved, SimDuration::from_secs(1));
    }
}
