//! Bounded per-instrument sample rings: the observatory's raw material.
//!
//! A [`SampleSeries`] is a fixed-capacity ring of `f64` samples kept in
//! arrival order. Hot paths push one sample per sensing interval (or per
//! event, for irregular series) straight into the metrics registry — no
//! per-sample event records, so the cost model of [`super::recorder`]'s
//! counters and histograms carries over unchanged. The fleet scheduler's
//! cycle detector consumes uniform-cadence rings; the engine and LKM feed
//! irregular per-event rings (`cadence_ns == 0`) that exist purely for
//! post-hoc inspection in the JSONL / Prometheus exports and the digest.
//!
//! Determinism: a series is a pure function of the pushed `(time, value)`
//! sequence. Eviction is strictly oldest-first, summaries sort a copy of
//! the retained window, and no wall clock or RNG is involved — so two
//! same-seed runs export byte-identical series records.

use std::collections::VecDeque;

use crate::stats::percentile_nearest_rank;

use super::Subsystem;

/// A bounded ring of time-ordered `f64` samples.
///
/// # Examples
///
/// ```
/// use simkit::telemetry::series::SampleSeries;
///
/// let mut s = SampleSeries::new(1_000, 4);
/// for (i, v) in [5.0, 1.0, 9.0, 3.0, 7.0].iter().enumerate() {
///     s.push(i as u64 * 1_000, *v);
/// }
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.dropped(), 1); // the 5.0 fell off the front
/// assert_eq!(s.last(), Some(7.0));
/// assert_eq!(s.quantile(0.5), 3.0); // sorted copy: [1,3,7,9] -> rank 2
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSeries {
    cadence_ns: u64,
    capacity: usize,
    first_ns: u64,
    pushed: u64,
    values: VecDeque<f64>,
}

impl SampleSeries {
    /// Creates an empty series.
    ///
    /// `cadence_ns` is the nominal spacing between samples (0 for
    /// irregular per-event series); `capacity` bounds the retained window
    /// and must be non-zero.
    pub fn new(cadence_ns: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "series capacity must be positive");
        Self {
            cadence_ns,
            capacity,
            first_ns: 0,
            pushed: 0,
            values: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends one sample taken at simulated instant `at_ns`, evicting the
    /// oldest retained sample when the ring is full.
    pub fn push(&mut self, at_ns: u64, value: f64) {
        if self.pushed == 0 {
            self.first_ns = at_ns;
        }
        if self.values.len() == self.capacity {
            self.values.pop_front();
        }
        self.values.push_back(value);
        self.pushed += 1;
    }

    /// Nominal sample spacing in nanoseconds (0: irregular).
    pub fn cadence_ns(&self) -> u64 {
        self.cadence_ns
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Instant of the very first pushed sample (0 when empty).
    pub fn first_ns(&self) -> u64 {
        self.first_ns
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no sample was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total samples ever pushed (retained + evicted).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Samples evicted off the front of the ring.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.values.len() as u64
    }

    /// Instant of the oldest *retained* sample, assuming uniform cadence.
    ///
    /// For irregular series (`cadence_ns == 0`) this collapses to
    /// [`SampleSeries::first_ns`].
    pub fn start_ns(&self) -> u64 {
        self.first_ns + self.dropped() * self.cadence_ns
    }

    /// The retained samples, oldest first.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<f64> {
        self.values.back().copied()
    }

    /// Mean of the retained window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Nearest-rank quantile of the retained window, `q` in `(0, 1]`.
    ///
    /// The ring is in *time* order, but [`percentile_nearest_rank`]
    /// requires an ascending-*sorted* sample — passing the raw window
    /// would return whatever value happens to sit at the rank position,
    /// which is only coincidentally right for single-sample series. This
    /// sorts a copy first, so a single sample is every quantile of itself
    /// and the empty series propagates `NAN` (exported as `null`) instead
    /// of a fake observation.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "series quantile must be in (0, 1]");
        if self.values.is_empty() {
            return f64::NAN;
        }
        let mut sorted: Vec<f64> = self.values.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("series samples are finite"));
        percentile_nearest_rank(&sorted, q * 100.0)
    }
}

/// Snapshot of one named series, as exposed by
/// [`super::RunTelemetry::series`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesValue {
    /// Originating layer.
    pub subsystem: Subsystem,
    /// Series name, e.g. `"dirty_rate_bps"`.
    pub name: &'static str,
    /// The retained sample window.
    pub series: SampleSeries,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_first() {
        let mut s = SampleSeries::new(500, 3);
        for (t, v) in [(0u64, 1.0), (500, 2.0), (1000, 3.0), (1500, 4.0)] {
            s.push(t, v);
        }
        assert_eq!(s.values().collect::<Vec<_>>(), vec![2.0, 3.0, 4.0]);
        assert_eq!(s.pushed(), 4);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.first_ns(), 0);
        assert_eq!(s.start_ns(), 500, "oldest retained sample moved up");
    }

    #[test]
    fn empty_series_summaries_are_inert() {
        let s = SampleSeries::new(0, 8);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.last(), None);
        assert!(s.quantile(0.5).is_nan(), "no samples -> NaN, not 0");
    }

    #[test]
    fn single_sample_is_every_quantile_of_itself() {
        let mut s = SampleSeries::new(0, 8);
        s.push(42, 7.5);
        assert_eq!(s.quantile(0.01), 7.5);
        assert_eq!(s.quantile(0.5), 7.5);
        assert_eq!(s.quantile(0.95), 7.5);
        assert_eq!(s.quantile(1.0), 7.5);
        assert_eq!(s.mean(), 7.5);
        assert_eq!(s.last(), Some(7.5));
    }

    #[test]
    fn quantile_sorts_the_time_ordered_window() {
        let mut s = SampleSeries::new(0, 8);
        // Descending arrival order: the raw ring is maximally unsorted.
        for (i, v) in [9.0, 7.0, 5.0, 3.0, 1.0].iter().enumerate() {
            s.push(i as u64, *v);
        }
        assert_eq!(s.quantile(0.5), 5.0);
        assert_eq!(s.quantile(0.95), 9.0);
        assert_eq!(s.quantile(1.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "series quantile must be in (0, 1]")]
    fn quantile_rejects_out_of_range_q() {
        let mut s = SampleSeries::new(0, 2);
        s.push(0, 1.0);
        let _ = s.quantile(1.5);
    }

    #[test]
    fn identical_push_sequences_are_identical() {
        let feed = |s: &mut SampleSeries| {
            for i in 0..10u64 {
                s.push(i * 250, (i % 3) as f64);
            }
        };
        let mut a = SampleSeries::new(250, 4);
        let mut b = SampleSeries::new(250, 4);
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a, b);
    }
}
