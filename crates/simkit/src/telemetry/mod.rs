//! Cross-layer flight recorder: structured events, spans, metrics, export.
//!
//! Every migration run can carry a single shared [`Recorder`] through all
//! layers of the stack — the pre-copy engine, the guest kernel module, the
//! JVM and its collector, the network link and the workload. Each layer
//! tags what it emits with its [`Subsystem`], and three record shapes cover
//! everything the experiments need:
//!
//! - **events** — timestamped, sequence-numbered instants with structured
//!   key/value fields ([`Recorder::instant`]);
//! - **spans** — named intervals for phases such as pre-copy iterations,
//!   minor GCs, safepoint holds and stop-and-copy
//!   ([`Recorder::begin_span`] / [`Recorder::end_span`], or
//!   [`Recorder::record_span`] for costs computed after the fact);
//! - **metrics** — monotonically accumulating counters, last-value
//!   gauges and bounded sample rings ([`Recorder::counter_add`],
//!   [`Recorder::gauge`], [`Recorder::series_push`]).
//!
//! A [`Recorder`] is a cheap clonable handle; [`Recorder::disabled`] yields
//! a no-op recorder so instrumented code pays a single branch when
//! telemetry is off. After a run, [`Recorder::snapshot`] freezes
//! everything into a plain-data [`RunTelemetry`] which offers a post-hoc
//! span table (count/mean/p95/max per phase, built on [`crate::stats`])
//! and feeds the exporters in [`export`]: deterministic JSONL and Chrome
//! trace-event JSON loadable in Perfetto / `chrome://tracing`.
//!
//! Determinism: all timestamps come from the simulated clock and sequence
//! numbers from the recorder itself, so two same-seed runs produce
//! byte-identical exports.

pub mod causal;
pub mod export;
pub mod hist;
pub mod metrics;
pub mod recorder;
pub mod series;
pub mod shard;
pub mod span;

pub use causal::{CausalEvent, CausalId, CausalKind, CausalLog};
pub use hist::Histogram;
pub use metrics::{CounterValue, GaugeValue, HistogramValue};
pub use recorder::{Event, EventKind, Recorder, RunTelemetry, Value};
pub use series::{SampleSeries, SeriesValue};
pub use shard::ShardLedger;
pub use span::{SpanId, SpanRecord, SpanTableRow};

/// The layer of the stack an event originates from.
///
/// Doubles as the Chrome-trace "thread" a record is rendered on, so each
/// layer gets its own swim-lane in Perfetto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subsystem {
    /// The migration engine (pre-copy driver, stop-and-copy, resumption).
    Engine,
    /// The in-guest kernel module (bitmap walks, state machine).
    Lkm,
    /// The JVM process (safepoints, execution state).
    Jvm,
    /// The garbage collector (minor/enforced GCs, heap occupancy).
    Gc,
    /// The network link between source and destination hosts.
    Net,
    /// The application workload running inside the JVM.
    Workload,
    /// The fleet scheduler arbitrating concurrent migrations on one host.
    Fleet,
}

impl Subsystem {
    /// All subsystems, in swim-lane order.
    pub const ALL: [Subsystem; 7] = [
        Subsystem::Engine,
        Subsystem::Lkm,
        Subsystem::Jvm,
        Subsystem::Gc,
        Subsystem::Net,
        Subsystem::Workload,
        Subsystem::Fleet,
    ];

    /// Stable lower-case name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Subsystem::Engine => "engine",
            Subsystem::Lkm => "lkm",
            Subsystem::Jvm => "jvm",
            Subsystem::Gc => "gc",
            Subsystem::Net => "net",
            Subsystem::Workload => "workload",
            Subsystem::Fleet => "fleet",
        }
    }

    /// Swim-lane index (Chrome trace `tid`).
    pub fn lane(self) -> u32 {
        match self {
            Subsystem::Engine => 0,
            Subsystem::Lkm => 1,
            Subsystem::Jvm => 2,
            Subsystem::Gc => 3,
            Subsystem::Net => 4,
            Subsystem::Workload => 5,
            Subsystem::Fleet => 6,
        }
    }
}

impl std::fmt::Display for Subsystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}
