//! Deterministic exporters: JSONL and Chrome trace-event JSON.
//!
//! Both formats are emitted with hand-rolled serialisation (no external
//! JSON dependency) and fully deterministic ordering/formatting, so two
//! same-seed runs produce byte-identical files. The Chrome trace output
//! follows the trace-event format understood by Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`: one `M` metadata
//! record naming each subsystem lane, `X` complete events for spans, `i`
//! instant events, and `C` counter events for gauge samples.

use std::fmt::Write as _;
use std::io::{self, Write};

use super::recorder::{Event, EventKind, RunTelemetry, Value};
use super::Subsystem;

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (non-finite values become `null`).
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        // Rust's shortest-roundtrip Display never uses an exponent, so the
        // output is always a valid JSON number; it is also deterministic.
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn fmt_value(v: &Value) -> String {
    match v {
        Value::U64(x) => format!("{x}"),
        Value::F64(x) => fmt_f64(*x),
        Value::Bool(b) => format!("{b}"),
        Value::Str(s) => format!("\"{}\"", escape_json(s)),
        Value::Dur(d) => format!("{}", d.as_nanos()),
    }
}

fn fmt_fields(fields: &[(&'static str, Value)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape_json(k), fmt_value(v));
    }
    out.push('}');
    out
}

/// Microseconds with fixed 3-decimal nanosecond precision, via integer
/// math so formatting is exact and deterministic.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Serialises the telemetry as JSON Lines: one record per line — events in
/// sequence order, then spans by `(start, id)`, then counters, then gauge
/// summaries, then histogram summaries, then bounded-series summaries.
/// Byte-identical across same-seed runs.
pub fn jsonl_to_string(t: &RunTelemetry) -> String {
    let mut out = String::new();
    for e in &t.events {
        let _ = write!(
            out,
            "{{\"type\":\"event\",\"seq\":{},\"at_ns\":{},\"sub\":\"{}\",\"name\":\"{}\"",
            e.seq,
            e.at.as_nanos(),
            e.subsystem,
            escape_json(e.name),
        );
        match e.kind {
            EventKind::Instant => out.push_str(",\"kind\":\"instant\""),
            EventKind::Gauge(v) => {
                let _ = write!(out, ",\"kind\":\"gauge\",\"value\":{}", fmt_f64(v));
            }
        }
        if !e.fields.is_empty() {
            let _ = write!(out, ",\"fields\":{}", fmt_fields(&e.fields));
        }
        out.push_str("}\n");
    }
    for s in &t.spans {
        let _ = write!(
            out,
            "{{\"type\":\"span\",\"sub\":\"{}\",\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"dur_ns\":{}",
            s.subsystem,
            escape_json(s.name),
            s.start.as_nanos(),
            s.end.as_nanos(),
            s.duration().as_nanos(),
        );
        if !s.fields.is_empty() {
            let _ = write!(out, ",\"fields\":{}", fmt_fields(&s.fields));
        }
        out.push_str("}\n");
    }
    for c in &t.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"sub\":\"{}\",\"name\":\"{}\",\"value\":{}}}",
            c.subsystem,
            escape_json(c.name),
            c.value,
        );
    }
    for g in &t.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"sub\":\"{}\",\"name\":\"{}\",\"last\":{},\"min\":{},\"max\":{},\"samples\":{}}}",
            g.subsystem,
            escape_json(g.name),
            fmt_f64(g.last),
            fmt_f64(g.min),
            fmt_f64(g.max),
            g.samples,
        );
    }
    for h in &t.hists {
        let _ = writeln!(
            out,
            "{{\"type\":\"hist\",\"sub\":\"{}\",\"name\":\"{}\",\"count\":{},\"min\":{},\"max\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            h.subsystem,
            escape_json(h.name),
            h.hist.count(),
            h.hist.min(),
            h.hist.max(),
            h.hist.sum(),
            h.hist.quantile(0.50),
            h.hist.quantile(0.95),
            h.hist.quantile(0.99),
        );
    }
    for s in &t.series {
        let _ = writeln!(
            out,
            "{{\"type\":\"series\",\"sub\":\"{}\",\"name\":\"{}\",\"count\":{},\"dropped\":{},\"cadence_ns\":{},\"first_ns\":{},\"mean\":{},\"last\":{},\"p50\":{},\"p95\":{}}}",
            s.subsystem,
            escape_json(s.name),
            s.series.len(),
            s.series.dropped(),
            s.series.cadence_ns(),
            s.series.first_ns(),
            fmt_f64(s.series.mean()),
            fmt_f64(s.series.last().unwrap_or(f64::NAN)),
            fmt_f64(s.series.quantile(0.50)),
            fmt_f64(s.series.quantile(0.95)),
        );
    }
    out
}

/// Writes [`jsonl_to_string`] to `w`.
pub fn write_jsonl<W: Write>(t: &RunTelemetry, w: &mut W) -> io::Result<()> {
    w.write_all(jsonl_to_string(t).as_bytes())
}

fn chrome_instant(out: &mut String, e: &Event) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{}",
        escape_json(e.name),
        e.subsystem,
        e.subsystem.lane(),
        fmt_us(e.at.as_nanos()),
    );
    if !e.fields.is_empty() {
        let _ = write!(out, ",\"args\":{}", fmt_fields(&e.fields));
    }
    out.push('}');
}

fn chrome_gauge(out: &mut String, e: &Event, value: f64) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"C\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{\"value\":{}}}}}",
        escape_json(e.name),
        e.subsystem,
        e.subsystem.lane(),
        fmt_us(e.at.as_nanos()),
        fmt_f64(value),
    );
}

/// Serialises the telemetry in Chrome trace-event format (a JSON object
/// with a `traceEvents` array), loadable in Perfetto. Spans become `X`
/// complete events so overlapping phases in one lane render correctly.
pub fn chrome_trace_to_string(t: &RunTelemetry) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };
    for sub in Subsystem::ALL {
        push(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            sub.lane(),
            sub,
        );
    }
    for s in &t.spans {
        push(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
            escape_json(s.name),
            s.subsystem,
            s.subsystem.lane(),
            fmt_us(s.start.as_nanos()),
            fmt_us(s.duration().as_nanos()),
        );
        if !s.fields.is_empty() {
            let _ = write!(out, ",\"args\":{}", fmt_fields(&s.fields));
        }
        out.push('}');
    }
    for e in &t.events {
        push(&mut out, &mut first);
        match e.kind {
            EventKind::Instant => chrome_instant(&mut out, e),
            EventKind::Gauge(v) => chrome_gauge(&mut out, e, v),
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Writes [`chrome_trace_to_string`] to `w`.
pub fn write_chrome_trace<W: Write>(t: &RunTelemetry, w: &mut W) -> io::Result<()> {
    w.write_all(chrome_trace_to_string(t).as_bytes())
}

/// Serialises the metrics registry in Prometheus text exposition format,
/// for human `diff`ing across runs: counters as `javmm_counter`, gauges as
/// `javmm_gauge` (last value), histograms as `javmm_hist_count/_sum`,
/// quantile-labelled `javmm_hist` samples and `javmm_hist_max`, and
/// bounded series as `javmm_series_count/_mean/_last` plus
/// quantile-labelled `javmm_series` samples. Ordering follows the
/// registry's `(subsystem, name)` sort, so output is byte-deterministic.
pub fn prometheus_to_string(t: &RunTelemetry) -> String {
    let mut out = String::new();
    out.push_str("# TYPE javmm_counter counter\n");
    for c in &t.counters {
        let _ = writeln!(
            out,
            "javmm_counter{{sub=\"{}\",name=\"{}\"}} {}",
            c.subsystem,
            escape_json(c.name),
            c.value,
        );
    }
    out.push_str("# TYPE javmm_gauge gauge\n");
    for g in &t.gauges {
        let _ = writeln!(
            out,
            "javmm_gauge{{sub=\"{}\",name=\"{}\"}} {}",
            g.subsystem,
            escape_json(g.name),
            fmt_f64(g.last),
        );
    }
    out.push_str("# TYPE javmm_hist summary\n");
    for h in &t.hists {
        let base = format!("sub=\"{}\",name=\"{}\"", h.subsystem, escape_json(h.name));
        let _ = writeln!(out, "javmm_hist_count{{{base}}} {}", h.hist.count());
        let _ = writeln!(out, "javmm_hist_sum{{{base}}} {}", h.hist.sum());
        for (label, q) in [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)] {
            let _ = writeln!(
                out,
                "javmm_hist{{{base},quantile=\"{label}\"}} {}",
                h.hist.quantile(q),
            );
        }
        let _ = writeln!(out, "javmm_hist_max{{{base}}} {}", h.hist.max());
    }
    out.push_str("# TYPE javmm_series gauge\n");
    for s in &t.series {
        let base = format!("sub=\"{}\",name=\"{}\"", s.subsystem, escape_json(s.name));
        let _ = writeln!(out, "javmm_series_count{{{base}}} {}", s.series.len());
        let _ = writeln!(
            out,
            "javmm_series_mean{{{base}}} {}",
            fmt_f64(s.series.mean())
        );
        let _ = writeln!(
            out,
            "javmm_series_last{{{base}}} {}",
            fmt_f64(s.series.last().unwrap_or(f64::NAN)),
        );
        for (label, q) in [("0.5", 0.50), ("0.95", 0.95)] {
            let _ = writeln!(
                out,
                "javmm_series{{{base},quantile=\"{label}\"}} {}",
                fmt_f64(s.series.quantile(q)),
            );
        }
    }
    out
}

/// Borrowed view of one network pipe's sampled timelines, for Prometheus
/// export. `simkit` cannot see the network simulator's topology types, so
/// callers (the bench harness, integration tests) construct these views
/// over whatever owns the series and pass them in pipe order.
pub struct PipeSeriesView<'a> {
    /// Pipe name as labelled in the topology (e.g. `core`, `rack-a:ingress`).
    pub name: &'a str,
    /// Bounded utilization-fraction series (`0.0..=1.0` per sample).
    pub utilization: &'a super::SampleSeries,
    /// Bounded queued-demand series (bytes/sec of admitted minimum rates).
    pub queued_demand: &'a super::SampleSeries,
}

fn pipe_family<'a>(
    out: &mut String,
    family: &str,
    pipes: &'a [PipeSeriesView<'a>],
    pick: &dyn Fn(&'a PipeSeriesView<'a>) -> &'a super::SampleSeries,
) {
    let _ = writeln!(out, "# TYPE {family} gauge");
    for p in pipes {
        let series = pick(p);
        let base = format!("pipe=\"{}\"", escape_json(p.name));
        let _ = writeln!(
            out,
            "{family}{{{base}}} {}",
            fmt_f64(series.last().unwrap_or(f64::NAN)),
        );
        let _ = writeln!(out, "{family}_mean{{{base}}} {}", fmt_f64(series.mean()));
        for (label, q) in [("0.5", 0.50), ("0.95", 0.95)] {
            let _ = writeln!(
                out,
                "{family}{{{base},quantile=\"{label}\"}} {}",
                fmt_f64(series.quantile(q)),
            );
        }
    }
}

/// Serialises per-pipe utilization and queued-demand timelines in
/// Prometheus text exposition format: the `javmm_pipe_utilization` and
/// `javmm_pipe_queued_demand` gauge families, each with a `pipe`-labelled
/// latest sample, a `_mean` over the retained window, and
/// quantile-labelled summaries. Pipes are emitted in caller order, so two
/// same-seed runs produce byte-identical expositions.
pub fn pipes_prometheus_to_string(pipes: &[PipeSeriesView<'_>]) -> String {
    let mut out = String::new();
    pipe_family(&mut out, "javmm_pipe_utilization", pipes, &|p| {
        p.utilization
    });
    pipe_family(&mut out, "javmm_pipe_queued_demand", pipes, &|p| {
        p.queued_demand
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Recorder;
    use crate::time::{SimDuration, SimTime};

    fn sample() -> RunTelemetry {
        let rec = Recorder::new();
        let t1 = SimTime::from_nanos(1_500);
        rec.instant(
            t1,
            Subsystem::Engine,
            "begin",
            vec![("label", "say \"hi\"\n".into()), ("iter", 3u64.into())],
        );
        rec.gauge(
            SimTime::from_nanos(2_000),
            Subsystem::Net,
            "utilization",
            0.25,
        );
        rec.record_span(
            t1,
            Subsystem::Gc,
            "minor_gc",
            SimDuration::from_nanos(4_500),
            vec![("promoted", 7u64.into()), ("enforced", false.into())],
        );
        rec.counter_add(Subsystem::Lkm, "pages_walked", 42);
        rec.snapshot()
    }

    #[test]
    fn escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(
            escape_json("a\"b\\c\nd\te\u{1}"),
            "a\\\"b\\\\c\\nd\\te\\u0001"
        );
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn jsonl_has_one_record_per_line_in_fixed_order() {
        let text = jsonl_to_string(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"type\":\"event\"") && lines[0].contains("\"seq\":0"));
        assert!(lines[0].contains("\"label\":\"say \\\"hi\\\"\\n\""));
        assert!(lines[1].contains("\"kind\":\"gauge\"") && lines[1].contains("\"value\":0.25"));
        assert!(lines[2].contains("\"type\":\"span\"") && lines[2].contains("\"dur_ns\":4500"));
        assert!(lines[3].contains("\"type\":\"counter\"") && lines[3].contains("\"value\":42"));
        assert!(lines[4].contains("\"type\":\"gauge\"") && lines[4].contains("\"samples\":1"));
        // Every line is a balanced JSON object.
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            let opens = line.matches('{').count();
            assert_eq!(opens, line.matches('}').count());
        }
    }

    #[test]
    fn chrome_trace_contains_all_record_shapes() {
        let text = chrome_trace_to_string(&sample());
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        // Lane metadata for all six subsystems.
        for sub in Subsystem::ALL {
            assert!(text.contains(&format!("\"args\":{{\"name\":\"{sub}\"}}")));
        }
        // Span -> X with microsecond ts/dur (1500 ns = 1.500 us).
        assert!(text.contains("\"ph\":\"X\"") && text.contains("\"ts\":1.500"));
        assert!(text.contains("\"dur\":4.500"));
        // Instant and gauge records.
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"ph\":\"C\""));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample();
        let b = sample();
        assert_eq!(jsonl_to_string(&a), jsonl_to_string(&b));
        assert_eq!(chrome_trace_to_string(&a), chrome_trace_to_string(&b));
        assert_eq!(prometheus_to_string(&a), prometheus_to_string(&b));
    }

    fn sample_with_hist() -> RunTelemetry {
        let rec = Recorder::new();
        rec.counter_add(Subsystem::Lkm, "pages_walked", 42);
        for v in [100u64, 200, 300] {
            rec.hist(Subsystem::Engine, "iteration_pages_sent", v);
        }
        rec.snapshot()
    }

    #[test]
    fn jsonl_appends_hist_lines_after_gauges() {
        let text = jsonl_to_string(&sample_with_hist());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"counter\""));
        assert!(lines[1].contains("\"type\":\"hist\""));
        assert!(lines[1].contains("\"sub\":\"engine\""));
        assert!(lines[1].contains("\"count\":3"));
        assert!(lines[1].contains("\"sum\":600"));
    }

    #[test]
    fn prometheus_exposition_names_every_metric_family() {
        let text = prometheus_to_string(&sample_with_hist());
        assert!(text.contains("javmm_counter{sub=\"lkm\",name=\"pages_walked\"} 42"));
        assert!(text.contains("javmm_hist_count{sub=\"engine\",name=\"iteration_pages_sent\"} 3"));
        assert!(text.contains("javmm_hist_sum{sub=\"engine\",name=\"iteration_pages_sent\"} 600"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("javmm_hist_max{sub=\"engine\",name=\"iteration_pages_sent\"}"));
        assert!(text.contains("# TYPE javmm_series gauge"));
    }

    fn sample_with_series() -> RunTelemetry {
        let rec = Recorder::new();
        for (i, v) in [40.0, 10.0, 30.0, 20.0].iter().enumerate() {
            rec.series_push(
                Subsystem::Jvm,
                "dirty_rate_bps",
                500_000_000,
                3,
                SimTime::from_nanos(i as u64 * 500_000_000),
                *v,
            );
        }
        rec.series_push(
            Subsystem::Engine,
            "iteration_dirty_pages",
            0,
            8,
            SimTime::from_nanos(1),
            77.0,
        );
        rec.snapshot()
    }

    #[test]
    fn jsonl_appends_series_lines_after_hists() {
        let text = jsonl_to_string(&sample_with_series());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // Engine sorts before Jvm; the single-sample series reports its
        // one observation as every quantile.
        assert!(lines[0].contains("\"type\":\"series\""));
        assert!(lines[0].contains("\"sub\":\"engine\""));
        assert!(lines[0].contains("\"count\":1"));
        assert!(lines[0].contains("\"p50\":77") && lines[0].contains("\"p95\":77"));
        // The Jvm ring (capacity 3) dropped the first sample; summaries
        // are over the sorted retained window [10,20,30].
        assert!(lines[1].contains("\"sub\":\"jvm\""));
        assert!(lines[1].contains("\"count\":3") && lines[1].contains("\"dropped\":1"));
        assert!(lines[1].contains("\"cadence_ns\":500000000"));
        assert!(lines[1].contains("\"last\":20") && lines[1].contains("\"p50\":20"));
        assert!(lines[1].contains("\"p95\":30"));
    }

    #[test]
    fn pipe_exposition_is_labelled_and_deterministic() {
        use crate::telemetry::SampleSeries;
        let mut util = SampleSeries::new(0, 8);
        let mut demand = SampleSeries::new(0, 8);
        for (i, (u, d)) in [(0.5, 1e8), (0.75, 2e8), (1.0, 1.5e8)].iter().enumerate() {
            util.push(i as u64 * 1_000, *u);
            demand.push(i as u64 * 1_000, *d);
        }
        let views = [PipeSeriesView {
            name: "core",
            utilization: &util,
            queued_demand: &demand,
        }];
        let text = pipes_prometheus_to_string(&views);
        assert!(text.contains("# TYPE javmm_pipe_utilization gauge"));
        assert!(text.contains("# TYPE javmm_pipe_queued_demand gauge"));
        assert!(text.contains("javmm_pipe_utilization{pipe=\"core\"} 1"));
        assert!(text.contains("javmm_pipe_utilization_mean{pipe=\"core\"} 0.75"));
        assert!(text.contains("javmm_pipe_utilization{pipe=\"core\",quantile=\"0.95\"} 1"));
        assert!(text.contains("javmm_pipe_queued_demand{pipe=\"core\"} 150000000"));
        assert_eq!(text, pipes_prometheus_to_string(&views));
        // Empty series expose as null samples, never a panic.
        let empty = SampleSeries::new(0, 2);
        let bare = [PipeSeriesView {
            name: "idle",
            utilization: &empty,
            queued_demand: &empty,
        }];
        assert!(pipes_prometheus_to_string(&bare)
            .contains("javmm_pipe_utilization{pipe=\"idle\"} null"));
    }

    #[test]
    fn prometheus_exports_series_family() {
        let text = prometheus_to_string(&sample_with_series());
        assert!(text.contains("javmm_series_count{sub=\"jvm\",name=\"dirty_rate_bps\"} 3"));
        assert!(text.contains("javmm_series_mean{sub=\"jvm\",name=\"dirty_rate_bps\"} 20"));
        assert!(text.contains("javmm_series_last{sub=\"jvm\",name=\"dirty_rate_bps\"} 20"));
        assert!(
            text.contains("javmm_series{sub=\"jvm\",name=\"dirty_rate_bps\",quantile=\"0.95\"} 30")
        );
        assert!(
            text.contains("javmm_series_count{sub=\"engine\",name=\"iteration_dirty_pages\"} 1")
        );
    }
}
