//! Per-worker counter cells with a deterministic merge.
//!
//! The parallel scan pipeline wants each worker to bump counters without
//! taking the recorder lock on the hot path, and — more importantly —
//! wants the merged totals to be *identical no matter how many workers
//! ran*. A [`ShardLedger`] is a fixed table of counter names × worker
//! cells: workers get disjoint `&mut [u64]` rows (hand them out via
//! [`ShardLedger::rows_mut`] inside a scoped-thread block), and
//! [`ShardLedger::flush`] folds the cells in worker order into plain
//! totals before handing them to [`Recorder::counter_add`].
//!
//! Because counter addition over `u64` is commutative and associative,
//! the totals depend only on *what work was done*, not on which worker
//! did it or in what order — which is exactly the worker-count
//! independence the digest byte-identity contract needs.

use super::Recorder;
use super::Subsystem;

/// Fixed-shape table of per-worker counter cells.
///
/// Rows are counter names (fixed at construction), columns are workers.
/// The backing storage is one flat `Vec<u64>` laid out worker-major so a
/// single worker's cells are one contiguous chunk — that is what lets
/// `rows_mut` return disjoint mutable slices without unsafe code.
#[derive(Debug)]
pub struct ShardLedger {
    names: &'static [&'static str],
    workers: usize,
    /// worker-major: `cells[w * names.len() + n]`.
    cells: Vec<u64>,
}

impl ShardLedger {
    /// Creates a ledger for `workers` workers over the given counter
    /// names. All cells start at zero.
    pub fn new(names: &'static [&'static str], workers: usize) -> Self {
        let workers = workers.max(1);
        ShardLedger {
            names,
            workers,
            cells: vec![0; names.len() * workers],
        }
    }

    /// Number of worker columns.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Counter names, in row order (the order `rows_mut` slices use).
    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Hands out one disjoint mutable cell-slice per worker, in worker
    /// order. Each slice has `names().len()` entries indexed by counter
    /// row. Intended for `std::thread::scope`: move one slice into each
    /// worker closure.
    pub fn rows_mut(&mut self) -> std::slice::ChunksMut<'_, u64> {
        self.cells.chunks_mut(self.names.len().max(1))
    }

    /// Cell accessor for the single-worker / inline path.
    pub fn add(&mut self, worker: usize, row: usize, delta: u64) {
        let idx = worker * self.names.len() + row;
        self.cells[idx] += delta;
    }

    /// Merged total for one counter row, folding cells in worker order.
    pub fn total(&self, row: usize) -> u64 {
        (0..self.workers)
            .map(|w| self.cells[w * self.names.len() + row])
            .sum()
    }

    /// Resets every cell to zero (arena reuse between iterations).
    pub fn clear(&mut self) {
        self.cells.fill(0);
    }

    /// Folds each row across workers (worker order, deterministic) and
    /// adds any non-zero total to `recorder` under `subsystem`. Clears
    /// the ledger afterwards so it can be reused.
    ///
    /// Zero totals are skipped so a ledger that saw no work leaves the
    /// recorder untouched — runs that never enter the parallel path stay
    /// byte-identical to runs recorded before the ledger existed.
    pub fn flush(&mut self, recorder: &Recorder, subsystem: Subsystem) {
        for (row, name) in self.names.iter().enumerate() {
            let total = self.total(row);
            if total > 0 {
                recorder.counter_add(subsystem, name, total);
            }
        }
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAMES: &[&str] = &["alpha", "beta"];

    #[test]
    fn totals_are_worker_count_independent() {
        // The same work split across 1 and 4 workers merges identically.
        let mut one = ShardLedger::new(NAMES, 1);
        one.add(0, 0, 10);
        one.add(0, 1, 7);

        let mut four = ShardLedger::new(NAMES, 4);
        four.add(0, 0, 3);
        four.add(1, 0, 4);
        four.add(3, 0, 3);
        four.add(2, 1, 7);

        assert_eq!(one.total(0), four.total(0));
        assert_eq!(one.total(1), four.total(1));
    }

    #[test]
    fn rows_mut_hands_out_disjoint_worker_slices() {
        let mut ledger = ShardLedger::new(NAMES, 3);
        for (w, row) in ledger.rows_mut().enumerate() {
            assert_eq!(row.len(), NAMES.len());
            row[0] = (w as u64 + 1) * 2;
            row[1] = w as u64;
        }
        assert_eq!(ledger.total(0), 2 + 4 + 6);
        assert_eq!(ledger.total(1), 1 + 2);
    }

    #[test]
    fn flush_skips_zero_totals_and_clears() {
        let recorder = Recorder::disabled();
        let mut ledger = ShardLedger::new(NAMES, 2);
        ledger.add(1, 1, 5);
        ledger.flush(&recorder, Subsystem::Engine);
        assert_eq!(ledger.total(0), 0);
        assert_eq!(ledger.total(1), 0);
    }
}
