//! Phase spans and the post-hoc latency table.

use crate::stats::{percentile_nearest_rank, SampleStats};
use crate::time::{SimDuration, SimTime};

use super::recorder::Value;
use super::Subsystem;

/// Opaque identifier of one span within a recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    pub(crate) fn new(raw: u64) -> Self {
        SpanId(raw)
    }

    /// The id handed out by disabled recorders; never matches a real span.
    pub(crate) fn invalid() -> Self {
        SpanId(u64::MAX)
    }

    pub(crate) fn raw(self) -> u64 {
        self.0
    }
}

/// One closed phase interval.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Recording-unique span id.
    pub id: SpanId,
    /// Originating layer.
    pub subsystem: Subsystem,
    /// Phase name, e.g. `"precopy_iteration"`.
    pub name: &'static str,
    /// When the phase started.
    pub start: SimTime,
    /// When the phase ended (`>= start`).
    pub end: SimTime,
    /// Structured payload (open-time fields, then close-time fields).
    pub fields: Vec<(&'static str, Value)>,
}

impl SpanRecord {
    /// The phase's duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// Looks up a field by key (last write wins).
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields
            .iter()
            .rev()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// One row of the per-phase latency table.
#[derive(Debug, Clone)]
pub struct SpanTableRow {
    /// Originating layer.
    pub subsystem: Subsystem,
    /// Phase name.
    pub name: &'static str,
    /// Number of spans of this phase.
    pub count: u64,
    /// Mean duration.
    pub mean: SimDuration,
    /// 95th-percentile duration (nearest rank).
    pub p95: SimDuration,
    /// Longest duration.
    pub max: SimDuration,
    /// Summed duration across all spans of the phase.
    pub total: SimDuration,
}

/// Builds the latency table: one row per distinct `(subsystem, name)`,
/// sorted by subsystem lane then name.
pub fn build_span_table(spans: &[SpanRecord]) -> Vec<SpanTableRow> {
    let mut groups: std::collections::BTreeMap<(u32, &'static str), Vec<f64>> =
        std::collections::BTreeMap::new();
    for s in spans {
        groups
            .entry((s.subsystem.lane(), s.name))
            .or_default()
            .push(s.duration().as_nanos() as f64);
    }
    groups
        .into_iter()
        .map(|((lane, name), mut durs)| {
            durs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
            let mut stats = SampleStats::new();
            let mut total = 0.0;
            for &d in &durs {
                stats.add(d);
                total += d;
            }
            SpanTableRow {
                subsystem: Subsystem::ALL[lane as usize],
                name,
                count: stats.count(),
                mean: SimDuration::from_nanos(stats.mean().round() as u64),
                p95: SimDuration::from_nanos(percentile_nearest_rank(&durs, 95.0).round() as u64),
                max: SimDuration::from_nanos(stats.max().round() as u64),
                total: SimDuration::from_nanos(total.round() as u64),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(sub: Subsystem, name: &'static str, start_ms: u64, dur_ms: u64) -> SpanRecord {
        let start = SimTime::from_nanos(start_ms * 1_000_000);
        SpanRecord {
            id: SpanId::new(start_ms),
            subsystem: sub,
            name,
            start,
            end: start + SimDuration::from_millis(dur_ms),
            fields: Vec::new(),
        }
    }

    #[test]
    fn table_groups_and_summarises() {
        let spans = vec![
            span(Subsystem::Gc, "minor_gc", 0, 10),
            span(Subsystem::Gc, "minor_gc", 20, 30),
            span(Subsystem::Gc, "minor_gc", 60, 20),
            span(Subsystem::Engine, "stop_and_copy", 100, 50),
        ];
        let table = build_span_table(&spans);
        assert_eq!(table.len(), 2);
        // Engine lane sorts before Gc lane.
        assert_eq!(table[0].name, "stop_and_copy");
        assert_eq!(table[0].count, 1);
        let gc = &table[1];
        assert_eq!(gc.count, 3);
        assert_eq!(gc.mean, SimDuration::from_millis(20));
        assert_eq!(gc.p95, SimDuration::from_millis(30));
        assert_eq!(gc.max, SimDuration::from_millis(30));
        assert_eq!(gc.total, SimDuration::from_millis(60));
    }

    #[test]
    fn field_lookup_is_last_write_wins() {
        let mut s = span(Subsystem::Lkm, "final_bitmap_update", 0, 1);
        s.fields.push(("pages", Value::U64(1)));
        s.fields.push(("pages", Value::U64(9)));
        assert_eq!(s.field("pages"), Some(&Value::U64(9)));
        assert_eq!(s.field("missing"), None);
    }
}
