//! Deterministic log-bucketed latency histograms.
//!
//! HDR-style: values below 32 land in exact unit buckets; larger values
//! are bucketed logarithmically with 16 sub-buckets per power of two,
//! bounding the relative quantile error at 1/16 (6.25%). Bucket
//! boundaries are fixed at compile time — no auto-resizing, no
//! allocation-order dependence — so two runs that record the same value
//! sequence produce byte-identical serialized histograms. That property
//! is what lets digests of repeated simulation runs be compared with
//! `cmp`.
//!
//! Recording is a pure function of the value (no RNG, no wall clock), so
//! histograms are safe to record from simulation hot paths without
//! perturbing determinism.

use std::collections::BTreeMap;

/// Number of exact unit buckets (values `0..LINEAR_MAX` map to bucket
/// index = value).
const LINEAR_MAX: u64 = 32;
/// Sub-buckets per power of two in the logarithmic range.
const SUB_BUCKETS: u32 = 16;

/// A deterministic log-bucketed histogram of `u64` samples.
///
/// Typical use records durations in nanoseconds; any non-negative
/// integer quantity (pages, bytes, counts) works the same way.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Sparse bucket occupancy, keyed by bucket index.
    buckets: BTreeMap<u16, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Maps a value to its bucket index.
///
/// Values `< 32` map to themselves. For `v >= 32` with
/// `exp = floor(log2 v)`, the bucket is `32 + (exp-5)*16 + top-4-bits
/// below the leading bit`. The mapping is monotone non-decreasing in
/// `v`, and the largest possible index (for `u64::MAX`) is 975, so a
/// `u16` key always suffices.
fn bucket_index(v: u64) -> u16 {
    if v < LINEAR_MAX {
        return v as u16;
    }
    let exp = 63 - v.leading_zeros(); // >= 5
    let sub = ((v >> (exp - 4)) & 0xF) as u16;
    LINEAR_MAX as u16 + (exp as u16 - 5) * SUB_BUCKETS as u16 + sub
}

/// The inclusive upper bound of a bucket: the largest value that maps to
/// this index. Used to answer quantile queries pessimistically (the true
/// sample is never above the reported quantile's bucket bound).
fn bucket_upper_bound(idx: u16) -> u64 {
    let idx = idx as u64;
    if idx < LINEAR_MAX {
        return idx;
    }
    let oct = (idx - LINEAR_MAX) / SUB_BUCKETS as u64;
    let sub = (idx - LINEAR_MAX) % SUB_BUCKETS as u64;
    let exp = 5 + oct as u32;
    let low = (1u64 << exp) + (sub << (exp - 4));
    low + (1u64 << (exp - 4)) - 1
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Nearest-rank quantile estimate for `q` in `(0, 1]`.
    ///
    /// Walks cumulative bucket counts to the sample of rank
    /// `ceil(q * count)` and returns that bucket's upper bound, clamped
    /// into `[min, max]` so exact extremes are reported exactly — in
    /// particular, a single-sample histogram reports that sample for
    /// every quantile, matching
    /// [`crate::stats::percentile_nearest_rank`]'s contract. Returns 0
    /// for an empty histogram. Relative error is bounded by the bucket
    /// width: at most 1/16 above the true sample.
    pub fn quantile(&self, q: f64) -> u64 {
        debug_assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        // Every value below 32 has its own bucket, so quantiles are exact.
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn bucket_index_is_monotone_across_the_log_range() {
        // Dense sweep through the first octaves, then octave-stepped
        // probes up to the top of the u64 range.
        let mut prev = bucket_index(0);
        for v in 1..=4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "non-monotone at {v}");
            prev = idx;
        }
        let mut v = 4096u64;
        while v < u64::MAX / 4 {
            for cand in [v, v + v / 16, v + v / 2, v * 2 - 1] {
                let idx = bucket_index(cand);
                assert!(idx >= prev, "non-monotone at {cand}");
                prev = idx;
            }
            v *= 2;
        }
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(63), 47);
        assert_eq!(bucket_index(64), 48);
        assert!(bucket_index(u64::MAX) <= 975);
    }

    #[test]
    fn upper_bound_contains_its_own_bucket() {
        for v in [0, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, u64::MAX / 3] {
            let idx = bucket_index(v);
            let ub = bucket_upper_bound(idx);
            assert!(ub >= v, "upper bound {ub} below sample {v}");
            assert_eq!(bucket_index(ub), idx, "upper bound escapes bucket of {v}");
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 37); // spread across many octaves
        }
        let p99 = h.quantile(0.99);
        let exact = 9_900 * 37;
        assert!(p99 >= exact, "quantile below true rank value");
        assert!((p99 as f64) <= exact as f64 * 1.0626, "error above 1/16");
    }

    #[test]
    fn single_sample_is_every_quantile_of_itself() {
        // A lone sample in a log bucket must not be reported as the
        // bucket's upper bound: the [min, max] clamp pins it exactly.
        let mut h = Histogram::new();
        h.record(1_000_003);
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 1_000_003);
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn identical_sequences_yield_identical_histograms() {
        let feed = |h: &mut Histogram| {
            for v in [5u64, 900, 32, 7_777_777, 0, 63, 64] {
                h.record(v);
            }
        };
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1u64, 50, 5000] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 60, 6000, 600_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
