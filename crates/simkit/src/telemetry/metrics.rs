//! Counter / gauge / histogram registry backing the recorder's metrics.

use std::collections::BTreeMap;

use super::hist::Histogram;
use super::series::{SampleSeries, SeriesValue};
use super::Subsystem;

/// Final value of one monotone counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterValue {
    /// Originating layer.
    pub subsystem: Subsystem,
    /// Counter name, e.g. `"pages_walked"`.
    pub name: &'static str,
    /// Accumulated value.
    pub value: u64,
}

/// Summary of one gauge over the run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeValue {
    /// Originating layer.
    pub subsystem: Subsystem,
    /// Gauge name, e.g. `"eden_used_bytes"`.
    pub name: &'static str,
    /// Last sampled value.
    pub last: f64,
    /// Smallest sampled value.
    pub min: f64,
    /// Largest sampled value.
    pub max: f64,
    /// Number of samples taken.
    pub samples: u64,
}

#[derive(Debug, Clone)]
struct GaugeState {
    last: f64,
    min: f64,
    max: f64,
    samples: u64,
}

/// Snapshot of one latency histogram over the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramValue {
    /// Originating layer.
    pub subsystem: Subsystem,
    /// Histogram name, e.g. `"iteration_duration_ns"`.
    pub name: &'static str,
    /// The recorded distribution.
    pub hist: Histogram,
}

/// The registry: monotone counters, last-value gauges, log-bucketed
/// histograms and bounded sample rings, keyed by `(subsystem, name)`.
/// BTreeMap keys give deterministic export order.
#[derive(Debug, Default)]
pub(crate) struct MetricsRegistry {
    counters: BTreeMap<(Subsystem, &'static str), u64>,
    gauges: BTreeMap<(Subsystem, &'static str), GaugeState>,
    hists: BTreeMap<(Subsystem, &'static str), Histogram>,
    series: BTreeMap<(Subsystem, &'static str), SampleSeries>,
}

impl MetricsRegistry {
    pub(crate) fn counter_add(&mut self, subsystem: Subsystem, name: &'static str, delta: u64) {
        *self.counters.entry((subsystem, name)).or_insert(0) += delta;
    }

    pub(crate) fn gauge_set(&mut self, subsystem: Subsystem, name: &'static str, value: f64) {
        self.gauges
            .entry((subsystem, name))
            .and_modify(|g| {
                g.last = value;
                g.min = g.min.min(value);
                g.max = g.max.max(value);
                g.samples += 1;
            })
            .or_insert(GaugeState {
                last: value,
                min: value,
                max: value,
                samples: 1,
            });
    }

    pub(crate) fn hist_record(&mut self, subsystem: Subsystem, name: &'static str, value: u64) {
        self.hists
            .entry((subsystem, name))
            .or_default()
            .record(value);
    }

    /// Pushes one sample into a bounded series ring, creating the ring
    /// with `(cadence_ns, capacity)` on first touch. Later pushes keep the
    /// creation-time geometry.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn series_push(
        &mut self,
        subsystem: Subsystem,
        name: &'static str,
        cadence_ns: u64,
        capacity: usize,
        at_ns: u64,
        value: f64,
    ) {
        self.series
            .entry((subsystem, name))
            .or_insert_with(|| SampleSeries::new(cadence_ns, capacity))
            .push(at_ns, value);
    }

    pub(crate) fn counter_values(&self) -> Vec<CounterValue> {
        self.counters
            .iter()
            .map(|(&(subsystem, name), &value)| CounterValue {
                subsystem,
                name,
                value,
            })
            .collect()
    }

    pub(crate) fn gauge_values(&self) -> Vec<GaugeValue> {
        self.gauges
            .iter()
            .map(|(&(subsystem, name), g)| GaugeValue {
                subsystem,
                name,
                last: g.last,
                min: g.min,
                max: g.max,
                samples: g.samples,
            })
            .collect()
    }

    pub(crate) fn hist_values(&self) -> Vec<HistogramValue> {
        self.hists
            .iter()
            .map(|(&(subsystem, name), hist)| HistogramValue {
                subsystem,
                name,
                hist: hist.clone(),
            })
            .collect()
    }

    pub(crate) fn series_values(&self) -> Vec<SeriesValue> {
        self.series
            .iter()
            .map(|(&(subsystem, name), series)| SeriesValue {
                subsystem,
                name,
                series: series.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let mut reg = MetricsRegistry::default();
        reg.counter_add(Subsystem::Net, "bytes", 10);
        reg.counter_add(Subsystem::Lkm, "pages_walked", 3);
        reg.counter_add(Subsystem::Net, "bytes", 5);
        let values = reg.counter_values();
        assert_eq!(values.len(), 2);
        // Lkm < Net in the Subsystem ordering.
        assert_eq!(values[0].name, "pages_walked");
        assert_eq!(values[1].value, 15);
    }

    #[test]
    fn gauges_track_last_min_max() {
        let mut reg = MetricsRegistry::default();
        for v in [5.0, 2.0, 9.0, 4.0] {
            reg.gauge_set(Subsystem::Gc, "eden_used", v);
        }
        let g = &reg.gauge_values()[0];
        assert_eq!(g.last, 4.0);
        assert_eq!(g.min, 2.0);
        assert_eq!(g.max, 9.0);
        assert_eq!(g.samples, 4);
    }

    #[test]
    fn series_ring_keeps_creation_geometry_and_sorts() {
        let mut reg = MetricsRegistry::default();
        reg.series_push(Subsystem::Jvm, "dirty_rate_bps", 500, 2, 0, 1.0);
        reg.series_push(Subsystem::Engine, "iteration_dirty_pages", 0, 4, 10, 9.0);
        // Geometry args after creation are ignored; ring capacity stays 2.
        reg.series_push(Subsystem::Jvm, "dirty_rate_bps", 999, 99, 500, 2.0);
        reg.series_push(Subsystem::Jvm, "dirty_rate_bps", 999, 99, 1000, 3.0);
        let values = reg.series_values();
        assert_eq!(values.len(), 2);
        // Engine < Jvm in the Subsystem ordering.
        assert_eq!(values[0].name, "iteration_dirty_pages");
        let jvm = &values[1].series;
        assert_eq!(jvm.capacity(), 2);
        assert_eq!(jvm.cadence_ns(), 500);
        assert_eq!(jvm.values().collect::<Vec<_>>(), vec![2.0, 3.0]);
        assert_eq!(jvm.dropped(), 1);
    }

    #[test]
    fn hists_accumulate_and_sort() {
        let mut reg = MetricsRegistry::default();
        reg.hist_record(Subsystem::Net, "delivery_ns", 100);
        reg.hist_record(Subsystem::Engine, "iter_ns", 7);
        reg.hist_record(Subsystem::Net, "delivery_ns", 300);
        let values = reg.hist_values();
        assert_eq!(values.len(), 2);
        // Engine < Net in the Subsystem ordering.
        assert_eq!(values[0].name, "iter_ns");
        assert_eq!(values[1].hist.count(), 2);
        assert_eq!(values[1].hist.max(), 300);
    }
}
