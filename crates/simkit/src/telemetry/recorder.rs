//! The flight recorder proper: shared handle, event log, snapshots.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::time::{SimDuration, SimTime};

use super::metrics::{CounterValue, GaugeValue, HistogramValue, MetricsRegistry};
use super::series::SeriesValue;
use super::span::{build_span_table, SpanId, SpanRecord, SpanTableRow};
use super::Subsystem;

/// A structured field value attached to an event or span.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer (counts, byte totals, page numbers).
    U64(u64),
    /// A floating point quantity (rates, ratios).
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// A short free-form label.
    Str(String),
    /// A duration, exported as nanoseconds.
    Dur(SimDuration),
}

impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::U64(x)
    }
}

impl From<u32> for Value {
    fn from(x: u32) -> Self {
        Value::U64(x as u64)
    }
}

impl From<usize> for Value {
    fn from(x: usize) -> Self {
        Value::U64(x as u64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::F64(x)
    }
}

impl From<bool> for Value {
    fn from(x: bool) -> Self {
        Value::Bool(x)
    }
}

impl From<&str> for Value {
    fn from(x: &str) -> Self {
        Value::Str(x.to_string())
    }
}

impl From<String> for Value {
    fn from(x: String) -> Self {
        Value::Str(x)
    }
}

impl From<SimDuration> for Value {
    fn from(x: SimDuration) -> Self {
        Value::Dur(x)
    }
}

/// What shape of record an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A point-in-time occurrence.
    Instant,
    /// A gauge sample: the instrument's value at this instant.
    Gauge(f64),
}

/// One timestamped, sequence-numbered record in the flight recorder.
///
/// Instants and gauge samples are always recorded at the current simulated
/// time, so within one recording their timestamps are non-decreasing in
/// sequence order. Phase intervals are tracked separately as
/// [`SpanRecord`]s because computed-cost spans may extend past the
/// recording instant.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global record sequence number, strictly increasing.
    pub seq: u64,
    /// Simulated instant the event was recorded at.
    pub at: SimTime,
    /// Originating layer.
    pub subsystem: Subsystem,
    /// Event name, e.g. `"iteration_start"`.
    pub name: &'static str,
    /// Instant or gauge sample.
    pub kind: EventKind,
    /// Structured key/value payload.
    pub fields: Vec<(&'static str, Value)>,
}

#[derive(Debug)]
struct OpenSpan {
    subsystem: Subsystem,
    name: &'static str,
    start: SimTime,
    fields: Vec<(&'static str, Value)>,
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    spans: Vec<SpanRecord>,
    open: BTreeMap<u64, OpenSpan>,
    next_seq: u64,
    next_span: u64,
    metrics: MetricsRegistry,
}

impl Inner {
    fn next_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }
}

/// A cheap clonable handle to a shared flight recorder.
///
/// Every layer of a migration run holds a clone of the same recorder and
/// contributes events, spans and metrics tagged with its [`Subsystem`].
/// A [`Recorder::disabled`] handle turns every operation into a no-op so
/// instrumentation costs a single branch when telemetry is off.
#[derive(Debug, Clone, Default)]
pub struct Recorder(Option<Arc<Mutex<Inner>>>);

impl Recorder {
    /// Creates an enabled recorder.
    pub fn new() -> Self {
        Recorder(Some(Arc::new(Mutex::new(Inner::default()))))
    }

    /// Creates a disabled (no-op) recorder.
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    fn with_inner<R: Default>(&self, f: impl FnOnce(&mut Inner) -> R) -> R {
        match &self.0 {
            Some(inner) => f(&mut inner.lock().expect("telemetry lock poisoned")),
            None => R::default(),
        }
    }

    /// Records a point-in-time event.
    pub fn instant(
        &self,
        at: SimTime,
        subsystem: Subsystem,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        self.with_inner(|inner| {
            let seq = inner.next_seq();
            inner.events.push(Event {
                seq,
                at,
                subsystem,
                name,
                kind: EventKind::Instant,
                fields,
            });
        })
    }

    /// Opens a phase span; close it with [`Recorder::end_span`].
    ///
    /// Returns an invalid id (accepted and ignored by `end_span`) when the
    /// recorder is disabled.
    pub fn begin_span(
        &self,
        at: SimTime,
        subsystem: Subsystem,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) -> SpanId {
        match &self.0 {
            Some(cell) => {
                let mut inner = cell.lock().expect("telemetry lock poisoned");
                let id = inner.next_span;
                inner.next_span += 1;
                inner.open.insert(
                    id,
                    OpenSpan {
                        subsystem,
                        name,
                        start: at,
                        fields,
                    },
                );
                SpanId::new(id)
            }
            None => SpanId::invalid(),
        }
    }

    /// Closes a span opened with [`Recorder::begin_span`], appending
    /// `fields` to the ones given at open. Unknown or invalid ids are
    /// ignored.
    pub fn end_span(&self, at: SimTime, id: SpanId, fields: Vec<(&'static str, Value)>) {
        self.with_inner(|inner| {
            if let Some(open) = inner.open.remove(&id.raw()) {
                let mut all = open.fields;
                all.extend(fields);
                inner.spans.push(SpanRecord {
                    id,
                    subsystem: open.subsystem,
                    name: open.name,
                    start: open.start,
                    end: at,
                    fields: all,
                });
            }
        })
    }

    /// Records a whole span at once: the phase ran `[start, start + duration]`.
    ///
    /// For costs computed up front (a GC whose duration the heap model
    /// yields at trigger time, a bitmap walk costed analytically).
    pub fn record_span(
        &self,
        start: SimTime,
        subsystem: Subsystem,
        name: &'static str,
        duration: SimDuration,
        fields: Vec<(&'static str, Value)>,
    ) {
        self.with_inner(|inner| {
            let id = inner.next_span;
            inner.next_span += 1;
            inner.spans.push(SpanRecord {
                id: SpanId::new(id),
                subsystem,
                name,
                start,
                end: start + duration,
                fields,
            });
        })
    }

    /// Adds `delta` to a monotone counter (no per-increment event).
    pub fn counter_add(&self, subsystem: Subsystem, name: &'static str, delta: u64) {
        self.with_inner(|inner| inner.metrics.counter_add(subsystem, name, delta))
    }

    /// Records one sample into a log-bucketed histogram (registry only —
    /// no per-sample event, so hot paths stay cheap and deterministic).
    pub fn hist(&self, subsystem: Subsystem, name: &'static str, value: u64) {
        self.with_inner(|inner| inner.metrics.hist_record(subsystem, name, value))
    }

    /// Records a duration sample (in nanoseconds) into a histogram.
    pub fn hist_dur(&self, subsystem: Subsystem, name: &'static str, dur: SimDuration) {
        self.hist(subsystem, name, dur.as_nanos());
    }

    /// Pushes one sample into a bounded series ring (registry only — like
    /// [`Recorder::hist`], no per-sample event, so sensing hot paths in
    /// the engine, JVM and LKM stay cheap). The ring is created with
    /// `(cadence_ns, capacity)` on first touch; pass `cadence_ns == 0`
    /// for irregular per-event series.
    pub fn series_push(
        &self,
        subsystem: Subsystem,
        name: &'static str,
        cadence_ns: u64,
        capacity: usize,
        at: SimTime,
        value: f64,
    ) {
        self.with_inner(|inner| {
            inner
                .metrics
                .series_push(subsystem, name, cadence_ns, capacity, at.as_nanos(), value)
        })
    }

    /// Samples a gauge: records a gauge event and updates the registry.
    pub fn gauge(&self, at: SimTime, subsystem: Subsystem, name: &'static str, value: f64) {
        self.with_inner(|inner| {
            inner.metrics.gauge_set(subsystem, name, value);
            let seq = inner.next_seq();
            inner.events.push(Event {
                seq,
                at,
                subsystem,
                name,
                kind: EventKind::Gauge(value),
                fields: Vec::new(),
            });
        })
    }

    /// Freezes the recording into a plain-data snapshot.
    ///
    /// Spans still open at snapshot time are truncated at the latest
    /// timestamp seen anywhere in the recording (their own start if later)
    /// and flagged with an `open: true` field — a phase that outlives the
    /// recording window still shows up in the span table. Closed spans are
    /// sorted by `(start, id)`. Disabled recorders yield an empty snapshot
    /// with `enabled == false`.
    pub fn snapshot(&self) -> RunTelemetry {
        match &self.0 {
            Some(cell) => {
                let inner = cell.lock().expect("telemetry lock poisoned");
                let mut spans = inner.spans.clone();
                let horizon = inner
                    .events
                    .iter()
                    .map(|e| e.at)
                    .chain(spans.iter().map(|s| s.end))
                    .max()
                    .unwrap_or(SimTime::ZERO);
                for (&id, open) in &inner.open {
                    let mut fields = open.fields.clone();
                    fields.push(("open", Value::Bool(true)));
                    spans.push(SpanRecord {
                        id: SpanId::new(id),
                        subsystem: open.subsystem,
                        name: open.name,
                        start: open.start,
                        end: horizon.max(open.start),
                        fields,
                    });
                }
                spans.sort_by_key(|s| (s.start, s.id.raw()));
                RunTelemetry {
                    enabled: true,
                    events: inner.events.clone(),
                    spans,
                    counters: inner.metrics.counter_values(),
                    gauges: inner.metrics.gauge_values(),
                    hists: inner.metrics.hist_values(),
                    series: inner.metrics.series_values(),
                }
            }
            None => RunTelemetry::default(),
        }
    }
}

/// A frozen, plain-data view of one run's telemetry.
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// Whether a real recorder produced this (false: disabled run).
    pub enabled: bool,
    /// All instants and gauge samples, in record (sequence) order.
    pub events: Vec<Event>,
    /// All closed spans, sorted by `(start, id)`.
    pub spans: Vec<SpanRecord>,
    /// Final counter values, sorted by `(subsystem, name)`.
    pub counters: Vec<CounterValue>,
    /// Gauge summaries, sorted by `(subsystem, name)`.
    pub gauges: Vec<GaugeValue>,
    /// Histogram snapshots, sorted by `(subsystem, name)`.
    pub hists: Vec<HistogramValue>,
    /// Bounded series snapshots, sorted by `(subsystem, name)`.
    pub series: Vec<SeriesValue>,
}

impl RunTelemetry {
    /// Per-phase latency table: count / mean / p95 / max / total per
    /// distinct `(subsystem, name)`, sorted by subsystem lane then name.
    pub fn span_table(&self) -> Vec<SpanTableRow> {
        build_span_table(&self.spans)
    }

    /// All spans of one phase, in start order.
    pub fn spans_named(&self, subsystem: Subsystem, name: &str) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.subsystem == subsystem && s.name == name)
            .collect()
    }

    /// All instant/gauge events with the given name, in sequence order.
    pub fn events_named(&self, subsystem: Subsystem, name: &str) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| e.subsystem == subsystem && e.name == name)
            .collect()
    }

    /// Final value of a counter, if it was ever incremented.
    pub fn counter(&self, subsystem: Subsystem, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.subsystem == subsystem && c.name == name)
            .map(|c| c.value)
    }

    /// Summary of a gauge, if it was ever sampled.
    pub fn gauge(&self, subsystem: Subsystem, name: &str) -> Option<&GaugeValue> {
        self.gauges
            .iter()
            .find(|g| g.subsystem == subsystem && g.name == name)
    }

    /// Snapshot of a histogram, if it ever recorded a sample.
    pub fn hist(&self, subsystem: Subsystem, name: &str) -> Option<&HistogramValue> {
        self.hists
            .iter()
            .find(|h| h.subsystem == subsystem && h.name == name)
    }

    /// Snapshot of a bounded series, if it ever received a sample.
    pub fn series(&self, subsystem: Subsystem, name: &str) -> Option<&SeriesValue> {
        self.series
            .iter()
            .find(|s| s.subsystem == subsystem && s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn events_get_increasing_seqs_and_keep_order() {
        let rec = Recorder::new();
        rec.instant(t(1), Subsystem::Engine, "begin", vec![]);
        rec.gauge(t(2), Subsystem::Net, "utilization", 0.5);
        rec.instant(
            t(3),
            Subsystem::Lkm,
            "state",
            vec![("to", "MIGRATION_STARTED".into())],
        );
        let snap = rec.snapshot();
        assert!(snap.enabled);
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(snap.events[1].kind, EventKind::Gauge(0.5));
        assert_eq!(
            snap.events[2].fields[0].1,
            Value::Str("MIGRATION_STARTED".into())
        );
    }

    #[test]
    fn spans_close_and_sort_by_start() {
        let rec = Recorder::new();
        let a = rec.begin_span(t(10), Subsystem::Engine, "stop_and_copy", vec![]);
        rec.record_span(
            t(2),
            Subsystem::Gc,
            "minor_gc",
            SimDuration::from_millis(3),
            vec![("promoted", 7u64.into())],
        );
        rec.end_span(t(15), a, vec![("bytes", 123u64.into())]);
        // Left open on purpose: truncated at the recording horizon (t=15,
        // later than its own start) and flagged `open`.
        let _ = rec.begin_span(t(12), Subsystem::Jvm, "dangling", vec![]);
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.spans[0].name, "minor_gc");
        assert_eq!(snap.spans[0].duration(), SimDuration::from_millis(3));
        assert_eq!(snap.spans[1].name, "stop_and_copy");
        assert_eq!(snap.spans[1].fields, vec![("bytes", Value::U64(123))]);
        assert_eq!(snap.spans[2].name, "dangling");
        assert_eq!(snap.spans[2].end, t(15));
        assert_eq!(snap.spans[2].field("open"), Some(&Value::Bool(true)));
    }

    #[test]
    fn disabled_recorder_is_a_noop() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.instant(t(1), Subsystem::Engine, "begin", vec![]);
        let id = rec.begin_span(t(1), Subsystem::Engine, "x", vec![]);
        rec.end_span(t(2), id, vec![]);
        rec.counter_add(Subsystem::Lkm, "pages", 4);
        rec.gauge(t(2), Subsystem::Net, "u", 1.0);
        let snap = rec.snapshot();
        assert!(!snap.enabled);
        assert!(snap.events.is_empty() && snap.spans.is_empty());
        assert!(snap.counters.is_empty() && snap.gauges.is_empty());
    }

    #[test]
    fn clones_share_one_log() {
        let rec = Recorder::new();
        let other = rec.clone();
        rec.instant(t(1), Subsystem::Engine, "a", vec![]);
        other.instant(t(2), Subsystem::Jvm, "b", vec![]);
        other.counter_add(Subsystem::Jvm, "faults", 2);
        rec.counter_add(Subsystem::Jvm, "faults", 3);
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.counter(Subsystem::Jvm, "faults"), Some(5));
    }

    #[test]
    fn hist_samples_land_in_the_registry_not_the_event_log() {
        let rec = Recorder::new();
        rec.hist(Subsystem::Engine, "iteration_pages_sent", 100);
        rec.hist_dur(
            Subsystem::Gc,
            "enforced_gc_pause_ns",
            SimDuration::from_millis(170),
        );
        rec.hist(Subsystem::Engine, "iteration_pages_sent", 300);
        let snap = rec.snapshot();
        assert!(snap.events.is_empty(), "histograms must not emit events");
        let h = snap
            .hist(Subsystem::Engine, "iteration_pages_sent")
            .unwrap();
        assert_eq!(h.hist.count(), 2);
        assert_eq!(h.hist.min(), 100);
        let g = snap.hist(Subsystem::Gc, "enforced_gc_pause_ns").unwrap();
        assert_eq!(g.hist.max(), 170_000_000);
        assert!(snap.hist(Subsystem::Net, "missing").is_none());
    }

    #[test]
    fn series_samples_land_in_the_registry_not_the_event_log() {
        let rec = Recorder::new();
        rec.series_push(Subsystem::Jvm, "dirty_rate_bps", 500_000_000, 4, t(1), 10.0);
        rec.series_push(
            Subsystem::Jvm,
            "dirty_rate_bps",
            500_000_000,
            4,
            t(501),
            30.0,
        );
        let snap = rec.snapshot();
        assert!(snap.events.is_empty(), "series must not emit events");
        let s = &snap
            .series(Subsystem::Jvm, "dirty_rate_bps")
            .unwrap()
            .series;
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some(30.0));
        assert!(snap.series(Subsystem::Engine, "missing").is_none());
        let none = Recorder::disabled();
        none.series_push(Subsystem::Jvm, "dirty_rate_bps", 0, 4, t(1), 1.0);
        assert!(none.snapshot().series.is_empty());
    }

    #[test]
    fn query_helpers_filter_by_subsystem_and_name() {
        let rec = Recorder::new();
        rec.record_span(
            t(1),
            Subsystem::Gc,
            "minor_gc",
            SimDuration::from_millis(1),
            vec![],
        );
        rec.record_span(
            t(4),
            Subsystem::Gc,
            "minor_gc",
            SimDuration::from_millis(2),
            vec![],
        );
        rec.record_span(
            t(6),
            Subsystem::Gc,
            "enforced_gc",
            SimDuration::from_millis(2),
            vec![],
        );
        rec.gauge(t(1), Subsystem::Gc, "eden_used", 10.0);
        rec.gauge(t(2), Subsystem::Gc, "eden_used", 30.0);
        let snap = rec.snapshot();
        assert_eq!(snap.spans_named(Subsystem::Gc, "minor_gc").len(), 2);
        assert_eq!(snap.events_named(Subsystem::Gc, "eden_used").len(), 2);
        let g = snap.gauge(Subsystem::Gc, "eden_used").unwrap();
        assert_eq!(g.last, 30.0);
        assert_eq!(g.max, 30.0);
        assert_eq!(g.samples, 2);
        assert!(snap.gauge(Subsystem::Net, "eden_used").is_none());
    }
}
