//! Causal event log: the orchestration audit trail.
//!
//! The flight recorder ([`super::recorder`]) answers *what happened
//! inside one migration*; this module answers *why the orchestrator did
//! what it did across a whole evacuation*. Each [`CausalEvent`] is a
//! timestamped record with a sequential id and an optional parent id, so
//! a VM's admission, its placement decision (with the scored candidates),
//! every session wakeup, every bandwidth re-grant, its completion and any
//! watchdog finding chain into one connected tree. The log exports as
//! deterministic JSONL (one record per line, machine-diffable) and as
//! Chrome trace-event JSON whose flow arrows (`ph:"s"`/`ph:"f"`) render
//! the whole evacuation as one connected timeline in Perfetto.
//!
//! Determinism: ids are allocated sequentially by the log, timestamps
//! come from the simulated clock, and detail fields are ordered
//! key/value pairs — two same-seed evacuations produce byte-identical
//! exports.

use std::fmt::Write as _;

use super::export::escape_json;

/// Identifier of one [`CausalEvent`], unique within its [`CausalLog`].
///
/// Ids are allocated sequentially starting at 1, so a parent's id is
/// always smaller than every child's — the log is topologically sorted
/// by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CausalId(pub u64);

impl std::fmt::Display for CausalId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// What kind of orchestration decision a [`CausalEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalKind {
    /// A host began draining: the root of every per-VM chain on it.
    Drain,
    /// A VM was admitted into the in-flight set.
    Admit,
    /// A destination was chosen for an admitted VM.
    Placement,
    /// An in-flight session woke up and stepped.
    Wakeup,
    /// A wakeup observed a changed fair share and re-granted bandwidth.
    Regrant,
    /// A migration (plus tail) finished.
    Complete,
    /// The SLO watchdog raised a finding.
    Finding,
    /// A seeded fault fired (e.g. a mid-drain core degrade).
    Fault,
}

impl CausalKind {
    /// Stable lower-case name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            CausalKind::Drain => "drain",
            CausalKind::Admit => "admit",
            CausalKind::Placement => "placement",
            CausalKind::Wakeup => "wakeup",
            CausalKind::Regrant => "regrant",
            CausalKind::Complete => "complete",
            CausalKind::Finding => "finding",
            CausalKind::Fault => "fault",
        }
    }
}

impl std::fmt::Display for CausalKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One orchestration decision, linked to the decision that caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalEvent {
    /// This event's id (sequential, 1-based).
    pub id: CausalId,
    /// The event that caused this one (e.g. a wakeup's admission).
    pub parent: Option<CausalId>,
    /// Simulated instant of the decision.
    pub at_ns: u64,
    /// The decision kind.
    pub kind: CausalKind,
    /// What the decision is about: a VM (`"host/tenant"`) or a pipe name.
    pub subject: String,
    /// Ordered key/value detail (scores, shares, rule names) — ordered so
    /// exports are byte-deterministic.
    pub detail: Vec<(&'static str, String)>,
}

/// An append-only log of [`CausalEvent`]s with sequential id allocation.
#[derive(Debug, Clone, Default)]
pub struct CausalLog {
    events: Vec<CausalEvent>,
    next: u64,
}

impl CausalLog {
    /// Creates an empty log; the first emitted event gets id 1.
    pub fn new() -> Self {
        Self {
            events: Vec::new(),
            next: 1,
        }
    }

    /// Appends one event and returns its id (to be threaded as the parent
    /// of whatever it causes).
    pub fn emit(
        &mut self,
        at_ns: u64,
        kind: CausalKind,
        parent: Option<CausalId>,
        subject: impl Into<String>,
        detail: Vec<(&'static str, String)>,
    ) -> CausalId {
        let id = CausalId(self.next);
        self.next += 1;
        self.events.push(CausalEvent {
            id,
            parent,
            at_ns,
            kind,
            subject: subject.into(),
            detail,
        });
        id
    }

    /// The recorded events, in emission (= id) order.
    pub fn events(&self) -> &[CausalEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

fn fmt_detail(detail: &[(&'static str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in detail.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
    }
    out.push('}');
    out
}

/// Serialises the log as JSON Lines: one record per event, in id order.
/// Byte-identical across same-seed runs.
pub fn jsonl_to_string(log: &CausalLog) -> String {
    let mut out = String::new();
    for e in log.events() {
        let parent = match e.parent {
            Some(p) => format!("{}", p.0),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "{{\"type\":\"causal\",\"id\":{},\"parent\":{},\"at_ns\":{},\"kind\":\"{}\",\"subject\":\"{}\"",
            e.id.0,
            parent,
            e.at_ns,
            e.kind,
            escape_json(&e.subject),
        );
        if !e.detail.is_empty() {
            let _ = write!(out, ",\"detail\":{}", fmt_detail(&e.detail));
        }
        out.push_str("}\n");
    }
    out
}

/// Microseconds with fixed 3-decimal nanosecond precision (Chrome `ts`).
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Serialises the log in Chrome trace-event format: one lane per subject
/// (first-appearance order), each event a 1 µs `X` slice named by its
/// kind, and a `ph:"s"` / `ph:"f"` flow pair per parent link so Perfetto
/// draws the causal arrows. Byte-identical across same-seed runs.
pub fn chrome_trace_to_string(log: &CausalLog) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };
    // Lane per subject, in first-appearance order.
    let mut subjects: Vec<&str> = Vec::new();
    let mut lanes: Vec<usize> = Vec::with_capacity(log.len());
    for e in log.events() {
        let lane = match subjects.iter().position(|s| *s == e.subject.as_str()) {
            Some(i) => i,
            None => {
                subjects.push(e.subject.as_str());
                subjects.len() - 1
            }
        };
        lanes.push(lane);
    }
    for (tid, subject) in subjects.iter().enumerate() {
        push(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid,
            escape_json(subject),
        );
    }
    for (e, &tid) in log.events().iter().zip(&lanes) {
        push(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"causal\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":1.000,\"args\":{{\"id\":\"{}\",\"parent\":\"{}\"",
            e.kind,
            tid,
            fmt_us(e.at_ns),
            e.id,
            match e.parent {
                Some(p) => format!("{p}"),
                None => "none".to_string(),
            },
        );
        for (k, v) in &e.detail {
            let _ = write!(out, ",\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        out.push_str("}}");
    }
    // Flow arrows: one s/f pair per parent link, bound by the child's id.
    for (e, &tid) in log.events().iter().zip(&lanes) {
        let Some(parent) = e.parent else { continue };
        let p = &log.events()[(parent.0 - 1) as usize];
        debug_assert_eq!(p.id, parent, "causal ids are sequential");
        let p_tid = lanes[(parent.0 - 1) as usize];
        push(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":{},\"pid\":1,\"tid\":{},\"ts\":{}}}",
            e.id.0,
            p_tid,
            fmt_us(p.at_ns),
        );
        push(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"pid\":1,\"tid\":{},\"ts\":{}}}",
            e.id.0,
            tid,
            fmt_us(e.at_ns),
        );
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CausalLog {
        let mut log = CausalLog::new();
        let admit = log.emit(
            1_500,
            CausalKind::Admit,
            None,
            "rack-a/derby-0",
            vec![("ws_bytes", "1048576".to_string())],
        );
        let place = log.emit(
            1_500,
            CausalKind::Placement,
            Some(admit),
            "rack-a/derby-0",
            vec![
                ("dest", "lan-1".to_string()),
                ("score", "12.5".to_string()),
                ("runner_up", "wan-0".to_string()),
            ],
        );
        log.emit(
            2_000_000,
            CausalKind::Wakeup,
            Some(admit),
            "rack-a/derby-0",
            vec![],
        );
        log.emit(
            3_000_000,
            CausalKind::Finding,
            Some(place),
            "core",
            vec![("rule", "pipe_saturation".to_string())],
        );
        log
    }

    #[test]
    fn ids_are_sequential_and_parents_precede_children() {
        let log = sample();
        for (i, e) in log.events().iter().enumerate() {
            assert_eq!(e.id.0, i as u64 + 1);
            if let Some(p) = e.parent {
                assert!(p.0 < e.id.0, "parent {} >= child {}", p.0, e.id.0);
            }
        }
    }

    #[test]
    fn jsonl_has_one_connected_record_per_event() {
        let text = jsonl_to_string(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"id\":1") && lines[0].contains("\"parent\":null"));
        assert!(lines[0].contains("\"kind\":\"admit\""));
        assert!(lines[1].contains("\"parent\":1") && lines[1].contains("\"kind\":\"placement\""));
        assert!(lines[1].contains("\"score\":\"12.5\""));
        assert!(lines[3].contains("\"subject\":\"core\""));
        assert!(lines[3].contains("\"rule\":\"pipe_saturation\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn chrome_trace_draws_flow_arrows() {
        let text = chrome_trace_to_string(&sample());
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        // One lane per subject, in first-appearance order.
        assert!(text.contains("\"tid\":0,\"args\":{\"name\":\"rack-a/derby-0\"}"));
        assert!(text.contains("\"tid\":1,\"args\":{\"name\":\"core\"}"));
        // Every event renders as a slice; every parent link as an s/f pair.
        assert_eq!(text.matches("\"ph\":\"X\"").count(), 4);
        assert_eq!(text.matches("\"ph\":\"s\"").count(), 3);
        assert_eq!(text.matches("\"ph\":\"f\"").count(), 3);
        // The admission at 1500 ns renders at microsecond 1.500.
        assert!(text.contains("\"ts\":1.500"));
    }

    #[test]
    fn exports_are_deterministic() {
        assert_eq!(jsonl_to_string(&sample()), jsonl_to_string(&sample()));
        assert_eq!(
            chrome_trace_to_string(&sample()),
            chrome_trace_to_string(&sample())
        );
    }
}
