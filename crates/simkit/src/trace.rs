//! A lightweight timestamped event trace.
//!
//! Components append structured events while a simulation runs; tests and
//! the figure harness inspect the trace afterwards. Tracing is generic over
//! the event type so each subsystem can define its own vocabulary.

use crate::time::SimTime;

/// An append-only log of `(time, event)` records.
///
/// # Examples
///
/// ```
/// use simkit::trace::Trace;
/// use simkit::time::SimTime;
///
/// let mut trace: Trace<&str> = Trace::new();
/// trace.push(SimTime::from_nanos(10), "gc-start");
/// trace.push(SimTime::from_nanos(20), "gc-end");
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.iter().last().unwrap().1, "gc-end");
/// ```
#[derive(Debug, Clone)]
pub struct Trace<E> {
    records: Vec<(SimTime, E)>,
}

impl<E> Trace<E> {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self {
            records: Vec::new(),
        }
    }

    /// Appends an event at the given instant.
    pub fn push(&mut self, at: SimTime, event: E) {
        self.records.push((at, event));
    }

    /// Returns the number of recorded events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over `(time, event)` records in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, E)> {
        self.records.iter()
    }

    /// Returns events matching a predicate, with their timestamps.
    pub fn matching<'a>(
        &'a self,
        mut pred: impl FnMut(&E) -> bool + 'a,
    ) -> impl Iterator<Item = &'a (SimTime, E)> {
        self.records.iter().filter(move |(_, e)| pred(e))
    }

    /// Discards all records.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

impl<E> Default for Trace<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate_in_order() {
        let mut t = Trace::new();
        for i in 0..5u64 {
            t.push(SimTime::from_nanos(i), i);
        }
        let order: Vec<u64> = t.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn matching_filters() {
        let mut t = Trace::new();
        t.push(SimTime::ZERO, 1);
        t.push(SimTime::ZERO, 2);
        t.push(SimTime::ZERO, 3);
        let evens: Vec<i32> = t.matching(|e| e % 2 == 0).map(|&(_, e)| e).collect();
        assert_eq!(evens, vec![2]);
    }

    #[test]
    fn clear_empties() {
        let mut t = Trace::new();
        t.push(SimTime::ZERO, ());
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
    }
}
