//! A lightweight timestamped event trace.
//!
//! Components append structured events while a simulation runs; tests and
//! the figure harness inspect the trace afterwards. Tracing is generic over
//! the event type so each subsystem can define its own vocabulary.
//!
//! Traces come in two flavours: unbounded ([`Trace::new`]) and bounded
//! flight-recorder mode ([`Trace::with_capacity`]) that keeps only the
//! newest records, evicting the oldest — useful for long soak runs where
//! only the window around an incident matters.

use std::collections::VecDeque;

use crate::time::SimTime;

/// An append-only log of `(time, event)` records, optionally bounded.
///
/// # Examples
///
/// ```
/// use simkit::trace::Trace;
/// use simkit::time::SimTime;
///
/// let mut trace: Trace<&str> = Trace::new();
/// trace.push(SimTime::from_nanos(10), "gc-start");
/// trace.push(SimTime::from_nanos(20), "gc-end");
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.iter().last().unwrap().1, "gc-end");
/// ```
#[derive(Debug, Clone)]
pub struct Trace<E> {
    records: VecDeque<(SimTime, E)>,
    capacity: Option<usize>,
    evicted: u64,
}

impl<E> Trace<E> {
    /// Creates an empty, unbounded trace.
    pub fn new() -> Self {
        Self {
            records: VecDeque::new(),
            capacity: None,
            evicted: 0,
        }
    }

    /// Creates a bounded trace keeping only the newest `capacity` records
    /// (ring-buffer semantics: pushing to a full trace evicts the oldest).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            records: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
            evicted: 0,
        }
    }

    /// Appends an event at the given instant, evicting the oldest record
    /// when a bounded trace is full.
    pub fn push(&mut self, at: SimTime, event: E) {
        if let Some(cap) = self.capacity {
            if self.records.len() == cap {
                self.records.pop_front();
                self.evicted += 1;
            }
        }
        self.records.push_back((at, event));
    }

    /// Returns the number of retained events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Returns the retention bound, or `None` for unbounded traces.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Returns how many records were evicted by ring-buffer wrap-around.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Iterates over `(time, event)` records in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, E)> {
        self.records.iter()
    }

    /// Returns events matching a predicate, with their timestamps.
    pub fn matching<'a>(
        &'a self,
        mut pred: impl FnMut(&E) -> bool + 'a,
    ) -> impl Iterator<Item = &'a (SimTime, E)> {
        self.records.iter().filter(move |(_, e)| pred(e))
    }

    /// Returns retained records in the half-open window `[t0, t1)`, in
    /// insertion order.
    ///
    /// Insertion order and time order coincide for the simulation's
    /// monotone clocks, but no sorting is assumed: the filter is by
    /// timestamp alone.
    pub fn between(&self, t0: SimTime, t1: SimTime) -> impl Iterator<Item = &(SimTime, E)> {
        self.records
            .iter()
            .filter(move |&&(at, _)| at >= t0 && at < t1)
    }

    /// Discards all records (the eviction count is kept).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

impl<E> Default for Trace<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate_in_order() {
        let mut t = Trace::new();
        for i in 0..5u64 {
            t.push(SimTime::from_nanos(i), i);
        }
        let order: Vec<u64> = t.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn matching_filters() {
        let mut t = Trace::new();
        t.push(SimTime::ZERO, 1);
        t.push(SimTime::ZERO, 2);
        t.push(SimTime::ZERO, 3);
        let evens: Vec<i32> = t.matching(|e| e % 2 == 0).map(|&(_, e)| e).collect();
        assert_eq!(evens, vec![2]);
    }

    #[test]
    fn clear_empties() {
        let mut t = Trace::new();
        t.push(SimTime::ZERO, ());
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn bounded_trace_keeps_newest() {
        let mut t = Trace::with_capacity(3);
        assert_eq!(t.capacity(), Some(3));
        for i in 0..7u64 {
            t.push(SimTime::from_nanos(i), i);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.evicted(), 4);
        let kept: Vec<u64> = t.iter().map(|&(_, e)| e).collect();
        assert_eq!(kept, vec![4, 5, 6]);
    }

    #[test]
    fn unbounded_trace_never_evicts() {
        let mut t = Trace::new();
        assert_eq!(t.capacity(), None);
        for i in 0..1000u64 {
            t.push(SimTime::from_nanos(i), i);
        }
        assert_eq!(t.len(), 1000);
        assert_eq!(t.evicted(), 0);
    }

    #[test]
    fn between_is_half_open() {
        let mut t = Trace::new();
        for i in 0..10u64 {
            t.push(SimTime::from_nanos(i * 10), i);
        }
        let window: Vec<u64> = t
            .between(SimTime::from_nanos(20), SimTime::from_nanos(50))
            .map(|&(_, e)| e)
            .collect();
        assert_eq!(window, vec![2, 3, 4]);
        // Empty and inverted windows yield nothing.
        assert_eq!(
            t.between(SimTime::from_nanos(25), SimTime::from_nanos(25))
                .count(),
            0
        );
        assert_eq!(
            t.between(SimTime::from_nanos(50), SimTime::from_nanos(20))
                .count(),
            0
        );
    }

    #[test]
    fn between_respects_ring_eviction() {
        let mut t = Trace::with_capacity(4);
        for i in 0..8u64 {
            t.push(SimTime::from_nanos(i), i);
        }
        // Records 0..4 were evicted; the window only sees what's retained.
        let window: Vec<u64> = t
            .between(SimTime::ZERO, SimTime::from_nanos(100))
            .map(|&(_, e)| e)
            .collect();
        assert_eq!(window, vec![4, 5, 6, 7]);
    }
}
