//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a declarative, seeded description of everything that
//! may go wrong during one migration: coordination messages dropped,
//! delayed or duplicated on either hop (event channel, netlink), the JVM
//! agent stalling at any state of the LKM's five-state machine, the
//! enforced minor GC overrunning its budget, and the migration link
//! degrading mid-iteration.
//!
//! The plan itself holds no randomness — components that enact it fork
//! [`crate::rng::DetRng`] streams from [`FaultPlan::seed`], so a given plan
//! misbehaves *identically* on every run. An all-zero plan
//! ([`FaultPlan::none`]) is inert by construction: no component draws a
//! single random number for it and behaviour is bit-for-bit identical to a
//! run without fault injection.

use crate::time::{SimDuration, SimTime};

/// Per-hop message-fault probabilities (one lane = one transport).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneFaults {
    /// Probability a message is silently dropped.
    pub drop: f64,
    /// Probability a message is delayed by up to [`LaneFaults::delay_max`].
    pub delay: f64,
    /// Upper bound of the (uniform) extra delivery delay.
    pub delay_max: SimDuration,
    /// Probability a message is delivered twice (same sequence number, so
    /// receivers can detect the duplicate).
    pub duplicate: f64,
}

impl LaneFaults {
    /// A lane with no faults.
    pub const NONE: LaneFaults = LaneFaults {
        drop: 0.0,
        delay: 0.0,
        delay_max: SimDuration::ZERO,
        duplicate: 0.0,
    };

    /// Returns whether any fault on this lane can fire.
    pub fn is_active(&self) -> bool {
        self.drop > 0.0 || self.delay > 0.0 || self.duplicate > 0.0
    }

    /// Returns whether every probability lies in `[0, 1]`.
    pub fn is_valid(&self) -> bool {
        let ok = |p: f64| (0.0..=1.0).contains(&p);
        ok(self.drop) && ok(self.delay) && ok(self.duplicate)
    }
}

impl Default for LaneFaults {
    fn default() -> Self {
        Self::NONE
    }
}

/// Where the JVM agent freezes. The points mirror the LKM's five operating
/// states: the agent stops responding upon entering the mirrored phase of
/// the protocol, before sending the reply that would advance it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallPoint {
    /// Frozen from the start: no message is ever answered.
    Initialized,
    /// Receives `QuerySkipOver` but never reports skip-over areas.
    MigrationStarted,
    /// Receives `PrepareSuspension` but never starts the enforced GC.
    EnteringLastIter,
    /// Runs the enforced GC but never reports `SuspensionReady`.
    SuspensionReady,
    /// The deepest failure: frozen from the start *and* deaf to the abort
    /// handshake — the run must still terminate via the degraded path.
    Degraded,
}

impl StallPoint {
    /// All stall points, one per LKM state.
    pub const ALL: [StallPoint; 5] = [
        StallPoint::Initialized,
        StallPoint::MigrationStarted,
        StallPoint::EnteringLastIter,
        StallPoint::SuspensionReady,
        StallPoint::Degraded,
    ];

    /// Stable name for reports and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            StallPoint::Initialized => "INITIALIZED",
            StallPoint::MigrationStarted => "MIGRATION_STARTED",
            StallPoint::EnteringLastIter => "ENTERING_LAST_ITER",
            StallPoint::SuspensionReady => "SUSPENSION_READY",
            StallPoint::Degraded => "DEGRADED",
        }
    }
}

/// The enforced minor GC overruns its natural duration by `extra`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcOverrun {
    /// Extra wall time added to the enforced GC. When this pushes the
    /// `SuspensionReady` reply past the LKM's straggler deadline, the run
    /// degrades exactly as for a stalled agent.
    pub extra: SimDuration,
}

/// The migration link degrades mid-migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegrade {
    /// When the degradation strikes, relative to migration start.
    pub after: SimDuration,
    /// Bandwidth multiplier from that point on. `0.0` models a dead link
    /// (the engine reports `LinkDown` rather than crawling forever).
    pub factor: f64,
}

/// The application's workload cycle jumps phase mid-run: after `after`
/// of mutator running time, the phase clock is advanced by `jump` in one
/// step. Models a tenant whose periodic behavior shifts (a batch job
/// rescheduled, a cache flushed) — exactly the adversary an online cycle
/// detector must notice and distrust instead of scheduling on a stale
/// estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseShift {
    /// Mutator running time before the shift fires.
    pub after: SimDuration,
    /// How far the phase clock jumps when it does.
    pub jump: SimDuration,
}

/// A complete, seeded fault plan for one migration.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed all fault randomness forks from (lane RNGs use distinct
    /// sub-streams, so plans compose deterministically).
    pub seed: u64,
    /// Faults on the daemon ↔ LKM event-channel hop.
    pub evtchn: LaneFaults,
    /// Faults on the LKM ↔ application netlink hop.
    pub netlink: LaneFaults,
    /// Freeze the JVM agent at a protocol point.
    pub agent_stall: Option<StallPoint>,
    /// Overrun the enforced minor GC.
    pub gc_overrun: Option<GcOverrun>,
    /// Degrade the migration link mid-iteration.
    pub link: Option<LinkDegrade>,
    /// Jump the workload's phase clock mid-run.
    pub phase_shift: Option<PhaseShift>,
}

impl FaultPlan {
    /// The inert plan: nothing fails. Guaranteed not to perturb a run in
    /// any way (no RNG draws, no timing changes).
    pub fn none() -> Self {
        Self {
            seed: 0,
            evtchn: LaneFaults::NONE,
            netlink: LaneFaults::NONE,
            agent_stall: None,
            gc_overrun: None,
            link: None,
            phase_shift: None,
        }
    }

    /// Returns whether any fault in the plan can fire.
    pub fn is_active(&self) -> bool {
        self.evtchn.is_active()
            || self.netlink.is_active()
            || self.agent_stall.is_some()
            || self.gc_overrun.is_some()
            || self.link.is_some()
            || self.phase_shift.is_some()
    }

    /// Returns whether all probabilities are well-formed.
    pub fn is_valid(&self) -> bool {
        self.evtchn.is_valid()
            && self.netlink.is_valid()
            && !self.link.is_some_and(|l| l.factor < 0.0)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// The proximate fault that pushed a migration off the assisted path.
///
/// Carried in `DegradedVanilla` outcomes, engine timelines and telemetry so
/// every injected fault surfaces as a typed, testable value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The LKM never acknowledged `MigrationBegin` within the retry budget.
    BeginAckTimeout,
    /// `ReadyToSuspend` never arrived within the retry budget after
    /// `EnteringLastIter`.
    ReadyTimeout,
    /// `ReadyToSuspend` arrived reporting stragglers and policy demands
    /// degradation rather than partial assistance.
    AgentStraggler,
    /// The migration link collapsed.
    LinkDegraded,
}

impl FaultKind {
    /// Stable name for reports and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::BeginAckTimeout => "begin_ack_timeout",
            FaultKind::ReadyTimeout => "ready_timeout",
            FaultKind::AgentStraggler => "agent_straggler",
            FaultKind::LinkDegraded => "link_degraded",
        }
    }
}

/// Runtime state for one faulty lane: the plan slice plus its forked RNG
/// and fired-fault counters.
#[derive(Debug)]
pub struct LaneFaultState {
    faults: LaneFaults,
    rng: crate::rng::DetRng,
    /// Messages dropped so far.
    pub dropped: u64,
    /// Messages delayed so far.
    pub delayed: u64,
    /// Messages duplicated so far.
    pub duplicated: u64,
}

/// The fate fault injection assigns one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Deliver normally.
    Deliver,
    /// Silently drop.
    Drop,
    /// Deliver after an extra delay.
    Delay(SimDuration),
    /// Deliver twice (the duplicate shares the original's ready time).
    Duplicate,
}

impl LaneFaultState {
    /// Creates lane state from a plan slice and a forked RNG stream.
    pub fn new(faults: LaneFaults, rng: crate::rng::DetRng) -> Self {
        Self {
            faults,
            rng,
            dropped: 0,
            delayed: 0,
            duplicated: 0,
        }
    }

    /// Decides the fate of one message. Draw order is fixed (drop, delay,
    /// duplicate) so plans replay identically.
    pub fn fate(&mut self) -> MessageFate {
        if self.faults.drop > 0.0 && self.rng.chance(self.faults.drop) {
            self.dropped += 1;
            return MessageFate::Drop;
        }
        if self.faults.delay > 0.0 && self.rng.chance(self.faults.delay) {
            self.delayed += 1;
            let extra = SimDuration::from_nanos(
                (self.faults.delay_max.as_nanos() as f64 * self.rng.next_f64()) as u64,
            );
            return MessageFate::Delay(extra);
        }
        if self.faults.duplicate > 0.0 && self.rng.chance(self.faults.duplicate) {
            self.duplicated += 1;
            return MessageFate::Duplicate;
        }
        MessageFate::Deliver
    }
}

/// Inserts `(ready, item)` into a queue kept sorted by ready time,
/// preserving FIFO order among equal ready times. With uniform latency
/// every insert lands at the back, so the fault-free path is untouched.
pub fn insert_by_ready<T>(
    queue: &mut std::collections::VecDeque<(SimTime, T)>,
    ready: SimTime,
    item: T,
) {
    let at = queue.partition_point(|&(r, _)| r <= ready);
    queue.insert(at, (ready, item));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;
    use std::collections::VecDeque;

    #[test]
    fn inert_plan_is_inactive_and_valid() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert!(plan.is_valid());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn lane_probabilities_validate() {
        let mut lane = LaneFaults::NONE;
        assert!(lane.is_valid());
        lane.drop = 1.5;
        assert!(!lane.is_valid());
    }

    #[test]
    fn fates_are_deterministic() {
        let lane = LaneFaults {
            drop: 0.3,
            delay: 0.3,
            delay_max: SimDuration::from_millis(5),
            duplicate: 0.3,
        };
        let run = || {
            let mut s = LaneFaultState::new(lane, DetRng::new(7));
            (0..64).map(|_| s.fate()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        let mut s = LaneFaultState::new(lane, DetRng::new(7));
        for _ in 0..64 {
            s.fate();
        }
        assert!(s.dropped + s.delayed + s.duplicated > 0);
    }

    #[test]
    fn ready_sorted_insert_keeps_fifo_for_equal_times() {
        let mut q: VecDeque<(SimTime, u32)> = VecDeque::new();
        let t = |n| SimTime::from_nanos(n);
        insert_by_ready(&mut q, t(10), 1);
        insert_by_ready(&mut q, t(10), 2);
        insert_by_ready(&mut q, t(5), 3);
        insert_by_ready(&mut q, t(20), 4);
        insert_by_ready(&mut q, t(10), 5);
        let order: Vec<u32> = q.iter().map(|&(_, v)| v).collect();
        assert_eq!(order, vec![3, 1, 2, 5, 4]);
    }

    #[test]
    fn stall_points_cover_all_five_states() {
        assert_eq!(StallPoint::ALL.len(), 5);
        let names: std::collections::BTreeSet<_> =
            StallPoint::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
