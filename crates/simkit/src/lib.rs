#![warn(missing_docs)]
//! `simkit` — deterministic discrete-time simulation substrate.
//!
//! Provides the shared building blocks every other crate of the JAVMM
//! reproduction rests on: a simulated clock ([`clock::SimClock`]),
//! nanosecond time types ([`time::SimTime`], [`time::SimDuration`]),
//! deterministic random numbers ([`rng::DetRng`]), statistics matching the
//! paper's methodology ([`stats`]), byte/bandwidth units ([`units`]), a
//! generic event trace ([`trace::Trace`]) and a cross-layer flight
//! recorder with JSONL / Chrome-trace export ([`telemetry`]).
//!
//! # Design
//!
//! The simulation is *co-operative discrete time*: a single driver advances a
//! [`clock::SimClock`] in small quanta and each component performs its share
//! of work for that quantum. There is no global event queue; the dynamics of
//! interest (pre-copy iterations racing page dirtying) are continuous-rate
//! processes, which quantised time models precisely and cheaply.
//!
//! Determinism is an invariant: given the same seed, every run produces
//! bit-identical results. All randomness must flow from [`rng::DetRng`]
//! streams forked off a single per-run seed.

pub mod clock;
pub mod faults;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;
pub mod units;

pub use clock::SimClock;
pub use faults::{
    FaultKind, FaultPlan, GcOverrun, LaneFaults, LinkDegrade, PhaseShift, StallPoint,
};
pub use rng::DetRng;
pub use telemetry::{Recorder, RunTelemetry, Subsystem};
pub use time::{SimDuration, SimTime};
pub use units::Bandwidth;
