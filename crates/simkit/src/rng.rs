//! Deterministic random numbers for reproducible experiments.
//!
//! Every run of an experiment is driven by a single `u64` seed; components
//! derive independent streams with [`DetRng::fork`] so that adding a consumer
//! of randomness in one subsystem never perturbs another subsystem's stream.

use rand::RngCore;

/// A deterministic pseudo-random generator (SplitMix64 core).
///
/// SplitMix64 passes BigCrush, needs only one word of state, and — unlike
/// many stream ciphers — makes forking sub-streams trivially cheap, which is
/// exactly what a multi-component simulation needs.
///
/// # Examples
///
/// ```
/// use simkit::rng::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            // Avalanche the seed once so that adjacent seeds (0, 1, 2, ...)
            // still produce uncorrelated streams.
            state: splitmix64(&mut { seed ^ 0x9e37_79b9_7f4a_7c15 }),
        }
    }

    /// Derives an independent sub-stream labelled by `stream`.
    ///
    /// Forking with distinct labels yields generators whose outputs are
    /// uncorrelated with each other and with the parent.
    pub fn fork(&self, stream: u64) -> Self {
        let mut s = self.state ^ stream.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        Self {
            state: splitmix64(&mut s),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly distributed mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: bound must be positive");
        // Lemire's multiply-shift rejection method: unbiased and fast.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = (self.next_u64() as u128).wrapping_mul(bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range: empty interval [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Samples an exponential distribution with the given mean.
    ///
    /// Returns zero when `mean <= 0`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse CDF; 1 - U avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Samples a normal distribution via Box-Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Samples a multiplicative jitter factor in `[1-spread, 1+spread]`.
    ///
    /// Used to model run-to-run variation of durations and rates the way the
    /// paper's repeated runs vary.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        1.0 + (self.next_f64() * 2.0 - 1.0) * spread.clamp(0.0, 1.0)
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        DetRng::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = DetRng::next_u64(self).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// One SplitMix64 step.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent_of_parent_consumption() {
        let parent = DetRng::new(99);
        let mut f1 = parent.fork(3);
        let mut parent2 = DetRng::new(99);
        parent2.next_u64();
        let mut f2 = DetRng::new(99).fork(3);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let _ = parent2;
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(5);
        for _ in 0..10_000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut rng = DetRng::new(5);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = DetRng::new(11);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::new(13);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn normal_mean_is_close() {
        let mut rng = DetRng::new(17);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.normal(10.0, 3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = DetRng::new(23);
        for _ in 0..10_000 {
            let j = rng.jitter(0.05);
            assert!((0.95..=1.05).contains(&j));
        }
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = DetRng::new(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
