//! Property-based tests for simkit's arithmetic and statistics.

use proptest::prelude::*;
use simkit::stats::{SampleStats, TimeSeries};
use simkit::telemetry::hist::Histogram;
use simkit::{DetRng, SimDuration, SimTime};

proptest! {
    /// Duration conversions round-trip across units.
    #[test]
    fn duration_unit_roundtrips(us in 0u64..(1 << 50)) {
        let d = SimDuration::from_micros(us);
        prop_assert_eq!(d.as_micros(), us);
        prop_assert_eq!(SimDuration::from_nanos(d.as_nanos()), d);
        let via_float = SimDuration::from_secs_f64(d.as_secs_f64());
        // Float round-trip is exact to ~microsecond at this magnitude.
        prop_assert!(via_float.as_nanos().abs_diff(d.as_nanos()) <= 256);
    }

    /// Saturating ops never panic and bound correctly.
    #[test]
    fn saturating_arithmetic(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        let sum = da.saturating_add(db);
        prop_assert!(sum >= da.max(db));
        let diff = da.saturating_sub(db);
        prop_assert!(diff <= da);
        let t = SimTime::from_nanos(a);
        prop_assert_eq!(t.saturating_since(t), SimDuration::ZERO);
    }

    /// Welford statistics agree with the naive two-pass computation.
    #[test]
    fn welford_matches_naive(values in prop::collection::vec(-1e6f64..1e6, 2..128)) {
        let mut s = SampleStats::new();
        for &v in &values {
            s.add(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.std_dev() - var.sqrt()).abs() < 1e-5 * var.sqrt().max(1.0));
        prop_assert_eq!(s.count(), values.len() as u64);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(s.min(), min);
    }

    /// Time-series bucket totals conserve the recorded mass.
    #[test]
    fn timeseries_conserves_mass(
        interval_ms in 1u64..5000,
        points in prop::collection::vec((0u64..100_000u64, 0.0f64..1e6), 0..128),
    ) {
        let mut ts = TimeSeries::new(SimDuration::from_millis(interval_ms));
        let mut total = 0.0;
        for &(at_ms, v) in &points {
            ts.record(SimTime::from_nanos(at_ms * 1_000_000), v);
            total += v;
        }
        let sum: f64 = ts.bucket_values().iter().sum();
        prop_assert!((sum - total).abs() < 1e-6 * total.max(1.0));
    }

    /// Forked RNG streams are reproducible and label-sensitive.
    #[test]
    fn rng_fork_streams(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        let root = DetRng::new(seed);
        let mut f1 = root.fork(a);
        let mut f2 = root.fork(a);
        prop_assert_eq!(f1.next_u64(), f2.next_u64());
        if a != b {
            let mut g = root.fork(b);
            let mut f3 = root.fork(a);
            // Overwhelmingly likely to differ on the first draw.
            let same = (0..8).all(|_| f3.next_u64() == g.next_u64());
            prop_assert!(!same, "streams {a} and {b} coincide");
        }
    }

    /// `below` is unbiased enough that all residues appear, and `range`
    /// stays in bounds.
    #[test]
    fn rng_bounds(seed in any::<u64>(), lo in 0u64..1000, width in 1u64..1000) {
        let mut rng = DetRng::new(seed);
        for _ in 0..64 {
            let x = rng.range(lo, lo + width);
            prop_assert!((lo..lo + width).contains(&x));
        }
    }

    /// Merging two histograms is indistinguishable from recording the
    /// concatenated samples into one — the fleet digest relies on this to
    /// aggregate per-VM histograms without keeping raw samples around.
    #[test]
    fn hist_merge_matches_concatenated_recording(
        a in prop::collection::vec(0u64..(1 << 40), 0..64),
        b in prop::collection::vec(0u64..(1 << 40), 0..64),
    ) {
        let mut ha = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = Histogram::new();
        for &v in &b {
            hb.record(v);
        }
        let mut concat = Histogram::new();
        for &v in a.iter().chain(&b) {
            concat.record(v);
        }
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(&merged, &concat);
        // Merge is order-insensitive…
        let mut flipped = hb.clone();
        flipped.merge(&ha);
        prop_assert_eq!(&flipped, &concat);
        // …the empty histogram is its identity…
        let mut id = Histogram::new();
        id.merge(&concat);
        prop_assert_eq!(&id, &concat);
        let mut id2 = concat.clone();
        id2.merge(&Histogram::new());
        prop_assert_eq!(&id2, &concat);
        // …and summary statistics survive the union.
        if concat.count() > 0 {
            prop_assert_eq!(merged.min(), a.iter().chain(&b).copied().min().unwrap());
            prop_assert_eq!(merged.max(), a.iter().chain(&b).copied().max().unwrap());
            prop_assert_eq!(merged.sum(), a.iter().chain(&b).sum::<u64>());
            // q ranges over the documented (0, 1] domain.
            for q in [0.01, 0.5, 0.99, 1.0] {
                prop_assert_eq!(merged.quantile(q), concat.quantile(q));
            }
        }
    }
}
