//! Heap-profiling behaviour (the §4.2 observations behind Figure 5).

use javmm::profiles::profile_heap;
use simkit::units::{GIB, MIB};
use simkit::SimDuration;
use workloads::catalog;

#[test]
fn category1_young_grows_to_the_cap() {
    // Observation 1: derby/xml-like workloads quickly grow the Young
    // generation to its maximum.
    let p = profile_heap(&catalog::derby(), GIB, SimDuration::from_secs(60), 1);
    assert!(
        p.avg_young > 0.75 * GIB as f64,
        "derby avg young {:.0} MB",
        p.avg_young / MIB as f64
    );
    // GCs every ~3 s (paper §4.2).
    assert!(
        (1.5..5.0).contains(&p.gc_interval_secs),
        "interval {:.1}s",
        p.gc_interval_secs
    );
}

#[test]
fn category1_young_is_mostly_garbage() {
    // Observation 2: >97% of the Young generation is garbage at a GC.
    let p = profile_heap(&catalog::xml(), GIB, SimDuration::from_secs(60), 1);
    let garbage_frac = p.gc_garbage / (p.gc_garbage + p.gc_live);
    assert!(
        garbage_frac > 0.97,
        "xml garbage fraction {garbage_frac:.3}"
    );
}

#[test]
fn scimark_is_old_heavy() {
    // Category 3: small Young generation, large Old generation.
    let p = profile_heap(&catalog::scimark(), GIB, SimDuration::from_secs(60), 1);
    assert!(
        p.avg_old > p.avg_young,
        "old {:.0} MB vs young {:.0} MB",
        p.avg_old / MIB as f64,
        p.avg_young / MIB as f64
    );
    assert!(p.avg_young < 256.0 * MIB as f64);
    // And its Young generation keeps much more live data than Category 1.
    let live_frac = p.gc_live / (p.gc_garbage + p.gc_live);
    assert!(live_frac > 0.08, "scimark live fraction {live_frac:.3}");
}

#[test]
fn gc_duration_reflects_collection_cost() {
    // Observation 3: collecting Young garbage is faster than sending it
    // over gigabit Ethernet for every workload except scimark-like ones.
    let link_bytes_per_sec = 117.5e6;
    for w in catalog::all() {
        let p = profile_heap(&w, GIB, SimDuration::from_secs(45), 1);
        if p.gc_count == 0 {
            continue;
        }
        let transfer_secs = p.gc_garbage / link_bytes_per_sec;
        let collect_secs = p.gc_duration.as_secs_f64();
        if w.name != "scimark" && p.gc_garbage > 100.0 * MIB as f64 {
            assert!(
                collect_secs < transfer_secs * 1.2,
                "{}: collect {collect_secs:.2}s vs transfer {transfer_secs:.2}s",
                w.name
            );
        }
    }
}

#[test]
fn profiles_are_deterministic_per_seed() {
    let a = profile_heap(&catalog::crypto(), GIB, SimDuration::from_secs(30), 7);
    let b = profile_heap(&catalog::crypto(), GIB, SimDuration::from_secs(30), 7);
    assert_eq!(a.avg_young, b.avg_young);
    assert_eq!(a.gc_count, b.gc_count);
    assert_eq!(a.gc_duration, b.gc_duration);
}
