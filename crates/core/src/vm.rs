//! Assembly of a migratable Java VM.
//!
//! A [`JavaVm`] is the complete guest of the paper's testbed: a booted
//! guest kernel with the migration-assist LKM loaded, a JVM process running
//! one workload (with or without the JAVMM TI agent), optionally further
//! assisting applications (e.g. the §6 cache server), and the external
//! throughput analyzer.

use guestos::app::GuestApp;
use guestos::kernel::{GuestKernel, GuestOsConfig};
use guestos::lkm::{DaemonPort, LkmConfig};
use jheap::gc::GcKind;
use jheap::jvm::JvmProcess;
use simkit::{DetRng, SimClock, SimDuration, SimTime};
use workloads::analyzer::Analyzer;
use workloads::spec::WorkloadSpec;

use migrate::vmhost::MigratableVm;

/// Which collector the JVM runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collector {
    /// HotSpot ParallelGC-like: contiguous Eden + two survivor spaces.
    Parallel,
    /// Garbage-first-like: a set of non-contiguous fixed-size regions (§6).
    G1 {
        /// Region size in bytes.
        region_bytes: u64,
    },
}

/// Configuration of a Java VM under test.
#[derive(Debug, Clone)]
pub struct JavaVmConfig {
    /// Guest OS and VM dimensions.
    pub os: GuestOsConfig,
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// Maximum Young generation size; defaults to the workload's own.
    pub young_max: Option<u64>,
    /// Load the JAVMM TI agent (assisted migration).
    pub assisted: bool,
    /// Garbage collector.
    pub collector: Collector,
    /// LKM configuration.
    pub lkm: LkmConfig,
    /// Run seed; all randomness derives from it.
    pub seed: u64,
}

impl JavaVmConfig {
    /// The paper's setup: a 2 GiB / 4 vCPU guest running `workload`.
    pub fn paper(workload: WorkloadSpec, assisted: bool, seed: u64) -> Self {
        Self {
            os: GuestOsConfig::paper_guest(),
            workload,
            young_max: None,
            assisted,
            collector: Collector::Parallel,
            lkm: LkmConfig::default(),
            seed,
        }
    }
}

/// A fully assembled guest VM.
pub struct JavaVm {
    kernel: GuestKernel,
    jvm: JvmProcess,
    extra_apps: Vec<Box<dyn GuestApp>>,
    analyzer: Analyzer,
    port: DaemonPort,
}

impl JavaVm {
    /// Boots the guest, loads the LKM, and launches the JVM + workload.
    pub fn launch(config: JavaVmConfig) -> Self {
        let mutator = config.workload.mutator();
        Self::launch_with_mutator(config, mutator)
    }

    /// Like [`JavaVm::launch`] but with a custom mutator (e.g. a
    /// [`jheap::mutator::PhasedMutator`]) instead of the workload's steady
    /// profile; the workload spec still provides the JVM configuration.
    pub fn launch_with_mutator(
        config: JavaVmConfig,
        mutator: Box<dyn jheap::mutator::Mutator>,
    ) -> Self {
        let root = DetRng::new(config.seed);
        let mut kernel = GuestKernel::boot(config.os.clone(), root.fork(1));
        let port = kernel.load_lkm(config.lkm.clone());
        let young_max = config
            .young_max
            .unwrap_or(config.workload.default_young_max);
        let jvm_config = config.workload.jvm_config(young_max);
        let jvm = match config.collector {
            Collector::Parallel => JvmProcess::launch(
                &mut kernel,
                jvm_config,
                mutator,
                config.assisted,
                root.fork(2),
            ),
            Collector::G1 { region_bytes } => JvmProcess::launch_g1(
                &mut kernel,
                jvm_config,
                region_bytes,
                mutator,
                config.assisted,
                root.fork(2),
            ),
        };
        Self {
            kernel,
            jvm,
            extra_apps: Vec::new(),
            analyzer: Analyzer::new(),
            port,
        }
    }

    /// Adds another guest application (it should already hold its netlink
    /// subscription if it assists in migration).
    pub fn add_app(&mut self, app: Box<dyn GuestApp>) {
        self.extra_apps.push(app);
    }

    /// The guest kernel (e.g. to launch further apps before adding them).
    pub fn kernel_handle(&mut self) -> &mut GuestKernel {
        &mut self.kernel
    }

    /// The JVM under test.
    pub fn jvm(&self) -> &JvmProcess {
        &self.jvm
    }

    /// The workload's current dirty rate (allocation + Old-generation
    /// rewriting), bytes/second — the application-assisted signal a
    /// cycle-aware fleet scheduler consults before admitting this VM's
    /// migration.
    pub fn dirty_rate_hint(&mut self) -> f64 {
        let profile = self.jvm.mutator_profile();
        profile.alloc_rate + profile.old_write_rate
    }

    /// Arms (or disarms) a one-shot workload phase shift without touching
    /// any other fault lane. The fleet scheduler installs this at boot so
    /// the shift's countdown spans warmup and queueing; the full
    /// [`MigratableVm::install_faults`] at migration start re-installs the
    /// identical value, which [`JvmProcess::set_phase_shift`] treats as a
    /// no-op (a fired shift stays fired).
    pub fn set_phase_shift(&mut self, shift: Option<simkit::PhaseShift>) {
        self.jvm.set_phase_shift(shift);
    }

    /// The throughput analyzer.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Finalizes the analyzer's trailing buckets up to `now`.
    pub fn finish_analyzer(&mut self, now: SimTime) {
        self.analyzer.finish(now);
    }

    /// Runs the guest (no migration in progress) for `total`, advancing the
    /// shared clock in `tick` steps.
    pub fn run_for(&mut self, clock: &mut SimClock, total: SimDuration, tick: SimDuration) {
        let end = clock.now() + total;
        while clock.now() < end {
            let dt = tick.min(end.saturating_since(clock.now()));
            self.advance_guest(clock.now(), dt);
            clock.advance(dt);
        }
    }
}

impl MigratableVm for JavaVm {
    fn kernel(&self) -> &GuestKernel {
        &self.kernel
    }

    fn kernel_mut(&mut self) -> &mut GuestKernel {
        &mut self.kernel
    }

    fn advance_guest(&mut self, now: SimTime, dt: SimDuration) {
        self.kernel.service_lkm(now);
        self.kernel.tick_noise(now, dt);
        self.jvm.advance(now, dt, &mut self.kernel);
        for app in &mut self.extra_apps {
            app.advance(now, dt, &mut self.kernel);
        }
        let total_ops = self.jvm.ops_completed()
            + self
                .extra_apps
                .iter()
                .map(|a| a.ops_completed())
                .sum::<u64>();
        self.analyzer.observe(now + dt, total_ops);
    }

    fn ops_completed(&self) -> u64 {
        self.jvm.ops_completed()
            + self
                .extra_apps
                .iter()
                .map(|a| a.ops_completed())
                .sum::<u64>()
    }

    fn daemon_port(&self) -> Option<DaemonPort> {
        Some(self.port.clone())
    }

    fn enforced_gc_duration(&self) -> Option<SimDuration> {
        self.jvm
            .heap()
            .gc_log()
            .records()
            .iter()
            .rev()
            .find(|r| r.kind == GcKind::EnforcedMinor)
            .map(|r| r.duration)
    }

    fn attach_telemetry(&mut self, recorder: simkit::Recorder) {
        self.kernel.attach_telemetry(recorder.clone());
        self.port.attach_telemetry(recorder.clone());
        self.jvm.attach_telemetry(recorder);
    }

    fn install_faults(&mut self, plan: &simkit::FaultPlan) {
        // Strict no-op for an inert plan: no RNG forks, no transport state
        // changes, so zero-fault runs stay bit-for-bit identical.
        if !plan.is_active() {
            return;
        }
        let root = DetRng::new(plan.seed);
        if plan.evtchn.is_active() {
            self.port.install_faults(plan.evtchn, root.fork(1));
        }
        if plan.netlink.is_active() {
            self.kernel
                .install_netlink_faults(plan.netlink, root.fork(2));
        }
        self.jvm.set_agent_stall(plan.agent_stall);
        self.jvm.set_gc_overrun(plan.gc_overrun);
        self.jvm.set_phase_shift(plan.phase_shift);
    }
}

impl core::fmt::Debug for JavaVm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("JavaVm")
            .field("kernel", &self.kernel)
            .field("jvm", &self.jvm)
            .field("extra_apps", &self.extra_apps.len())
            .finish()
    }
}
