//! Repeated-run experiment helpers.
//!
//! The paper repeats each experiment at least three times and reports means
//! with 90% confidence intervals. These helpers run a closure across seeds
//! and summarize any extracted metric the same way.

use simkit::stats::SampleStats;

/// Mean and 90% confidence half-width of a repeated measurement.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 90% confidence interval.
    pub ci90: f64,
    /// Number of runs.
    pub n: u64,
}

impl Summary {
    /// Summarizes a slice of observations.
    pub fn of(values: &[f64]) -> Self {
        let mut stats = SampleStats::new();
        for &v in values {
            stats.add(v);
        }
        Self {
            mean: stats.mean(),
            ci90: stats.ci90_half_width(),
            n: stats.count(),
        }
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.2} ±{:.2}", self.mean, self.ci90)
    }
}

/// Runs `f` once per seed (`1..=runs`), collecting its outputs.
pub fn across_seeds<T>(runs: u64, f: impl FnMut(u64) -> T) -> Vec<T> {
    (1..=runs).map(f).collect()
}

/// Runs `f` across seeds and summarizes the metric it returns.
pub fn summarize_across_seeds(runs: u64, f: impl FnMut(u64) -> f64) -> Summary {
    let values: Vec<f64> = (1..=runs).map(f).collect();
    Summary::of(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_runs() {
        let s = Summary::of(&[5.0, 5.0, 5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.ci90, 0.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn across_seeds_passes_distinct_seeds() {
        let seeds = across_seeds(3, |s| s);
        assert_eq!(seeds, vec![1, 2, 3]);
    }

    #[test]
    fn summarize_matches_manual() {
        let s = summarize_across_seeds(3, |seed| seed as f64 * 2.0);
        assert_eq!(s.mean, 4.0);
        assert!(s.ci90 > 0.0);
    }

    #[test]
    fn display_format() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert!(s.to_string().starts_with("2.00 ±"));
    }
}
