//! Scenario orchestration: warm up, migrate, cool down, measure.
//!
//! Reproduces the paper's experimental procedure (§5.1): run the workload
//! for ten minutes in the VM and migrate it halfway through, observing
//! throughput from outside with a suspension-immune time source.

use crate::vm::{JavaVm, JavaVmConfig};
use migrate::config::MigrationConfig;
use migrate::error::MigrateError;
use migrate::precopy::PrecopyEngine;
use migrate::report::MigrationReport;
use simkit::{Recorder, SimClock, SimDuration};

/// A full experimental scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The VM under test.
    pub vm: JavaVmConfig,
    /// The migration engine configuration.
    pub migration: MigrationConfig,
    /// Workload runtime before migration begins (paper: 300 s).
    pub warmup: SimDuration,
    /// Total workload runtime (paper: 600 s).
    pub total: SimDuration,
    /// Guest tick outside of migration (migration itself uses the engine's
    /// quantum).
    pub tick: SimDuration,
}

impl Scenario {
    /// The paper's procedure with the given VM and engine configs.
    pub fn paper(vm: JavaVmConfig, migration: MigrationConfig) -> Self {
        Self {
            vm,
            migration,
            warmup: SimDuration::from_secs(300),
            total: SimDuration::from_secs(600),
            tick: SimDuration::from_millis(2),
        }
    }

    /// A shortened variant for tests: migrate after `warmup`, run `tail`
    /// afterwards.
    pub fn quick(
        vm: JavaVmConfig,
        migration: MigrationConfig,
        warmup: SimDuration,
        tail: SimDuration,
    ) -> Self {
        Self {
            vm,
            migration,
            warmup,
            total: warmup + tail,
            tick: SimDuration::from_millis(2),
        }
    }
}

/// Heap state observed right before migration begins (Tables 2 and 3).
#[derive(Debug, Clone, Copy)]
pub struct ObservedHeap {
    /// Committed Young generation bytes.
    pub young: u64,
    /// Used Old generation bytes.
    pub old: u64,
}

/// Everything one scenario run produces.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The migration report.
    pub report: MigrationReport,
    /// Heap sizes when migration began.
    pub observed: ObservedHeap,
    /// Throughput points `(second, ops)` across the whole run.
    pub throughput: Vec<(f64, f64)>,
    /// Mean throughput before migration began.
    pub mean_ops_before: f64,
    /// Mean throughput between migration end and run end.
    pub mean_ops_after: f64,
    /// When migration began, in seconds from run start.
    pub migration_started_at: f64,
    /// When the VM resumed, in seconds from run start.
    pub migration_ended_at: f64,
}

/// Runs one scenario to completion.
///
/// # Errors
///
/// Propagates any [`MigrateError`] from the migration engine (invalid
/// config, missing LKM, dead link, exhausted coordination under the `Fail`
/// fallback). A degraded-but-completed migration is *not* an error: it
/// returns an outcome whose report carries
/// [`MigrationOutcome::DegradedVanilla`](migrate::error::MigrationOutcome::DegradedVanilla).
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioOutcome, MigrateError> {
    run_scenario_recorded(scenario, Recorder::disabled())
}

/// Like [`run_scenario`] but with a cross-layer flight recorder attached
/// for the migration window; the frozen snapshot lands in
/// `outcome.report.telemetry` (export it with [`simkit::telemetry::export`]).
pub fn run_scenario_recorded(
    scenario: &Scenario,
    recorder: Recorder,
) -> Result<ScenarioOutcome, MigrateError> {
    let mut vm = JavaVm::launch(scenario.vm.clone());
    let mut clock = SimClock::new();

    vm.run_for(&mut clock, scenario.warmup, scenario.tick);
    let observed = ObservedHeap {
        young: vm.jvm().heap().young_committed(),
        old: vm.jvm().heap().old_used(),
    };
    let started_at = clock.now().as_secs_f64();

    let engine = PrecopyEngine::new(scenario.migration.clone());
    let report = engine.migrate_recorded(&mut vm, &mut clock, recorder)?;
    let ended_at = clock.now().as_secs_f64();

    // Keep running at the destination for the rest of the ten minutes.
    let remaining = scenario
        .total
        .saturating_sub(clock.now().saturating_since(simkit::SimTime::ZERO));
    if !remaining.is_zero() {
        vm.run_for(&mut clock, remaining, scenario.tick);
    }
    vm.finish_analyzer(clock.now());

    let analyzer = vm.analyzer();
    let mean_ops_before = analyzer.mean_between(10.0, started_at);
    let mean_ops_after = analyzer.mean_between(ended_at + 1.0, scenario.total.as_secs_f64());

    Ok(ScenarioOutcome {
        report,
        observed,
        throughput: analyzer.points(),
        mean_ops_before,
        mean_ops_after,
        migration_started_at: started_at,
        migration_ended_at: ended_at,
    })
}
