//! Heap-usage profiling (the paper's §4.2 / Figure 5 methodology).
//!
//! Runs a workload in a VM for a while — no migration — sampling the heap
//! once a second and reading the GC log, to reproduce: average Young/Old
//! consumption (Figure 5a), garbage vs live data per minor GC (Figure 5b),
//! and minor-GC duration (Figure 5c).

use crate::vm::{JavaVm, JavaVmConfig};
use simkit::stats::SampleStats;
use simkit::{SimClock, SimDuration};
use workloads::spec::WorkloadSpec;

/// Aggregated heap profile of one workload run.
#[derive(Debug, Clone)]
pub struct HeapProfile {
    /// Workload name.
    pub name: &'static str,
    /// Mean committed Young generation over the run, bytes.
    pub avg_young: f64,
    /// Mean used Old generation over the run, bytes.
    pub avg_old: f64,
    /// Mean garbage reclaimed per minor GC, bytes.
    pub gc_garbage: f64,
    /// Mean live data (copied + promoted) per minor GC, bytes.
    pub gc_live: f64,
    /// Mean minor-GC duration.
    pub gc_duration: SimDuration,
    /// Number of minor GCs observed.
    pub gc_count: usize,
    /// Mean interval between minor GCs, seconds.
    pub gc_interval_secs: f64,
}

/// Profiles `workload` for `duration` with the Young generation capped at
/// `young_max` (the paper's Figure 5 uses 1 GiB for every workload).
pub fn profile_heap(
    workload: &WorkloadSpec,
    young_max: u64,
    duration: SimDuration,
    seed: u64,
) -> HeapProfile {
    let mut config = JavaVmConfig::paper(workload.clone(), false, seed);
    config.young_max = Some(young_max);
    let mut vm = JavaVm::launch(config);
    let mut clock = SimClock::new();

    let mut young = SampleStats::new();
    let mut old = SampleStats::new();
    let second = SimDuration::from_secs(1);
    let steps = duration.as_secs();
    for _ in 0..steps {
        vm.run_for(&mut clock, second, SimDuration::from_millis(2));
        young.add(vm.jvm().heap().young_committed() as f64);
        old.add(vm.jvm().heap().old_used() as f64);
    }

    let log = vm.jvm().heap().gc_log();
    let (gc_garbage, gc_live) = log.mean_minor_garbage_live();
    let minors: Vec<_> = log
        .records()
        .iter()
        .filter(|r| r.kind != jheap::gc::GcKind::Full)
        .collect();
    let gc_interval_secs = if minors.len() >= 2 {
        let span = minors
            .last()
            .expect("len checked")
            .at
            .saturating_since(minors[0].at)
            .as_secs_f64();
        span / (minors.len() - 1) as f64
    } else {
        f64::INFINITY
    };

    HeapProfile {
        name: workload.name,
        avg_young: young.mean(),
        avg_old: old.mean(),
        gc_garbage,
        gc_live,
        gc_duration: log.mean_minor_duration(),
        gc_count: minors.len(),
        gc_interval_secs,
    }
}
