//! Multi-VM host model: the tenants of one physical machine being drained.
//!
//! The paper migrates one VM at a time; a real consolidation or
//! maintenance event drains a whole host, and the interesting systems
//! questions — who shares the uplink, who goes first, who must wait so
//! everyone can converge — live at that level. This module holds the
//! *model*: a [`VmTenant`] is one guest plus the scheduling contract the
//! host operator attached to it (bandwidth weight, minimum convergence
//! rate, SLA cost rates), and a [`HostSpec`] is the full drain problem
//! (tenants, shared uplink, admission limits, timing). The scheduler that
//! solves it lives in the `cluster` crate; this split keeps the model
//! reusable (benches, tests and examples all build rosters from it)
//! without `core` depending on the scheduler.

use crate::vm::{JavaVm, JavaVmConfig};
use jheap::mutator::{Phase, PhasedMutator};
use migrate::config::MigrationConfig;
use migrate::error::ConfigError;
use migrate::sla::SlaModel;
use simkit::units::Bandwidth;
use simkit::SimDuration;

/// One guest VM on the host, with its scheduling contract.
#[derive(Debug, Clone)]
pub struct VmTenant {
    /// Stable tenant name; becomes the per-VM digest key.
    pub name: String,
    /// The guest configuration (workload, seed, assist, collector).
    pub vm: JavaVmConfig,
    /// The migration engine configuration for this tenant's migration.
    pub migration: MigrationConfig,
    /// Overrides the workload's steady mutator with a phase cycle (e.g. a
    /// batch job alternating bursty parsing with quiet crunching); `None`
    /// keeps the workload's own profile.
    pub phases: Option<Vec<Phase>>,
    /// Weighted-fair share weight on the shared uplink.
    pub weight: f64,
    /// Minimum link rate below which this tenant's pre-copy cannot
    /// converge; admission control refuses any split that would push a
    /// tenant under its own minimum.
    pub min_rate: Bandwidth,
    /// SLA cost rates for this tenant.
    pub sla: SlaModel,
}

impl VmTenant {
    /// A tenant with neutral scheduling defaults: unit weight, a 10 MB/s
    /// convergence floor, and batch-grade SLA rates.
    pub fn new(name: impl Into<String>, vm: JavaVmConfig, migration: MigrationConfig) -> Self {
        Self {
            name: name.into(),
            vm,
            migration,
            phases: None,
            weight: 1.0,
            min_rate: Bandwidth::from_mbytes_per_sec(10.0),
            sla: SlaModel::default_batch(),
        }
    }

    /// Replaces the workload's steady profile with a phase cycle.
    pub fn with_phases(mut self, phases: Vec<Phase>) -> Self {
        self.phases = Some(phases);
        self
    }

    /// Sets the weighted-fair share weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Sets the minimum convergence rate consulted by admission control.
    pub fn with_min_rate(mut self, min_rate: Bandwidth) -> Self {
        self.min_rate = min_rate;
        self
    }

    /// Sets the SLA cost model.
    pub fn with_sla(mut self, sla: SlaModel) -> Self {
        self.sla = sla;
        self
    }

    /// Boots this tenant's guest: the workload's own mutator, or the
    /// tenant's phase cycle when one is configured.
    pub fn launch(&self) -> JavaVm {
        match &self.phases {
            None => JavaVm::launch(self.vm.clone()),
            Some(phases) => JavaVm::launch_with_mutator(
                self.vm.clone(),
                Box::new(PhasedMutator::new(
                    format!("{}-phased", self.vm.workload.name),
                    phases.clone(),
                )),
            ),
        }
    }
}

/// A whole-host drain problem: every tenant plus the shared resources and
/// limits the fleet scheduler must respect.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Stable roster name; becomes the fleet digest's drain key.
    pub name: String,
    /// Root seed of the drain (per-tenant seeds derive from it when the
    /// roster is built; kept here for the digest metadata).
    pub seed: u64,
    /// Tenants in roster order (the FIFO order).
    pub tenants: Vec<VmTenant>,
    /// Shared migration uplink capacity.
    pub uplink: Bandwidth,
    /// Admission control: at most this many migrations in flight.
    pub max_concurrent: u32,
    /// Admission control: refuse admissions that would push any active
    /// migration (or the candidate) below its tenant's `min_rate`. Turning
    /// this off reproduces naive drains where concurrent migrations starve
    /// each other out of convergence.
    pub enforce_min_rate: bool,
    /// Workload runtime before the drain begins.
    pub warmup: SimDuration,
    /// Per-VM workload runtime after its own migration completes.
    pub tail: SimDuration,
    /// Guest tick outside of migration.
    pub tick: SimDuration,
    /// Dirty-rate sensing cadence: the scheduler samples every queued
    /// tenant's page-write rate once per this much guest time. Must be a
    /// multiple of `tick` so sensing never changes the guest's stepping.
    pub sense_cadence: SimDuration,
    /// Ring capacity of each tenant's dirty-rate sample series. The cycle
    /// detector needs at least 16 retained samples and roughly two full
    /// workload periods in the window to produce a confident estimate;
    /// shrinking this below that deliberately blinds the observatory
    /// (used by regression drills).
    pub sense_capacity: usize,
    /// Scan-pool workers each admitted migration session runs with; `1`
    /// keeps every per-VM scan inline. Overrides the per-tenant
    /// `migration.scan_workers` at admission, and — because the sharded
    /// pipeline is bit-identical to the serial path — never changes a
    /// drain's digest, only its wall-clock.
    pub scan_workers: usize,
}

impl HostSpec {
    /// An empty host with the paper's gigabit uplink, a 3-migration
    /// admission cap with min-rate enforcement, and the shortened
    /// warmup/tail used by the repo's quick scenarios.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Self {
            name: name.into(),
            seed,
            tenants: Vec::new(),
            uplink: Bandwidth::gigabit_ethernet(),
            max_concurrent: 3,
            enforce_min_rate: true,
            warmup: SimDuration::from_secs(20),
            tail: SimDuration::from_secs(5),
            tick: SimDuration::from_millis(2),
            sense_cadence: SimDuration::from_millis(500),
            sense_capacity: 256,
            scan_workers: 1,
        }
    }

    /// Sets the per-session scan-pool worker count.
    pub fn scan_workers(mut self, workers: usize) -> Self {
        self.scan_workers = workers;
        self
    }

    /// Appends a tenant (roster order is admission order under FIFO).
    pub fn tenant(mut self, tenant: VmTenant) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// A validating builder with the same defaults as [`HostSpec::new`].
    /// Prefer it for hand-assembled drains: it rejects a bad spec once, at
    /// build time, instead of letting the scheduler panic mid-drain.
    pub fn builder(name: impl Into<String>, seed: u64) -> HostSpecBuilder {
        HostSpecBuilder {
            spec: Self::new(name, seed),
        }
    }

    /// Checks every invariant the fleet scheduler relies on. This is the
    /// *single* home of host validation: [`HostSpecBuilder::build`] calls
    /// it, and the scheduler re-checks it on entry instead of asserting
    /// piecemeal.
    ///
    /// # Errors
    ///
    /// The first violated invariant: an empty roster, a non-positive
    /// uplink, a zero concurrency cap or tick, a sensing cadence that is
    /// not a non-zero multiple of the tick, a scan pool without workers,
    /// or a tenant with a non-positive weight or min-rate floor.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.tenants.is_empty() {
            return Err(ConfigError::EmptyRoster);
        }
        if self.max_concurrent == 0 {
            return Err(ConfigError::ZeroConcurrency);
        }
        if self.tick.is_zero() {
            return Err(ConfigError::ZeroTick);
        }
        if self.sense_cadence.is_zero()
            || !self
                .sense_cadence
                .as_nanos()
                .is_multiple_of(self.tick.as_nanos())
        {
            return Err(ConfigError::SenseCadenceMisaligned);
        }
        if self.scan_workers == 0 {
            return Err(ConfigError::ZeroScanWorkers);
        }
        // `Bandwidth` is positive by construction, so uplink and min-rate
        // floors need no re-check here; weights are plain f64s and do.
        for tenant in &self.tenants {
            if !(tenant.weight.is_finite() && tenant.weight > 0.0) {
                return Err(ConfigError::NonPositiveWeight);
            }
        }
        Ok(())
    }
}

/// Builds a [`HostSpec`] and validates it once at the end, mirroring
/// `MigrationConfig`'s builder.
///
/// # Examples
///
/// ```
/// use javmm::host::HostSpec;
/// use simkit::units::Bandwidth;
///
/// let err = HostSpec::builder("empty", 1)
///     .uplink(Bandwidth::gigabit_ethernet())
///     .build()
///     .unwrap_err();
/// assert_eq!(format!("{err}"), "host drain needs at least one tenant");
/// ```
#[derive(Debug, Clone)]
pub struct HostSpecBuilder {
    spec: HostSpec,
}

impl HostSpecBuilder {
    /// Appends a tenant (roster order is admission order under FIFO).
    pub fn tenant(mut self, tenant: VmTenant) -> Self {
        self.spec.tenants.push(tenant);
        self
    }

    /// Sets the shared uplink capacity.
    pub fn uplink(mut self, uplink: Bandwidth) -> Self {
        self.spec.uplink = uplink;
        self
    }

    /// Sets the in-flight migration cap.
    pub fn max_concurrent(mut self, cap: u32) -> Self {
        self.spec.max_concurrent = cap;
        self
    }

    /// Enables or disables min-rate admission control.
    pub fn enforce_min_rate(mut self, enforce: bool) -> Self {
        self.spec.enforce_min_rate = enforce;
        self
    }

    /// Sets the pre-drain warmup.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.spec.warmup = warmup;
        self
    }

    /// Sets the post-migration per-VM tail.
    pub fn tail(mut self, tail: SimDuration) -> Self {
        self.spec.tail = tail;
        self
    }

    /// Sets the guest tick.
    pub fn tick(mut self, tick: SimDuration) -> Self {
        self.spec.tick = tick;
        self
    }

    /// Sets the dirty-rate sensing cadence.
    pub fn sense_cadence(mut self, cadence: SimDuration) -> Self {
        self.spec.sense_cadence = cadence;
        self
    }

    /// Sets the sensing ring capacity.
    pub fn sense_capacity(mut self, capacity: usize) -> Self {
        self.spec.sense_capacity = capacity;
        self
    }

    /// Sets the per-session scan-pool worker count.
    pub fn scan_workers(mut self, workers: usize) -> Self {
        self.spec.scan_workers = workers;
        self
    }

    /// Validates the assembled spec and returns it.
    ///
    /// # Errors
    ///
    /// Whatever [`HostSpec::validate`] rejects.
    pub fn build(self) -> Result<HostSpec, ConfigError> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

/// A destination host an evacuation may place VMs onto: its ingress NIC
/// and how many incoming VMs it can hold.
///
/// Destinations are capacity, not simulation: a placed VM's migration
/// traffic contends on the destination's ingress link (and the core
/// switch in between), and the VM permanently occupies one slot once
/// placed — evacuations move VMs *off* sources, they never re-balance
/// destinations.
#[derive(Debug, Clone)]
pub struct DestSpec {
    /// Stable destination name, surfaced in placement reports.
    pub name: String,
    /// Ingress NIC capacity.
    pub ingress: Bandwidth,
    /// How many incoming VMs this host can hold.
    pub slots: u32,
    /// Whether the path to this host crosses a WAN (a slow, long-haul
    /// last resort for placement).
    pub wan: bool,
}

impl DestSpec {
    /// A LAN destination with a gigabit ingress NIC.
    pub fn new(name: impl Into<String>, slots: u32) -> Self {
        Self {
            name: name.into(),
            ingress: Bandwidth::gigabit_ethernet(),
            slots,
            wan: false,
        }
    }

    /// Sets the ingress NIC capacity.
    pub fn with_ingress(mut self, ingress: Bandwidth) -> Self {
        self.ingress = ingress;
        self
    }

    /// Marks the destination as WAN-attached.
    pub fn with_wan(mut self) -> Self {
        self.wan = true;
        self
    }

    /// Checks the destination's own invariants.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroDestinationSlots`] for a slotless host (the
    /// ingress NIC needs no check — [`Bandwidth`] is positive by
    /// construction).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.slots == 0 {
            return Err(ConfigError::ZeroDestinationSlots);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jheap::mutator::MutatorProfile;
    use workloads::catalog;

    #[test]
    fn tenant_defaults_are_neutral() {
        let t = VmTenant::new(
            "vm0",
            JavaVmConfig::paper(catalog::derby(), true, 1),
            MigrationConfig::javmm_default(),
        );
        assert_eq!(t.weight, 1.0);
        assert!(t.phases.is_none());
        assert!(t.min_rate.bytes_per_sec() > 0.0);
    }

    #[test]
    fn phased_tenant_launches_with_cycle() {
        let phases = vec![
            Phase {
                duration: SimDuration::from_secs(5),
                profile: MutatorProfile::quiet(),
            },
            Phase {
                duration: SimDuration::from_secs(5),
                profile: MutatorProfile {
                    alloc_rate: 200e6,
                    ..MutatorProfile::quiet()
                },
            },
        ];
        let t = VmTenant::new(
            "vm1",
            JavaVmConfig::paper(catalog::mpeg(), true, 2),
            MigrationConfig::javmm_default(),
        )
        .with_phases(phases);
        let vm = t.launch();
        // The phased mutator is live: the VM boots and runs.
        assert_eq!(vm.jvm().heap().young_used(), 0);
    }

    #[test]
    fn builder_validates_every_scheduler_invariant() {
        let tenant = || {
            VmTenant::new(
                "t",
                JavaVmConfig::paper(catalog::derby(), true, 1),
                MigrationConfig::javmm_default(),
            )
        };
        assert_eq!(
            HostSpec::builder("h", 1).build().unwrap_err(),
            ConfigError::EmptyRoster
        );
        assert_eq!(
            HostSpec::builder("h", 1)
                .tenant(tenant())
                .max_concurrent(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroConcurrency
        );
        assert_eq!(
            HostSpec::builder("h", 1)
                .tenant(tenant())
                .sense_cadence(SimDuration::from_millis(3))
                .build()
                .unwrap_err(),
            ConfigError::SenseCadenceMisaligned,
            "cadence must align to the 2 ms tick"
        );
        assert_eq!(
            HostSpec::builder("h", 1)
                .tenant(tenant())
                .scan_workers(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroScanWorkers
        );
        assert_eq!(
            HostSpec::builder("h", 1)
                .tenant(tenant().with_weight(0.0))
                .build()
                .unwrap_err(),
            ConfigError::NonPositiveWeight
        );
        let ok = HostSpec::builder("h", 1)
            .tenant(tenant())
            .warmup(SimDuration::from_secs(4))
            .tail(SimDuration::from_secs(1))
            .build()
            .expect("valid spec");
        assert_eq!(ok.warmup, SimDuration::from_secs(4));
        ok.validate().expect("built specs stay valid");
    }

    #[test]
    fn dest_spec_validates_slots_and_ingress() {
        assert_eq!(
            DestSpec::new("d", 0).validate().unwrap_err(),
            ConfigError::ZeroDestinationSlots
        );
        let wan = DestSpec::new("edge", 8)
            .with_ingress(Bandwidth::from_mbytes_per_sec(40.0))
            .with_wan();
        assert!(wan.wan);
        wan.validate().expect("valid destination");
    }

    #[test]
    fn host_spec_collects_tenants_in_order() {
        let host = HostSpec::new("drain2", 7)
            .tenant(VmTenant::new(
                "a",
                JavaVmConfig::paper(catalog::derby(), true, 8),
                MigrationConfig::javmm_default(),
            ))
            .tenant(VmTenant::new(
                "b",
                JavaVmConfig::paper(catalog::crypto(), true, 9),
                MigrationConfig::javmm_default(),
            ));
        assert_eq!(host.tenants.len(), 2);
        assert_eq!(host.tenants[0].name, "a");
        assert_eq!(host.tenants[1].name, "b");
        assert!(host.enforce_min_rate);
    }
}
