#![warn(missing_docs)]
//! `javmm` — application-assisted live migration of VMs with Java apps.
//!
//! This crate is the top of the reproduction stack: it assembles the
//! substrates (guest kernel + LKM, HotSpot-like JVM, workload models,
//! network link, pre-copy engine) into the paper's experimental system.
//!
//! * [`vm::JavaVm`] — a 2 GiB guest running a SPECjvm2008-like workload,
//!   with the LKM loaded and the JAVMM TI agent optionally enabled;
//! * [`orchestrator`] — the paper's procedure: run ten minutes, migrate
//!   halfway, observe throughput from outside;
//! * [`profiles`] — the §4.2 heap-usage profiling behind Figure 5;
//! * [`experiment`] — repeated runs with 90% confidence intervals.
//!
//! # Examples
//!
//! Migrate a derby VM with JAVMM and with vanilla pre-copy:
//!
//! ```no_run
//! use javmm::orchestrator::{run_scenario, Scenario};
//! use javmm::vm::JavaVmConfig;
//! use migrate::config::MigrationConfig;
//! use workloads::catalog;
//!
//! let javmm = run_scenario(&Scenario::paper(
//!     JavaVmConfig::paper(catalog::derby(), true, 1),
//!     MigrationConfig::javmm_default(),
//! ))
//! .expect("scenario failed");
//! let xen = run_scenario(&Scenario::paper(
//!     JavaVmConfig::paper(catalog::derby(), false, 1),
//!     MigrationConfig::xen_default(),
//! ))
//! .expect("scenario failed");
//! assert!(javmm.report.total_duration < xen.report.total_duration);
//! ```

pub mod experiment;
pub mod host;
pub mod orchestrator;
pub mod profiles;
pub mod vm;

pub use experiment::{across_seeds, summarize_across_seeds, Summary};
pub use host::{DestSpec, HostSpec, HostSpecBuilder, VmTenant};
pub use orchestrator::{run_scenario, ObservedHeap, Scenario, ScenarioOutcome};
pub use profiles::{profile_heap, HeapProfile};
pub use vm::{Collector, JavaVm, JavaVmConfig};

// Re-export the stack for downstream users of the single `javmm` crate.
pub use guestos;
pub use jheap;
pub use migrate;
pub use netsim;
pub use simkit;
pub use vmem;
pub use workloads;
