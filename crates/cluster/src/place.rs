//! Destination placement: which host a migrating VM lands on.
//!
//! An evacuation drains source hosts onto a pool of destination hosts
//! ([`DestSpec`]), each with finite slots and its own ingress NIC. At
//! every admission the scheduler asks the placement policy for a
//! destination; the answer fixes the flow's path through the
//! [`Topology`](netsim::Topology) — and therefore which links its traffic
//! contends on for the rest of its migration. Slots are consumed
//! permanently: an evacuated VM stays where it was put.
//!
//! A destination is *feasible* for a candidate when it still has a free
//! slot and the candidate's path to it passes the same admission test a
//! single-host drain applies per-uplink: every hop keeps every subscriber
//! (and the candidate) at or above its declared minimum rate, or the
//! whole path is idle (the deadlock-avoidance clause — with nothing in
//! flight the candidate gets the best path it will ever see).
//!
//! Policies are pure functions of scheduler state, so placement is as
//! deterministic as everything else: same plan, same seed ⇒ the same
//! placement sequence, byte for byte.

use javmm::host::{DestSpec, VmTenant};
use migrate::sla::SlaModel;
use netsim::Topology;
use simkit::DetRng;

/// How an evacuation chooses destinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Most free slots first — spread by headroom, ties to the fatter
    /// ingress NIC, then to the lower index. Capacity-aware but
    /// SLA-blind: a WAN destination with room looks as good as a local
    /// rack with room.
    Greedy,
    /// Cheapest estimated SLA cost first ([`sla_score`]): brownout while
    /// the migration runs at the predicted path rate, downtime for the
    /// final hand-over, and the tenant's violation penalty when that
    /// hand-over would blow its downtime budget. Slow/WAN paths price
    /// themselves out unless nothing else is feasible.
    SlaAware,
    /// Uniformly random among feasible destinations, from a deterministic
    /// stream seeded here — the control arm SLA-aware placement must beat.
    Random(u64),
    /// Every VM onto the given destination index, ignoring slot capacity
    /// and path feasibility. This is the regression drill: placement
    /// effectively disabled, so eviction time collapses onto one ingress
    /// NIC and the bench gate must catch it.
    Pinned(usize),
}

impl PlacementPolicy {
    /// Stable lower-case name for bench output and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Self::Greedy => "greedy",
            Self::SlaAware => "sla",
            Self::Random(_) => "random",
            Self::Pinned(_) => "pinned",
        }
    }

    /// Parses a CLI name; `random` seeds its stream from `seed`, `pinned`
    /// pins to destination 0.
    pub fn parse(s: &str, seed: u64) -> Option<Self> {
        match s {
            "greedy" => Some(Self::Greedy),
            "sla" => Some(Self::SlaAware),
            "random" => Some(Self::Random(seed)),
            "pinned" => Some(Self::Pinned(0)),
            _ => None,
        }
    }
}

/// One destination's live occupancy during an evacuation.
#[derive(Debug, Clone)]
pub struct DestState {
    /// The destination as specified.
    pub spec: DestSpec,
    /// Slots still free.
    pub free_slots: u32,
    /// VMs placed here so far.
    pub placed: u32,
}

impl DestState {
    /// Fresh occupancy for a destination.
    pub fn new(spec: DestSpec) -> Self {
        let free_slots = spec.slots;
        Self {
            spec,
            free_slots,
            placed: 0,
        }
    }

    /// Consumes one slot. [`PlacementPolicy::Pinned`] ignores capacity,
    /// so the decrement saturates rather than underflowing.
    pub fn occupy(&mut self) {
        self.free_slots = self.free_slots.saturating_sub(1);
        self.placed += 1;
    }
}

/// The fraction of the working set the final stop-and-copy iteration is
/// assumed to carry when estimating hand-over downtime for [`sla_score`].
/// A crude stand-in for the real dirty-set dynamics, but a *monotone* one:
/// slower paths predict longer blackouts, which is all ranking needs.
const FINAL_ITER_FRACTION: f64 = 0.05;

/// Estimated SLA cost of migrating a working set of `ws_bytes` over a
/// path rated `rate_bytes_per_sec`: brownout for the whole transfer,
/// downtime for the final iteration, and the violation penalty when the
/// estimated downtime overshoots the tenant's budget.
pub fn sla_score(sla: &SlaModel, ws_bytes: u64, rate_bytes_per_sec: f64) -> f64 {
    let est_secs = ws_bytes as f64 / rate_bytes_per_sec.max(1.0);
    let brownout = est_secs * sla.brownout_cost_per_sec * sla.brownout_factor;
    let est_down_secs = est_secs * FINAL_ITER_FRACTION;
    let downtime = est_down_secs * sla.downtime_cost_per_sec;
    let penalty = if est_down_secs > sla.downtime_budget.as_secs_f64() {
        sla.violation_penalty
    } else {
        0.0
    };
    downtime + brownout + penalty
}

/// Picks a destination for `tenant` evacuating from source host `src`,
/// or `None` when no destination is currently feasible (the admission
/// loop retries after the next completion frees capacity).
///
/// `ordinal` is the fleet-wide admission counter; the random policy forks
/// its stream from it so each decision is independent of how many
/// feasible options earlier decisions saw.
#[allow(clippy::too_many_arguments)]
pub fn choose(
    policy: PlacementPolicy,
    topo: &Topology,
    dests: &[DestState],
    src: usize,
    tenant: &VmTenant,
    ws_bytes: u64,
    enforce_min_rate: bool,
    ordinal: u64,
) -> Option<usize> {
    if let PlacementPolicy::Pinned(d) = policy {
        return Some(d.min(dests.len().saturating_sub(1)));
    }
    let feasible = feasible_dests(topo, dests, src, tenant, enforce_min_rate);
    if feasible.is_empty() {
        return None;
    }
    match policy {
        PlacementPolicy::Greedy => feasible.into_iter().max_by(|&a, &b| {
            let ka = (dests[a].free_slots, dests[a].spec.ingress.bytes_per_sec());
            let kb = (dests[b].free_slots, dests[b].spec.ingress.bytes_per_sec());
            ka.partial_cmp(&kb)
                .expect("ingress rates are finite")
                // max_by keeps the *later* of equal elements; prefer the
                // lower index on ties instead.
                .then(b.cmp(&a))
        }),
        PlacementPolicy::SlaAware => feasible.into_iter().min_by(|&a, &b| {
            let score = |d: usize| {
                let rate = topo.predicted_rate(src, Some(d), tenant.weight);
                sla_score(&tenant.sla, ws_bytes, rate.bytes_per_sec())
            };
            score(a)
                .partial_cmp(&score(b))
                .expect("sla scores are finite")
                .then(a.cmp(&b))
        }),
        PlacementPolicy::Random(seed) => {
            let mut rng = DetRng::new(seed).fork(ordinal);
            let pick = rng.below(feasible.len() as u64) as usize;
            Some(feasible[pick])
        }
        PlacementPolicy::Pinned(_) => unreachable!("handled above"),
    }
}

/// The destinations `tenant` could currently land on: a free slot, and
/// (when minimum rates are enforced) either admissible without starving
/// anyone or an idle path. Shared by [`choose`] and [`rationale`] so the
/// decision and its explanation can never see different candidate sets.
fn feasible_dests(
    topo: &Topology,
    dests: &[DestState],
    src: usize,
    tenant: &VmTenant,
    enforce_min_rate: bool,
) -> Vec<usize> {
    dests
        .iter()
        .enumerate()
        .filter(|(d, state)| {
            state.free_slots > 0
                && (!enforce_min_rate
                    || topo.can_admit(src, Some(*d), tenant.weight, tenant.min_rate)
                    || topo.path_idle(src, Some(*d)))
        })
        .map(|(d, _)| d)
        .collect()
}

/// Why a placement decision went the way it did: the chosen candidate's
/// estimated SLA cost against the best alternative's.
///
/// Reporting only — [`choose`] already made the decision; this re-scores
/// the same feasible set with [`sla_score`] so every policy's pick (even
/// greedy or random ones) is explained on a common scale. Lower is
/// better.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementRationale {
    /// Estimated SLA cost of the chosen destination.
    pub chosen_score: f64,
    /// The cheapest feasible alternative, if any other candidate existed.
    pub runner_up: Option<usize>,
    /// The runner-up's estimated SLA cost.
    pub runner_up_score: Option<f64>,
    /// How many destinations were feasible when the decision was made.
    pub candidates: usize,
}

/// Scores the decision [`choose`] just made: `chosen`'s [`sla_score`]
/// plus the best-scored feasible alternative. Pure and side-effect free —
/// it must be called *before* the chosen destination's slot is occupied
/// or the flow opened, while the topology still reflects the decision
/// instant.
pub fn rationale(
    topo: &Topology,
    dests: &[DestState],
    src: usize,
    tenant: &VmTenant,
    ws_bytes: u64,
    enforce_min_rate: bool,
    chosen: usize,
) -> PlacementRationale {
    let score = |d: usize| {
        let rate = topo.predicted_rate(src, Some(d), tenant.weight);
        sla_score(&tenant.sla, ws_bytes, rate.bytes_per_sec())
    };
    let feasible = feasible_dests(topo, dests, src, tenant, enforce_min_rate);
    let runner_up = feasible
        .iter()
        .copied()
        .filter(|&d| d != chosen)
        .min_by(|&a, &b| {
            score(a)
                .partial_cmp(&score(b))
                .expect("sla scores are finite")
                .then(a.cmp(&b))
        });
    PlacementRationale {
        chosen_score: score(chosen),
        runner_up,
        runner_up_score: runner_up.map(score),
        candidates: feasible.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javmm::vm::JavaVmConfig;
    use migrate::config::MigrationConfig;
    use netsim::topology::LinkSpec;
    use simkit::units::Bandwidth;
    use workloads::catalog;

    fn mb(x: f64) -> Bandwidth {
        Bandwidth::from_mbytes_per_sec(x)
    }

    fn tenant() -> VmTenant {
        VmTenant::new(
            "t",
            JavaVmConfig::paper(catalog::derby(), true, 1),
            MigrationConfig::javmm_default(),
        )
    }

    fn pool() -> (Topology, Vec<DestState>) {
        let dests = vec![
            DestSpec::new("wan", 8).with_ingress(mb(40.0)).with_wan(),
            DestSpec::new("rack-a", 8).with_ingress(mb(125.0)),
            DestSpec::new("rack-b", 4).with_ingress(mb(125.0)),
        ];
        let topo = Topology::new(
            vec![LinkSpec::lan("src", mb(125.0))],
            None,
            dests
                .iter()
                .map(|d| LinkSpec::lan(d.name.clone(), d.ingress))
                .collect(),
        );
        (topo, dests.into_iter().map(DestState::new).collect())
    }

    #[test]
    fn sla_aware_avoids_the_wan_when_a_lan_is_feasible() {
        let (topo, dests) = pool();
        let choice = choose(
            PlacementPolicy::SlaAware,
            &topo,
            &dests,
            0,
            &tenant(),
            100 << 20,
            true,
            0,
        );
        assert_eq!(choice, Some(1), "fast LAN with most slots wins");
    }

    #[test]
    fn greedy_prefers_headroom_then_ingress() {
        let (topo, mut dests) = pool();
        assert_eq!(
            choose(
                PlacementPolicy::Greedy,
                &topo,
                &dests,
                0,
                &tenant(),
                100 << 20,
                true,
                0
            ),
            Some(1),
            "wan and rack-a tie on slots; rack-a wins on ingress"
        );
        // Drain rack-a and wan down to fewer slots than rack-b.
        for _ in 0..6 {
            dests[0].occupy();
            dests[1].occupy();
        }
        assert_eq!(
            choose(
                PlacementPolicy::Greedy,
                &topo,
                &dests,
                0,
                &tenant(),
                100 << 20,
                true,
                1
            ),
            Some(2),
            "rack-b now has the most free slots"
        );
    }

    #[test]
    fn infeasible_destinations_are_skipped() {
        // A second source host parks a min-rate-100 incumbent on rack-a's
        // ingress, so rack-a fails per-hop admission for any newcomer and
        // its path is not idle either.
        let dests = vec![
            DestSpec::new("wan", 8).with_ingress(mb(40.0)).with_wan(),
            DestSpec::new("rack-a", 8).with_ingress(mb(125.0)),
            DestSpec::new("rack-b", 4).with_ingress(mb(125.0)),
        ];
        let mut topo = Topology::new(
            vec![
                LinkSpec::lan("src0", mb(125.0)),
                LinkSpec::lan("src1", mb(125.0)),
            ],
            None,
            dests
                .iter()
                .map(|d| LinkSpec::lan(d.name.clone(), d.ingress))
                .collect(),
        );
        let states: Vec<DestState> = dests.into_iter().map(DestState::new).collect();
        let _incumbent = topo.open_flow(1, Some(1), 1.0, mb(100.0));
        let choice = choose(
            PlacementPolicy::SlaAware,
            &topo,
            &states,
            0,
            &tenant(),
            100 << 20,
            true,
            0,
        );
        assert_eq!(
            choice,
            Some(2),
            "rack-a is infeasible (incumbent would starve); rack-b beats the WAN on cost"
        );
    }

    #[test]
    fn idle_path_admits_an_otherwise_infeasible_floor() {
        // With everything quiet, a tenant whose floor exceeds every share
        // the WAN could give still places — the deadlock-avoidance clause.
        let (topo, mut dests) = pool();
        let heavy = tenant().with_min_rate(mb(65.0));
        dests[1].free_slots = 0;
        dests[2].free_slots = 0;
        assert_eq!(
            choose(
                PlacementPolicy::SlaAware,
                &topo,
                &dests,
                0,
                &heavy,
                100 << 20,
                true,
                0
            ),
            Some(0),
            "the WAN path is idle, so the floor is waived rather than deadlocking"
        );
    }

    #[test]
    fn random_is_deterministic_and_feasible() {
        let (topo, dests) = pool();
        let a = choose(
            PlacementPolicy::Random(7),
            &topo,
            &dests,
            0,
            &tenant(),
            100 << 20,
            true,
            3,
        );
        let b = choose(
            PlacementPolicy::Random(7),
            &topo,
            &dests,
            0,
            &tenant(),
            100 << 20,
            true,
            3,
        );
        assert_eq!(a, b, "same seed and ordinal, same pick");
        assert!(a.is_some());
    }

    #[test]
    fn pinned_ignores_capacity() {
        let (topo, mut dests) = pool();
        dests[0].free_slots = 0;
        let choice = choose(
            PlacementPolicy::Pinned(0),
            &topo,
            &dests,
            0,
            &tenant(),
            100 << 20,
            true,
            0,
        );
        assert_eq!(choice, Some(0), "the drill places onto full hosts");
    }

    #[test]
    fn sla_score_prices_slow_paths_higher() {
        let sla = SlaModel::default_web();
        let fast = sla_score(&sla, 100 << 20, 125e6);
        let slow = sla_score(&sla, 100 << 20, 40e6);
        assert!(slow > fast, "slow {slow} must cost more than fast {fast}");
    }

    #[test]
    fn rationale_explains_any_policy_on_the_sla_scale() {
        let (topo, dests) = pool();
        let t = tenant();
        let ws = 100u64 << 20;
        let chosen = choose(PlacementPolicy::SlaAware, &topo, &dests, 0, &t, ws, true, 0)
            .expect("pool has feasible destinations");
        let r = rationale(&topo, &dests, 0, &t, ws, true, chosen);
        assert_eq!(r.candidates, 3);
        assert_eq!(r.runner_up, Some(2), "the other 125 MB/s rack is next-best");
        assert!(
            r.chosen_score <= r.runner_up_score.unwrap(),
            "the sla-aware winner must also win the rationale's scale"
        );
        // A pinned pick onto the WAN is explained as strictly worse than
        // the LAN runner-up — the score gap the drill asserts on.
        let pinned = rationale(&topo, &dests, 0, &t, ws, true, 0);
        assert!(pinned.chosen_score > pinned.runner_up_score.unwrap());
        assert_eq!(pinned.runner_up, Some(1));
    }
}
